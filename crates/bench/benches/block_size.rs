//! Ablation A2: tensor block size for the relation-centric matmul.
//!
//! Small blocks maximize spill granularity but pay per-block join/codec
//! overhead; large blocks amortize it but raise the working-set unit.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use relserve_bench::workloads;
use relserve_relational::TensorTable;
use relserve_storage::{BufferPool, DiskManager};
use relserve_tensor::BlockingSpec;
use std::sync::Arc;

fn bench_block_size(c: &mut Criterion) {
    let x = workloads::feature_batch(256, 1024, 41);
    let w = workloads::feature_batch(512, 1024, 42); // [n, k] weight layout

    let mut group = c.benchmark_group("block_size");
    group.sample_size(10);
    for block in [32usize, 64, 128, 256, 512] {
        group.bench_with_input(BenchmarkId::from_parameter(block), &block, |b, &blk| {
            b.iter_with_setup(
                || {
                    let pool = Arc::new(BufferPool::with_budget_bytes(
                        Arc::new(DiskManager::temp().unwrap()),
                        64 << 20,
                    ));
                    let xt =
                        TensorTable::from_dense(pool.clone(), "x", &x, BlockingSpec::square(blk))
                            .unwrap();
                    let wt =
                        TensorTable::from_dense(pool, "w", &w, BlockingSpec::square(blk)).unwrap();
                    (xt, wt)
                },
                |(xt, wt)| xt.matmul_bt(&wt, "c").unwrap(),
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench_block_size);
criterion_main!(benches);
