//! Criterion bench for §7.2.1: join-then-infer vs decomposition push-down.

use criterion::{criterion_group, criterion_main, Criterion};
use relserve_bench::workloads;
use relserve_core::rules::{run_join_then_infer, run_pushdown_infer, JoinedInference};
use relserve_nn::init::seeded_rng;
use relserve_nn::zoo;
use relserve_relational::Table;
use relserve_runtime::KernelPool;
use relserve_storage::{BufferPool, DiskManager};
use std::sync::Arc;

fn bench_decomp(c: &mut Criterion) {
    let pool = Arc::new(BufferPool::with_budget_bytes(
        Arc::new(DiskManager::temp().unwrap()),
        128 << 20,
    ));
    let (rows1, rows2) = workloads::bosch_split_tables(2_000, 968, 4, 36);
    let d1 = Table::create(pool.clone(), "d1", workloads::keyed_feature_schema());
    let d2 = Table::create(pool, "d2", workloads::keyed_feature_schema());
    for r in &rows1 {
        d1.insert(r).unwrap();
    }
    for r in &rows2 {
        d2.insert(r).unwrap();
    }
    let mut rng = seeded_rng(37);
    let model = zoo::bosch_ffnn(&mut rng).unwrap();
    let q = JoinedInference {
        d1: &d1,
        d2: &d2,
        d1_join_col: 0,
        d2_join_col: 0,
        d1_features: 1,
        d2_features: 1,
        epsilon: 0.15,
    };

    let par = Arc::new(KernelPool::new(2)).parallelism(2);
    let mut group = c.benchmark_group("decomp_pushdown");
    group.sample_size(10);
    group.bench_function("join_then_infer", |b| {
        b.iter(|| run_join_then_infer(&q, &model, &par).unwrap())
    });
    group.bench_function("pushdown_infer", |b| {
        b.iter(|| run_pushdown_infer(&q, &model, &par).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_decomp);
criterion_main!(benches);
