//! Criterion bench for Fig. 2: FFNN inference latency, in-database vs
//! DL-centric. Uses a non-sleeping wire (codec cost only) so Criterion
//! measures CPU work; the repro binary measures the full modeled wire.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use relserve_bench::workloads;
use relserve_core::{Architecture, InferenceSession, SessionConfig};
use relserve_nn::init::seeded_rng;
use relserve_nn::zoo;
use relserve_runtime::{RuntimeProfile, TransferProfile};

fn bench_fig2(c: &mut Criterion) {
    let config = SessionConfig::builder()
        .transfer(TransferProfile::instant())
        .build()
        .unwrap();
    let session = InferenceSession::open(config).unwrap();
    let mut rng = seeded_rng(30);
    session
        .load_model(zoo::fraud_fc_256(&mut rng).unwrap())
        .unwrap();
    session
        .load_model(zoo::fraud_fc_512(&mut rng).unwrap())
        .unwrap();

    let batch = workloads::feature_batch(2_000, 28, 31);
    let mut group = c.benchmark_group("fig2_ffnn");
    group.sample_size(10);
    for model in ["Fraud-FC-256", "Fraud-FC-512"] {
        group.bench_with_input(BenchmarkId::new("in_db_adaptive", model), &model, |b, m| {
            b.iter(|| {
                session
                    .infer_batch(m, &batch, Architecture::Adaptive)
                    .unwrap()
            })
        });
        group.bench_with_input(BenchmarkId::new("dl_centric_tf", model), &model, |b, m| {
            b.iter(|| {
                session
                    .infer_batch(
                        m,
                        &batch,
                        Architecture::DlCentric(RuntimeProfile::tensorflow_like()),
                    )
                    .unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig2);
criterion_main!(benches);
