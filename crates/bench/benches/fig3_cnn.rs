//! Criterion bench for Fig. 3: CNN (DeepBench-CONV1) inference latency,
//! in-database vs DL-centric (codec-only wire).

use criterion::{criterion_group, criterion_main, Criterion};
use relserve_bench::workloads;
use relserve_core::{Architecture, InferenceSession, SessionConfig};
use relserve_nn::init::seeded_rng;
use relserve_nn::zoo;
use relserve_runtime::{RuntimeProfile, TransferProfile};

fn bench_fig3(c: &mut Criterion) {
    let config = SessionConfig::builder()
        .transfer(TransferProfile::instant())
        .build()
        .unwrap();
    let session = InferenceSession::open(config).unwrap();
    let mut rng = seeded_rng(32);
    session
        .load_model(zoo::deepbench_conv1(&mut rng).unwrap())
        .unwrap();
    let images = workloads::image_batch(1, 112, 112, 64, 33);

    let mut group = c.benchmark_group("fig3_cnn");
    group.sample_size(10);
    group.bench_function("in_db_adaptive", |b| {
        b.iter(|| {
            session
                .infer_batch("DeepBench-CONV1", &images, Architecture::Adaptive)
                .unwrap()
        })
    });
    group.bench_function("dl_centric_tf", |b| {
        b.iter(|| {
            session
                .infer_batch(
                    "DeepBench-CONV1",
                    &images,
                    Architecture::DlCentric(RuntimeProfile::tensorflow_like()),
                )
                .unwrap()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_fig3);
criterion_main!(benches);
