//! Criterion comparison of the matmul tiers: serial tiled kernel, the same
//! kernel fanned out on the persistent pool, and the relational block join.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use relserve_relational::TensorTable;
use relserve_runtime::KernelPool;
use relserve_storage::{BufferPool, DiskManager};
use relserve_tensor::matmul as mm;
use relserve_tensor::{BlockingSpec, Tensor};
use std::sync::Arc;

fn pattern(rows: usize, cols: usize, salt: usize) -> Tensor {
    Tensor::from_fn([rows, cols], |i| {
        (((i * 29 + salt * 13) % 37) as f32 - 18.0) * 0.1
    })
}

fn bench_dense(c: &mut Criterion) {
    let pool = Arc::new(KernelPool::for_cores(
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4),
    ));
    let threads = pool.workers() + 1;
    let par = pool.parallelism(threads);

    let mut group = c.benchmark_group("matmul_256");
    group.sample_size(10);
    let n = 256usize;
    let a = pattern(n, n, 1);
    let b = pattern(n, n, 2);
    group.bench_function(BenchmarkId::new("tiled_serial", n), |bench| {
        bench.iter(|| mm::matmul(&a, &b).unwrap())
    });
    group.bench_function(BenchmarkId::new("tiled_pooled", threads), |bench| {
        bench.iter(|| mm::matmul_parallel(&a, &b, &par).unwrap())
    });
    group.bench_function(BenchmarkId::new("bt_packed", n), |bench| {
        bench.iter(|| mm::matmul_bt(&a, &b).unwrap())
    });
    group.finish();
}

fn bench_relational(c: &mut Criterion) {
    let pool = Arc::new(KernelPool::for_cores(4));
    let n = 512usize;
    let block = 64usize;
    let bufpool = Arc::new(BufferPool::new(Arc::new(DiskManager::temp().unwrap()), 256));
    let x = pattern(n, n, 3);
    let w = pattern(n, n, 4);
    let xt =
        TensorTable::from_dense(bufpool.clone(), "X", &x, BlockingSpec::square(block)).unwrap();
    let wt = TensorTable::from_dense(bufpool, "W", &w, BlockingSpec::square(block)).unwrap();

    let mut group = c.benchmark_group("relational_matmul_bt_512");
    group.sample_size(10);
    for threads in [1usize, 4] {
        group.bench_with_input(
            BenchmarkId::from_parameter(threads),
            &threads,
            |bench, &threads| {
                let par = pool.parallelism(threads);
                bench.iter(|| xt.matmul_bt_parallel(&wt, "C", &par).unwrap())
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_dense, bench_relational);
criterion_main!(benches);
