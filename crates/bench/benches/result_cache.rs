//! Criterion bench for §7.2.2: full inference vs HNSW result-cache serving.

use criterion::{criterion_group, criterion_main, Criterion};
use relserve_bench::workloads;
use relserve_core::cache::CachedModel;
use relserve_nn::init::seeded_rng;
use relserve_nn::zoo;
use relserve_runtime::KernelPool;
use relserve_vectoridx::HnswParams;
use std::sync::Arc;

fn bench_cache(c: &mut Criterion) {
    let mut rng = seeded_rng(38);
    let model = zoo::caching_ffnn(&mut rng).unwrap();
    let (train_x, _) = workloads::synthetic_digits(500, 784, 0.3, 39);
    let (test_x, _) = workloads::synthetic_digits(100, 784, 0.3, 40);
    let par = Arc::new(KernelPool::new(2)).parallelism(2);
    let mut cached =
        CachedModel::new(model.clone(), 6.0, HnswParams::default(), par.clone()).unwrap();
    cached.warm(&train_x).unwrap();

    let mut group = c.benchmark_group("result_cache");
    group.sample_size(10);
    group.bench_function("full_inference", |b| {
        b.iter(|| model.predict(&test_x, &par).unwrap())
    });
    group.bench_function("hnsw_cache", |b| {
        b.iter(|| cached.predict_batch(&test_x).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_cache);
criterion_main!(benches);
