//! Criterion bench for Table 3's completing cells at reduced size: the
//! relation-centric (adaptive) path on a large-operator workload vs the
//! UDF-centric dense path where it still fits. (The OOM cells are asserted
//! by the repro binary and integration tests, not timed here.)

use criterion::{criterion_group, criterion_main, Criterion};
use relserve_bench::workloads;
use relserve_core::{Architecture, InferenceSession, SessionConfig};
use relserve_nn::init::seeded_rng;
use relserve_nn::zoo;
use relserve_runtime::TransferProfile;

fn bench_table3(c: &mut Criterion) {
    // Amazon at deeper scale so each iteration is sub-second.
    let scale = 128; // 4,668 features, 113 outputs
    let config = SessionConfig::builder()
        .memory_threshold_bytes(1 << 20) // force relation-centric on matmuls
        .transfer(TransferProfile::instant())
        .build()
        .unwrap();
    let session = InferenceSession::open(config).unwrap();
    let mut rng = seeded_rng(34);
    let model = zoo::amazon_14k_fc(scale, &mut rng).unwrap();
    let name = model.name().to_string();
    let features = model.input_shape().num_elements();
    session.load_model(model).unwrap();
    let batch = workloads::amazon_batch(64, features, 35);

    let mut group = c.benchmark_group("table3_large");
    group.sample_size(10);
    group.bench_function("relation_centric_adaptive", |b| {
        b.iter(|| {
            session
                .infer_batch(&name, &batch, Architecture::Adaptive)
                .unwrap()
        })
    });
    group.bench_function("udf_centric_dense", |b| {
        b.iter(|| {
            session
                .infer_batch(&name, &batch, Architecture::UdfCentric)
                .unwrap()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_table3);
criterion_main!(benches);
