//! Ablation A5 (§5.2): DL-style pipelining inside the UDF-centric
//! architecture — micro-batch size vs latency and peak activation memory.
//!
//! The paper contrasts DL-framework pipelining (streaming stages, bounded
//! per-device memory, no shuffles) with RDBMS data parallelism. This sweep
//! shows the trade-off directly: small micro-batches minimize the activation
//! window (the pipeline's "device memory") at the cost of per-stage
//! scheduling overhead.
//!
//! ```sh
//! cargo run --release -p relserve-bench --bin repro_ablation_pipeline
//! ```

use relserve_bench::config::scaling_banner;
use relserve_bench::report::{timed, Cell, ResultTable};
use relserve_bench::workloads;
use relserve_core::exec::{pipelined, udf_centric};
use relserve_nn::init::seeded_rng;
use relserve_nn::zoo;
use relserve_runtime::{ExecContext, MemoryGovernor};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!(
        "{}",
        scaling_banner("Ablation A5: pipelined micro-batch sweep")
    );
    let mut rng = seeded_rng(19);
    let model = zoo::caching_ffnn(&mut rng)?;
    let batch = 2_048;
    let x = workloads::feature_batch(batch, 784, 20);
    println!("Caching-FFNN (5 layers), batch {batch}\n");

    let mut table = ResultTable::new(&["execution", "latency", "peak activations"]);

    // Baseline: whole-batch UDF execution.
    {
        let governor = MemoryGovernor::unlimited("udf");
        let ctx = ExecContext::standalone(2, governor.clone());
        let (res, elapsed) = timed(|| udf_centric::run(&model, &x, &ctx));
        res?;
        table.row(
            "whole-batch UDF",
            &[
                Cell::Time(elapsed),
                Cell::Text(format!("{:.1} MiB", peak_mib(&governor, &model))),
            ],
        );
    }
    for micro in [32usize, 128, 512] {
        let governor = MemoryGovernor::unlimited("pipe");
        let ctx = ExecContext::standalone(2, governor.clone());
        let (res, elapsed) = timed(|| pipelined::run(&model, &x, micro, &ctx));
        let (_, stats) = res?;
        table.row(
            &format!("pipeline, micro-batch {micro} ({} stages)", stats.stages),
            &[
                Cell::Time(elapsed),
                Cell::Text(format!("{:.1} MiB", peak_mib(&governor, &model))),
            ],
        );
    }
    println!("{}", table.render());
    println!(
        "expected shape (§5.2): pipelining bounds activation memory by the\n\
         micro-batch window instead of the whole batch, while stage\n\
         parallelism keeps latency competitive — the DL-framework trade-off\n\
         the paper wants inside the RDBMS."
    );
    Ok(())
}

/// Peak governor bytes excluding the (constant) parameter reservation.
fn peak_mib(governor: &MemoryGovernor, model: &relserve_nn::Model) -> f64 {
    governor.peak().saturating_sub(model.param_bytes()) as f64 / (1 << 20) as f64
}
