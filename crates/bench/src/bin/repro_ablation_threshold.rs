//! Ablation A1: sweep the §7.1 memory-limit threshold and watch the
//! optimizer shift operators between UDF-centric and relation-centric —
//! and what that does to latency.
//!
//! ```sh
//! cargo run --release -p relserve-bench --bin repro_ablation_threshold
//! ```

use relserve_bench::config::scaling_banner;
use relserve_bench::report::{Cell, ResultTable};
use relserve_bench::workloads;
use relserve_core::{Architecture, InferenceSession, Representation, SessionConfig};
use relserve_nn::init::seeded_rng;
use relserve_nn::zoo;
use relserve_runtime::TransferProfile;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("{}", scaling_banner("Ablation A1: memory-threshold sweep"));
    let batch = 512;
    let features = workloads::feature_batch(batch, 76, 13);

    let mut table = ResultTable::new(&["threshold", "relational ops", "udf ops", "latency"]);
    for threshold_mb in [1usize, 4, 16, 64, 2048] {
        let config = SessionConfig::builder()
            .memory_threshold_bytes(threshold_mb << 20)
            .db_memory_bytes(2 << 30)
            .buffer_pool_bytes(128 << 20)
            .block_size(256)
            .transfer(TransferProfile::instant())
            .build()?;
        let session = InferenceSession::open(config)?;
        let mut rng = seeded_rng(14);
        session.load_model(zoo::encoder_fc(&mut rng)?)?;
        let outcome = session.infer_batch("Encoder-FC", &features, Architecture::Adaptive)?;
        let plan = outcome.plan.as_ref().expect("adaptive plans");
        let relational = plan
            .ops
            .iter()
            .filter(|o| o.representation == Representation::RelationCentric)
            .count();
        table.row(
            &format!("{threshold_mb} MiB"),
            &[
                Cell::Text(relational.to_string()),
                Cell::Text((plan.ops.len() - relational).to_string()),
                Cell::Time(outcome.elapsed),
            ],
        );
    }
    println!("{}", table.render());
    println!(
        "expected shape: raising the threshold monotonically moves operators from\n\
         relation-centric to UDF-centric; latency improves once the hot matmuls\n\
         run dense, quantifying the chunking overhead Table 3 mentions."
    );
    Ok(())
}
