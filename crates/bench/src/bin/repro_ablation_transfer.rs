//! Ablation A3: sweep the connector bandwidth — when does the DL-centric
//! architecture stop losing? (It never quite wins with equal kernels, but
//! the gap collapses as the wire approaches infinite bandwidth, isolating
//! the transfer tax Fig. 2 measures.)
//!
//! ```sh
//! cargo run --release -p relserve-bench --bin repro_ablation_transfer
//! ```

use relserve_bench::config::scaling_banner;
use relserve_bench::report::{Cell, ResultTable};
use relserve_bench::workloads;
use relserve_core::{Architecture, InferenceSession, SessionConfig};
use relserve_nn::init::seeded_rng;
use relserve_nn::zoo;
use relserve_runtime::{RuntimeProfile, TransferProfile};
use std::time::Duration;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!(
        "{}",
        scaling_banner("Ablation A3: connector bandwidth sweep")
    );
    let batch = 10_000;
    let features = workloads::feature_batch(batch, 28, 15);

    let mut table = ResultTable::new(&["wire", "in-DB (ours)", "dl-centric", "dl/ours"]);
    let sweeps: [(&str, TransferProfile); 4] = [
        (
            "100 MB/s + 10ms",
            TransferProfile {
                bandwidth_bytes_per_sec: 100e6,
                fixed_latency: Duration::from_millis(10),
                per_row_overhead_ns: 1000.0,
                simulate_wire: true,
            },
        ),
        (
            "1.2 GB/s + 2ms (ConnectorX)",
            TransferProfile {
                bandwidth_bytes_per_sec: 1.2e9,
                fixed_latency: Duration::from_millis(2),
                per_row_overhead_ns: 1000.0,
                simulate_wire: true,
            },
        ),
        (
            "12 GB/s + 0.2ms",
            TransferProfile {
                bandwidth_bytes_per_sec: 12e9,
                fixed_latency: Duration::from_micros(200),
                per_row_overhead_ns: 100.0,
                simulate_wire: true,
            },
        ),
        ("infinite", TransferProfile::instant()),
    ];
    for (label, wire) in sweeps {
        let config = SessionConfig::builder().transfer(wire).build()?;
        let session = InferenceSession::open(config)?;
        let mut rng = seeded_rng(16);
        session.load_model(zoo::fraud_fc_256(&mut rng)?)?;
        let ours = session.infer_batch("Fraud-FC-256", &features, Architecture::Adaptive)?;
        let dl = session.infer_batch(
            "Fraud-FC-256",
            &features,
            Architecture::DlCentric(RuntimeProfile::tensorflow_like()),
        )?;
        table.row(
            label,
            &[
                Cell::Time(ours.elapsed),
                Cell::Time(dl.elapsed),
                Cell::Text(format!(
                    "{:.1}x",
                    dl.elapsed.as_secs_f64() / ours.elapsed.as_secs_f64()
                )),
            ],
        );
    }
    println!("{}", table.render());
    println!(
        "expected shape: the DL-centric penalty is inversely proportional to wire\n\
         quality; even an infinite wire keeps the serialize/deserialize CPU cost."
    );
    Ok(())
}
