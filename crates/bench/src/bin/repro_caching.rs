//! Reproduce §7.2.2: inference-result caching with HNSW indexing.
//!
//! Paper numbers: the two-conv CNN speeds up 10.3× with accuracy
//! 98.75 % → 93.65 %; the four-layer FFNN speeds up 7.3× with
//! 97.74 % → 95.26 %. Both models are *trained* here (the accuracy story
//! requires it), on synthetic MNIST-like digits whose class clusters overlap
//! enough that approximate cache hits sometimes cross a class boundary.
//!
//! ```sh
//! cargo run --release -p relserve-bench --bin repro_caching
//! ```

use relserve_bench::config::{scaling_banner, CACHE_TEST, CACHE_TRAIN};
use relserve_bench::report::{format_duration, timed, Cell, ResultTable};
use relserve_bench::workloads;
use relserve_core::cache::CachedModel;
use relserve_nn::init::seeded_rng;
use relserve_nn::{zoo, Model, Trainer};
use relserve_runtime::KernelPool;
use relserve_tensor::Tensor;
use relserve_vectoridx::HnswParams;
use std::sync::Arc;

struct CacheResult {
    full_time: std::time::Duration,
    cached_time: std::time::Duration,
    full_acc: f32,
    cached_acc: f32,
    hit_rate: f64,
}

#[allow(clippy::too_many_arguments)]
fn run_cache_experiment(
    mut model: Model,
    train_x: &Tensor,
    train_y: &[usize],
    test_x: &Tensor,
    test_y: &[usize],
    epochs: usize,
    lr: f32,
    max_distance: f32,
) -> Result<CacheResult, Box<dyn std::error::Error>> {
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    let par = Arc::new(KernelPool::for_cores(threads)).parallelism(threads);
    let trainer = Trainer::new(lr).with_parallelism(par.clone());
    let n = train_x.shape().dim(0);
    let width: usize = train_x.shape().dims()[1..].iter().product();
    let flat_train = train_x.clone().reshape([n, width])?;
    for epoch in 0..epochs {
        let loss = trainer.train_epoch(&mut model, &flat_train, train_y, 64)?;
        eprintln!("  {} epoch {epoch}: loss {loss:.4}", model.name());
    }
    let m = test_x.shape().dim(0);
    let flat_test = test_x.clone().reshape([m, width])?;
    let full_acc = Trainer::evaluate(&model, &flat_test, test_y, &par)?;

    let mut cached = CachedModel::new(model, max_distance, HnswParams::default(), par.clone())?;
    cached.warm(&flat_train)?;

    // Full inference, one query at a time (the serving pattern §7.2.2 times).
    let exact_model = cached.model().clone();
    let (_, full_time) = timed(|| {
        for i in 0..m {
            let row = flat_test.slice2(i, i + 1, 0, width).expect("row");
            exact_model.forward(&row, &par).expect("forward");
        }
    });

    let (cached_preds, cached_time) = timed(|| cached.predict_batch(&flat_test).expect("cached"));
    let cached_acc = accuracy(&cached_preds, test_y);

    Ok(CacheResult {
        full_time,
        cached_time,
        full_acc,
        cached_acc,
        hit_rate: cached.stats().hit_rate(),
    })
}

fn accuracy(preds: &[usize], labels: &[usize]) -> f32 {
    preds.iter().zip(labels).filter(|(p, l)| p == l).count() as f32 / labels.len() as f32
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!(
        "{}",
        scaling_banner("§7.2.2: HNSW inference-result caching")
    );
    let mut rng = seeded_rng(12);

    let mut table = ResultTable::new(&[
        "model",
        "full inference",
        "with HNSW cache",
        "speedup",
        "accuracy",
        "hit rate",
    ]);

    // --- CNN on 28×28 digit images (paper: 10.3×, 98.75 % → 93.65 %) ---
    {
        let spread = 0.8;
        // 6 % of digits have a look-alike shape of another class (paper CNN
        // drop: 98.75 % → 93.65 %).
        let (train_x, train_y, test_flat, test_y) =
            workloads::synthetic_digits_decoupled(2000, 400, 784, spread, 0.20, 0.10, 0.30, 21);
        let train_x = train_x.reshape([2000, 28, 28, 1])?;
        let test_x = test_flat.reshape([400, 28, 28, 1])?;
        let max_d = 1.3 * workloads::expected_same_class_distance(784, spread);
        let model = zoo::caching_cnn(&mut rng)?;
        let r = run_cache_experiment(model, &train_x, &train_y, &test_x, &test_y, 14, 0.04, max_d)?;
        table.row(
            "Caching-CNN",
            &[
                Cell::Time(r.full_time),
                Cell::Time(r.cached_time),
                Cell::Text(format!(
                    "{:.1}x",
                    r.full_time.as_secs_f64() / r.cached_time.as_secs_f64()
                )),
                Cell::Text(format!(
                    "{:.2}% -> {:.2}%",
                    r.full_acc * 100.0,
                    r.cached_acc * 100.0
                )),
                Cell::Text(format!("{:.0}%", r.hit_rate * 100.0)),
            ],
        );
    }

    // --- FFNN on 784-dim digits (paper: 7.3×, 97.74 % → 95.26 %) ---
    {
        let spread = 0.8;
        // 3.5 % look-alikes (paper FFNN drop: 97.74 % → 95.26 %).
        let (train_x, train_y, test_x, test_y) = workloads::synthetic_digits_decoupled(
            CACHE_TRAIN,
            CACHE_TEST,
            784,
            spread,
            0.15,
            0.05,
            0.25,
            23,
        );
        let max_d = 1.3 * workloads::expected_same_class_distance(784, spread);
        let model = zoo::caching_ffnn(&mut rng)?;
        let r = run_cache_experiment(model, &train_x, &train_y, &test_x, &test_y, 8, 0.05, max_d)?;
        table.row(
            "Caching-FFNN",
            &[
                Cell::Time(r.full_time),
                Cell::Time(r.cached_time),
                Cell::Text(format!(
                    "{:.1}x",
                    r.full_time.as_secs_f64() / r.cached_time.as_secs_f64()
                )),
                Cell::Text(format!(
                    "{:.2}% -> {:.2}%",
                    r.full_acc * 100.0,
                    r.cached_acc * 100.0
                )),
                Cell::Text(format!("{:.0}%", r.hit_rate * 100.0)),
            ],
        );
    }

    println!("{}", table.render());
    println!(
        "expected shape (paper §7.2.2): large speedup (paper 10.3x CNN, 7.3x FFNN)\n\
         traded against an accuracy drop of a few points (98.75->93.65,\n\
         97.74->95.26) — motivating SLA-gated cache admission.\n\
         full-inference latency above is per-query serving ({} queries).",
        CACHE_TEST
    );
    println!(
        "({} / {} train/test examples; times include HNSW search + verification)",
        CACHE_TRAIN, CACHE_TEST
    );
    let _ = format_duration(std::time::Duration::ZERO);
    Ok(())
}
