//! Reproduce §7.2.1: model decomposition and push-down (paper: 5.7×).
//!
//! Pipeline: similarity-join two vertically-partitioned Bosch-like feature
//! tables (484 + 484 features) on their most-correlated column pair, then
//! run the 968/256/2 FFNN. Baseline joins first and multiplies after;
//! the transformed plan pushes `W1×D1` and `W2×D2` below the join so the
//! join moves 256-wide intermediates instead of 484-wide feature halves.
//!
//! ```sh
//! cargo run --release -p relserve-bench --bin repro_decomposition
//! ```

use relserve_bench::config::{scaling_banner, BOSCH_FAN, BOSCH_ROWS, BOSCH_WIDTH};
use relserve_bench::report::{format_duration, timed};
use relserve_bench::workloads;
use relserve_core::rules::{run_join_then_infer, run_pushdown_infer, JoinedInference};
use relserve_core::SessionConfig;
use relserve_nn::init::seeded_rng;
use relserve_nn::zoo;
use relserve_relational::Table;
use relserve_runtime::KernelPool;
use relserve_storage::{BufferPool, DiskManager};
use std::sync::Arc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!(
        "{}",
        scaling_banner("§7.2.1: model decomposition & push-down")
    );
    let _ = SessionConfig::default();
    let pool = Arc::new(BufferPool::with_budget_bytes(
        Arc::new(DiskManager::temp()?),
        256 << 20,
    ));

    let (rows1, rows2) = workloads::bosch_split_tables(BOSCH_ROWS, BOSCH_WIDTH, BOSCH_FAN, 10);
    let d1 = Table::create(pool.clone(), "bosch_d1", workloads::keyed_feature_schema());
    let d2 = Table::create(pool, "bosch_d2", workloads::keyed_feature_schema());
    for row in &rows1 {
        d1.insert(row)?;
    }
    for row in &rows2 {
        d2.insert(row)?;
    }
    println!(
        "D1, D2: {BOSCH_ROWS} rows x {} features each; similarity join expands ~{BOSCH_FAN}x;\n\
         FFNN 968/256/2 over the joined features\n",
        BOSCH_WIDTH / 2
    );

    let mut rng = seeded_rng(11);
    let model = zoo::bosch_ffnn(&mut rng)?;
    let query = JoinedInference {
        d1: &d1,
        d2: &d2,
        d1_join_col: 0,
        d2_join_col: 0,
        d1_features: 1,
        d2_features: 1,
        epsilon: 0.15,
    };

    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    let par = Arc::new(KernelPool::for_cores(threads)).parallelism(threads);
    let (baseline, t_baseline) = timed(|| run_join_then_infer(&query, &model, &par));
    let baseline = baseline?;
    let (pushed, t_pushed) = timed(|| run_pushdown_infer(&query, &model, &par));
    let pushed = pushed?;

    // Correctness: both plans must produce the same predictions.
    assert_eq!(baseline.shape(), pushed.shape());
    let max_diff = baseline.max_abs_diff(&pushed)?;
    assert!(max_diff < 1e-3, "plans diverged: {max_diff}");

    let speedup = t_baseline.as_secs_f64() / t_pushed.as_secs_f64();
    println!(
        "join-then-infer (baseline): {}",
        format_duration(t_baseline)
    );
    println!("push-down plan:             {}", format_duration(t_pushed));
    println!("speedup:                    {speedup:.1}x   (paper: 5.7x)");
    println!(
        "\nboth plans agree on all {} output rows (max |diff| = {max_diff:.2e})",
        baseline.shape().dim(0)
    );
    Ok(())
}
