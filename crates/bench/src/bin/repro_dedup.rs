//! Ablation A4 (§4.1): accuracy-aware tensor-block deduplication — storage
//! saved vs inference deviation across error bounds.
//!
//! The weight matrix is given repetitive block structure (as embedding
//! tables and fine-tuned checkpoints have in practice), then deduplicated at
//! increasing tolerances; the harness reports storage savings and the
//! resulting output deviation.
//!
//! ```sh
//! cargo run --release -p relserve-bench --bin repro_dedup
//! ```

use relserve_bench::config::scaling_banner;
use relserve_bench::report::{Cell, ResultTable};
use relserve_bench::workloads;
use relserve_core::dedup::{dedup_blocks, error_bound};
use relserve_tensor::{matmul, BlockedTensor, BlockingSpec, Tensor};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("{}", scaling_banner("Ablation A4: accuracy-aware dedup"));

    // A 1024×1024 weight matrix built from a pool of 24 base blocks with
    // small per-copy jitter — near-duplicate structure.
    let block = 64usize;
    let side = 1024usize;
    let mut rng = relserve_nn::init::seeded_rng(17);
    use rand::Rng;
    let pool: Vec<Tensor> = (0..24)
        .map(|_| Tensor::from_fn([block, block], |_| rng.gen_range(-0.1f32..0.1)))
        .collect();
    let mut weight = BlockedTensor::empty(side, side, BlockingSpec::square(block));
    for br in 0..side / block {
        for bc in 0..side / block {
            let base = &pool[(br * 7 + bc * 3) % pool.len()];
            let mut copy = base.clone();
            for v in copy.data_mut() {
                *v += rng.gen_range(-1e-4f32..1e-4);
            }
            weight
                .insert_block(relserve_tensor::BlockCoord { row: br, col: bc }, copy)
                .unwrap();
        }
    }
    let x = workloads::feature_batch(32, side, 18);
    let exact = matmul::matmul(&x, &weight.to_dense()?)?;

    let mut table = ResultTable::new(&[
        "tolerance",
        "unique blocks",
        "storage saved",
        "max output dev",
        "guaranteed bound/elem",
    ]);
    for tol in [0.0f32, 1e-5, 1e-4, 1e-3, 1e-2] {
        let (deduped, stats) = dedup_blocks(&weight, tol)?;
        let approx = matmul::matmul(&x, &deduped.to_blocked()?.to_dense()?)?;
        let dev = exact.max_abs_diff(&approx)?;
        table.row(
            &format!("{tol:.0e}"),
            &[
                Cell::Text(format!("{}/{}", stats.blocks_after, stats.blocks_before)),
                Cell::Text(format!("{:.1}%", stats.savings() * 100.0)),
                Cell::Text(format!("{dev:.3e}")),
                Cell::Text(format!("{:.1e}", error_bound(tol))),
            ],
        );
    }
    println!("{}", table.render());
    println!(
        "expected shape (§4.1): savings grow with tolerance while output deviation\n\
         stays within the per-element bound times the reduction width — the\n\
         storage optimizer can pick a tolerance per the application's accuracy SLA."
    );
    Ok(())
}
