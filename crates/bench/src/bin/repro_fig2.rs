//! Reproduce Fig. 2: latency reduction of in-database serving for FFNN
//! models over data managed by the RDBMS, against the DL-centric
//! architecture (external runtime + ConnectorX-class transfer).
//!
//! Paper shape: for small models the cross-system transfer dominates, so the
//! in-database (UDF-centric, chosen by the rule) path wins; the advantage
//! shrinks as model compute grows (Encoder-FC).
//!
//! ```sh
//! cargo run --release -p relserve-bench --bin repro_fig2
//! ```

use relserve_bench::config::{fig2_config, scaling_banner, FIG2_BATCH};
use relserve_bench::report::{Cell, ResultTable};
use relserve_bench::workloads;
use relserve_core::{Architecture, InferenceSession};
use relserve_nn::init::seeded_rng;
use relserve_nn::zoo;
use relserve_runtime::RuntimeProfile;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("{}", scaling_banner("Fig. 2: FFNN inference latency"));
    let session = InferenceSession::open(fig2_config())?;
    let mut rng = seeded_rng(2);
    session.load_model(zoo::fraud_fc_256(&mut rng)?)?;
    session.load_model(zoo::fraud_fc_512(&mut rng)?)?;
    session.load_model(zoo::encoder_fc(&mut rng)?)?;

    // (model, batch): Encoder-FC is ~200× more compute per row, so its
    // batch is reduced to keep the run short; the comparison is per-query.
    let cases = [
        ("Fraud-FC-256", 28usize, FIG2_BATCH),
        ("Fraud-FC-512", 28, FIG2_BATCH),
        ("Encoder-FC", 76, 500),
    ];

    let mut table = ResultTable::new(&[
        "model",
        "ours (in-DB)",
        "dl-centric (TF-like)",
        "dl-centric (PT-like)",
        "reduction",
    ]);
    const REPEATS: usize = 9; // interleaved best-of-N damps host noise
    for (model, width, batch) in cases {
        let features = workloads::feature_batch(batch, width, 3);
        // Untimed warm-up: touch weights and page in the working set so the
        // first measured architecture is not penalized.
        session.infer_batch(model, &features, Architecture::UdfCentric)?;
        // Interleave the architectures round-robin so slow host phases on a
        // shared machine penalize all of them equally; keep each one's best.
        let mut ours = std::time::Duration::MAX;
        let mut tf = std::time::Duration::MAX;
        let mut pt = std::time::Duration::MAX;
        for _ in 0..REPEATS {
            ours = ours.min(
                session
                    .infer_batch(model, &features, Architecture::Adaptive)?
                    .elapsed,
            );
            tf = tf.min(
                session
                    .infer_batch(
                        model,
                        &features,
                        Architecture::DlCentric(RuntimeProfile::tensorflow_like()),
                    )?
                    .elapsed,
            );
            pt = pt.min(
                session
                    .infer_batch(
                        model,
                        &features,
                        Architecture::DlCentric(RuntimeProfile::pytorch_like()),
                    )?
                    .elapsed,
            );
        }
        let best_external = tf.min(pt);
        let reduction = 100.0 * (1.0 - ours.as_secs_f64() / best_external.as_secs_f64());
        table.row(
            &format!("{model} (batch {batch})"),
            &[
                Cell::Time(ours),
                Cell::Time(tf),
                Cell::Time(pt),
                Cell::Text(format!("{reduction:.0}%")),
            ],
        );
    }
    println!("{}", table.render());
    println!(
        "expected shape (paper Fig. 2): in-database serving wins because the\n\
         DL-centric path pays serialization + wire time; the margin is widest\n\
         for the smallest (Fraud) models. Encoder-FC is compute-dominated, so\n\
         with this repo's equal-kernels substitution its reduction is only a\n\
         few percent (within noise) — see EXPERIMENTS.md."
    );
    Ok(())
}
