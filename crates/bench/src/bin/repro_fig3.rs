//! Reproduce Fig. 3: latency reduction of in-database serving for CNN
//! models (DeepBench-CONV1) against the DL-centric architecture.
//!
//! The transferred payload per image is large (112×112×64 floats ≈ 3.2 MB),
//! so cross-system shipping is expensive relative to a single pointwise
//! convolution — the in-database path wins, as in the paper.
//!
//! ```sh
//! cargo run --release -p relserve-bench --bin repro_fig3
//! ```

use relserve_bench::config::{fig2_config, scaling_banner, FIG3_BATCH};
use relserve_bench::report::{Cell, ResultTable};
use relserve_bench::workloads;
use relserve_core::{Architecture, InferenceSession};
use relserve_nn::init::seeded_rng;
use relserve_nn::zoo;
use relserve_runtime::RuntimeProfile;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("{}", scaling_banner("Fig. 3: CNN inference latency"));
    let session = InferenceSession::open(fig2_config())?;
    let mut rng = seeded_rng(4);
    session.load_model(zoo::deepbench_conv1(&mut rng)?)?;

    let batch = FIG3_BATCH;
    let images = workloads::image_batch(batch, 112, 112, 64, 5);
    println!(
        "DeepBench-CONV1, batch {batch} (payload {:.1} MB per direction)\n",
        images.num_bytes() as f64 / 1e6
    );

    let mut table = ResultTable::new(&["architecture", "latency", "vs ours"]);
    // Untimed warm-up.
    session.infer_batch("DeepBench-CONV1", &images, Architecture::UdfCentric)?;
    let ours = session.infer_batch("DeepBench-CONV1", &images, Architecture::Adaptive)?;
    table.row(
        "ours (in-DB, rule-chosen)",
        &[Cell::Time(ours.elapsed), Cell::Text("1.0x".into())],
    );
    for profile in [
        RuntimeProfile::tensorflow_like(),
        RuntimeProfile::pytorch_like(),
    ] {
        let arch = Architecture::DlCentric(profile);
        let label = arch.to_string();
        let outcome = session.infer_batch("DeepBench-CONV1", &images, arch)?;
        let factor = outcome.elapsed.as_secs_f64() / ours.elapsed.as_secs_f64();
        table.row(
            &label,
            &[
                Cell::Time(outcome.elapsed),
                Cell::Text(format!("{factor:.1}x")),
            ],
        );
    }
    println!("{}", table.render());
    println!(
        "expected shape (paper Fig. 3): in-database serving reduces latency for\n\
         CNN inference because the image batch never crosses a system boundary."
    );
    Ok(())
}
