//! Matmul kernel comparison: seed `ikj` stripe kernel vs the register-tiled
//! micro-kernel, single-threaded and on the persistent kernel pool, plus the
//! relational block-join speedup. Emits `BENCH_matmul.json` with GFLOP/s so
//! regressions are diffable.
//!
//! Run with `cargo run --release --bin repro_matmul_kernels`.

use relserve_bench::report::{Cell, ResultTable};
use relserve_relational::TensorTable;
use relserve_runtime::KernelPool;
use relserve_storage::{BufferPool, DiskManager};
use relserve_tensor::matmul as mm;
use relserve_tensor::{BlockingSpec, Tensor};
use std::sync::Arc;
use std::time::Instant;

/// The seed repo's kernel, kept verbatim as the comparison baseline:
/// cache-blocked `ikj` with a zero-skip branch in the inner loop.
fn seed_stripe_kernel(ad: &[f32], bd: &[f32], cd: &mut [f32], m: usize, k: usize, n: usize) {
    const KB: usize = 256;
    for p0 in (0..k).step_by(KB) {
        let p1 = (p0 + KB).min(k);
        for i in 0..m {
            let a_row = &ad[i * k..(i + 1) * k];
            let c_row = &mut cd[i * n..(i + 1) * n];
            for p in p0..p1 {
                let av = a_row[p];
                if av == 0.0 {
                    continue;
                }
                let b_row = &bd[p * n..(p + 1) * n];
                for (cv, bv) in c_row.iter_mut().zip(b_row) {
                    *cv += av * *bv;
                }
            }
        }
    }
}

/// Best-of-`reps` wall-clock seconds for `f`.
fn best_secs(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        f();
        best = best.min(start.elapsed().as_secs_f64());
    }
    best
}

fn pattern(rows: usize, cols: usize, salt: usize) -> Tensor {
    Tensor::from_fn([rows, cols], |i| {
        (((i * 29 + salt * 13) % 37) as f32 - 18.0) * 0.1
    })
}

fn main() {
    let pool = Arc::new(KernelPool::for_cores(
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4),
    ));
    let pool_threads = pool.workers() + 1;
    let pooled = pool.parallelism(pool_threads);

    // --- Dense kernels at 512^3 -------------------------------------------
    let n = 512usize;
    let flops = 2.0 * (n * n * n) as f64;
    let a = pattern(n, n, 1);
    let b = pattern(n, n, 2);
    let reps = 5;

    let mut c_seed = vec![0.0f32; n * n];
    let seed_secs = best_secs(reps, || {
        c_seed.iter_mut().for_each(|v| *v = 0.0);
        seed_stripe_kernel(a.data(), b.data(), &mut c_seed, n, n, n);
    });
    let mut tiled_out = None;
    let tiled_secs = best_secs(reps, || {
        tiled_out = Some(mm::matmul(&a, &b).unwrap());
    });
    let pooled_secs = best_secs(reps, || {
        tiled_out = Some(mm::matmul_parallel(&a, &b, &pooled).unwrap());
    });

    // Sanity: the tiled kernel agrees with the seed baseline.
    let seed_c = Tensor::from_vec([n, n], c_seed).unwrap();
    let max_diff = seed_c.max_abs_diff(tiled_out.as_ref().unwrap()).unwrap();
    assert!(max_diff < 1e-2, "kernels disagree: max diff {max_diff}");

    let gflops = |secs: f64| flops / secs / 1e9;
    let mut table = ResultTable::new(&["kernel", "threads", "secs", "GFLOP/s"]);
    for (name, threads, secs) in [
        ("seed_stripe_ikj", 1, seed_secs),
        ("tiled", 1, tiled_secs),
        ("tiled_pooled", pool_threads, pooled_secs),
    ] {
        table.row(
            name,
            &[
                Cell::Text(threads.to_string()),
                Cell::Text(format!("{secs:.4}")),
                Cell::Text(format!("{:.2}", gflops(secs))),
            ],
        );
    }
    println!("matmul {n}x{n}x{n} (best of {reps}):");
    print!("{}", table.render());
    println!(
        "tiled vs seed (1 thread): {:.2}x; pooled vs tiled: {:.2}x",
        seed_secs / tiled_secs,
        tiled_secs / pooled_secs
    );

    // --- Relational block join at 1024x1024 -------------------------------
    let rows = 1024usize;
    let block = 128usize;
    let bufpool = Arc::new(BufferPool::new(Arc::new(DiskManager::temp().unwrap()), 512));
    let x = pattern(rows, rows, 3);
    let w = pattern(rows, rows, 4);
    let xt =
        TensorTable::from_dense(bufpool.clone(), "X", &x, BlockingSpec::square(block)).unwrap();
    let wt = TensorTable::from_dense(bufpool, "W", &w, BlockingSpec::square(block)).unwrap();
    let rel_threads = pool_threads.clamp(2, 4);
    let rel_par = pool.parallelism(rel_threads);
    let rel_serial = best_secs(3, || {
        xt.matmul_bt_parallel(&wt, "C", &pool.parallelism(1))
            .unwrap();
    });
    let rel_pooled = best_secs(3, || {
        xt.matmul_bt_parallel(&wt, "C", &rel_par).unwrap();
    });
    println!(
        "relational matmul_bt {rows}x{rows} (block {block}): serial {rel_serial:.4}s, \
         {rel_threads} kernel threads {rel_pooled:.4}s ({:.2}x)",
        rel_serial / rel_pooled
    );

    let counters = pool.counters();
    let host_cores = std::thread::available_parallelism()
        .map(|v| v.get())
        .unwrap_or(1);
    let json = format!(
        "{{\n  \"host_cores\": {host_cores},\n  \"shape\": [{n}, {n}, {n}],\n  \"flops\": {flops},\n  \"kernels\": [\n    \
         {{\"name\": \"seed_stripe_ikj\", \"threads\": 1, \"secs\": {seed_secs:.6}, \"gflops\": {:.3}}},\n    \
         {{\"name\": \"tiled\", \"threads\": 1, \"secs\": {tiled_secs:.6}, \"gflops\": {:.3}}},\n    \
         {{\"name\": \"tiled_pooled\", \"threads\": {pool_threads}, \"secs\": {pooled_secs:.6}, \"gflops\": {:.3}}}\n  ],\n  \
         \"speedup_tiled_vs_seed\": {:.3},\n  \
         \"relational_matmul_bt\": {{\"rows\": {rows}, \"block\": {block}, \"kernel_threads\": {rel_threads}, \
         \"serial_secs\": {rel_serial:.6}, \"pooled_secs\": {rel_pooled:.6}, \"speedup\": {:.3}}},\n  \
         \"pool_counters\": {{\"tasks_run\": {}, \"steals\": {}, \"parks\": {}}}\n}}\n",
        gflops(seed_secs),
        gflops(tiled_secs),
        gflops(pooled_secs),
        seed_secs / tiled_secs,
        rel_serial / rel_pooled,
        counters.tasks_run,
        counters.steals,
        counters.parks,
    );
    std::fs::write("BENCH_matmul.json", &json).expect("write BENCH_matmul.json");
    println!("wrote BENCH_matmul.json");
}
