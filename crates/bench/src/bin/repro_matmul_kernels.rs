//! Matmul kernel comparison: seed `ikj` stripe kernel vs the register-tiled
//! micro-kernel on **every ISA dispatch path the host supports** (scalar,
//! AVX2+FMA 4×8, AVX-512 8×16), single-threaded and on the persistent kernel
//! pool, plus vectorized elementwise kernel bandwidth and the relational
//! block-join speedup. Every row names the micro-kernel that actually ran,
//! so a reader can tell the FMA path from the scalar fallback. Emits
//! `BENCH_matmul.json` (selected ISA, one kernel row per dispatch path,
//! elementwise bandwidth) so regressions are diffable.
//!
//! Run with `cargo run --release --bin repro_matmul_kernels`. Hosts without
//! AVX-512 (or AVX2) simply skip those rows and say so.

use relserve_bench::report::{Cell, ResultTable};
use relserve_relational::TensorTable;
use relserve_runtime::KernelPool;
use relserve_storage::{BufferPool, DiskManager};
use relserve_tensor::matmul as mm;
use relserve_tensor::quant::{self, QuantizedTensor};
use relserve_tensor::simd::{self, Isa};
use relserve_tensor::{BlockingSpec, Tensor};
use std::sync::Arc;
use std::time::Instant;

/// The seed repo's kernel, kept verbatim as the comparison baseline:
/// cache-blocked `ikj` with a zero-skip branch in the inner loop.
fn seed_stripe_kernel(ad: &[f32], bd: &[f32], cd: &mut [f32], m: usize, k: usize, n: usize) {
    const KB: usize = 256;
    for p0 in (0..k).step_by(KB) {
        let p1 = (p0 + KB).min(k);
        for i in 0..m {
            let a_row = &ad[i * k..(i + 1) * k];
            let c_row = &mut cd[i * n..(i + 1) * n];
            for p in p0..p1 {
                let av = a_row[p];
                if av == 0.0 {
                    continue;
                }
                let b_row = &bd[p * n..(p + 1) * n];
                for (cv, bv) in c_row.iter_mut().zip(b_row) {
                    *cv += av * *bv;
                }
            }
        }
    }
}

/// Best-of-`reps` wall-clock seconds for `f`.
fn best_secs(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        f();
        best = best.min(start.elapsed().as_secs_f64());
    }
    best
}

fn pattern(rows: usize, cols: usize, salt: usize) -> Tensor {
    Tensor::from_fn([rows, cols], |i| {
        (((i * 29 + salt * 13) % 37) as f32 - 18.0) * 0.1
    })
}

/// One benched matmul kernel row.
struct KernelRow {
    name: String,
    isa: &'static str,
    threads: usize,
    secs: f64,
}

/// One benched elementwise kernel row: `bytes` is the traffic (reads +
/// writes) a single invocation touches.
struct ElemRow {
    kernel: &'static str,
    isa: &'static str,
    secs: f64,
    bytes: f64,
}

fn main() {
    let pool = Arc::new(KernelPool::for_cores(
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4),
    ));
    let pool_threads = pool.workers() + 1;
    let pooled = pool.parallelism(pool_threads);

    let supported = Isa::supported();
    let best_isa = Isa::best();
    let selected = simd::kernels();
    for isa in [Isa::Avx2Fma, Isa::Avx512] {
        if !isa.available() {
            println!("{isa} unavailable on this host; degrading to best tier \"{best_isa}\"");
        }
    }
    println!(
        "dispatch: selected \"{}\" (micro-kernel {}); supported tiers: {}",
        selected.isa,
        selected.matmul.name,
        supported
            .iter()
            .map(|i| i.token())
            .collect::<Vec<_>>()
            .join(", ")
    );

    // --- Dense kernels at 512^3 -------------------------------------------
    let n = 512usize;
    let flops = 2.0 * (n * n * n) as f64;
    let a = pattern(n, n, 1);
    let b = pattern(n, n, 2);
    let reps = 5;

    let mut c_seed = vec![0.0f32; n * n];
    let seed_secs = best_secs(reps, || {
        c_seed.iter_mut().for_each(|v| *v = 0.0);
        seed_stripe_kernel(a.data(), b.data(), &mut c_seed, n, n, n);
    });
    let mut rows: Vec<KernelRow> = vec![KernelRow {
        name: "seed_stripe_ikj".into(),
        isa: Isa::Scalar.token(),
        threads: 1,
        secs: seed_secs,
    }];

    // One row per dispatch path the host can execute, forced explicitly so
    // the comparison is apples-to-apples on the same machine.
    let mut out = None;
    for &isa in &supported {
        let kern_name = simd::kernels_for(isa).unwrap().matmul.name;
        let secs = best_secs(reps, || {
            out = Some(mm::matmul_with_isa(&a, &b, isa).unwrap());
        });
        rows.push(KernelRow {
            name: format!("tiled[{kern_name}]"),
            isa: isa.token(),
            threads: 1,
            secs,
        });
    }

    // The auto-dispatched paths: what `matmul` / `matmul_parallel` actually
    // run, labeled with the micro-kernel the seam selected.
    let tiled_secs = best_secs(reps, || {
        out = Some(mm::matmul(&a, &b).unwrap());
    });
    rows.push(KernelRow {
        name: format!("tiled_auto[{}]", selected.matmul.name),
        isa: selected.isa.token(),
        threads: 1,
        secs: tiled_secs,
    });
    let pooled_secs = best_secs(reps, || {
        out = Some(mm::matmul_parallel(&a, &b, &pooled).unwrap());
    });
    rows.push(KernelRow {
        name: format!("tiled_pooled[{}]", selected.matmul.name),
        isa: selected.isa.token(),
        threads: pool_threads,
        secs: pooled_secs,
    });

    // Sanity: the tiled kernel agrees with the seed baseline.
    let seed_c = Tensor::from_vec([n, n], c_seed).unwrap();
    let max_diff = seed_c.max_abs_diff(out.as_ref().unwrap()).unwrap();
    assert!(max_diff < 1e-2, "kernels disagree: max diff {max_diff}");

    let gflops = |secs: f64| flops / secs / 1e9;
    let mut table = ResultTable::new(&["kernel", "isa", "threads", "secs", "GFLOP/s"]);
    for row in &rows {
        table.row(
            &row.name,
            &[
                Cell::Text(row.isa.to_string()),
                Cell::Text(row.threads.to_string()),
                Cell::Text(format!("{:.4}", row.secs)),
                Cell::Text(format!("{:.2}", gflops(row.secs))),
            ],
        );
    }
    println!("matmul {n}x{n}x{n} (best of {reps}):");
    print!("{}", table.render());
    println!(
        "tiled vs seed (1 thread): {:.2}x; pooled vs tiled: {:.2}x",
        seed_secs / tiled_secs,
        tiled_secs / pooled_secs
    );
    let secs_for = |isa: Isa| {
        rows.iter()
            .find(|r| r.isa == isa.token() && r.name.starts_with("tiled["))
            .map(|r| r.secs)
    };
    let avx512_vs_avx2 = match (secs_for(Isa::Avx2Fma), secs_for(Isa::Avx512)) {
        (Some(avx2), Some(avx512)) => {
            println!(
                "avx512 8x16 vs avx2 4x8 (1 thread): {:.2}x ({:.2} vs {:.2} GFLOP/s)",
                avx2 / avx512,
                gflops(avx512),
                gflops(avx2)
            );
            Some(avx2 / avx512)
        }
        _ => None,
    };

    // --- Int8 quantized kernels at 512^3 ----------------------------------
    // Same GFLOP-equivalent count as the f32 rows (one u8×i8 MAC ≡ one FMA),
    // timed end-to-end: per-row activation quantization, u8×i8 i32-accumulate
    // micro-kernel, dequantizing f32 epilogue. `effective GB/s` is the
    // traffic a kernel actually moves — u8 activations + i8 weights (plus
    // scales) + the f32 store — which is ~4× less than the f32 path.
    struct I8Row {
        name: String,
        isa: &'static str,
        secs: f64,
        bytes: f64,
    }
    let wq = QuantizedTensor::quantize(&b).unwrap();
    let i8_bytes = (n * n) as f64 + wq.storage_bytes() as f64 + (n * n * 4) as f64;
    let mut i8_rows: Vec<I8Row> = Vec::new();
    let mut qout = None;
    for &isa in &supported {
        let kern_name = simd::kernels_for(isa).unwrap().matmul_i8.name;
        let secs = best_secs(reps, || {
            qout = Some(quant::qmatmul_bt_with_isa(&a, &wq, None, isa).unwrap());
        });
        i8_rows.push(I8Row {
            name: format!("int8[{kern_name}]"),
            isa: isa.token(),
            secs,
            bytes: i8_bytes,
        });
    }
    // The serve hot path: the relational block join quantizes each
    // activation block **once per block-row sweep** and reuses it across
    // every matching weight block, so its steady-state cost is this
    // prequantized multiply, not the end-to-end rows above.
    let aq = quant::quantize_activations(&a).unwrap();
    let serial = relserve_tensor::parallel::Parallelism::serial();
    for &isa in &supported {
        let kern_name = simd::kernels_for(isa).unwrap().matmul_i8.name;
        if isa != simd::active_isa() {
            // qmatmul_prequantized rides the process-selected tier; forcing
            // others would re-measure the rows above.
            continue;
        }
        let secs = best_secs(reps, || {
            qout = Some(quant::qmatmul_prequantized(&aq, &wq, None, &serial).unwrap());
        });
        i8_rows.push(I8Row {
            name: format!("int8_pre[{kern_name}]"),
            isa: isa.token(),
            secs,
            bytes: i8_bytes,
        });
    }
    // Sanity: the quantized result tracks the f32 product of the same
    // operands to quantization accuracy.
    let f32_ref = mm::matmul_bt_with_isa(&a, &b, best_isa).unwrap();
    let qdiff = f32_ref.max_abs_diff(qout.as_ref().unwrap()).unwrap();
    let ref_scale = f32_ref.data().iter().fold(0.0f32, |m, v| m.max(v.abs()));
    assert!(
        qdiff <= ref_scale * 0.02,
        "int8 kernel diverged: max diff {qdiff} vs scale {ref_scale}"
    );

    let mut qtable = ResultTable::new(&["int8 kernel", "isa", "secs", "GFLOP-equiv/s", "eff GB/s"]);
    for row in &i8_rows {
        qtable.row(
            &row.name,
            &[
                Cell::Text(row.isa.to_string()),
                Cell::Text(format!("{:.4}", row.secs)),
                Cell::Text(format!("{:.2}", gflops(row.secs))),
                Cell::Text(format!("{:.2}", row.bytes / row.secs / 1e9)),
            ],
        );
    }
    println!("int8 matmul {n}x{n}x{n} (best of {reps}, u8×i8 → i32 → f32 epilogue):");
    print!("{}", qtable.render());
    let i8_secs_for = |isa: Isa| {
        i8_rows
            .iter()
            .find(|r| r.isa == isa.token())
            .map(|r| r.secs)
    };
    let i8_best = i8_rows.iter().map(|r| r.secs).fold(f64::INFINITY, f64::min);
    let f32_best = supported
        .iter()
        .filter_map(|&isa| secs_for(isa))
        .fold(f64::INFINITY, f64::min);
    let int8_vs_f32_best = f32_best / i8_best;
    println!(
        "int8 best vs f32 best (1 thread): {:.2}x ({:.2} vs {:.2} GFLOP-equiv/s)",
        int8_vs_f32_best,
        gflops(i8_best),
        gflops(f32_best)
    );
    let int8_vs_f32_avx2 = match (i8_secs_for(Isa::Avx2Fma), secs_for(Isa::Avx2Fma)) {
        (Some(i8s), Some(f32s)) => {
            println!("int8 avx2 vs f32 avx2 (1 thread): {:.2}x", f32s / i8s);
            Some(f32s / i8s)
        }
        _ => None,
    };
    let i8_pre_secs = i8_rows
        .iter()
        .find(|r| r.name.starts_with("int8_pre["))
        .map(|r| r.secs);
    let int8_pre_vs_f32_avx512 = match (i8_pre_secs, secs_for(Isa::Avx512)) {
        (Some(pre), Some(f32s)) => {
            println!(
                "int8 prequantized (serve steady state) vs f32 avx512 (1 thread): {:.2}x",
                f32s / pre
            );
            Some(f32s / pre)
        }
        _ => None,
    };

    // --- Elementwise kernel bandwidth -------------------------------------
    // L2-resident working set so the wider tiers are not flattened against
    // the memory wall; traffic counts reads + writes per invocation.
    let elems = 1usize << 16;
    let src = pattern(1, elems, 5);
    let elem_reps = 2000;
    let mut elem_rows: Vec<ElemRow> = Vec::new();
    for &isa in &supported {
        let kern = simd::kernels_for(isa).unwrap();
        let mut buf = src.data().to_vec();
        let secs = best_secs(3, || {
            for _ in 0..elem_reps {
                kern.relu(&mut buf);
            }
        }) / elem_reps as f64;
        elem_rows.push(ElemRow {
            kernel: "relu",
            isa: isa.token(),
            secs,
            bytes: (elems * 8) as f64,
        });
        let mut buf = src.data().to_vec();
        let secs = best_secs(3, || {
            for _ in 0..elem_reps {
                kern.axpy(&mut buf, src.data(), 0.5);
            }
        }) / elem_reps as f64;
        elem_rows.push(ElemRow {
            kernel: "axpy",
            isa: isa.token(),
            secs,
            bytes: (elems * 12) as f64,
        });
        let mut sink = 0.0f32;
        let secs = best_secs(3, || {
            for _ in 0..elem_reps {
                sink += kern.sum(src.data());
            }
        }) / elem_reps as f64;
        assert!(sink.is_finite());
        elem_rows.push(ElemRow {
            kernel: "sum",
            isa: isa.token(),
            secs,
            bytes: (elems * 4) as f64,
        });
    }
    let mut etable = ResultTable::new(&["elementwise", "isa", "ns/call", "GB/s"]);
    for row in &elem_rows {
        etable.row(
            row.kernel,
            &[
                Cell::Text(row.isa.to_string()),
                Cell::Text(format!("{:.0}", row.secs * 1e9)),
                Cell::Text(format!("{:.2}", row.bytes / row.secs / 1e9)),
            ],
        );
    }
    println!("elementwise kernels over {elems} floats (L2-resident):");
    print!("{}", etable.render());

    // --- Relational block join at 1024x1024 -------------------------------
    let rel_rows = 1024usize;
    let block = 128usize;
    let bufpool = Arc::new(BufferPool::new(Arc::new(DiskManager::temp().unwrap()), 512));
    let x = pattern(rel_rows, rel_rows, 3);
    let w = pattern(rel_rows, rel_rows, 4);
    let xt =
        TensorTable::from_dense(bufpool.clone(), "X", &x, BlockingSpec::square(block)).unwrap();
    let wt = TensorTable::from_dense(bufpool, "W", &w, BlockingSpec::square(block)).unwrap();
    let rel_threads = pool_threads.clamp(2, 4);
    let rel_par = pool.parallelism(rel_threads);
    let rel_serial = best_secs(3, || {
        xt.matmul_bt_parallel(&wt, "C", &pool.parallelism(1))
            .unwrap();
    });
    let rel_pooled = best_secs(3, || {
        xt.matmul_bt_parallel(&wt, "C", &rel_par).unwrap();
    });
    println!(
        "relational matmul_bt {rel_rows}x{rel_rows} (block {block}): serial {rel_serial:.4}s, \
         {rel_threads} kernel threads {rel_pooled:.4}s ({:.2}x)",
        rel_serial / rel_pooled
    );

    let counters = pool.counters();
    let host_cores = std::thread::available_parallelism()
        .map(|v| v.get())
        .unwrap_or(1);
    let kernel_json = rows
        .iter()
        .map(|r| {
            format!(
                "    {{\"name\": \"{}\", \"isa\": \"{}\", \"threads\": {}, \"secs\": {:.6}, \"gflops\": {:.3}}}",
                r.name,
                r.isa,
                r.threads,
                r.secs,
                gflops(r.secs)
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");
    let elem_json = elem_rows
        .iter()
        .map(|r| {
            format!(
                "    {{\"kernel\": \"{}\", \"isa\": \"{}\", \"ns_per_call\": {:.1}, \"gbps\": {:.3}}}",
                r.kernel,
                r.isa,
                r.secs * 1e9,
                r.bytes / r.secs / 1e9
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");
    let avx512_json = avx512_vs_avx2
        .map(|s| format!("  \"speedup_avx512_vs_avx2\": {s:.3},\n"))
        .unwrap_or_default();
    let i8_json = i8_rows
        .iter()
        .map(|r| {
            format!(
                "    {{\"name\": \"{}\", \"isa\": \"{}\", \"secs\": {:.6}, \"gflops_equiv\": {:.3}, \"effective_gbps\": {:.3}}}",
                r.name,
                r.isa,
                r.secs,
                gflops(r.secs),
                r.bytes / r.secs / 1e9
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");
    let i8_avx2_json = int8_vs_f32_avx2
        .map(|s| format!("  \"speedup_int8_avx2_vs_f32_avx2\": {s:.3},\n"))
        .unwrap_or_default();
    let i8_pre_json = int8_pre_vs_f32_avx512
        .map(|s| format!("  \"speedup_int8_prequantized_vs_f32_avx512\": {s:.3},\n"))
        .unwrap_or_default();
    let json = format!(
        "{{\n  \"host_cores\": {host_cores},\n  \"isa\": \"{}\",\n  \"shape\": [{n}, {n}, {n}],\n  \"flops\": {flops},\n  \"kernels\": [\n{kernel_json}\n  ],\n  \
         \"speedup_tiled_vs_seed\": {:.3},\n{avx512_json}  \
         \"int8_kernels\": [\n{i8_json}\n  ],\n  \
         \"speedup_int8_vs_f32_best\": {int8_vs_f32_best:.3},\n{i8_avx2_json}{i8_pre_json}  \
         \"elementwise\": [\n{elem_json}\n  ],\n  \
         \"relational_matmul_bt\": {{\"rows\": {rel_rows}, \"block\": {block}, \"kernel_threads\": {rel_threads}, \
         \"serial_secs\": {rel_serial:.6}, \"pooled_secs\": {rel_pooled:.6}, \"speedup\": {:.3}}},\n  \
         \"pool_counters\": {{\"tasks_run\": {}, \"steals\": {}, \"parks\": {}}}\n}}\n",
        selected.isa.token(),
        seed_secs / tiled_secs,
        rel_serial / rel_pooled,
        counters.tasks_run,
        counters.steals,
        counters.parks,
    );
    std::fs::write("BENCH_matmul.json", &json).expect("write BENCH_matmul.json");
    println!("wrote BENCH_matmul.json");
}
