//! Reproduce Tables 1–2: the model inventory, with parameter counts and the
//! §7.1 memory estimate of each model's largest operator.
//!
//! ```sh
//! cargo run --release -p relserve-bench --bin repro_models
//! ```

use relserve_bench::config::{scaling_banner, AMAZON_SCALE, LANDCOVER_SCALE};
use relserve_bench::report::Cell;
use relserve_bench::report::ResultTable;
use relserve_nn::init::seeded_rng;
use relserve_nn::zoo;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("{}", scaling_banner("Tables 1-2: model inventory"));
    let mut rng = seeded_rng(1);
    let models = vec![
        zoo::fraud_fc_256(&mut rng)?,
        zoo::fraud_fc_512(&mut rng)?,
        zoo::encoder_fc(&mut rng)?,
        zoo::amazon_14k_fc(AMAZON_SCALE, &mut rng)?,
        zoo::deepbench_conv1(&mut rng)?,
        zoo::landcover(LANDCOVER_SCALE, &mut rng)?,
        zoo::bosch_ffnn(&mut rng)?,
        zoo::caching_cnn(&mut rng)?,
        zoo::caching_ffnn(&mut rng)?,
    ];
    let mut table = ResultTable::new(&[
        "model",
        "input",
        "output",
        "params",
        "max op est @ batch 1000",
    ]);
    for model in &models {
        let graph = model.to_graph(1000)?;
        let max_est = graph
            .iter()
            .map(|op| op.memory_requirement_bytes())
            .max()
            .unwrap_or(0);
        table.row(
            model.name(),
            &[
                Cell::Text(model.input_shape().to_string()),
                Cell::Text(model.output_shape()?.to_string()),
                Cell::Text(format_count(model.num_params())),
                Cell::Text(format_bytes(max_est)),
            ],
        );
    }
    println!("{}", table.render());
    Ok(())
}

fn format_count(n: usize) -> String {
    if n >= 1_000_000 {
        format!("{:.1}M", n as f64 / 1e6)
    } else if n >= 1_000 {
        format!("{:.1}K", n as f64 / 1e3)
    } else {
        n.to_string()
    }
}

fn format_bytes(n: usize) -> String {
    if n >= 1 << 30 {
        format!("{:.1} GiB", n as f64 / (1u64 << 30) as f64)
    } else if n >= 1 << 20 {
        format!("{:.1} MiB", n as f64 / (1 << 20) as f64)
    } else {
        format!("{:.1} KiB", n as f64 / 1024.0)
    }
}
