//! Serving-frontend throughput: dynamic micro-batching vs one request per
//! session call. The served architecture is DL-centric over a modeled
//! ConnectorX-like wire (2 ms fixed latency per transfer), the fixed cost
//! the micro-batcher amortizes — the online-serving face of the paper's
//! Fig. 2 effect. Floods the loopback server with pipelined single-row
//! Standard requests and compares rows/s against (a) a serial
//! one-request-per-`infer_batch` baseline and (b) the same server with
//! batching disabled (`max_batch_rows = 1`). Emits `BENCH_serve.json`.
//!
//! Run with `cargo run --release --bin repro_serve`.

use relserve_core::{Architecture, InferenceSession, SessionConfig};
use relserve_nn::{init::seeded_rng, zoo};
use relserve_runtime::{Priority, RuntimeProfile, TransferProfile};
use relserve_serve::{ServeClient, ServeConfig, Server};
use relserve_tensor::Tensor;
use std::sync::Arc;
use std::time::{Duration, Instant};

const MODEL: &str = "Fraud-FC-256";
const WIDTH: usize = 28;

fn architecture() -> Architecture {
    Architecture::DlCentric(RuntimeProfile::tensorflow_like())
}

fn session() -> Arc<InferenceSession> {
    let config = SessionConfig::builder()
        .transfer(TransferProfile::local_connectorx())
        .build()
        .unwrap();
    let session = InferenceSession::open(config).unwrap();
    let mut rng = seeded_rng(2024);
    session
        .load_model(zoo::fraud_fc_256(&mut rng).unwrap())
        .unwrap();
    Arc::new(session)
}

fn row(i: usize) -> Vec<f32> {
    (0..WIDTH)
        .map(|j| (((i * 31 + j) % 23) as f32 - 11.0) * 0.07)
        .collect()
}

/// Rows/s for `total` pipelined single-row requests over `clients`
/// loopback connections against a server with the given batch bound.
fn serve_throughput(total: usize, clients: usize, max_batch_rows: usize) -> (f64, f64) {
    let config = ServeConfig {
        max_batch_rows,
        max_batch_delay: Duration::from_millis(2),
        architecture: architecture(),
        ..ServeConfig::default()
    };
    let server = Server::spawn(session(), config).unwrap();
    let addr = server.addr();
    let per_client = total / clients;

    let started = Instant::now();
    let workers: Vec<_> = (0..clients)
        .map(|tag| {
            std::thread::spawn(move || {
                let mut client = ServeClient::connect(addr).unwrap();
                for i in 0..per_client {
                    client
                        .send_infer(
                            MODEL,
                            Priority::Standard,
                            None,
                            1,
                            WIDTH,
                            row(tag * 10_000 + i),
                        )
                        .unwrap();
                }
                for _ in 0..per_client {
                    client.recv().unwrap();
                }
            })
        })
        .collect();
    for w in workers {
        w.join().unwrap();
    }
    let secs = started.elapsed().as_secs_f64();
    let stats = server.stats();
    let avg_batch = stats.fused_rows as f64 / stats.batches.max(1) as f64;
    server.shutdown();
    ((per_client * clients) as f64 / secs, avg_batch)
}

fn main() {
    let total = 256usize;
    let clients = 4usize;

    // Baseline: one admission + plan + connector transfer + kernel launch
    // per request, straight against the session (no batching, no wire).
    let s = session();
    let started = Instant::now();
    for i in 0..total {
        let batch = Tensor::from_vec([1, WIDTH], row(i)).unwrap();
        s.infer_batch(MODEL, &batch, architecture()).unwrap();
    }
    let session_rps = total as f64 / started.elapsed().as_secs_f64();

    // Same wire path, batching disabled: every request is its own fused
    // batch of one row.
    let (unbatched_rps, _) = serve_throughput(total, clients, 1);
    // Dynamic micro-batching on.
    let (batched_rps, avg_batch) = serve_throughput(total, clients, 32);

    println!("serving throughput, {total} single-row Standard requests, {clients} clients:");
    println!("  session serial baseline : {session_rps:>9.0} rows/s");
    println!("  server, batching off    : {unbatched_rps:>9.0} rows/s");
    println!(
        "  server, micro-batching  : {batched_rps:>9.0} rows/s (avg fused batch {avg_batch:.1} rows)"
    );
    println!(
        "  batched vs unbatched: {:.2}x, batched vs session-serial: {:.2}x",
        batched_rps / unbatched_rps,
        batched_rps / session_rps
    );

    let host_cores = std::thread::available_parallelism()
        .map(|v| v.get())
        .unwrap_or(1);
    let json = format!(
        "{{\n  \"host_cores\": {host_cores},\n  \"model\": \"{MODEL}\",\n  \"requests\": {total},\n  \"clients\": {clients},\n  \
         \"session_serial_rows_per_sec\": {session_rps:.1},\n  \
         \"server_unbatched_rows_per_sec\": {unbatched_rps:.1},\n  \
         \"server_batched_rows_per_sec\": {batched_rps:.1},\n  \
         \"avg_fused_batch_rows\": {avg_batch:.2},\n  \
         \"speedup_batched_vs_unbatched\": {:.3},\n  \
         \"speedup_batched_vs_session_serial\": {:.3}\n}}\n",
        batched_rps / unbatched_rps,
        batched_rps / session_rps,
    );
    std::fs::write("BENCH_serve.json", &json).expect("write BENCH_serve.json");
    println!("wrote BENCH_serve.json");
}
