//! Serving-frontend throughput: dynamic micro-batching vs one request per
//! session call, and the §5.1/§7.2.2 semantic result cache fronting the
//! batcher. The served architecture is DL-centric over a modeled
//! ConnectorX-like wire (2 ms fixed latency per transfer), the fixed cost
//! the micro-batcher amortizes — the online-serving face of the paper's
//! Fig. 2 effect. Floods the loopback server with pipelined single-row
//! Standard requests and compares rows/s plus p50/p99 request latency
//! against (a) a serial one-request-per-`infer_batch` baseline, (b) the
//! same server with batching disabled (`max_batch_rows = 1`), and (c) a
//! cached server under a tolerance sweep (exact, near 5 %, near 100 %) on
//! a Zipf-skewed fraud stream, including the `RELSERVE_CACHE=off` kill
//! switch. A pressure-ladder leg replays the same deep flood with and
//! without a registered f32 → `@int8` ladder to measure the p99 effect of
//! stepping fused batches down to the quantized rung. Emits
//! `BENCH_serve.json`.
//!
//! Run with `cargo run --release --bin repro_serve`.

use relserve_bench::workloads::{jittered_row, skewed_request_stream};
use relserve_core::versions::PressureLadder;
use relserve_core::{Architecture, InferenceSession, SessionConfig};
use relserve_nn::quant::quantize_int8;
use relserve_nn::{init::seeded_rng, zoo};
use relserve_runtime::{Priority, RetryPolicy, RuntimeProfile, TransferProfile};
use relserve_serve::{
    CacheConfig, CacheTolerance, Client, ServeConfig, ServeStats, Server, CACHE_ENV,
};
use relserve_tensor::Tensor;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

const MODEL: &str = "Fraud-FC-256";
const WIDTH: usize = 28;
/// Jitter magnitude for "same entity, new measurement" requests; its L2
/// displacement (~3e-3) sits well inside the cache's 0.05 near-hit radius.
const JITTER_EPS: f32 = 1e-3;

fn architecture() -> Architecture {
    Architecture::DlCentric(RuntimeProfile::tensorflow_like())
}

fn session() -> Arc<InferenceSession> {
    let config = SessionConfig::builder()
        .transfer(TransferProfile::local_connectorx())
        .build()
        .unwrap();
    let session = InferenceSession::open(config).unwrap();
    let mut rng = seeded_rng(2024);
    session
        .load_model(zoo::fraud_fc_256(&mut rng).unwrap())
        .unwrap();
    Arc::new(session)
}

fn row(i: usize) -> Vec<f32> {
    (0..WIDTH)
        .map(|j| (((i * 31 + j) % 23) as f32 - 11.0) * 0.07)
        .collect()
}

fn percentile(sorted_ms: &[f64], p: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let idx = ((p / 100.0) * (sorted_ms.len() - 1) as f64).round() as usize;
    sorted_ms[idx.min(sorted_ms.len() - 1)]
}

struct LegResult {
    rps: f64,
    avg_batch: f64,
    p50_ms: f64,
    p99_ms: f64,
    stats: ServeStats,
}

/// Drive `sequence` (pool-slot indices; every 8th request jittered when
/// `jitter` is set) as pipelined single-row Standard requests over
/// `clients` loopback connections; per-request latency is send→receive,
/// demultiplexed by request id.
///
/// Before timing starts, an untimed warm phase seeds every pool slot and
/// replays jittered variants so cache admissions land and the shadow
///-validation ledger can leave its pessimistic starting bound — the
/// steady state a long-running server converges to. Uncached legs run the
/// identical warm traffic for fairness.
fn run_leg(
    clients: usize,
    max_batch_rows: usize,
    cache: CacheConfig,
    sequence: &[usize],
    jitter: f32,
    pool: usize,
) -> LegResult {
    let cache_live = cache.enabled && !relserve_serve::cache_disabled_by_env();
    // Near tolerances keep a live Monte-Carlo bound; wait for enough warm
    // validations that the bound leaves its pessimistic 1.0 start before
    // measuring (bound-rejected warm probes validate for free, served warm
    // near-hits validate via sampled shadows).
    let need_validations = match cache.per_class[Priority::Standard.rank()] {
        CacheTolerance::Near { .. } if cache_live => cache.min_validations,
        _ => 0,
    };
    let warm_jittered = 6 * cache.min_validations as usize;
    let config = ServeConfig::builder()
        .max_batch_rows(max_batch_rows)
        .max_batch_delay(Duration::from_millis(2))
        .architecture(architecture())
        .cache(cache)
        .build()
        .unwrap();
    let server = Server::spawn(session(), config).unwrap();
    let addr = server.addr();
    let per_client = sequence.len() / clients;

    {
        let wait_for = |want: &dyn Fn(relserve_serve::CacheServeStats) -> bool| {
            let deadline = Instant::now() + Duration::from_secs(2);
            while !want(server.stats().cache) && Instant::now() < deadline {
                std::thread::sleep(Duration::from_millis(2));
            }
        };
        let mut warm = Client::connect(addr).unwrap();
        // Round 1: seed every pool slot, and wait until the demux-time
        // admissions land so round 2's probes can find neighbors.
        for slot in 0..pool {
            warm.send_infer(MODEL, Priority::Standard, None, 1, WIDTH, row(slot))
                .unwrap();
        }
        for _ in 0..pool {
            warm.recv().unwrap();
        }
        if cache_live {
            wait_for(&|c| c.insertions >= pool as u64);
        }
        // Round 2: jittered re-measurements accrue validations against the
        // seeded entries.
        for k in 0..warm_jittered {
            let data = jittered_row(&row(k % pool), JITTER_EPS, 1_000_000 + k as u64);
            warm.send_infer(MODEL, Priority::Standard, None, 1, WIDTH, data)
                .unwrap();
        }
        for _ in 0..warm_jittered {
            warm.recv().unwrap();
        }
        if need_validations > 0 {
            wait_for(&|c| c.validations >= need_validations);
        }
    }
    // Warm admissions land at demux, behind the warm responses; snapshot
    // the warm counters only once they stop moving so they aren't
    // misattributed to the measured flood.
    let warm_cache = {
        let mut prev = server.stats().cache;
        let deadline = Instant::now() + Duration::from_millis(500);
        loop {
            std::thread::sleep(Duration::from_millis(20));
            let cur = server.stats().cache;
            if cur == prev || Instant::now() > deadline {
                break cur;
            }
            prev = cur;
        }
    };

    let started = Instant::now();
    let workers: Vec<_> = (0..clients)
        .map(|tag| {
            let chunk: Vec<usize> = sequence[tag * per_client..(tag + 1) * per_client].to_vec();
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                let mut sent: HashMap<u64, Instant> = HashMap::with_capacity(chunk.len());
                for (i, &slot) in chunk.iter().enumerate() {
                    let global = tag * per_client + i;
                    let data = if jitter != 0.0 && global % 8 == 7 {
                        jittered_row(&row(slot), jitter, global as u64)
                    } else {
                        row(slot)
                    };
                    let id = client
                        .send_infer(MODEL, Priority::Standard, None, 1, WIDTH, data)
                        .unwrap();
                    sent.insert(id, Instant::now());
                }
                let mut latencies_ms = Vec::with_capacity(chunk.len());
                for _ in 0..chunk.len() {
                    match client.recv().unwrap() {
                        relserve_serve::wire::Response::Infer { id, .. } => {
                            let t0 = sent.remove(&id).expect("response id was sent");
                            latencies_ms.push(t0.elapsed().as_secs_f64() * 1e3);
                        }
                        other => panic!("unexpected response {other:?}"),
                    }
                }
                latencies_ms
            })
        })
        .collect();
    let mut latencies: Vec<f64> = Vec::with_capacity(sequence.len());
    for w in workers {
        latencies.extend(w.join().unwrap());
    }
    let secs = started.elapsed().as_secs_f64();
    // Let trailing demux-time admissions and shadow validations settle so
    // the reported counters cover the whole measured stream.
    std::thread::sleep(Duration::from_millis(50));
    let mut stats = server.stats();
    let avg_batch = stats.fused_rows as f64 / stats.batches.max(1) as f64;
    // Report flood-only cache counters (gauges stay at their final value).
    let c = &mut stats.cache;
    c.hits -= warm_cache.hits;
    c.near_hits -= warm_cache.near_hits;
    c.misses -= warm_cache.misses;
    c.bound_rejections -= warm_cache.bound_rejections;
    c.insertions -= warm_cache.insertions;
    c.evictions -= warm_cache.evictions;
    c.validations -= warm_cache.validations;
    c.disagreements -= warm_cache.disagreements;
    server.shutdown();
    latencies.sort_by(|a, b| a.total_cmp(b));
    LegResult {
        rps: (per_client * clients) as f64 / secs,
        avg_batch,
        p50_ms: percentile(&latencies, 50.0),
        p99_ms: percentile(&latencies, 99.0),
        stats,
    }
}

struct ScalePoint {
    connections: usize,
    rps: f64,
    p50_ms: f64,
    p99_ms: f64,
    serve_threads: usize,
}

/// Count this process's live `serve-` threads (pollers + executors) via
/// `/proc/self/task`, proving the frontend holds its connection fan-in
/// with O(pollers) threads rather than one thread per connection.
fn serve_thread_count() -> usize {
    let Ok(tasks) = std::fs::read_dir("/proc/self/task") else {
        return 0;
    };
    tasks
        .flatten()
        .filter(|t| {
            std::fs::read_to_string(t.path().join("comm"))
                .map(|c| c.trim_end().starts_with("serve-"))
                .unwrap_or(false)
        })
        .count()
}

/// Reactor fan-in curve: hold `connections` mostly-idle connections open
/// while `clients` of them drive the same pipelined single-row flood, and
/// measure how active-path rows/s and p99 hold up as idle fan-in grows.
fn connection_scaling_leg(connections: usize, total: usize, clients: usize) -> ScalePoint {
    let config = ServeConfig::builder()
        .max_batch_rows(32)
        .max_batch_delay(Duration::from_millis(2))
        .architecture(architecture())
        .max_connections(connections + 64)
        .accept_backlog(connections.max(128) as u32)
        .build()
        .unwrap();
    let server = Server::spawn(session(), config).unwrap();
    let addr = server.addr();

    // Idle fan-in: connected, registered with the reactor, never speaking.
    let idle: Vec<Client> = (0..connections.saturating_sub(clients))
        .map(|_| Client::connect(addr).unwrap())
        .collect();
    let deadline = Instant::now() + Duration::from_secs(30);
    while server.live_connections() < idle.len() && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(5));
    }
    let serve_threads = serve_thread_count();

    let per_client = total / clients;
    let started = Instant::now();
    let workers: Vec<_> = (0..clients)
        .map(|tag| {
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                let mut sent: HashMap<u64, Instant> = HashMap::with_capacity(per_client);
                for i in 0..per_client {
                    let id = client
                        .send_infer(
                            MODEL,
                            Priority::Standard,
                            None,
                            1,
                            WIDTH,
                            row(tag * per_client + i),
                        )
                        .unwrap();
                    sent.insert(id, Instant::now());
                }
                let mut latencies_ms = Vec::with_capacity(per_client);
                for _ in 0..per_client {
                    match client.recv().unwrap() {
                        relserve_serve::wire::Response::Infer { id, .. } => {
                            let t0 = sent.remove(&id).expect("response id was sent");
                            latencies_ms.push(t0.elapsed().as_secs_f64() * 1e3);
                        }
                        other => panic!("unexpected response {other:?}"),
                    }
                }
                latencies_ms
            })
        })
        .collect();
    let mut latencies: Vec<f64> = Vec::with_capacity(total);
    for w in workers {
        latencies.extend(w.join().unwrap());
    }
    let secs = started.elapsed().as_secs_f64();
    drop(idle);
    server.shutdown();
    latencies.sort_by(|a, b| a.total_cmp(b));
    ScalePoint {
        connections,
        rps: (per_client * clients) as f64 / secs,
        p50_ms: percentile(&latencies, 50.0),
        p99_ms: percentile(&latencies, 99.0),
        serve_threads,
    }
}

struct RecoveryResult {
    requests: u64,
    answered: u64,
    typed_errors: u64,
    lost: u64,
    reconnects: u64,
    injected_downtime_ms: f64,
    time_to_recover_ms: f64,
}

/// Recovery leg: hard-kill the server mid-stream, hold the port dark for a
/// deliberate downtime window, restart on the same address, and let the
/// self-healing clients reconnect and replay their unanswered requests.
/// The acceptance bar is zero lost acknowledged requests: every request a
/// worker submitted resolves to a typed outcome on the restarted server.
fn recovery_leg(total: usize, clients: usize) -> RecoveryResult {
    let config = ServeConfig::builder()
        .max_batch_rows(32)
        .max_batch_delay(Duration::from_millis(2))
        .architecture(architecture())
        .build()
        .unwrap();
    let server = Server::spawn(session(), config).unwrap();
    let addr = server.addr();
    let policy = RetryPolicy {
        max_attempts: 10,
        base_backoff: Duration::from_millis(5),
        jitter: 0.25,
    };
    let per_client = total / clients;

    let workers: Vec<_> = (0..clients)
        .map(|tag| {
            std::thread::spawn(move || {
                let mut client = Client::connect_resilient(addr, policy).unwrap();
                let mut attempted = 0u64;
                let mut answered = 0u64;
                let mut typed_errors = 0u64;
                // Windows of 8 pipelined requests: a kill mid-window leaves
                // several unanswered ids for the healed connection to replay.
                'stream: for window in 0..per_client.div_ceil(8) {
                    let base = window * 8;
                    let count = 8.min(per_client - base);
                    let mut ids = Vec::with_capacity(count);
                    for i in 0..count {
                        attempted += 1;
                        match client.send_infer(
                            MODEL,
                            Priority::Standard,
                            None,
                            1,
                            WIDTH,
                            row(tag * per_client + base + i),
                        ) {
                            Ok(id) => ids.push(id),
                            Err(_) => break 'stream,
                        }
                    }
                    for id in ids {
                        match client.wait(id) {
                            Ok(relserve_serve::wire::Response::Infer { .. }) => answered += 1,
                            Ok(_) => typed_errors += 1,
                            Err(_) => break 'stream,
                        }
                    }
                }
                (attempted, answered, typed_errors, client.reconnects())
            })
        })
        .collect();

    // Kill mid-stream. The standby session is built *before* the kill so
    // the measured recovery gap is bind + accept, not model loading.
    std::thread::sleep(Duration::from_millis(20));
    let standby = session();
    let killed_at = Instant::now();
    server.shutdown();
    let injected_downtime = Duration::from_millis(50);
    std::thread::sleep(injected_downtime);
    let restarted = {
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            let config = ServeConfig::builder()
                .bind(addr)
                .max_batch_rows(32)
                .max_batch_delay(Duration::from_millis(2))
                .architecture(architecture())
                .build()
                .unwrap();
            match Server::spawn(Arc::clone(&standby), config) {
                Ok(s) => break s,
                Err(e) => assert!(
                    Instant::now() < deadline,
                    "could not rebind {addr} after kill: {e}"
                ),
            }
            std::thread::sleep(Duration::from_millis(5));
        }
    };
    // Time to recover: kill instant → first successful inference against
    // the restarted server, observed by an independent healing probe.
    let mut probe = Client::connect_resilient(addr, policy).unwrap();
    match probe
        .infer(MODEL, Priority::Standard, None, 1, WIDTH, row(0))
        .expect("probe inference after restart")
    {
        relserve_serve::wire::Response::Infer { .. } => {}
        other => panic!("unexpected probe response {other:?}"),
    }
    let time_to_recover_ms = killed_at.elapsed().as_secs_f64() * 1e3;

    let mut attempted = 0u64;
    let mut answered = 0u64;
    let mut typed_errors = 0u64;
    let mut reconnects = 0u64;
    for w in workers {
        let (a, ok, typed, r) = w.join().unwrap();
        attempted += a;
        answered += ok;
        typed_errors += typed;
        reconnects += r;
    }
    restarted.shutdown();
    RecoveryResult {
        requests: attempted,
        answered,
        typed_errors,
        lost: attempted - answered - typed_errors,
        reconnects,
        injected_downtime_ms: injected_downtime.as_secs_f64() * 1e3,
        time_to_recover_ms,
    }
}

struct LadderLeg {
    rps: f64,
    p50_ms: f64,
    p99_ms: f64,
    stepped_responses: u64,
    step_downs: u64,
    restores: u64,
}

/// Model for the ladder leg: wide enough (76 → 3072 → 768) that the int8
/// rung's cheaper arithmetic outruns its per-batch activation-quantization
/// overhead — on the 28-wide fraud model the rung is latency-neutral.
const LADDER_MODEL: &str = "Encoder-FC";
const LADDER_WIDTH: usize = 76;

fn ladder_row(i: usize) -> Vec<f32> {
    (0..LADDER_WIDTH)
        .map(|j| (((i * 31 + j) % 23) as f32 - 11.0) * 0.07)
        .collect()
}

/// Session with the f32 model *and* its `@int8` quantized version loaded,
/// so a pressure ladder has a cheaper rung to step down to.
fn ladder_session() -> Arc<InferenceSession> {
    let config = SessionConfig::builder()
        .transfer(TransferProfile::local_connectorx())
        .build()
        .unwrap();
    let session = InferenceSession::open(config).unwrap();
    let mut rng = seeded_rng(2024);
    let model = zoo::encoder_fc(&mut rng).unwrap();
    let int8 = quantize_int8(&model).unwrap().model;
    session.load_model(model).unwrap();
    session.load_model(int8).unwrap();
    Arc::new(session)
}

/// Ladder-fire leg: flood the server with pipelined multi-row requests deep
/// enough that the backlog crosses the ladder's `step_rows` threshold. With
/// `with_ladder` unset the identical flood runs rung 0 (f32) throughout —
/// the "pre step-down" baseline; with it set, fused batches past the
/// threshold execute the `@int8` rung and the measured p99 is the "post
/// step-down" latency under the same offered load.
fn ladder_leg(
    requests: usize,
    rows_per_request: usize,
    clients: usize,
    step_rows: usize,
    with_ladder: bool,
) -> LadderLeg {
    let mut builder = ServeConfig::builder()
        .max_batch_rows(32)
        .max_batch_delay(Duration::from_millis(2))
        .architecture(architecture());
    if with_ladder {
        builder = builder.ladder(
            LADDER_MODEL,
            PressureLadder::new(
                vec![LADDER_MODEL.to_string(), format!("{LADDER_MODEL}@int8")],
                step_rows,
            )
            .unwrap(),
        );
    }
    let config = builder.build().unwrap();
    let server = Server::spawn(ladder_session(), config).unwrap();
    let addr = server.addr();
    let per_client = requests / clients;

    let started = Instant::now();
    let workers: Vec<_> = (0..clients)
        .map(|tag| {
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                let mut sent: HashMap<u64, Instant> = HashMap::with_capacity(per_client);
                for i in 0..per_client {
                    let mut data = Vec::with_capacity(rows_per_request * LADDER_WIDTH);
                    for r in 0..rows_per_request {
                        data.extend(ladder_row((tag * per_client + i) * rows_per_request + r));
                    }
                    let id = client
                        .send_infer(
                            LADDER_MODEL,
                            Priority::Standard,
                            None,
                            rows_per_request,
                            LADDER_WIDTH,
                            data,
                        )
                        .unwrap();
                    sent.insert(id, Instant::now());
                }
                let mut latencies_ms = Vec::with_capacity(per_client);
                let mut stepped = 0u64;
                for _ in 0..per_client {
                    match client.recv().unwrap() {
                        relserve_serve::wire::Response::Infer { id, model_used, .. } => {
                            let t0 = sent.remove(&id).expect("response id was sent");
                            latencies_ms.push(t0.elapsed().as_secs_f64() * 1e3);
                            if model_used.ends_with("@int8") {
                                stepped += 1;
                            }
                        }
                        other => panic!("unexpected response {other:?}"),
                    }
                }
                (latencies_ms, stepped)
            })
        })
        .collect();
    let mut latencies: Vec<f64> = Vec::with_capacity(requests);
    let mut stepped_responses = 0u64;
    for w in workers {
        let (lat, stepped) = w.join().unwrap();
        latencies.extend(lat);
        stepped_responses += stepped;
    }
    let secs = started.elapsed().as_secs_f64();
    let (step_downs, restores) = server
        .ladder_stats()
        .iter()
        .find(|(name, _)| name == LADDER_MODEL)
        .map(|(_, m)| (m.step_downs, m.restores))
        .unwrap_or((0, 0));
    server.shutdown();
    latencies.sort_by(|a, b| a.total_cmp(b));
    LadderLeg {
        rps: (per_client * clients * rows_per_request) as f64 / secs,
        p50_ms: percentile(&latencies, 50.0),
        p99_ms: percentile(&latencies, 99.0),
        stepped_responses,
        step_downs,
        restores,
    }
}

/// Cache config for the sweep: eager validation so the Monte-Carlo bound
/// goes live within the run instead of staying pessimistic for its whole
/// duration.
fn cache_config(enabled: bool, tolerance: CacheTolerance) -> CacheConfig {
    CacheConfig {
        enabled,
        per_class: [tolerance; 3],
        validate_every: 4,
        min_validations: 8,
        ..CacheConfig::default()
    }
}

fn cache_leg_json(name: &str, leg: &LegResult, baseline_rps: f64) -> String {
    let c = &leg.stats.cache;
    format!(
        "      {{\n        \"tolerance\": \"{name}\",\n        \
         \"rows_per_sec\": {:.1},\n        \
         \"speedup_vs_batched_uncached\": {:.3},\n        \
         \"p50_ms\": {:.3},\n        \"p99_ms\": {:.3},\n        \
         \"hit_rate\": {:.4},\n        \"hits\": {},\n        \
         \"near_hits\": {},\n        \"misses\": {},\n        \
         \"bound_rejections\": {},\n        \"insertions\": {},\n        \
         \"evictions\": {},\n        \"cache_bytes\": {},\n        \
         \"validations\": {},\n        \"disagreements\": {},\n        \
         \"error_bound_ppm\": {}\n      }}",
        leg.rps,
        leg.rps / baseline_rps,
        leg.p50_ms,
        leg.p99_ms,
        c.hit_rate(),
        c.hits,
        c.near_hits,
        c.misses,
        c.bound_rejections,
        c.insertions,
        c.evictions,
        c.bytes,
        c.validations,
        c.disagreements,
        c.error_bound_ppm,
    )
}

fn main() {
    let total = 512usize;
    let clients = 4usize;

    // Baseline: one admission + plan + connector transfer + kernel launch
    // per request, straight against the session (no batching, no wire).
    let s = session();
    let started = Instant::now();
    let mut serial_ms: Vec<f64> = Vec::with_capacity(total);
    for i in 0..total {
        let t0 = Instant::now();
        let batch = Tensor::from_vec([1, WIDTH], row(i)).unwrap();
        s.infer_batch(MODEL, &batch, architecture()).unwrap();
        serial_ms.push(t0.elapsed().as_secs_f64() * 1e3);
    }
    let session_rps = total as f64 / started.elapsed().as_secs_f64();
    serial_ms.sort_by(|a, b| a.total_cmp(b));

    let pool = 12usize;
    let skew = 1.1f64;

    // Uniform stream (every request a distinct row) for the batching
    // comparison: same wire path with batching disabled vs micro-batching.
    let uniform: Vec<usize> = (0..total).collect();
    let unbatched = run_leg(clients, 1, CacheConfig::default(), &uniform, 0.0, pool);
    let batched = run_leg(clients, 32, CacheConfig::default(), &uniform, 0.0, pool);

    println!("serving throughput, {total} single-row Standard requests, {clients} clients:");
    println!(
        "  session serial baseline : {:>9.0} rows/s  (p50 {:.2} ms, p99 {:.2} ms)",
        session_rps,
        percentile(&serial_ms, 50.0),
        percentile(&serial_ms, 99.0)
    );
    println!(
        "  server, batching off    : {:>9.0} rows/s  (p50 {:.2} ms, p99 {:.2} ms)",
        unbatched.rps, unbatched.p50_ms, unbatched.p99_ms
    );
    println!(
        "  server, micro-batching  : {:>9.0} rows/s  (p50 {:.2} ms, p99 {:.2} ms, avg fused batch {:.1} rows)",
        batched.rps, batched.p50_ms, batched.p99_ms, batched.avg_batch
    );
    println!(
        "  batched vs unbatched: {:.2}x, batched vs session-serial: {:.2}x",
        batched.rps / unbatched.rps,
        batched.rps / session_rps
    );

    // Cached serving on a Zipf-skewed fraud stream: a 12-account pool with
    // s = 1.1 hot-head skew; every 8th request is a jittered re-measurement
    // of its account (near-hit material). All cached legs and their
    // batched-uncached baseline share this exact stream.
    let stream = skewed_request_stream(total, pool, skew, 77);
    let skewed_uncached = run_leg(
        clients,
        32,
        CacheConfig::default(),
        &stream,
        JITTER_EPS,
        pool,
    );
    let exact = run_leg(
        clients,
        32,
        cache_config(true, CacheTolerance::Exact),
        &stream,
        JITTER_EPS,
        pool,
    );
    let near_tight = run_leg(
        clients,
        32,
        cache_config(
            true,
            CacheTolerance::Near {
                max_error_bound: 0.05,
            },
        ),
        &stream,
        JITTER_EPS,
        pool,
    );
    let near_loose = run_leg(
        clients,
        32,
        cache_config(
            true,
            CacheTolerance::Near {
                max_error_bound: 1.0,
            },
        ),
        &stream,
        JITTER_EPS,
        pool,
    );
    // Kill switch: identical cache-enabled config, force-disabled by env.
    std::env::set_var(CACHE_ENV, "off");
    let killed = run_leg(
        clients,
        32,
        cache_config(true, CacheTolerance::Exact),
        &stream,
        JITTER_EPS,
        pool,
    );
    std::env::remove_var(CACHE_ENV);

    println!("cached serving, zipf(s={skew}) over {pool} accounts, same stream for every leg:");
    println!(
        "  batched, uncached       : {:>9.0} rows/s  (p50 {:.2} ms, p99 {:.2} ms)",
        skewed_uncached.rps, skewed_uncached.p50_ms, skewed_uncached.p99_ms
    );
    for (name, leg) in [
        ("exact", &exact),
        ("near 5%", &near_tight),
        ("near 100%", &near_loose),
    ] {
        let c = &leg.stats.cache;
        println!(
            "  cached, {name:<15} : {:>9.0} rows/s  ({:.2}x, hit rate {:.0}%, {} near, bound {} ppm, p50 {:.2} ms, p99 {:.2} ms)",
            leg.rps,
            leg.rps / skewed_uncached.rps,
            c.hit_rate() * 100.0,
            c.near_hits,
            c.error_bound_ppm,
            leg.p50_ms,
            leg.p99_ms
        );
    }
    println!(
        "  RELSERVE_CACHE=off      : {:>9.0} rows/s  ({:.2}x vs uncached, {} probes)",
        killed.rps,
        killed.rps / skewed_uncached.rps,
        killed.stats.cache.hits + killed.stats.cache.misses
    );

    // Connection-scaling curve: the same active flood under growing idle
    // fan-in. Each point needs ~2 fds per connection (client + server
    // side), so cap the curve to what the fd rlimit can hold.
    let fd_budget = relserve_bench::fd_soft_limit().saturating_sub(128) / 2;
    let scale_points: Vec<ScalePoint> = [16usize, 256, 1024, 4096]
        .iter()
        .copied()
        .filter(|&c| c <= fd_budget)
        .map(|c| connection_scaling_leg(c, total, clients))
        .collect();
    println!("connection scaling, {total} active requests over {clients} of N connections:");
    for p in &scale_points {
        println!(
            "  {:>5} connections       : {:>9.0} rows/s  (p50 {:.2} ms, p99 {:.2} ms, {} serve threads)",
            p.connections, p.rps, p.p50_ms, p.p99_ms, p.serve_threads
        );
    }

    // Pressure-ladder fire: the same deep multi-row flood with and without
    // a registered f32 → @int8 ladder. Past the step threshold the ladder
    // leg's fused batches execute the int8 rung, so its p99 is the
    // post-step-down latency under identical offered load.
    let ladder_requests = 192usize;
    let ladder_rows = 4usize;
    let ladder_step = 64usize;
    let pre = ladder_leg(ladder_requests, ladder_rows, clients, ladder_step, false);
    let post = ladder_leg(ladder_requests, ladder_rows, clients, ladder_step, true);
    println!(
        "pressure ladder, {LADDER_MODEL}, {ladder_requests} pipelined {ladder_rows}-row requests, step at {ladder_step} backlog rows:"
    );
    println!(
        "  ladder off (all f32)    : {:>9.0} rows/s  (p50 {:.2} ms, p99 {:.2} ms)",
        pre.rps, pre.p50_ms, pre.p99_ms
    );
    println!(
        "  ladder on  (f32→int8)   : {:>9.0} rows/s  (p50 {:.2} ms, p99 {:.2} ms, {} of {} responses on @int8, {} step-downs, {} restores)",
        post.rps,
        post.p50_ms,
        post.p99_ms,
        post.stepped_responses,
        ladder_requests,
        post.step_downs,
        post.restores
    );
    println!(
        "  p99 ladder-on vs ladder-off: {:.2}x",
        post.p99_ms / pre.p99_ms
    );

    // Recovery: kill the server mid-stream, restart on the same address,
    // and measure time-to-recover plus acknowledged requests lost.
    let recovery = recovery_leg(256, clients);
    println!(
        "recovery, kill + restart mid-stream, {} requests:",
        recovery.requests
    );
    println!(
        "  time to recover         : {:>9.1} ms  (injected downtime {:.0} ms)",
        recovery.time_to_recover_ms, recovery.injected_downtime_ms
    );
    println!(
        "  requests lost           : {:>9}     ({} answered, {} typed errors, {} reconnects)",
        recovery.lost, recovery.answered, recovery.typed_errors, recovery.reconnects
    );

    let host_cores = std::thread::available_parallelism()
        .map(|v| v.get())
        .unwrap_or(1);
    let scaling_json = scale_points
        .iter()
        .map(|p| {
            format!(
                "    {{\n      \"connections\": {},\n      \
                 \"rows_per_sec\": {:.1},\n      \
                 \"p50_ms\": {:.3},\n      \"p99_ms\": {:.3},\n      \
                 \"serve_threads\": {}\n    }}",
                p.connections, p.rps, p.p50_ms, p.p99_ms, p.serve_threads
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");
    let json = format!(
        "{{\n  \"host_cores\": {host_cores},\n  \"model\": \"{MODEL}\",\n  \"requests\": {total},\n  \"clients\": {clients},\n  \
         \"session_serial_rows_per_sec\": {session_rps:.1},\n  \
         \"session_serial_p50_ms\": {:.3},\n  \"session_serial_p99_ms\": {:.3},\n  \
         \"server_unbatched_rows_per_sec\": {:.1},\n  \
         \"server_unbatched_p50_ms\": {:.3},\n  \"server_unbatched_p99_ms\": {:.3},\n  \
         \"server_batched_rows_per_sec\": {:.1},\n  \
         \"server_batched_p50_ms\": {:.3},\n  \"server_batched_p99_ms\": {:.3},\n  \
         \"avg_fused_batch_rows\": {:.2},\n  \
         \"speedup_batched_vs_unbatched\": {:.3},\n  \
         \"speedup_batched_vs_session_serial\": {:.3},\n  \
         \"cached_serving\": {{\n    \
         \"workload\": \"zipf(s={skew}) over {pool} slots, {total} single-row requests, every 8th jittered by {JITTER_EPS}\",\n    \
         \"batched_uncached_rows_per_sec\": {:.1},\n    \
         \"batched_uncached_p50_ms\": {:.3},\n    \"batched_uncached_p99_ms\": {:.3},\n    \
         \"cache_off_env_rows_per_sec\": {:.1},\n    \
         \"cache_off_env_probes\": {},\n    \
         \"tolerance_sweep\": [\n{}\n    ]\n  }},\n  \
         \"connection_scaling\": [\n{scaling_json}\n  ],\n  \
         \"pressure_ladder\": {{\n    \
         \"note\": \"single-core host: clients, pollers and the executor share one core, so absolute latencies are inflated and noisy; compare the two legs relatively\",\n    \
         \"model\": \"{LADDER_MODEL}\",\n    \
         \"requests\": {ladder_requests},\n    \"rows_per_request\": {ladder_rows},\n    \
         \"step_rows\": {ladder_step},\n    \
         \"pre_stepdown_rows_per_sec\": {:.1},\n    \
         \"pre_stepdown_p50_ms\": {:.3},\n    \"pre_stepdown_p99_ms\": {:.3},\n    \
         \"post_stepdown_rows_per_sec\": {:.1},\n    \
         \"post_stepdown_p50_ms\": {:.3},\n    \"post_stepdown_p99_ms\": {:.3},\n    \
         \"p99_ratio_post_vs_pre\": {:.3},\n    \
         \"stepped_responses\": {},\n    \"step_downs\": {},\n    \"restores\": {}\n  }},\n  \
         \"recovery\": {{\n    \
         \"requests\": {},\n    \"answered\": {},\n    \
         \"typed_errors\": {},\n    \"requests_lost\": {},\n    \
         \"client_reconnects\": {},\n    \
         \"injected_downtime_ms\": {:.1},\n    \
         \"time_to_recover_ms\": {:.1}\n  }}\n}}\n",
        percentile(&serial_ms, 50.0),
        percentile(&serial_ms, 99.0),
        unbatched.rps,
        unbatched.p50_ms,
        unbatched.p99_ms,
        batched.rps,
        batched.p50_ms,
        batched.p99_ms,
        batched.avg_batch,
        batched.rps / unbatched.rps,
        batched.rps / session_rps,
        skewed_uncached.rps,
        skewed_uncached.p50_ms,
        skewed_uncached.p99_ms,
        killed.rps,
        killed.stats.cache.hits + killed.stats.cache.misses,
        [
            cache_leg_json("exact", &exact, skewed_uncached.rps),
            cache_leg_json("near_0.05", &near_tight, skewed_uncached.rps),
            cache_leg_json("near_1.0", &near_loose, skewed_uncached.rps),
        ]
        .join(",\n"),
        pre.rps,
        pre.p50_ms,
        pre.p99_ms,
        post.rps,
        post.p50_ms,
        post.p99_ms,
        post.p99_ms / pre.p99_ms,
        post.stepped_responses,
        post.step_downs,
        post.restores,
        recovery.requests,
        recovery.answered,
        recovery.typed_errors,
        recovery.lost,
        recovery.reconnects,
        recovery.injected_downtime_ms,
        recovery.time_to_recover_ms,
    );
    std::fs::write("BENCH_serve.json", &json).expect("write BENCH_serve.json");
    println!("wrote BENCH_serve.json");
}
