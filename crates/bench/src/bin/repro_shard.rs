//! Distributed block-sharded serving: a coordinator frontend scattering
//! the decomposed first dense layer across N shard-worker *processes*
//! (§2.2 / §7.2.1's W×(D1⋈D2) = (W1×D1)⊕(W2×D2) identity, served over
//! the wire) and gathering partials back into one response. Measures
//! rows/s for an unsharded baseline and 1/2/4-worker fleets on the fraud
//! workload, checks every fleet bit-identical to the baseline, then
//! SIGKILLs a worker mid-stream and counts lost requests (the acceptance
//! bar is zero — the lost shard degrades to local execution). Emits
//! `BENCH_shard.json`.
//!
//! Workers are real child processes: the binary re-executes itself with
//! `RELSERVE_SHARD_ROLE=worker`, and each child prints its ephemeral
//! address on stdout for the parent to collect into the fleet list.
//!
//! Run with `cargo run --release --bin repro_shard`.

use relserve_core::{InferenceSession, SessionConfig};
use relserve_nn::{init::seeded_rng, zoo};
use relserve_runtime::{Priority, TransferProfile};
use relserve_serve::shard::WorkerHandle;
use relserve_serve::wire::Response;
use relserve_serve::{Client, ServeConfig, Server, ShardServeStats};
use std::io::{BufRead, BufReader, Write};
use std::net::SocketAddr;
use std::process::{Child, Command, Stdio};
use std::sync::Arc;
use std::time::{Duration, Instant};

const MODEL: &str = "Fraud-FC-256";
const WIDTH: usize = 28;
/// Role marker for self-exec: children serve shards, the parent measures.
const ROLE_ENV: &str = "RELSERVE_SHARD_ROLE";

/// One seed for the parent and every worker process: the whole fleet
/// serves the same frozen weights, so gathered answers are comparable
/// bit-for-bit against the unsharded baseline.
fn session() -> Arc<InferenceSession> {
    let config = SessionConfig::builder()
        .transfer(TransferProfile::instant())
        .build()
        .unwrap();
    let session = InferenceSession::open(config).unwrap();
    session
        .load_model(zoo::fraud_fc_256(&mut seeded_rng(2024)).unwrap())
        .unwrap();
    Arc::new(session)
}

/// Child-process entry: serve shard requests until the parent kills us.
/// The handle must outlive the loop — dropping it closes the listener.
fn worker_main() -> ! {
    let handle = WorkerHandle::spawn(session(), None).expect("spawn shard worker");
    println!("ADDR {}", handle.addr());
    std::io::stdout().flush().ok();
    loop {
        std::thread::sleep(Duration::from_secs(3600));
    }
}

/// A shard worker running as a real OS child process.
struct WorkerProc {
    child: Child,
    addr: SocketAddr,
}

impl WorkerProc {
    fn launch() -> WorkerProc {
        let exe = std::env::current_exe().expect("own executable path");
        let mut child = Command::new(exe)
            .env(ROLE_ENV, "worker")
            .stdout(Stdio::piped())
            .spawn()
            .expect("spawn worker process");
        let stdout = child.stdout.take().expect("worker stdout");
        let mut line = String::new();
        BufReader::new(stdout)
            .read_line(&mut line)
            .expect("worker address line");
        let addr = line
            .trim()
            .strip_prefix("ADDR ")
            .expect("worker announces ADDR <addr>")
            .parse()
            .expect("worker address parses");
        WorkerProc { child, addr }
    }

    /// SIGKILL — no drain, no goodbye: the OS resets the worker's sockets
    /// and the coordinator sees exactly a process crash.
    fn kill(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

impl Drop for WorkerProc {
    fn drop(&mut self) {
        self.kill();
    }
}

fn row(i: usize) -> Vec<f32> {
    (0..WIDTH)
        .map(|j| (((i * 31 + j) % 23) as f32 - 11.0) * 0.07)
        .collect()
}

/// Pipelined single-row flood: send all `n`, then collect in id order.
/// Returns per-request predictions plus the wall-clock seconds.
fn pump(addr: SocketAddr, n: usize) -> (Vec<Vec<u32>>, f64) {
    let mut client = Client::connect(addr).unwrap();
    let started = Instant::now();
    let ids: Vec<u64> = (0..n)
        .map(|i| {
            client
                .send_infer(MODEL, Priority::Standard, None, 1, WIDTH, row(i))
                .unwrap()
        })
        .collect();
    let predictions = ids
        .iter()
        .map(|id| match client.wait(*id).unwrap() {
            Response::Infer { predictions, .. } => predictions,
            other => panic!("request {id} must be answered, got {other:?}"),
        })
        .collect();
    (predictions, started.elapsed().as_secs_f64())
}

fn serve_config(workers: Option<Vec<SocketAddr>>) -> ServeConfig {
    let mut builder = ServeConfig::builder()
        .max_batch_rows(32)
        .max_batch_delay(Duration::from_millis(2));
    if let Some(fleet) = workers {
        builder = builder.workers(fleet);
    }
    builder.build().unwrap()
}

struct FleetLeg {
    workers: usize,
    rps: f64,
    matches_baseline: bool,
    stats: ShardServeStats,
}

/// Measure a `k`-worker fleet: launch `k` child processes, front them
/// with a coordinator server, warm the links (connect + slice install is
/// one-time cost, not steady state), then time the flood.
fn fleet_leg(k: usize, n: usize, baseline: &[Vec<u32>]) -> FleetLeg {
    let fleet: Vec<WorkerProc> = (0..k).map(|_| WorkerProc::launch()).collect();
    let server = Server::spawn(
        session(),
        serve_config(Some(fleet.iter().map(|w| w.addr).collect())),
    )
    .unwrap();
    let _ = pump(server.addr(), 16);
    let (predictions, secs) = pump(server.addr(), n);
    let stats = server.stats().shard;
    server.shutdown();
    FleetLeg {
        workers: k,
        rps: n as f64 / secs,
        matches_baseline: predictions == baseline,
        stats,
    }
}

struct ChaosLeg {
    requests: usize,
    answered: usize,
    lost: usize,
    matches_baseline: bool,
    stats: ShardServeStats,
}

/// Kill one of two worker processes while a pipelined stream is in
/// flight. Every request must still be answered — the dead worker's
/// shard degrades to local execution on the coordinator — and the
/// answers must stay bit-identical to the unsharded baseline.
fn chaos_leg(n: usize, baseline: &[Vec<u32>]) -> ChaosLeg {
    let mut fleet: Vec<WorkerProc> = (0..2).map(|_| WorkerProc::launch()).collect();
    let server = Server::spawn(
        session(),
        serve_config(Some(fleet.iter().map(|w| w.addr).collect())),
    )
    .unwrap();
    let _ = pump(server.addr(), 16);

    let mut client = Client::connect(server.addr()).unwrap();
    let mut ids = Vec::with_capacity(n);
    for i in 0..n {
        if i == n / 3 {
            fleet[1].kill();
        }
        ids.push(
            client
                .send_infer(MODEL, Priority::Standard, None, 1, WIDTH, row(i))
                .unwrap(),
        );
    }
    let mut predictions = Vec::with_capacity(n);
    for id in &ids {
        if let Ok(Response::Infer { predictions: p, .. }) = client.wait(*id) {
            predictions.push(p);
        }
    }
    let answered = predictions.len();
    let stats = server.stats().shard;
    server.shutdown();
    ChaosLeg {
        requests: n,
        answered,
        lost: n - answered,
        matches_baseline: predictions == baseline,
        stats,
    }
}

fn fleet_json(leg: &FleetLeg, baseline_rps: f64) -> String {
    format!(
        "    {{\n      \"workers\": {},\n      \"rows_per_sec\": {:.1},\n      \
         \"speedup_vs_unsharded\": {:.3},\n      \
         \"predictions_match_baseline\": {},\n      \
         \"scatter_batches\": {},\n      \"shard_execs_remote\": {},\n      \
         \"shards_degraded_local\": {},\n      \"worker_losses\": {}\n    }}",
        leg.workers,
        leg.rps,
        leg.rps / baseline_rps,
        leg.matches_baseline,
        leg.stats.scatter_batches,
        leg.stats.shard_execs_remote,
        leg.stats.shards_degraded_local,
        leg.stats.worker_losses,
    )
}

fn main() {
    if std::env::var(ROLE_ENV).as_deref() == Ok("worker") {
        worker_main();
    }

    let n = 192usize;

    // Unsharded baseline: the same frontend, batcher, and wire path, with
    // no fleet configured — the answers every fleet must reproduce.
    let server = Server::spawn(session(), serve_config(None)).unwrap();
    let _ = pump(server.addr(), 16);
    let (baseline, secs) = pump(server.addr(), n);
    server.shutdown();
    let baseline_rps = n as f64 / secs;

    println!("sharded serving, {n} single-row Standard requests, fraud workload:");
    println!("  unsharded baseline      : {baseline_rps:>9.0} rows/s");
    let legs: Vec<FleetLeg> = [1usize, 2, 4]
        .iter()
        .map(|&k| {
            let leg = fleet_leg(k, n, &baseline);
            println!(
                "  {k} worker process(es)    : {:>9.0} rows/s  ({:.2}x, {} remote shard execs, identical answers: {})",
                leg.rps,
                leg.rps / baseline_rps,
                leg.stats.shard_execs_remote,
                leg.matches_baseline
            );
            assert!(
                leg.matches_baseline,
                "{k}-worker fleet must answer bit-identically to the baseline"
            );
            assert_eq!(leg.stats.worker_losses, 0, "no fleet losses in the clean legs");
            leg
        })
        .collect();

    let chaos = chaos_leg(96, &pump_baseline_for(96));
    println!(
        "chaos, SIGKILL one of 2 worker processes mid-stream, {} requests:",
        chaos.requests
    );
    println!(
        "  requests lost           : {:>9}     ({} answered, {} worker losses, {} shards degraded to local, identical answers: {})",
        chaos.lost,
        chaos.answered,
        chaos.stats.worker_losses,
        chaos.stats.shards_degraded_local,
        chaos.matches_baseline
    );
    assert_eq!(chaos.lost, 0, "a worker crash must not lose requests");
    assert!(
        chaos.matches_baseline,
        "degraded answers must stay identical"
    );

    let host_cores = std::thread::available_parallelism()
        .map(|v| v.get())
        .unwrap_or(1);
    let fleet_json = legs
        .iter()
        .map(|l| fleet_json(l, baseline_rps))
        .collect::<Vec<_>>()
        .join(",\n");
    let json = format!(
        "{{\n  \"host_cores\": {host_cores},\n  \"model\": \"{MODEL}\",\n  \
         \"requests\": {n},\n  \
         \"note\": \"workers are OS child processes sharing this host's {host_cores} core(s); on a single-core container the scaling curve validates correctness and protocol overhead, not multi-core speedup — rows/s scales with workers only when each worker process owns its own core(s). Re-run `cargo run --release --bin repro_shard` on a multi-core host for the scaling measurement.\",\n  \
         \"baseline_unsharded_rows_per_sec\": {baseline_rps:.1},\n  \
         \"scaling\": [\n{fleet_json}\n  ],\n  \
         \"chaos\": {{\n    \"workers\": 2,\n    \"requests\": {},\n    \
         \"answered\": {},\n    \"requests_lost\": {},\n    \
         \"worker_losses\": {},\n    \"shards_degraded_local\": {},\n    \
         \"predictions_match_baseline\": {}\n  }}\n}}\n",
        chaos.requests,
        chaos.answered,
        chaos.lost,
        chaos.stats.worker_losses,
        chaos.stats.shards_degraded_local,
        chaos.matches_baseline,
    );
    std::fs::write("BENCH_shard.json", &json).expect("write BENCH_shard.json");
    println!("wrote BENCH_shard.json");
}

/// Baseline answers for the chaos stream length, from a fresh unsharded
/// frontend over the same frozen weights.
fn pump_baseline_for(n: usize) -> Vec<Vec<u32>> {
    let server = Server::spawn(session(), serve_config(None)).unwrap();
    let (predictions, _) = pump(server.addr(), n);
    server.shutdown();
    predictions
}
