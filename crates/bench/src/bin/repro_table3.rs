//! Reproduce Table 3: latency comparison for large-scale model inference
//! over data managed by the RDBMS — and, crucially, *which cells OOM*.
//!
//! Paper pattern (scaled budgets preserve the footprint/budget ratios):
//!
//! | workload           | ours | udf-centric | TF-like | PT-like |
//! |--------------------|------|-------------|---------|---------|
//! | Amazon small batch |  t   |      t      |    t    |    t    |
//! | Amazon large batch |  t   |     OOM     |   OOM   |   OOM   |
//! | LandCover batch 1  |  t   |     OOM     |    t    |   OOM   |
//! | LandCover batch 2  |  t   |     OOM     |   OOM   |   OOM   |
//!
//! ```sh
//! cargo run --release -p relserve-bench --bin repro_table3
//! ```

use relserve_bench::config::{
    scaling_banner, table3_amazon_config, table3_landcover_config, AMAZON_BATCHES, AMAZON_SCALE,
    LANDCOVER_BATCHES, LANDCOVER_SCALE,
};
use relserve_bench::report::{Cell, ResultTable};
use relserve_bench::workloads;
use relserve_core::{Architecture, Error, InferenceSession};
use relserve_nn::init::seeded_rng;
use relserve_nn::zoo;
use relserve_runtime::RuntimeProfile;
use relserve_tensor::Tensor;

fn run_cell(
    session: &InferenceSession,
    model: &str,
    batch: &Tensor,
    arch: Architecture,
) -> Result<Cell, Error> {
    match session.infer_batch(model, batch, arch) {
        Ok(outcome) => Ok(Cell::Time(outcome.elapsed)),
        Err(e) if e.is_oom() => Ok(Cell::Oom(e.oom_domain().unwrap_or("?").to_string())),
        Err(e) => Err(e),
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("{}", scaling_banner("Table 3: large-scale model inference"));

    let mut table = ResultTable::new(&[
        "model / batch",
        "ours",
        "udf-centric",
        "tensorflow-like",
        "pytorch-like",
    ]);

    // ---- Amazon-14k-FC (scaled 1/AMAZON_SCALE) ----
    {
        let session = InferenceSession::open(table3_amazon_config())?;
        let mut rng = seeded_rng(6);
        let model = zoo::amazon_14k_fc(AMAZON_SCALE, &mut rng)?;
        let model_name = model.name().to_string();
        let features = model.input_shape().num_elements();
        session.load_model(model)?;
        for batch_size in AMAZON_BATCHES {
            eprintln!("running {model_name} @ batch {batch_size}...");
            let batch = workloads::amazon_batch(batch_size, features, 7);
            let cells = vec![
                run_cell(&session, &model_name, &batch, Architecture::Adaptive)?,
                run_cell(&session, &model_name, &batch, Architecture::UdfCentric)?,
                run_cell(
                    &session,
                    &model_name,
                    &batch,
                    Architecture::DlCentric(RuntimeProfile::tensorflow_like()),
                )?,
                run_cell(
                    &session,
                    &model_name,
                    &batch,
                    Architecture::DlCentric(RuntimeProfile::pytorch_like()),
                )?,
            ];
            table.row(&format!("{model_name} / {batch_size}"), &cells);
        }
    }

    // ---- LandCover (scaled 1/LANDCOVER_SCALE) ----
    {
        let session = InferenceSession::open(table3_landcover_config())?;
        let mut rng = seeded_rng(8);
        let model = zoo::landcover(LANDCOVER_SCALE, &mut rng)?;
        let model_name = model.name().to_string();
        let side = model.input_shape().dim(0);
        session.load_model(model)?;
        for batch_size in LANDCOVER_BATCHES {
            eprintln!("running {model_name} @ batch {batch_size}...");
            let batch = workloads::image_batch(batch_size, side, side, 3, 9);
            let cells = vec![
                run_cell(&session, &model_name, &batch, Architecture::Adaptive)?,
                run_cell(&session, &model_name, &batch, Architecture::UdfCentric)?,
                run_cell(
                    &session,
                    &model_name,
                    &batch,
                    Architecture::DlCentric(RuntimeProfile::tensorflow_like()),
                )?,
                run_cell(
                    &session,
                    &model_name,
                    &batch,
                    Architecture::DlCentric(RuntimeProfile::pytorch_like()),
                )?,
            ];
            table.row(&format!("{model_name} / {batch_size}"), &cells);
        }
    }

    println!("{}", table.render());
    println!(
        "expected shape (paper Table 3): only the relation-centric/adaptive column\n\
         completes every row — blocks spill through the buffer pool instead of\n\
         exhausting memory. When everything fits (small batch), dedicated external\n\
         runtimes are competitive and relation-centric pays chunking overhead."
    );
    Ok(())
}
