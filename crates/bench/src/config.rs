//! Scaled experiment configurations.
//!
//! The paper's testbed is an AWS r4.2xlarge (8 cores, 61 GiB RAM, 2 GiB
//! operator threshold, 20 GiB buffer pool). This repo reproduces the
//! *shape* of each result at laptop scale; every scale factor and budget is
//! defined here, printed by the harness, and recorded in EXPERIMENTS.md.
//!
//! Calibration principle for Table 3: preserve the **footprint / budget
//! ratios** the paper's testbed implies, so the OOM pattern (which cell
//! fails, which completes) reproduces exactly even though absolute sizes
//! shrink. See each constant's comment for the arithmetic.

use relserve_core::SessionConfig;
use relserve_runtime::TransferProfile;

/// Scale divisor for Amazon-14k-FC (features 597,540 → 18,673;
/// outputs 14,588 → 455). The first-layer weight matrix shrinks from
/// 2.28 GiB to ~76 MiB.
pub const AMAZON_SCALE: usize = 32;

/// Table 3 batch sizes for Amazon, scaled 1/8 from the paper's 1000/8000.
pub const AMAZON_BATCHES: [usize; 2] = [125, 1000];

/// Scale divisor for LandCover (2500² tiles → 312², 2048 kernels → 256).
/// One output map shrinks from 51 GB to ~99.7 MB.
pub const LANDCOVER_SCALE: usize = 8;

/// Table 3 batch sizes for LandCover (the paper's own 1 and 2).
pub const LANDCOVER_BATCHES: [usize; 2] = [1, 2];

/// Bosch-like decomposition experiment: rows (paper: 1.18 M) and total
/// feature width (paper's exact 968, split 484/484).
pub const BOSCH_ROWS: usize = 8_000;
/// Feature width of the Bosch-like table (kept at paper scale).
pub const BOSCH_WIDTH: usize = 968;
/// Similarity-join expansion factor: each row band-matches ~this many rows
/// on the other side (an ε-join on correlated continuous keys expands).
pub const BOSCH_FAN: usize = 6;

/// Fig. 2/3 batch sizes: rows resident in the RDBMS per query.
pub const FIG2_BATCH: usize = 10_000;
/// Images per DeepBench-CONV1 query in Fig. 3.
pub const FIG3_BATCH: usize = 4;

/// §7.2.2 dataset sizes.
pub const CACHE_TRAIN: usize = 1_500;
/// Test-set size for §7.2.2.
pub const CACHE_TEST: usize = 1_000;

/// The ConnectorX-class wire used for DL-centric rows: ~1.2 GB/s effective
/// bandwidth, 2 ms setup per shipment, 1 µs/row protocol overhead
/// (ConnectorX reads ~1 M Postgres rows/s/core).
pub fn wire() -> TransferProfile {
    TransferProfile {
        bandwidth_bytes_per_sec: 1.2e9,
        fixed_latency: std::time::Duration::from_millis(2),
        per_row_overhead_ns: 1_000.0,
        simulate_wire: true,
    }
}

/// Session config for the small-model latency experiments (Figs. 2–3):
/// generous budgets (nothing OOMs there), realistic wire.
pub fn fig2_config() -> SessionConfig {
    SessionConfig::builder()
        .db_memory_bytes(4 << 30)
        .buffer_pool_bytes(256 << 20)
        .memory_threshold_bytes(2 << 30) // the paper's threshold
        .block_size(512)
        .external_memory_bytes(4 << 30)
        .transfer(wire())
        .build()
        .expect("static fig2 config is valid")
}

/// Table 3 / Amazon budgets. Scaled footprints (see repro_table3 output):
/// UDF peak ≈ 87 MB @ batch 125 and ≈ 157 MB @ batch 1000; external peaks
/// carry the 1.4×/2.0× framework overheads. Budgets are placed so that at
/// the small batch everything completes and at the large batch every
/// non-relation-centric cell OOMs — the paper's row pattern.
pub fn table3_amazon_config() -> SessionConfig {
    SessionConfig::builder()
        .db_memory_bytes(120 << 20) // ∈ (87 MB, 157 MB)
        .buffer_pool_bytes(96 << 20)
        .memory_threshold_bytes(64 << 20) // < the 76 MB weight term at any batch
        .block_size(512)
        .external_memory_bytes(190 << 20) // ∈ (2.0×87, 1.4×157) MB
        .transfer(wire())
        // Table 3 reports *which cells OOM*: the forced architectures must
        // surface their raw failure, not degrade to relation-centric.
        .degradation(false)
        .build()
        .expect("static amazon config is valid")
}

/// Table 3 / LandCover budgets. One scaled output map X ≈ 99.7 MB.
/// db < X (UDF-centric OOMs at batch 1, as in the paper);
/// external ∈ (1.4X, 2.0X) (TensorFlow-like fits batch 1, PyTorch-like
/// OOMs, and nothing external fits batch 2) — the paper's exact pattern.
pub fn table3_landcover_config() -> SessionConfig {
    SessionConfig::builder()
        .db_memory_bytes(80 << 20)
        .buffer_pool_bytes(96 << 20)
        .memory_threshold_bytes(32 << 20)
        .block_size(512)
        .external_memory_bytes(170 << 20)
        .transfer(wire())
        .degradation(false)
        .build()
        .expect("static landcover config is valid")
}

/// Render the scaling notice every repro binary prints first.
pub fn scaling_banner(experiment: &str) -> String {
    format!(
        "== {experiment} ==\n\
         paper testbed: AWS r4.2xlarge (8 cores, 61 GiB, 2 GiB threshold, 20 GiB pool)\n\
         this run: scaled per crates/bench/src/config.rs \
         (Amazon 1/{AMAZON_SCALE}, LandCover 1/{LANDCOVER_SCALE}, Bosch {BOSCH_ROWS} rows)\n"
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn amazon_budget_ordering_matches_calibration() {
        let c = table3_amazon_config();
        // threshold < db < external, and the documented windows hold.
        assert!(c.memory_threshold_bytes < c.db_memory_bytes);
        assert!(c.db_memory_bytes < c.external_memory_bytes);
        // The scaled weight term (18,673 × 1,024 × 4 B) exceeds the threshold.
        let weight_bytes = (597_540 / AMAZON_SCALE) * 1024 * 4;
        assert!(weight_bytes > c.memory_threshold_bytes);
    }

    #[test]
    fn landcover_budget_brackets_output_map() {
        let c = table3_landcover_config();
        let side = 2_500 / LANDCOVER_SCALE;
        let oc = 2_048 / LANDCOVER_SCALE;
        let x = side * side * oc * 4; // one output map
        assert!(c.db_memory_bytes < x, "UDF must OOM at batch 1");
        assert!(
            (c.external_memory_bytes as f64) > 1.4 * x as f64,
            "TF-like must fit batch 1"
        );
        assert!(
            (c.external_memory_bytes as f64) < 2.0 * x as f64,
            "PT-like must OOM at batch 1"
        );
    }

    #[test]
    fn banner_mentions_scales() {
        let b = scaling_banner("test");
        assert!(b.contains("1/32"));
        assert!(b.contains("1/8"));
    }
}
