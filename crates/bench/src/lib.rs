//! Benchmark harness for the EDBT 2024 paper reproduction.
//!
//! One module per concern:
//!
//! * [`workloads`] — synthetic generators with the schemas and shapes of the
//!   paper's datasets (credit-card fraud, encoder features, Amazon-14k
//!   extreme classification, DeepBench/LandCover tiles, the Bosch wide
//!   table, MNIST-like digits).
//! * [`config`] — the scaled experiment configurations: every scale factor
//!   and memory budget used to reproduce Figures 2–3 and Table 3 on a
//!   laptop, with the calibration rationale documented inline.
//! * [`report`] — fixed-width table printing and timing helpers shared by
//!   the `repro_*` binaries.
//!
//! The binaries (`src/bin/repro_*.rs`) regenerate each table/figure;
//! `benches/` holds the Criterion micro-benchmarks.

pub mod config;
pub mod report;
pub mod workloads;

/// The soft `RLIMIT_NOFILE` of this process, parsed from
/// `/proc/self/limits`; benches that hold thousands of sockets use it to
/// cap their connection fan-in. Falls back to 1024 (the classic default)
/// when the file is unreadable.
pub fn fd_soft_limit() -> usize {
    let Ok(limits) = std::fs::read_to_string("/proc/self/limits") else {
        return 1024;
    };
    limits
        .lines()
        .find(|l| l.starts_with("Max open files"))
        .and_then(|l| l.split_whitespace().nth(3)?.parse().ok())
        .unwrap_or(1024)
}
