//! Table rendering and timing helpers for the `repro_*` binaries.

use std::time::{Duration, Instant};

/// Time a closure, returning its result and the wall-clock duration.
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed())
}

/// A cell in a result table: a duration, a plain string, or an OOM marker.
#[derive(Debug, Clone)]
pub enum Cell {
    /// Measured latency.
    Time(Duration),
    /// Out-of-memory, with the failing memory domain.
    Oom(String),
    /// Arbitrary text.
    Text(String),
}

impl Cell {
    /// Render the cell.
    pub fn render(&self) -> String {
        match self {
            Cell::Time(d) => format_duration(*d),
            Cell::Oom(domain) => format!("OOM({domain})"),
            Cell::Text(s) => s.clone(),
        }
    }
}

/// Human-friendly duration: seconds with one decimal above 1 s, else ms.
pub fn format_duration(d: Duration) -> String {
    let secs = d.as_secs_f64();
    if secs >= 1.0 {
        format!("{secs:.1}s")
    } else if secs >= 1e-3 {
        format!("{:.1}ms", secs * 1e3)
    } else {
        format!("{:.0}us", secs * 1e6)
    }
}

/// A fixed-width results table printed like the paper's tables.
#[derive(Debug, Default)]
pub struct ResultTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl ResultTable {
    /// A table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        ResultTable {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row of cells (first cell is usually the row label).
    pub fn row(&mut self, label: &str, cells: &[Cell]) {
        let mut row = vec![label.to_string()];
        row.extend(cells.iter().map(Cell::render));
        self.rows.push(row);
    }

    /// Render the table.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(cols) {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |row: &[String], widths: &[usize]| {
            let mut line = String::new();
            for (i, cell) in row.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                let pad = widths.get(i).copied().unwrap_or(0);
                if i == 0 {
                    line.push_str(&format!("{cell:<pad$}"));
                } else {
                    line.push_str(&format!("{cell:>pad$}"));
                }
            }
            line
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duration_formats() {
        assert_eq!(format_duration(Duration::from_secs(3)), "3.0s");
        assert_eq!(format_duration(Duration::from_millis(42)), "42.0ms");
        assert_eq!(format_duration(Duration::from_micros(7)), "7us");
    }

    #[test]
    fn table_renders_aligned() {
        let mut t = ResultTable::new(&["model", "ours", "tensorflow"]);
        t.row(
            "Amazon-14k-FC",
            &[
                Cell::Time(Duration::from_secs_f64(58.6)),
                Cell::Oom("tensorflow-like".into()),
            ],
        );
        let text = t.render();
        assert!(text.contains("Amazon-14k-FC"));
        assert!(text.contains("58.6s"));
        assert!(text.contains("OOM(tensorflow-like)"));
        // Header + separator + 1 row.
        assert_eq!(text.trim_end().lines().count(), 3);
    }

    #[test]
    fn timed_measures() {
        let (v, d) = timed(|| {
            std::thread::sleep(Duration::from_millis(5));
            42
        });
        assert_eq!(v, 42);
        assert!(d >= Duration::from_millis(5));
    }
}
