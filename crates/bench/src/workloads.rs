//! Synthetic workload generators matching the paper's datasets.
//!
//! Each generator reproduces the *schema and shape* of the dataset the paper
//! evaluates on; values are synthetic (see DESIGN.md's substitution table).
//! All generators are seeded for reproducibility.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use relserve_relational::{Column, DataType, Schema, Tuple, Value};
use relserve_tensor::Tensor;

/// Seeded RNG for workloads.
pub fn rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Schema of a `(id: Int, features: Vector)` feature table.
pub fn feature_schema() -> Schema {
    Schema::new(vec![
        Column::new("id", DataType::Int),
        Column::new("features", DataType::Vector),
    ])
}

/// Schema of a `(key: Float, features: Vector)` similarity-join table.
pub fn keyed_feature_schema() -> Schema {
    Schema::new(vec![
        Column::new("key", DataType::Float),
        Column::new("features", DataType::Vector),
    ])
}

/// Credit-card-fraud rows: 28 anonymized features (the Kaggle/ULB shape the
/// Fraud-FC models consume).
pub fn fraud_rows(n: usize, seed: u64) -> Vec<Tuple> {
    dense_feature_rows(n, 28, seed)
}

/// Encoder input rows: 76 features (Table 1's Encoder-FC).
pub fn encoder_rows(n: usize, seed: u64) -> Vec<Tuple> {
    dense_feature_rows(n, 76, seed)
}

/// Dense feature rows of arbitrary width.
pub fn dense_feature_rows(n: usize, width: usize, seed: u64) -> Vec<Tuple> {
    let mut r = rng(seed);
    (0..n)
        .map(|i| {
            let features: Vec<f32> = (0..width).map(|_| r.gen_range(-2.0f32..2.0)).collect();
            Tuple::new(vec![Value::Int(i as i64), Value::Vector(features)])
        })
        .collect()
}

/// A dense feature batch (the tensor form of [`dense_feature_rows`]).
pub fn feature_batch(n: usize, width: usize, seed: u64) -> Tensor {
    let mut r = rng(seed);
    Tensor::from_fn([n, width], |_| r.gen_range(-2.0f32..2.0))
}

/// Amazon-14k-style extreme-classification batch: mostly-sparse positive
/// bag-of-words activations over `features` dims (scaled from 597,540).
pub fn amazon_batch(n: usize, features: usize, seed: u64) -> Tensor {
    let mut r = rng(seed);
    let mut t = Tensor::zeros([n, features]);
    // ~0.5 % of features active per example, like a bag-of-words row.
    let active = (features / 200).max(4);
    for row in 0..n {
        for _ in 0..active {
            let col = r.gen_range(0..features);
            t.data_mut()[row * features + col] = r.gen_range(0.1f32..1.0);
        }
    }
    t
}

/// NHWC image tiles in `[0, 1)` (DeepBench inputs, LandCover tiles).
pub fn image_batch(n: usize, h: usize, w: usize, c: usize, seed: u64) -> Tensor {
    let mut r = rng(seed);
    Tensor::from_fn([n, h, w, c], |_| r.gen_range(0.0f32..1.0))
}

/// A Zipf-skewed stream of pool-slot indices: slot `k` is drawn with
/// probability ∝ 1/(k+1)^s. Models the repeat-heavy request mix of online
/// fraud scoring (a few hot accounts dominate) where an inference-result
/// cache pays off; `s = 0` degenerates to uniform.
pub fn skewed_request_stream(n: usize, pool: usize, s: f64, seed: u64) -> Vec<usize> {
    assert!(pool > 0, "need a non-empty slot pool");
    let mut r = rng(seed);
    let weights: Vec<f64> = (0..pool).map(|k| 1.0 / ((k + 1) as f64).powf(s)).collect();
    let total: f64 = weights.iter().sum();
    (0..n)
        .map(|_| {
            let mut x = r.gen_range(0.0..total);
            for (k, w) in weights.iter().enumerate() {
                if x < *w {
                    return k;
                }
                x -= w;
            }
            pool - 1
        })
        .collect()
}

/// Perturb a feature row by uniform noise in `(-eps, eps)` per dimension —
/// the "same entity, slightly different measurement" variants a semantic
/// cache answers as near hits.
pub fn jittered_row(base: &[f32], eps: f32, seed: u64) -> Vec<f32> {
    if eps == 0.0 {
        return base.to_vec();
    }
    let mut r = rng(seed);
    base.iter().map(|v| v + r.gen_range(-eps..eps)).collect()
}

/// The §7.2.1 Bosch-like vertical split: two tables of `width/2` features
/// each, with correlated float join keys. `fan` controls the similarity
/// join's expansion factor: `fan` rows on each side share a key bucket, so
/// each D1 row band-matches ~`fan` D2 rows — the typical behaviour of an
/// ε-join on correlated continuous columns (the paper's
/// highest-correlated-pair setup).
pub fn bosch_split_tables(
    n: usize,
    width: usize,
    fan: usize,
    seed: u64,
) -> (Vec<Tuple>, Vec<Tuple>) {
    let mut r = rng(seed);
    let fan = fan.max(1);
    let half = width / 2;
    let mut d1 = Vec::with_capacity(n);
    let mut d2 = Vec::with_capacity(n);
    for i in 0..n {
        // `fan` consecutive rows share a key bucket; jitter stays well
        // inside the ε = 0.15 band the experiments use.
        let base = (i / fan) as f32;
        let f1: Vec<f32> = (0..half).map(|_| r.gen_range(-1.0f32..1.0)).collect();
        let f2: Vec<f32> = (0..width - half)
            .map(|_| r.gen_range(-1.0f32..1.0))
            .collect();
        d1.push(Tuple::new(vec![
            Value::Float(base + r.gen_range(-0.05f32..0.05)),
            Value::Vector(f1),
        ]));
        d2.push(Tuple::new(vec![
            Value::Float(base + r.gen_range(-0.05f32..0.05)),
            Value::Vector(f2),
        ]));
    }
    (d1, d2)
}

/// MNIST-like synthetic digits: 10 Gaussian class clusters in `dim`
/// dimensions. `spread` controls class overlap (larger → harder task,
/// more cache-induced errors).
pub fn synthetic_digits(n: usize, dim: usize, spread: f32, seed: u64) -> (Tensor, Vec<usize>) {
    let (x, y, _, _) = synthetic_digits_split(n, 0, dim, spread, seed);
    (x, y)
}

/// Train/test split drawn from the **same** class centroids (the centroids
/// are the "true" digit shapes; train and test differ only in noise).
/// Returns `(train_x, train_y, test_x, test_y)`.
pub fn synthetic_digits_split(
    train_n: usize,
    test_n: usize,
    dim: usize,
    spread: f32,
    seed: u64,
) -> (Tensor, Vec<usize>, Tensor, Vec<usize>) {
    let mut r = rng(seed);
    let centroids: Vec<Vec<f32>> = (0..10)
        .map(|_| (0..dim).map(|_| r.gen_range(-1.0f32..1.0)).collect())
        .collect();
    let mut draw = |n: usize| {
        let mut data = Vec::with_capacity(n * dim);
        let mut labels = Vec::with_capacity(n);
        for i in 0..n {
            let class = i % 10;
            for &cv in centroids[class].iter().take(dim) {
                data.push(cv + r.gen_range(-spread..spread));
            }
            labels.push(class);
        }
        (Tensor::from_vec([n, dim], data).expect("sized"), labels)
    };
    let (train_x, train_y) = draw(train_n);
    let (test_x, test_y) = draw(test_n);
    (train_x, train_y, test_x, test_y)
}

/// Expected L2 distance between a query and its nearest same-class cached
/// key: both are `centroid + U(-spread, spread)^dim`, so the difference per
/// dim has variance `2·spread²/3`.
pub fn expected_same_class_distance(dim: usize, spread: f32) -> f32 {
    (dim as f32 * 2.0 * spread * spread / 3.0).sqrt()
}

/// Digits whose **fine strokes and coarse shape can disagree** — the
/// ambiguous-handwriting mechanism behind the §7.2.2 accuracy drop.
///
/// Every example carries its true label as a low-energy per-class *stroke
/// template* (`±stroke_amp` over the first 64 dims — distributed like the
/// fine pen strokes that distinguish a 7 from a 1), while the remaining dims
/// hold a high-energy "shape": a class centroid plus noise. With probability
/// `confusion` an example's shape is drawn from a *different* class (a 7
/// written to look like a 1). A trained model reads the strokes and stays
/// accurate; an L2 nearest-neighbor cache is dominated by the shape dims and
/// returns the look-alike class's answer for confused queries — precisely
/// how approximate result caching loses accuracy in the paper.
#[allow(clippy::too_many_arguments)]
pub fn synthetic_digits_decoupled(
    train_n: usize,
    test_n: usize,
    dim: usize,
    spread: f32,
    train_confusion: f32,
    test_confusion: f32,
    stroke_amp: f32,
    seed: u64,
) -> (Tensor, Vec<usize>, Tensor, Vec<usize>) {
    const STROKE_DIMS: usize = 64;
    assert!(dim > STROKE_DIMS, "need room for the stroke dims");
    let mut r = rng(seed);
    let shape_dim = dim - STROKE_DIMS;
    let strokes: Vec<Vec<f32>> = (0..10)
        .map(|_| {
            (0..STROKE_DIMS)
                .map(|_| {
                    if r.gen_range(0.0f32..1.0) < 0.5 {
                        stroke_amp
                    } else {
                        -stroke_amp
                    }
                })
                .collect()
        })
        .collect();
    let centroids: Vec<Vec<f32>> = (0..10)
        .map(|_| (0..shape_dim).map(|_| r.gen_range(-1.0f32..1.0)).collect())
        .collect();
    let draw = |n: usize, confusion: f32, r: &mut StdRng| {
        let mut data = Vec::with_capacity(n * dim);
        let mut labels = Vec::with_capacity(n);
        for i in 0..n {
            let label = i % 10;
            let shape_class = if r.gen_range(0.0f32..1.0) < confusion {
                (label + r.gen_range(1usize..10)) % 10
            } else {
                label
            };
            for &sv in strokes[label].iter().take(STROKE_DIMS) {
                data.push(sv + r.gen_range(-spread * 0.25..spread * 0.25));
            }
            for &cv in centroids[shape_class].iter().take(shape_dim) {
                data.push(cv + r.gen_range(-spread..spread));
            }
            labels.push(label);
        }
        (Tensor::from_vec([n, dim], data).expect("sized"), labels)
    };
    let (train_x, train_y) = draw(train_n, train_confusion, &mut r);
    let (test_x, test_y) = draw(test_n, test_confusion, &mut r);
    (train_x, train_y, test_x, test_y)
}

/// 28×28×1 MNIST-like digit images for the §7.2.2 CNN (clustered in pixel
/// space, same construction as [`synthetic_digits_split`]).
pub fn synthetic_digit_images_split(
    train_n: usize,
    test_n: usize,
    spread: f32,
    seed: u64,
) -> (Tensor, Vec<usize>, Tensor, Vec<usize>) {
    let (train_x, train_y, test_x, test_y) =
        synthetic_digits_split(train_n, test_n, 28 * 28, spread, seed);
    (
        train_x
            .reshape([train_n, 28, 28, 1])
            .expect("same elements"),
        train_y,
        test_x.reshape([test_n, 28, 28, 1]).expect("same elements"),
        test_y,
    )
}

/// Single-set variant of [`synthetic_digit_images_split`].
pub fn synthetic_digit_images(n: usize, spread: f32, seed: u64) -> (Tensor, Vec<usize>) {
    let (x, y, _, _) = synthetic_digit_images_split(n, 0, spread, seed);
    (x, y)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fraud_rows_have_paper_width() {
        let rows = fraud_rows(10, 1);
        assert_eq!(rows.len(), 10);
        for row in &rows {
            assert_eq!(row.value(1).unwrap().as_vector().unwrap().len(), 28);
        }
    }

    #[test]
    fn generators_are_deterministic() {
        assert_eq!(fraud_rows(5, 42), fraud_rows(5, 42));
        assert_ne!(fraud_rows(5, 42), fraud_rows(5, 43));
        let (a, _) = synthetic_digits(10, 16, 0.1, 7);
        let (b, _) = synthetic_digits(10, 16, 0.1, 7);
        assert_eq!(a, b);
    }

    #[test]
    fn amazon_batch_is_sparse() {
        let t = amazon_batch(4, 2000, 3);
        let nonzero = t.data().iter().filter(|v| **v != 0.0).count();
        // ≈ 4 rows × 10 active ± collisions.
        assert!(nonzero > 8 && nonzero < 60, "nonzero = {nonzero}");
    }

    #[test]
    fn skewed_stream_is_hot_headed() {
        let stream = skewed_request_stream(1000, 8, 1.1, 17);
        assert_eq!(stream.len(), 1000);
        assert!(stream.iter().all(|&s| s < 8));
        let hot = stream.iter().filter(|&&s| s == 0).count();
        let cold = stream.iter().filter(|&&s| s == 7).count();
        // Slot 0 outdraws slot 7 by roughly 8^1.1 ≈ 9x in expectation.
        assert!(hot > 3 * cold, "hot {hot} cold {cold}");
        assert_eq!(stream, skewed_request_stream(1000, 8, 1.1, 17));
    }

    #[test]
    fn jittered_row_stays_within_eps() {
        let base = vec![0.5f32; 16];
        let jit = jittered_row(&base, 1e-3, 3);
        assert_ne!(base, jit);
        for (a, b) in base.iter().zip(&jit) {
            assert!((a - b).abs() < 1e-3);
        }
        assert_eq!(jittered_row(&base, 0.0, 3), base);
    }

    #[test]
    fn bosch_tables_join_pairwise() {
        let (d1, d2) = bosch_split_tables(20, 10, 1, 5);
        assert_eq!(d1.len(), 20);
        for (a, b) in d1.iter().zip(&d2) {
            let ka = a.value(0).unwrap().as_float().unwrap();
            let kb = b.value(0).unwrap().as_float().unwrap();
            assert!((ka - kb).abs() <= 0.1);
            assert_eq!(a.value(1).unwrap().as_vector().unwrap().len(), 5);
            assert_eq!(b.value(1).unwrap().as_vector().unwrap().len(), 5);
        }
    }

    #[test]
    fn bosch_fan_groups_keys() {
        let (d1, _) = bosch_split_tables(12, 10, 4, 6);
        let key = |i: usize| d1[i].value(0).unwrap().as_float().unwrap();
        // Rows 0..4 share bucket 0, rows 4..8 bucket 1, etc.
        assert!((key(0) - key(3)).abs() <= 0.1);
        assert!((key(3) - key(4)).abs() > 0.5);
    }

    #[test]
    fn digits_cluster_by_class() {
        let (x, y) = synthetic_digits(100, 32, 0.1, 9);
        // Same-class rows are closer than different-class rows on average.
        let dist = |a: usize, b: usize| {
            relserve_tensor::ops::l2_distance(x.row(a).unwrap(), x.row(b).unwrap())
        };
        let same = dist(0, 10); // both class 0
        let diff = dist(0, 1); // class 0 vs class 1
        assert!(same < diff, "same {same} diff {diff}");
        assert_eq!(y[0], y[10]);
    }

    #[test]
    fn digit_images_have_nhwc_shape() {
        let (x, y) = synthetic_digit_images(6, 0.2, 11);
        assert_eq!(x.shape().dims(), &[6, 28, 28, 1]);
        assert_eq!(y.len(), 6);
    }
}
