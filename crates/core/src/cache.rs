//! Model serving with the in-RDBMS inference-result cache (§5.1, §7.2.2).
//!
//! Wraps a model and an HNSW-backed [`InferenceResultCache`]: lookups that
//! land within the admission distance return the cached prediction; misses
//! run the model and (optionally) admit the fresh result. The wrapper also
//! exposes the paper's SLA gate: before serving a query from the cache, the
//! session can demand a Monte-Carlo error bound below the application's
//! tolerance.

use crate::error::Result;
use relserve_nn::Model;
use relserve_tensor::parallel::Parallelism;
use relserve_tensor::Tensor;
use relserve_vectoridx::{CacheStats, ErrorBoundEstimate, HnswParams, InferenceResultCache};

/// A model fronted by an approximate inference-result cache.
pub struct CachedModel {
    model: Model,
    cache: InferenceResultCache,
    /// Whether misses populate the cache.
    admit_on_miss: bool,
    par: Parallelism,
}

impl CachedModel {
    /// Wrap `model` with a cache admitting hits within `max_distance`.
    /// `par` is the kernel budget exact (cache-missing) inference runs with.
    pub fn new(
        model: Model,
        max_distance: f32,
        params: HnswParams,
        par: Parallelism,
    ) -> Result<Self> {
        let dim = model.input_shape().num_elements();
        Ok(CachedModel {
            model,
            cache: InferenceResultCache::new(dim, max_distance, params)?,
            admit_on_miss: true,
            par,
        })
    }

    /// Disable admission (a purely pre-warmed cache).
    pub fn frozen(mut self) -> Self {
        self.admit_on_miss = false;
        self
    }

    /// The wrapped model.
    pub fn model(&self) -> &Model {
        &self.model
    }

    /// Cache statistics.
    pub fn stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Number of cached entries.
    pub fn cache_len(&self) -> usize {
        self.cache.len()
    }

    /// Pre-warm the cache by running exact inference over `batch`.
    pub fn warm(&mut self, batch: &Tensor) -> Result<()> {
        let n = self.model.check_input(batch)?;
        let width = self.model.input_shape().num_elements();
        let flat = batch.clone().reshape([n, width])?;
        let probs = self.model.forward(&flat, &self.par)?;
        let (_, classes) = probs.shape().as_matrix()?;
        for i in 0..n {
            let row = flat.row(i)?;
            let pred = probs.data()[i * classes..(i + 1) * classes].to_vec();
            self.cache.insert(row, pred)?;
        }
        Ok(())
    }

    /// Predict one example, consulting the cache first.
    pub fn predict_one(&mut self, features: &[f32]) -> Result<Vec<f32>> {
        if let Some(hit) = self.cache.lookup(features)? {
            return Ok(hit.to_vec());
        }
        let x = Tensor::from_vec([1, features.len()], features.to_vec())?;
        let probs = self.model.forward(&x, &self.par)?;
        let pred = probs.data().to_vec();
        if self.admit_on_miss {
            self.cache.insert(features, pred.clone())?;
        }
        Ok(pred)
    }

    /// Predict a batch with the cache; returns per-row class predictions.
    pub fn predict_batch(&mut self, batch: &Tensor) -> Result<Vec<usize>> {
        let n = self.model.check_input(batch)?;
        let width = self.model.input_shape().num_elements();
        let flat = batch.clone().reshape([n, width])?;
        let mut out = Vec::with_capacity(n);
        for i in 0..n {
            let probs = self.predict_one(flat.row(i)?)?;
            let best = probs
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.total_cmp(b.1))
                .map(|(c, _)| c)
                .unwrap_or(0);
            out.push(best);
        }
        Ok(out)
    }

    /// Exact (cache-bypassing) batch predictions, for accuracy comparisons.
    pub fn predict_exact(&self, batch: &Tensor) -> Result<Vec<usize>> {
        Ok(self.model.predict(batch, &self.par)?)
    }

    /// The §5.1 SLA gate: Monte-Carlo error bound of serving from this cache.
    pub fn estimate_error_bound(
        &self,
        samples: usize,
        perturbation: f32,
    ) -> Result<ErrorBoundEstimate> {
        let model = &self.model;
        let par = &self.par;
        Ok(self
            .cache
            .estimate_error_bound(samples, perturbation, |features| {
                let x = Tensor::from_vec([1, features.len()], features.to_vec())
                    .expect("feature row sized correctly");
                model
                    .forward(&x, par)
                    .map(|t| t.data().to_vec())
                    .unwrap_or_default()
            })?)
    }
}

impl std::fmt::Debug for CachedModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CachedModel")
            .field("model", &self.model.name())
            .field("entries", &self.cache.len())
            .field("stats", &self.cache.stats())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relserve_nn::init::seeded_rng;
    use relserve_nn::{Activation, Layer};

    fn small_model() -> Model {
        let mut rng = seeded_rng(130);
        Model::new("cm", [4])
            .push(Layer::dense(4, 8, Activation::Relu, &mut rng))
            .unwrap()
            .push(Layer::dense(8, 3, Activation::Softmax, &mut rng))
            .unwrap()
    }

    #[test]
    fn warm_then_hit() {
        let mut cached = CachedModel::new(
            small_model(),
            0.05,
            HnswParams::default(),
            Parallelism::serial(),
        )
        .unwrap();
        let batch = Tensor::from_fn([20, 4], |i| ((i % 7) as f32 - 3.0) * 0.3);
        cached.warm(&batch).unwrap();
        // The `i % 7` pattern yields 7 distinct rows; identical keys are
        // deduplicated on insert rather than stored as duplicate nodes.
        assert_eq!(cached.cache_len(), 7);
        // Re-asking the same rows must hit.
        let preds = cached.predict_batch(&batch).unwrap();
        assert_eq!(preds.len(), 20);
        let stats = cached.stats();
        assert_eq!(stats.hits, 20);
        assert_eq!(stats.misses, 0);
        // And must agree with exact inference (identical keys).
        assert_eq!(preds, cached.predict_exact(&batch).unwrap());
    }

    #[test]
    fn miss_admits_when_enabled() {
        let mut cached = CachedModel::new(
            small_model(),
            1e-6,
            HnswParams::default(),
            Parallelism::serial(),
        )
        .unwrap();
        let x = [0.1f32, 0.2, 0.3, 0.4];
        cached.predict_one(&x).unwrap(); // miss, admitted
        cached.predict_one(&x).unwrap(); // hit
        let s = cached.stats();
        assert_eq!((s.hits, s.misses), (1, 1));
    }

    #[test]
    fn frozen_cache_never_admits() {
        let mut cached = CachedModel::new(
            small_model(),
            1e-6,
            HnswParams::default(),
            Parallelism::serial(),
        )
        .unwrap()
        .frozen();
        let x = [0.5f32, 0.5, 0.5, 0.5];
        cached.predict_one(&x).unwrap();
        cached.predict_one(&x).unwrap();
        let s = cached.stats();
        assert_eq!((s.hits, s.misses), (0, 2));
        assert_eq!(cached.cache_len(), 0);
    }

    #[test]
    fn error_bound_small_for_exact_hits() {
        let mut cached = CachedModel::new(
            small_model(),
            0.5,
            HnswParams::default(),
            Parallelism::serial(),
        )
        .unwrap();
        let batch = Tensor::from_fn([30, 4], |i| (i as f32 * 0.37).sin());
        cached.warm(&batch).unwrap();
        // Tiny perturbations rarely flip the argmax of a smooth model.
        let bound = cached.estimate_error_bound(20, 1e-4).unwrap();
        assert!(bound.samples > 0);
        assert!(bound.error_rate <= 0.2, "error rate {}", bound.error_rate);
    }
}
