//! Accuracy-aware tensor-block deduplication (§4.1).
//!
//! "Similar tensor/vector data may be deduplicated approximately to reduce
//! storage costs and memory footprint." Blocks are bucketed by a quantized
//! signature: every element snapped to a grid of `2 × tolerance`, then
//! hashed. Two blocks with the same signature differ by at most the grid
//! step elementwise, so replacing one with the other perturbs any single
//! inference activation by a bounded amount — the error-bounded dedup the
//! paper calls for.

use crate::error::Result;
use relserve_tensor::{BlockCoord, BlockedTensor, Tensor};
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};

/// Outcome of deduplicating one blocked tensor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DedupStats {
    /// Blocks before deduplication.
    pub blocks_before: usize,
    /// Unique blocks kept.
    pub blocks_after: usize,
    /// Payload bytes before.
    pub bytes_before: usize,
    /// Payload bytes after (unique blocks only).
    pub bytes_after: usize,
}

impl DedupStats {
    /// Fraction of storage saved, in `[0, 1)`.
    pub fn savings(&self) -> f64 {
        if self.bytes_before == 0 {
            0.0
        } else {
            1.0 - self.bytes_after as f64 / self.bytes_before as f64
        }
    }
}

/// A blocked tensor stored as unique blocks plus a coordinate → block map.
#[derive(Debug, Clone)]
pub struct DedupedTensor {
    rows: usize,
    cols: usize,
    spec: relserve_tensor::BlockingSpec,
    unique: Vec<Tensor>,
    mapping: HashMap<BlockCoord, usize>,
}

impl DedupedTensor {
    /// Reconstruct the (approximate) blocked tensor.
    pub fn to_blocked(&self) -> Result<BlockedTensor> {
        let mut out = BlockedTensor::empty(self.rows, self.cols, self.spec);
        for (coord, idx) in &self.mapping {
            out.insert_block(*coord, self.unique[*idx].clone())?;
        }
        Ok(out)
    }

    /// Number of unique blocks stored.
    pub fn unique_blocks(&self) -> usize {
        self.unique.len()
    }

    /// Payload bytes of the unique blocks.
    pub fn bytes(&self) -> usize {
        self.unique.iter().map(Tensor::num_bytes).sum()
    }
}

fn signature(block: &Tensor, tolerance: f32) -> u64 {
    let mut hasher = DefaultHasher::new();
    block.shape().dims().hash(&mut hasher);
    if tolerance <= 0.0 {
        for v in block.data() {
            v.to_bits().hash(&mut hasher);
        }
    } else {
        let step = 2.0 * tolerance;
        for v in block.data() {
            let cell = (v / step).round() as i64;
            cell.hash(&mut hasher);
        }
    }
    hasher.finish()
}

/// Deduplicate a blocked tensor: blocks whose elements agree within
/// `tolerance` (after grid snapping) share storage. `tolerance == 0` gives
/// exact dedup.
pub fn dedup_blocks(
    blocked: &BlockedTensor,
    tolerance: f32,
) -> Result<(DedupedTensor, DedupStats)> {
    let mut unique: Vec<Tensor> = Vec::new();
    let mut by_sig: HashMap<u64, Vec<usize>> = HashMap::new();
    let mut mapping = HashMap::new();
    let mut bytes_before = 0usize;
    for (coord, block) in blocked.iter_blocks() {
        bytes_before += block.num_bytes();
        let sig = signature(block, tolerance);
        let max_diff = if tolerance <= 0.0 {
            0.0
        } else {
            2.0 * tolerance
        };
        // Fast path: same-signature candidates (verified elementwise).
        let found = by_sig.get(&sig).and_then(|candidates| {
            candidates.iter().copied().find(|&i| {
                unique[i].shape() == block.shape() && unique[i].approx_eq(block, max_diff)
            })
        });
        // Grid signatures miss near-boundary matches (two blocks within
        // tolerance can straddle a grid cell), so fall back to a verified
        // scan of the unique set before declaring a block new.
        let found = found.or_else(|| {
            if max_diff == 0.0 {
                return None; // exact dedup: the signature is exact too
            }
            (0..unique.len()).find(|&i| {
                unique[i].shape() == block.shape() && unique[i].approx_eq(block, max_diff)
            })
        });
        let idx = match found {
            Some(i) => i,
            None => {
                unique.push(block.clone());
                let i = unique.len() - 1;
                by_sig.entry(sig).or_default().push(i);
                i
            }
        };
        mapping.insert(coord, idx);
    }
    let deduped = DedupedTensor {
        rows: blocked.rows(),
        cols: blocked.cols(),
        spec: blocked.spec(),
        unique,
        mapping,
    };
    let stats = DedupStats {
        blocks_before: blocked.num_blocks(),
        blocks_after: deduped.unique.len(),
        bytes_before,
        bytes_after: deduped.bytes(),
    };
    Ok((deduped, stats))
}

/// Worst-case elementwise error introduced by dedup at `tolerance`.
pub fn error_bound(tolerance: f32) -> f32 {
    2.0 * tolerance.max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use relserve_tensor::BlockingSpec;

    fn repeated_blocks() -> BlockedTensor {
        // 4 identical 2x2 blocks + 1 distinct block pattern in a 4x4 + edge.
        let mut t = Tensor::zeros([4, 6]);
        for r in 0..4 {
            for c in 0..4 {
                t.data_mut()[r * 6 + c] = 1.0; // two identical 2x2 all-ones col blocks
            }
            for c in 4..6 {
                t.data_mut()[r * 6 + c] = r as f32; // distinct
            }
        }
        BlockedTensor::from_dense(&t, BlockingSpec::square(2)).unwrap()
    }

    #[test]
    fn exact_dedup_collapses_identical_blocks() {
        let blocked = repeated_blocks();
        let (deduped, stats) = dedup_blocks(&blocked, 0.0).unwrap();
        assert_eq!(stats.blocks_before, 6);
        assert!(stats.blocks_after < 6, "kept {}", stats.blocks_after);
        assert!(stats.savings() > 0.0);
        // Exact dedup reconstructs exactly.
        assert_eq!(
            deduped.to_blocked().unwrap().to_dense().unwrap(),
            blocked.to_dense().unwrap()
        );
    }

    #[test]
    fn approximate_dedup_respects_error_bound() {
        // Blocks that differ by < tolerance must merge; reconstruction error
        // stays within the bound.
        let tol = 0.05f32;
        let a = Tensor::full([2, 2], 1.0);
        let b = Tensor::full([2, 2], 1.0 + tol * 0.5);
        let mut blocked = BlockedTensor::empty(2, 4, BlockingSpec::square(2));
        blocked
            .insert_block(BlockCoord { row: 0, col: 0 }, a.clone())
            .unwrap();
        blocked
            .insert_block(BlockCoord { row: 0, col: 1 }, b)
            .unwrap();
        let (deduped, stats) = dedup_blocks(&blocked, tol).unwrap();
        assert_eq!(stats.blocks_after, 1);
        let rebuilt = deduped.to_blocked().unwrap().to_dense().unwrap();
        let orig = blocked.to_dense().unwrap();
        assert!(rebuilt.max_abs_diff(&orig).unwrap() <= error_bound(tol));
    }

    #[test]
    fn distinct_blocks_survive() {
        let a = Tensor::full([2, 2], 0.0);
        let b = Tensor::full([2, 2], 10.0);
        let mut blocked = BlockedTensor::empty(2, 4, BlockingSpec::square(2));
        blocked
            .insert_block(BlockCoord { row: 0, col: 0 }, a)
            .unwrap();
        blocked
            .insert_block(BlockCoord { row: 0, col: 1 }, b)
            .unwrap();
        let (_, stats) = dedup_blocks(&blocked, 0.01).unwrap();
        assert_eq!(stats.blocks_after, 2);
        assert_eq!(stats.savings(), 0.0);
    }

    #[test]
    fn higher_tolerance_never_keeps_more_blocks() {
        let t = Tensor::from_fn([8, 8], |i| ((i % 5) as f32) * 0.01);
        let blocked = BlockedTensor::from_dense(&t, BlockingSpec::square(2)).unwrap();
        let mut prev = usize::MAX;
        for tol in [0.0f32, 0.005, 0.05, 0.5] {
            let (_, stats) = dedup_blocks(&blocked, tol).unwrap();
            assert!(stats.blocks_after <= prev, "tol {tol}");
            prev = stats.blocks_after;
        }
    }

    #[test]
    fn different_shapes_never_merge() {
        // Edge blocks are smaller; an all-zero edge block must not merge
        // with an all-zero full block.
        let t = Tensor::zeros([3, 3]);
        let blocked = BlockedTensor::from_dense(&t, BlockingSpec::square(2)).unwrap();
        let (deduped, _) = dedup_blocks(&blocked, 0.0).unwrap();
        assert_eq!(deduped.to_blocked().unwrap().to_dense().unwrap(), t);
    }
}
