//! Unified error type for the core engine.

use std::fmt;

/// Result alias for the core crate.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors surfaced by the unified inference engine.
#[derive(Debug)]
pub enum Error {
    /// Tensor kernel failure.
    Tensor(relserve_tensor::Error),
    /// Resource-management failure (including out-of-memory).
    Runtime(relserve_runtime::Error),
    /// Storage-engine failure.
    Storage(relserve_storage::Error),
    /// Relational-operator failure.
    Relational(relserve_relational::Error),
    /// Model failure.
    Nn(relserve_nn::Error),
    /// Vector-index failure.
    VectorIdx(relserve_vectoridx::Error),
    /// A referenced session object does not exist.
    NotFound(String),
    /// A session object name is already taken.
    AlreadyExists(String),
    /// Invalid query or configuration.
    Invalid(String),
}

impl Error {
    /// True when the error is an out-of-memory rejection from any governor —
    /// the signal Table 3 catches to report "OOM" instead of crashing.
    pub fn is_oom(&self) -> bool {
        matches!(
            self,
            Error::Runtime(relserve_runtime::Error::OutOfMemory { .. })
        )
    }

    /// The memory domain that rejected, when this is an OOM error.
    pub fn oom_domain(&self) -> Option<&str> {
        match self {
            Error::Runtime(relserve_runtime::Error::OutOfMemory { domain, .. }) => Some(domain),
            _ => None,
        }
    }

    /// True when the query was shed from the admission queue because the
    /// machine stayed saturated past its queue timeout.
    pub fn is_overloaded(&self) -> bool {
        matches!(
            self,
            Error::Runtime(relserve_runtime::Error::Overloaded { .. })
        )
    }

    /// True when the query's deadline expired (in the admission queue or
    /// cooperatively detected mid-execution).
    pub fn is_deadline_exceeded(&self) -> bool {
        matches!(
            self,
            Error::Runtime(relserve_runtime::Error::DeadlineExceeded { .. })
        )
    }

    /// True for a transient (retryable) boundary fault — surfaced only when
    /// bounded retry was exhausted.
    pub fn is_transient(&self) -> bool {
        matches!(
            self,
            Error::Runtime(relserve_runtime::Error::Transient { .. })
        )
    }

    /// True when a kernel-pool task panicked and the payload was captured
    /// as a typed error instead of aborting a serving thread.
    pub fn is_kernel_panic(&self) -> bool {
        matches!(
            self,
            Error::Runtime(relserve_runtime::Error::KernelPanicked { .. })
        )
    }

    /// True when the failure is recoverable by re-executing the query
    /// relation-centric (the degradation ladder's trigger): a governor OOM
    /// or an exhausted transient retry. Deadline/overload errors are *not*
    /// degradable — the query ran out of time or was shed, so re-executing
    /// would make the overload worse.
    pub fn is_degradable(&self) -> bool {
        self.is_oom() || self.is_transient()
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Tensor(e) => write!(f, "{e}"),
            Error::Runtime(e) => write!(f, "{e}"),
            Error::Storage(e) => write!(f, "{e}"),
            Error::Relational(e) => write!(f, "{e}"),
            Error::Nn(e) => write!(f, "{e}"),
            Error::VectorIdx(e) => write!(f, "{e}"),
            Error::NotFound(n) => write!(f, "`{n}` not found"),
            Error::AlreadyExists(n) => write!(f, "`{n}` already exists"),
            Error::Invalid(m) => write!(f, "invalid request: {m}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Tensor(e) => Some(e),
            Error::Runtime(e) => Some(e),
            Error::Storage(e) => Some(e),
            Error::Relational(e) => Some(e),
            Error::Nn(e) => Some(e),
            Error::VectorIdx(e) => Some(e),
            _ => None,
        }
    }
}

macro_rules! impl_from {
    ($variant:ident, $ty:ty) => {
        impl From<$ty> for Error {
            fn from(e: $ty) -> Self {
                Error::$variant(e)
            }
        }
    };
}

impl_from!(Tensor, relserve_tensor::Error);
impl_from!(Runtime, relserve_runtime::Error);
impl_from!(Storage, relserve_storage::Error);
impl_from!(Relational, relserve_relational::Error);
impl_from!(Nn, relserve_nn::Error);
impl_from!(VectorIdx, relserve_vectoridx::Error);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn oom_detection() {
        let oom: Error = relserve_runtime::Error::OutOfMemory {
            domain: "udf-centric".into(),
            requested: 100,
            in_use: 0,
            budget: 50,
        }
        .into();
        assert!(oom.is_oom());
        assert_eq!(oom.oom_domain(), Some("udf-centric"));
        let not_oom: Error = Error::NotFound("x".into());
        assert!(!not_oom.is_oom());
        assert_eq!(not_oom.oom_domain(), None);
    }

    #[test]
    fn conversions_compile_and_display() {
        let e: Error = relserve_tensor::Error::MissingBlock { row: 1, col: 2 }.into();
        assert!(e.to_string().contains("missing block"));
    }
}
