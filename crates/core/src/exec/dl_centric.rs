//! DL-centric execution: offload inference to a decoupled DL runtime.
//!
//! The state-of-the-art architecture (Fig. 1a): the RDBMS prepares features,
//! serializes them over the connector (ConnectorX in the paper's setup),
//! the external framework materializes its tensors in its own address space
//! (with its framework memory-overhead factor), runs the model with a
//! dedicated thread budget, and ships predictions back. The two costs the
//! paper attributes to this path both arise naturally here: cross-system
//! transfer time for small models, and external-runtime OOM for large ones.

use crate::error::Result;
use crate::exec::{batch_dims, layer_transient_bytes, Output};
use relserve_nn::Model;
use relserve_runtime::governor::Reservation;
use relserve_runtime::{Connector, ExecContext, ExternalRuntime, RetryPolicy};
use relserve_tensor::Tensor;

/// Statistics of one DL-centric execution.
#[derive(Debug, Clone, Copy, Default)]
pub struct DlCentricStats {
    /// Payload bytes shipped in both directions.
    pub bytes_transferred: usize,
    /// Modeled wire time across both directions.
    pub wire_time: std::time::Duration,
    /// Transient wire faults hit by this execution's shipments.
    pub transient_failures: u64,
    /// Shipment re-attempts the bounded retry made.
    pub wire_retries: u64,
    /// External-runtime reservation re-attempts after transient allocator
    /// stalls.
    pub runtime_retries: u64,
}

/// Reserve runtime tensor memory under bounded retry: a transient allocator
/// stall is re-attempted (counted into `retries`); a genuine OOM surfaces
/// immediately — that is the degradation ladder's job, not the retry loop's.
fn reserve_retry(
    runtime: &ExternalRuntime,
    bytes: usize,
    policy: &RetryPolicy,
    retries: &mut u64,
) -> Result<Reservation> {
    Ok(policy.run(|| runtime.reserve_tensor(bytes), |_, _| *retries += 1)?)
}

/// Ship `batch` to `runtime`, run `model` there, ship results back. The
/// external runtime's kernels run on `ctx`'s dedicated grant (every core the
/// coordinator admitted, with no DB workers competing); tensor memory is
/// charged to the *runtime's* governor, not the database's.
///
/// Every boundary crossing (both shipments, every runtime reservation) runs
/// under `retry`'s bounded exponential backoff; attempt counts surface in
/// [`DlCentricStats`]. The context's deadline is checked at each layer
/// boundary.
pub fn run(
    model: &Model,
    batch: &Tensor,
    connector: &mut Connector,
    runtime: &ExternalRuntime,
    ctx: &ExecContext,
    retry: &RetryPolicy,
) -> Result<(Output, DlCentricStats)> {
    let par = ctx.parallelism();
    let (batch_size, _) = batch_dims(model, batch)?;
    let before = connector.stats();
    let mut runtime_retries = 0u64;

    // Outbound: the feature batch crosses the system boundary.
    let flat = {
        let width = model.input_shape().num_elements();
        batch.clone().reshape([batch_size, width])?
    };
    let received = connector.ship_retry(&flat, retry)?;

    // Inside the external runtime: parameters + a sliding activation window,
    // each inflated by the framework's memory-overhead factor.
    let _params = reserve_retry(runtime, model.param_bytes(), retry, &mut runtime_retries)?;
    let mut live = reserve_retry(runtime, received.num_bytes(), retry, &mut runtime_retries)?;
    let mut full_dims = vec![batch_size];
    full_dims.extend_from_slice(model.input_shape().dims());
    let mut x = received.reshape(full_dims)?;
    let mut shape = model.input_shape().clone();
    for layer in model.layers() {
        ctx.check_deadline("dl-centric.layer")?;
        let out_shape = layer.output_shape(&shape)?;
        let out_bytes = batch_size * out_shape.num_bytes();
        let transient = layer_transient_bytes(layer, batch_size, &shape);
        let _scratch = if transient > 0 {
            Some(reserve_retry(
                runtime,
                transient,
                retry,
                &mut runtime_retries,
            )?)
        } else {
            None
        };
        let out_res = reserve_retry(runtime, out_bytes, retry, &mut runtime_retries)?;
        x = layer.forward(&x, &par)?;
        live = out_res;
        shape = out_shape;
    }
    let _ = live;

    // Inbound: predictions return over the same connector.
    ctx.check_deadline("dl-centric.return")?;
    let (rows, cols) = x.shape().as_matrix()?;
    let result = connector.ship_retry(&x.reshape([rows, cols])?, retry)?;

    let after = connector.stats();
    Ok((
        Output::Dense(result),
        DlCentricStats {
            bytes_transferred: after.bytes_moved - before.bytes_moved,
            wire_time: after.wire_time - before.wire_time,
            transient_failures: after.transient_failures - before.transient_failures,
            wire_retries: after.retries - before.retries,
            runtime_retries,
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use relserve_nn::init::seeded_rng;
    use relserve_nn::zoo;
    use relserve_runtime::{MemoryGovernor, RuntimeProfile, TransferProfile};
    use relserve_tensor::parallel::Parallelism;

    fn instant_connector() -> Connector {
        Connector::new(TransferProfile::instant())
    }

    fn ctx(threads: usize) -> ExecContext {
        ExecContext::standalone(threads, MemoryGovernor::unlimited("dl-test"))
    }

    fn no_retry() -> RetryPolicy {
        RetryPolicy::none()
    }

    #[test]
    fn matches_in_process_forward() {
        let mut rng = seeded_rng(90);
        let model = zoo::fraud_fc_256(&mut rng).unwrap();
        let x = Tensor::from_fn([8, 28], |i| ((i % 9) as f32 - 4.0) * 0.25);
        let runtime = ExternalRuntime::launch(RuntimeProfile::tensorflow_like(), usize::MAX);
        let mut conn = instant_connector();
        let (out, stats) = run(&model, &x, &mut conn, &runtime, &ctx(2), &no_retry()).unwrap();
        let expect = model.forward(&x, &Parallelism::serial()).unwrap();
        assert!(out.into_dense().unwrap().approx_eq(&expect, 1e-5));
        // Both directions crossed the wire.
        assert!(stats.bytes_transferred > x.num_bytes());
        assert_eq!(runtime.governor().in_use(), 0);
        assert_eq!(stats.transient_failures, 0);
        assert_eq!(stats.wire_retries, 0);
    }

    #[test]
    fn external_runtime_oom_is_recoverable() {
        let mut rng = seeded_rng(91);
        let model = zoo::fraud_fc_512(&mut rng).unwrap();
        let x = Tensor::zeros([1024, 28]);
        let runtime = ExternalRuntime::launch(RuntimeProfile::pytorch_like(), model.param_bytes());
        let mut conn = instant_connector();
        let err = run(&model, &x, &mut conn, &runtime, &ctx(1), &no_retry()).unwrap_err();
        assert!(err.is_oom());
        assert_eq!(err.oom_domain(), Some("pytorch-like"));
    }

    #[test]
    fn flaky_wire_heals_under_retry_and_counts_attempts() {
        use relserve_runtime::{FaultConfig, FaultInjector};
        let mut rng = seeded_rng(94);
        let model = zoo::fraud_fc_256(&mut rng).unwrap();
        let x = Tensor::from_fn([8, 28], |i| ((i % 9) as f32 - 4.0) * 0.25);
        let runtime = ExternalRuntime::launch(RuntimeProfile::tensorflow_like(), usize::MAX);
        // Exactly two wire faults, then the link heals: default retry
        // (4 attempts) absorbs both.
        let mut cfg = FaultConfig::flaky_wire(21, 1.0);
        cfg.max_faults = Some(2);
        let mut conn = Connector::with_faults(TransferProfile::instant(), FaultInjector::new(cfg));
        let (out, stats) = run(
            &model,
            &x,
            &mut conn,
            &runtime,
            &ctx(1),
            &RetryPolicy::default(),
        )
        .unwrap();
        let expect = model.forward(&x, &Parallelism::serial()).unwrap();
        assert!(out.into_dense().unwrap().approx_eq(&expect, 1e-5));
        assert_eq!(stats.transient_failures, 2);
        assert_eq!(stats.wire_retries, 2);
        assert_eq!(stats.runtime_retries, 0);
    }

    #[test]
    fn dead_wire_exhausts_retries_with_transient_error() {
        use relserve_runtime::{FaultConfig, FaultInjector};
        let mut rng = seeded_rng(95);
        let model = zoo::fraud_fc_256(&mut rng).unwrap();
        let x = Tensor::zeros([4, 28]);
        let runtime = ExternalRuntime::launch(RuntimeProfile::tensorflow_like(), usize::MAX);
        let mut conn = Connector::with_faults(
            TransferProfile::instant(),
            FaultInjector::new(FaultConfig::flaky_wire(3, 1.0)),
        );
        let err = run(
            &model,
            &x,
            &mut conn,
            &runtime,
            &ctx(1),
            &RetryPolicy::default(),
        )
        .unwrap_err();
        assert!(
            err.is_transient(),
            "exhausted retries stay transient: {err}"
        );
        assert!(err.is_degradable(), "…and trigger the degradation ladder");
    }

    #[test]
    fn transient_runtime_stall_is_retried() {
        use relserve_runtime::{FaultConfig, FaultInjector};
        let mut rng = seeded_rng(96);
        let model = zoo::fraud_fc_256(&mut rng).unwrap();
        let x = Tensor::zeros([4, 28]);
        let mut cfg = FaultConfig::flaky_runtime(13, 1.0);
        cfg.max_faults = Some(1);
        let runtime = ExternalRuntime::launch(RuntimeProfile::tensorflow_like(), usize::MAX)
            .with_faults(FaultInjector::new(cfg));
        let mut conn = instant_connector();
        let (_, stats) = run(
            &model,
            &x,
            &mut conn,
            &runtime,
            &ctx(1),
            &RetryPolicy::default(),
        )
        .unwrap();
        assert_eq!(stats.runtime_retries, 1);
        assert_eq!(stats.wire_retries, 0);
    }

    #[test]
    fn expired_deadline_stops_execution_between_layers() {
        use relserve_runtime::{AdmissionPolicy, MemoryGovernor, ThreadCoordinator};
        let mut rng = seeded_rng(97);
        let model = zoo::fraud_fc_256(&mut rng).unwrap();
        let x = Tensor::zeros([4, 28]);
        let runtime = ExternalRuntime::launch(RuntimeProfile::tensorflow_like(), usize::MAX);
        let mut conn = instant_connector();
        let c = ThreadCoordinator::new(1);
        let deadline = std::time::Instant::now() + std::time::Duration::from_millis(5);
        let ctx = c
            .context_dedicated_with(
                MemoryGovernor::unlimited("dl-test"),
                &AdmissionPolicy::with_deadline(deadline),
            )
            .unwrap();
        std::thread::sleep(std::time::Duration::from_millis(10));
        let err = run(&model, &x, &mut conn, &runtime, &ctx, &no_retry()).unwrap_err();
        assert!(err.is_deadline_exceeded(), "{err}");
    }

    #[test]
    fn pytorch_like_ooms_before_tensorflow_like() {
        // The Table 3 LandCover pattern: same budget, the hungrier profile
        // fails first.
        let mut rng = seeded_rng(92);
        let model = zoo::landcover(125, &mut rng).unwrap(); // 20x20x3, 16 kernels
        let x = Tensor::from_fn([1, 20, 20, 3], |i| (i % 5) as f32 * 0.1);
        // Peak payload: params + input + output windows. Find a budget that
        // fits ×1.4 overhead but not ×2.0.
        let probe = ExternalRuntime::launch(
            RuntimeProfile {
                name: "probe".into(),
                memory_overhead: 1.0,
            },
            usize::MAX,
        );
        let mut conn = instant_connector();
        run(&model, &x, &mut conn, &probe, &ctx(1), &no_retry()).unwrap();
        let peak_payload = probe.governor().peak();
        let budget = (peak_payload as f64 * 1.7) as usize;
        let tf = ExternalRuntime::launch(RuntimeProfile::tensorflow_like(), budget);
        let pt = ExternalRuntime::launch(RuntimeProfile::pytorch_like(), budget);
        assert!(run(&model, &x, &mut conn, &tf, &ctx(1), &no_retry()).is_ok());
        assert!(run(&model, &x, &mut conn, &pt, &ctx(1), &no_retry())
            .unwrap_err()
            .is_oom());
    }

    #[test]
    fn wire_time_counts_for_slow_links() {
        let mut rng = seeded_rng(93);
        let model = zoo::fraud_fc_256(&mut rng).unwrap();
        let x = Tensor::zeros([100, 28]);
        let runtime = ExternalRuntime::launch(RuntimeProfile::tensorflow_like(), usize::MAX);
        // Slow modeled wire but without real sleeping (simulate_wire off).
        let mut conn = Connector::new(TransferProfile {
            bandwidth_bytes_per_sec: 1_000_000.0,
            fixed_latency: std::time::Duration::from_millis(5),
            per_row_overhead_ns: 100.0,
            simulate_wire: false,
        });
        let (_, stats) = run(&model, &x, &mut conn, &runtime, &ctx(1), &no_retry()).unwrap();
        assert!(stats.wire_time >= std::time::Duration::from_millis(10)); // 2 trips × 5 ms
    }
}
