//! Hybrid execution: run a mixed plan where each layer uses the
//! representation the adaptive optimizer chose (§7.1).
//!
//! Layers assigned UDF-centric execute on dense tensors under the database
//! governor; layers assigned relation-centric execute on block relations
//! through the buffer pool. Transitions between the two materialize or chunk
//! the activation as needed — and the dense direction is itself guarded by
//! the governor, with an automatic fallback: if densifying an intermediate
//! would OOM, the layer stays relation-centric instead of failing.

use crate::error::Result;
use crate::exec::relation_centric::{exec_layer, Flow};
use crate::exec::{layer_transient_bytes, Output};
use crate::ir::{InferencePlan, Representation};
use relserve_nn::Model;
use relserve_relational::tensor_table::TensorOpStats;
use relserve_runtime::ExecContext;
use relserve_storage::BufferPool;
use relserve_tensor::Tensor;
use std::sync::Arc;

/// Statistics of one hybrid execution.
#[derive(Debug, Clone, Copy, Default)]
pub struct HybridStats {
    /// Layers executed as in-database UDFs.
    pub udf_layers: usize,
    /// Layers executed relation-centrically.
    pub relational_layers: usize,
    /// Layers the optimizer wanted dense but the governor forced blocked.
    pub fallbacks: usize,
    /// Aggregated relational-operator statistics.
    pub rel_stats: TensorOpStats,
}

/// Execute `model` under `plan`'s per-layer representation choices, inside
/// `ctx`'s admitted slice of the machine (governor lease + kernel budget).
#[allow(unused_assignments)] // reservations: assignment *is* the drop-and-replace
pub fn run(
    model: &Model,
    batch: &Tensor,
    plan: &InferencePlan,
    pool: &Arc<BufferPool>,
    block: usize,
    ctx: &ExecContext,
) -> Result<(Output, HybridStats)> {
    let governor = ctx.governor();
    let par = ctx.parallelism();
    let batch_size = model.check_input(batch)?;
    let reps = plan.layer_representations();
    let mut stats = HybridStats::default();
    // Parameters of UDF-executed layers are charged for the whole call; for
    // simplicity (and conservatively) we charge all dense-resident params.
    let udf_param_bytes: usize = model
        .layers()
        .iter()
        .zip(&reps)
        .filter(|(_, r)| **r == Representation::UdfCentric)
        .map(|(l, _)| l.num_params() * relserve_tensor::ELEM_BYTES)
        .sum();
    let _params = governor.reserve(udf_param_bytes)?;

    let mut full_dims = vec![batch_size];
    full_dims.extend_from_slice(model.input_shape().dims());
    // When the first layer runs relation-centrically the input is chunked
    // straight into the buffer pool, so no dense reservation is needed.
    let input_res = if reps.first() == Some(&Representation::RelationCentric) {
        None
    } else {
        Some(governor.reserve(batch.num_bytes())?)
    };
    let mut flow = Flow::Dense(batch.clone().reshape(full_dims)?);
    // Reservation backing the current dense activation (None while blocked);
    // each assignment drops the previous reservation, which is its purpose.
    let mut live = input_res;
    let mut shape = model.input_shape().clone();

    for (i, layer) in model.layers().iter().enumerate() {
        ctx.check_deadline("hybrid.layer")?;
        let rep = reps.get(i).copied().unwrap_or(Representation::UdfCentric);
        let out_shape = layer.output_shape(&shape)?;
        let tag = format!("hy.l{i}");
        match rep {
            Representation::UdfCentric | Representation::DlCentric => {
                // Need a dense input. If the flow is blocked, try to
                // materialize it under the governor; on OOM fall back to
                // relation-centric for this layer.
                let dense_in: Option<Tensor> = match &flow {
                    Flow::Dense(_) => None, // already dense; reuse below
                    Flow::Rows(t) => {
                        let bytes = t.rows() * t.cols() * relserve_tensor::ELEM_BYTES;
                        match governor.reserve(bytes) {
                            Ok(res) => {
                                live = Some(res);
                                Some(t.to_dense()?)
                            }
                            Err(_) => None,
                        }
                    }
                    Flow::Pixels { table, n, h, w } => {
                        let bytes = table.rows() * table.cols() * relserve_tensor::ELEM_BYTES;
                        match governor.reserve(bytes) {
                            Ok(res) => {
                                live = Some(res);
                                let c = table.cols();
                                Some(table.to_dense()?.reshape([*n, *h, *w, c])?)
                            }
                            Err(_) => None,
                        }
                    }
                };
                let dense_flow = match (&flow, dense_in) {
                    (Flow::Dense(_), _) => true,
                    (_, Some(t)) => {
                        flow = Flow::Dense(t);
                        true
                    }
                    (_, None) => false,
                };
                if dense_flow {
                    let Flow::Dense(x) = &flow else {
                        unreachable!()
                    };
                    let out_bytes = batch_size * out_shape.num_bytes();
                    let transient = layer_transient_bytes(layer, batch_size, &shape);
                    let _scratch = if transient > 0 {
                        Some(governor.reserve(transient)?)
                    } else {
                        None
                    };
                    let out_res = governor.reserve(out_bytes)?;
                    let y = layer.forward(x, &par)?;
                    flow = Flow::Dense(y);
                    live = Some(out_res);
                    stats.udf_layers += 1;
                } else {
                    // Fallback: stay blocked.
                    flow = exec_layer(layer, flow, pool, block, &par, &tag, &mut stats.rel_stats)?;
                    live = None;
                    stats.relational_layers += 1;
                    stats.fallbacks += 1;
                }
            }
            Representation::RelationCentric => {
                // Dense→blocked transition releases the dense reservation.
                flow = exec_layer(layer, flow, pool, block, &par, &tag, &mut stats.rel_stats)?;
                live = None;
                stats.relational_layers += 1;
            }
        }
        shape = out_shape;
    }
    let _ = live;
    Ok((
        match flow {
            Flow::Dense(t) => Output::Dense(t),
            Flow::Rows(t) => Output::Blocked(t),
            Flow::Pixels { table, .. } => Output::Blocked(table),
        },
        stats,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optimizer::RuleBasedOptimizer;
    use relserve_nn::init::seeded_rng;
    use relserve_nn::zoo;
    use relserve_runtime::MemoryGovernor;
    use relserve_storage::DiskManager;
    use relserve_tensor::parallel::Parallelism;

    fn pool(frames: usize) -> Arc<BufferPool> {
        Arc::new(BufferPool::new(
            Arc::new(DiskManager::temp().unwrap()),
            frames,
        ))
    }

    fn ctx(governor: &MemoryGovernor) -> ExecContext {
        ExecContext::standalone(1, governor.clone())
    }

    #[test]
    fn all_udf_plan_matches_forward() {
        let mut rng = seeded_rng(95);
        let model = zoo::fraud_fc_256(&mut rng).unwrap();
        let x = Tensor::from_fn([12, 28], |i| ((i % 7) as f32 - 3.0) * 0.2);
        let plan = RuleBasedOptimizer::paper_default()
            .plan(&model, 12)
            .unwrap();
        let governor = MemoryGovernor::unlimited("db");
        let (out, stats) = run(&model, &x, &plan, &pool(16), 8, &ctx(&governor)).unwrap();
        assert_eq!(stats.udf_layers, 2);
        assert_eq!(stats.relational_layers, 0);
        let expect = model.forward(&x, &Parallelism::serial()).unwrap();
        assert!(out.into_dense().unwrap().approx_eq(&expect, 1e-4));
        assert_eq!(governor.in_use(), 0);
    }

    #[test]
    fn mixed_plan_matches_forward() {
        let mut rng = seeded_rng(96);
        let model = zoo::encoder_fc(&mut rng).unwrap();
        let x = Tensor::from_fn([6, 76], |i| ((i % 13) as f32 - 6.0) * 0.05);
        // A threshold between the two layers' estimates forces layer 0
        // (76→3072) relational and layer 1 (3072→768) UDF, or vice versa.
        let opt = RuleBasedOptimizer::new(9_000_000);
        let plan = opt.plan(&model, 6).unwrap();
        let reps = plan.layer_representations();
        assert!(
            reps.contains(&Representation::RelationCentric)
                || reps.contains(&Representation::UdfCentric)
        );
        let governor = MemoryGovernor::unlimited("db");
        let (out, _) = run(&model, &x, &plan, &pool(128), 64, &ctx(&governor)).unwrap();
        let expect = model.forward(&x, &Parallelism::serial()).unwrap();
        assert!(out.into_dense().unwrap().approx_eq(&expect, 1e-2));
    }

    #[test]
    fn forced_relational_plan_matches_forward() {
        let mut rng = seeded_rng(97);
        let model = zoo::fraud_fc_512(&mut rng).unwrap();
        let x = Tensor::from_fn([9, 28], |i| (i % 5) as f32 * 0.1);
        // Zero threshold: everything relational.
        let plan = RuleBasedOptimizer::new(0).plan(&model, 9).unwrap();
        let governor = MemoryGovernor::with_budget("db", 64 * 1024); // tiny
        let (out, stats) = run(&model, &x, &plan, &pool(64), 16, &ctx(&governor)).unwrap();
        assert_eq!(stats.udf_layers, 0);
        assert!(stats.relational_layers >= 2);
        let expect = model.forward(&x, &Parallelism::serial()).unwrap();
        assert!(out.into_dense().unwrap().approx_eq(&expect, 1e-3));
    }

    #[test]
    fn fallback_keeps_layer_blocked_when_densify_would_oom() {
        let mut rng = seeded_rng(98);
        let model = zoo::fraud_fc_512(&mut rng).unwrap();
        let batch = 256;
        let x = Tensor::from_fn([batch, 28], |i| (i % 3) as f32 * 0.2);
        // Plan: layer 0 relational (big hidden activation), layer 1 UDF.
        let first_est = (batch * 28 + 28 * 512 + batch * 512) * 4;
        let opt = RuleBasedOptimizer::new(first_est - 1);
        let plan = opt.plan(&model, batch).unwrap();
        assert_eq!(
            plan.layer_representations()[0],
            Representation::RelationCentric
        );
        // Governor too small to densify the 256×512 hidden activation, so
        // layer 1 must fall back to relation-centric execution.
        let governor = MemoryGovernor::with_budget("db", 16 * 1024);
        let (out, stats) = run(&model, &x, &plan, &pool(128), 32, &ctx(&governor)).unwrap();
        assert!(stats.fallbacks >= 1, "stats: {stats:?}");
        let expect = model.forward(&x, &Parallelism::serial()).unwrap();
        assert!(out.into_dense().unwrap().approx_eq(&expect, 1e-3));
    }
}
