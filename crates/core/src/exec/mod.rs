//! Executors for the three architectures plus the hybrid (adaptive) path.
//!
//! All executors share one contract: take a model and a dense feature batch
//! pulled from the RDBMS, return an [`Output`] — dense when the result fits
//! the memory budget, blocked (a tensor relation) when only the
//! relation-centric path could materialize it.

pub mod dl_centric;
pub mod hybrid;
pub mod pipelined;
pub mod relation_centric;
pub(crate) mod spsc;
pub mod udf_centric;

use crate::error::{Error, Result};
use relserve_relational::TensorTable;
use relserve_tensor::{ops, Tensor};

/// Result of an inference execution.
pub enum Output {
    /// A dense result tensor (fits in memory).
    Dense(Tensor),
    /// A tensor relation of result blocks (may exceed memory; lives behind
    /// the buffer pool).
    Blocked(TensorTable),
}

impl Output {
    /// Number of result rows.
    pub fn num_rows(&self) -> usize {
        match self {
            Output::Dense(t) => t.shape().as_matrix().map(|(r, _)| r).unwrap_or(0),
            Output::Blocked(t) => t.rows(),
        }
    }

    /// Number of result columns.
    pub fn num_cols(&self) -> usize {
        match self {
            Output::Dense(t) => t.shape().as_matrix().map(|(_, c)| c).unwrap_or(0),
            Output::Blocked(t) => t.cols(),
        }
    }

    /// Row-wise argmax (class predictions). For blocked outputs this streams
    /// one block-row at a time so it never materializes the full tensor.
    pub fn predictions(&self) -> Result<Vec<usize>> {
        match self {
            Output::Dense(t) => {
                let (r, c) = t.shape().as_matrix()?;
                let flat = t.clone().reshape([r, c])?;
                Ok(ops::argmax_rows(&flat)?)
            }
            Output::Blocked(table) => {
                let mut best = vec![(f32::NEG_INFINITY, 0usize); table.rows()];
                let spec = table.spec();
                for coord in table.coords().collect::<Vec<_>>() {
                    let block = table.get_block(coord)?;
                    let (bh, bw) = block.shape().as_matrix()?;
                    let r0 = coord.row * spec.block_rows;
                    let c0 = coord.col * spec.block_cols;
                    for r in 0..bh {
                        for c in 0..bw {
                            let v = block.data()[r * bw + c];
                            if v > best[r0 + r].0 {
                                best[r0 + r] = (v, c0 + c);
                            }
                        }
                    }
                }
                Ok(best.into_iter().map(|(_, c)| c).collect())
            }
        }
    }

    /// Materialize as dense, whatever the representation. Only for results
    /// known to fit (tests, small outputs).
    pub fn into_dense(self) -> Result<Tensor> {
        match self {
            Output::Dense(t) => Ok(t),
            Output::Blocked(table) => Ok(table.to_dense()?),
        }
    }

    /// Sum of all elements — a cheap whole-result checksum that works
    /// streaming for blocked outputs.
    pub fn checksum(&self) -> Result<f64> {
        match self {
            Output::Dense(t) => Ok(t.data().iter().map(|v| *v as f64).sum()),
            Output::Blocked(table) => {
                let mut sum = 0.0f64;
                for coord in table.coords().collect::<Vec<_>>() {
                    let block = table.get_block(coord)?;
                    sum += block.data().iter().map(|v| *v as f64).sum::<f64>();
                }
                Ok(sum)
            }
        }
    }
}

impl std::fmt::Debug for Output {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Output::Dense(t) => write!(f, "Output::Dense({:?})", t.shape()),
            Output::Blocked(t) => write!(
                f,
                "Output::Blocked({}x{}, {} blocks)",
                t.rows(),
                t.cols(),
                t.num_blocks()
            ),
        }
    }
}

/// Transient working memory a layer needs beyond its input and output —
/// today that is the im2col patch matrix of non-pointwise convolutions.
pub(crate) fn layer_transient_bytes(
    layer: &relserve_nn::Layer,
    batch: usize,
    in_shape: &relserve_tensor::Shape,
) -> usize {
    match layer {
        relserve_nn::Layer::Conv2d { spec, .. } if !spec.is_pointwise() => {
            let dims = in_shape.dims();
            match spec.output_dims(dims[0], dims[1]) {
                Ok((oh, ow)) => batch * oh * ow * spec.patch_len() * relserve_tensor::ELEM_BYTES,
                Err(_) => 0,
            }
        }
        _ => 0,
    }
}

/// Validate a batch against a model and return `(batch_size, flat_width)`.
pub(crate) fn batch_dims(model: &relserve_nn::Model, batch: &Tensor) -> Result<(usize, usize)> {
    let n = model.check_input(batch).map_err(Error::from)?;
    let width = model.input_shape().num_elements();
    Ok((n, width))
}

#[cfg(test)]
mod tests {
    use super::*;
    use relserve_storage::{BufferPool, DiskManager};
    use relserve_tensor::BlockingSpec;
    use std::sync::Arc;

    fn blocked_from(t: &Tensor) -> TensorTable {
        let pool = Arc::new(BufferPool::new(Arc::new(DiskManager::temp().unwrap()), 16));
        TensorTable::from_dense(pool, "t", t, BlockingSpec::square(2)).unwrap()
    }

    #[test]
    fn predictions_agree_between_representations() {
        let t = Tensor::from_vec(
            [3, 4],
            vec![
                0.1, 0.9, 0.0, 0.0, //
                0.7, 0.1, 0.1, 0.1, //
                0.0, 0.0, 0.2, 0.8,
            ],
        )
        .unwrap();
        let dense = Output::Dense(t.clone());
        let blocked = Output::Blocked(blocked_from(&t));
        assert_eq!(dense.predictions().unwrap(), vec![1, 0, 3]);
        assert_eq!(blocked.predictions().unwrap(), vec![1, 0, 3]);
    }

    #[test]
    fn checksum_agrees_between_representations() {
        let t = Tensor::from_fn([5, 7], |i| (i as f32).sin());
        let dense = Output::Dense(t.clone());
        let blocked = Output::Blocked(blocked_from(&t));
        let a = dense.checksum().unwrap();
        let b = blocked.checksum().unwrap();
        assert!((a - b).abs() < 1e-4);
    }

    #[test]
    fn dims_reported() {
        let t = Tensor::zeros([6, 2]);
        let o = Output::Blocked(blocked_from(&t));
        assert_eq!(o.num_rows(), 6);
        assert_eq!(o.num_cols(), 2);
    }
}
