//! Pipelined DL execution inside the UDF-centric architecture (§5.2).
//!
//! DL serving systems partition a model into operators/layers dispatched to
//! multiple devices that "work in parallel, composing a pipeline. A pipeline
//! stage at each device works in a streaming style." The paper notes this is
//! "feasible by breaking the model UDF into multiple fine-grained operator
//! UDFs and deploying those UDFs ... following the stream processing
//! paradigm" — which is exactly what this executor does, with threads
//! standing in for devices:
//!
//! * the batch is split into micro-batches;
//! * every layer becomes a stage on its own thread, connected by bounded
//!   channels (the bound is the pipeline's "device memory": at most one
//!   in-flight micro-batch per link);
//! * micro-batches stream through, so stage `i` processes micro-batch `b`
//!   while stage `i+1` processes `b-1` — layer parallelism without data
//!   shuffles, the §5.2 trade-off against relation-centric processing.
//!
//! Peak activation memory is `stages × micro_batch` activations rather than
//! `batch` — the executor charges the governor accordingly.

use crate::error::{Error, Result};
use crate::exec::Output;
use crossbeam::channel;
use relserve_nn::Model;
use relserve_runtime::MemoryGovernor;
use relserve_tensor::Tensor;

/// Statistics of one pipelined execution.
#[derive(Debug, Clone, Copy, Default)]
pub struct PipelineStats {
    /// Number of micro-batches streamed.
    pub micro_batches: usize,
    /// Number of stages (layers).
    pub stages: usize,
}

/// Run `model` over `batch` as a layer pipeline with `micro_batch`-row
/// micro-batches. Kernels inside each stage use `threads_per_stage` threads
/// (coordinate the product with the thread coordinator, §3.1).
pub fn run(
    model: &Model,
    batch: &Tensor,
    micro_batch: usize,
    governor: &MemoryGovernor,
    threads_per_stage: usize,
) -> Result<(Output, PipelineStats)> {
    if micro_batch == 0 {
        return Err(Error::Invalid("micro_batch must be positive".into()));
    }
    let batch_size = model.check_input(batch)?;
    let width = model.input_shape().num_elements();
    let flat = batch.clone().reshape([batch_size, width])?;
    let layers = model.layers();
    if layers.is_empty() {
        return Ok((
            Output::Dense(flat),
            PipelineStats {
                micro_batches: 0,
                stages: 0,
            },
        ));
    }

    // Memory accounting: parameters + one micro-batch activation window per
    // stage boundary (input and output of every stage can be in flight).
    let _params = governor.reserve(model.param_bytes())?;
    let mut window_bytes = 0usize;
    {
        let mut shape = model.input_shape().clone();
        window_bytes += micro_batch * shape.num_bytes();
        for layer in layers {
            shape = layer.output_shape(&shape)?;
            window_bytes += micro_batch * shape.num_bytes();
        }
    }
    let _windows = governor.reserve(window_bytes)?;

    let num_micro = batch_size.div_ceil(micro_batch);
    type Msg = std::result::Result<(usize, Tensor), relserve_nn::Error>;

    // input shapes per stage, for restoring spatial dims.
    let mut stage_in_shapes = Vec::with_capacity(layers.len());
    {
        let mut shape = model.input_shape().clone();
        for layer in layers {
            stage_in_shapes.push(shape.clone());
            shape = layer.output_shape(&shape)?;
        }
    }

    let mut outputs: Vec<Option<Tensor>> = vec![None; num_micro];
    crossbeam::scope(|scope| -> Result<()> {
        // Build the channel chain: source → s0 → s1 → ... → sink.
        let (src_tx, mut prev_rx) = channel::bounded::<Msg>(1);
        let mut stage_handles = Vec::new();
        for (idx, layer) in layers.iter().enumerate() {
            let (tx, rx) = channel::bounded::<Msg>(1);
            let in_shape = stage_in_shapes[idx].clone();
            let stage_rx = prev_rx;
            prev_rx = rx;
            let handle = scope.spawn(move |_| {
                for msg in stage_rx.iter() {
                    let out = msg.and_then(|(i, t)| {
                        // Restore the example shape for spatial layers.
                        let rows = t.shape().dim(0);
                        let mut dims = vec![rows];
                        dims.extend_from_slice(in_shape.dims());
                        let t = t.reshape(dims)?;
                        let y = layer.forward(&t, threads_per_stage)?;
                        // Flatten back to [rows, features] for transport.
                        let total: usize = y.shape().dims()[1..].iter().product();
                        Ok((i, y.reshape([rows, total])?))
                    });
                    let failed = out.is_err();
                    if tx.send(out).is_err() || failed {
                        break;
                    }
                }
                drop(tx);
            });
            stage_handles.push(handle);
        }

        // Source: feed micro-batches.
        let feeder = scope.spawn(move |_| {
            for (i, start) in (0..batch_size).step_by(micro_batch).enumerate() {
                let end = (start + micro_batch).min(batch_size);
                let chunk = flat
                    .slice2(start, end, 0, width)
                    .map_err(relserve_nn::Error::Tensor)
                    .map(|t| (i, t));
                let failed = chunk.is_err();
                if src_tx.send(chunk).is_err() || failed {
                    break;
                }
            }
            drop(src_tx);
        });

        // Sink: collect in order.
        let mut first_error: Option<relserve_nn::Error> = None;
        for msg in prev_rx.iter() {
            match msg {
                Ok((i, t)) => outputs[i] = Some(t),
                Err(e) => {
                    first_error = Some(e);
                    break;
                }
            }
        }
        feeder.join().expect("feeder panicked");
        for h in stage_handles {
            h.join().expect("stage panicked");
        }
        match first_error {
            Some(e) => Err(Error::Nn(e)),
            None => Ok(()),
        }
    })
    .expect("pipeline scope panicked")?;

    // Stitch micro-batch outputs back together, in order.
    let mut iter = outputs.into_iter();
    let mut result = iter
        .next()
        .flatten()
        .ok_or_else(|| Error::Invalid("pipeline produced no output".into()))?;
    for part in iter {
        let part = part.ok_or_else(|| Error::Invalid("pipeline dropped a micro-batch".into()))?;
        result = result.vconcat(&part)?;
    }
    Ok((
        Output::Dense(result),
        PipelineStats {
            micro_batches: num_micro,
            stages: layers.len(),
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use relserve_nn::init::seeded_rng;
    use relserve_nn::zoo;

    #[test]
    fn matches_plain_forward_ffnn() {
        let mut rng = seeded_rng(150);
        let model = zoo::fraud_fc_256(&mut rng).unwrap();
        let x = Tensor::from_fn([37, 28], |i| ((i % 11) as f32 - 5.0) * 0.2);
        let governor = MemoryGovernor::unlimited("pipe");
        let (out, stats) = run(&model, &x, 8, &governor, 1).unwrap();
        assert_eq!(stats.micro_batches, 5); // ceil(37/8)
        assert_eq!(stats.stages, 2);
        let expect = model.forward(&x, 1).unwrap();
        assert!(out.into_dense().unwrap().approx_eq(&expect, 1e-4));
        assert_eq!(governor.in_use(), 0);
    }

    #[test]
    fn matches_plain_forward_cnn() {
        let mut rng = seeded_rng(151);
        let model = zoo::caching_cnn(&mut rng).unwrap();
        let x = Tensor::from_fn([6, 28, 28, 1], |i| ((i % 7) as f32) * 0.1);
        let governor = MemoryGovernor::unlimited("pipe");
        let (out, _) = run(&model, &x, 2, &governor, 1).unwrap();
        let expect = model.forward(&x, 1).unwrap();
        let (r, c) = expect.shape().as_matrix().unwrap();
        assert!(out
            .into_dense()
            .unwrap()
            .approx_eq(&expect.reshape([r, c]).unwrap(), 1e-4));
    }

    #[test]
    fn micro_batch_larger_than_batch() {
        let mut rng = seeded_rng(152);
        let model = zoo::fraud_fc_256(&mut rng).unwrap();
        let x = Tensor::from_fn([5, 28], |i| i as f32 * 0.01);
        let governor = MemoryGovernor::unlimited("pipe");
        let (out, stats) = run(&model, &x, 100, &governor, 1).unwrap();
        assert_eq!(stats.micro_batches, 1);
        assert_eq!(out.num_rows(), 5);
    }

    #[test]
    fn memory_is_bounded_by_windows_not_batch() {
        // Pipelined peak must track micro-batch windows, far below the full
        // batch's activation footprint.
        let mut rng = seeded_rng(153);
        let model = zoo::encoder_fc(&mut rng).unwrap();
        let batch = 512;
        let x = Tensor::zeros([batch, 76]);
        let full = MemoryGovernor::unlimited("full");
        crate::exec::udf_centric::run(&model, &x, &full, 1).unwrap();
        let pipe = MemoryGovernor::unlimited("pipe");
        run(&model, &x, 16, &pipe, 1).unwrap();
        assert!(
            pipe.peak() < full.peak(),
            "pipeline peak {} ≥ batch peak {}",
            pipe.peak(),
            full.peak()
        );
    }

    #[test]
    fn oom_is_recoverable() {
        let mut rng = seeded_rng(154);
        let model = zoo::fraud_fc_512(&mut rng).unwrap();
        let x = Tensor::zeros([64, 28]);
        let governor = MemoryGovernor::with_budget("pipe", model.param_bytes() - 1);
        assert!(run(&model, &x, 8, &governor, 1).unwrap_err().is_oom());
        assert_eq!(governor.in_use(), 0);
    }

    #[test]
    fn zero_micro_batch_rejected() {
        let mut rng = seeded_rng(155);
        let model = zoo::fraud_fc_256(&mut rng).unwrap();
        let x = Tensor::zeros([4, 28]);
        let governor = MemoryGovernor::unlimited("pipe");
        assert!(run(&model, &x, 0, &governor, 1).is_err());
    }
}
