//! Pipelined DL execution inside the UDF-centric architecture (§5.2).
//!
//! DL serving systems partition a model into operators/layers dispatched to
//! multiple devices that "work in parallel, composing a pipeline. A pipeline
//! stage at each device works in a streaming style." The paper notes this is
//! "feasible by breaking the model UDF into multiple fine-grained operator
//! UDFs and deploying those UDFs ... following the stream processing
//! paradigm" — which is exactly what this executor does, with kernel-pool
//! threads standing in for devices:
//!
//! * the batch is split into micro-batches;
//! * every layer becomes a stage, connected by capacity-1 [`SpscSlot`]s (the
//!   bound is the pipeline's "device memory": at most one in-flight
//!   micro-batch per link);
//! * micro-batches stream through, so stage `i` processes micro-batch `b`
//!   while stage `i+1` processes `b-1` — layer parallelism without data
//!   shuffles, the §5.2 trade-off against relation-centric processing.
//!
//! Scheduling is cooperative: the pipeline's nodes (feeder, stages, sink)
//! are claimable work units, and the query's granted kernel threads run a
//! driver loop that claims any node able to make progress. Because a driver
//! never blocks on a slot — a node that cannot progress is simply skipped —
//! the pipeline completes even when the execution context granted a single
//! thread, and it never runs threads beyond the [`ExecContext`]'s admitted
//! budget.
//!
//! Peak activation memory is `stages × micro_batch` activations rather than
//! `batch` — the executor charges the context's governor accordingly.

use crate::error::{Error, Result};
use crate::exec::spsc::SpscSlot;
use crate::exec::Output;
use relserve_nn::{Layer, Model};
use relserve_runtime::ExecContext;
use relserve_tensor::parallel::Parallelism;
use relserve_tensor::{Shape, Tensor};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;

/// Statistics of one pipelined execution.
#[derive(Debug, Clone, Copy, Default)]
pub struct PipelineStats {
    /// Number of micro-batches streamed.
    pub micro_batches: usize,
    /// Number of stages (layers).
    pub stages: usize,
}

/// What flows along a pipeline link: an indexed micro-batch, or the error
/// that killed its lineage.
type Msg = std::result::Result<(usize, Tensor), relserve_nn::Error>;

/// Shared state of one pipelined execution: the node graph, the capacity-1
/// links, and the claim flags the cooperative drivers synchronize on.
struct Pipeline<'a> {
    flat: &'a Tensor,
    layers: &'a [Layer],
    stage_in_shapes: &'a [Shape],
    batch_size: usize,
    micro_batch: usize,
    width: usize,
    num_micro: usize,
    /// Kernel budget of one stage's forward pass (the per-stage share of the
    /// thread plan, sub-granted from the query's context).
    stage_par: Parallelism,
    /// `slots[s]` feeds node `s + 1`: slot 0 is the feeder's output, slot
    /// `layers.len()` is the sink's input.
    slots: Vec<SpscSlot<Msg>>,
    /// One claim flag per node (feeder + stages + sink); a node is stepped
    /// by at most one driver at a time.
    busy: Vec<AtomicBool>,
    next_feed: AtomicUsize,
    collected: AtomicUsize,
    done: AtomicBool,
    outputs: Mutex<Vec<Option<Tensor>>>,
    first_error: Mutex<Option<relserve_nn::Error>>,
    /// The query's deadline, checked cooperatively once per drive sweep.
    deadline: Option<std::time::Instant>,
    /// Set by whichever driver observes the deadline expire; surfaced as
    /// [`relserve_runtime::Error::DeadlineExceeded`] after the drivers stop.
    deadline_hit: AtomicBool,
}

impl Pipeline<'_> {
    fn nodes(&self) -> usize {
        self.layers.len() + 2
    }

    /// Step node `node` once; returns whether any progress was made.
    fn step(&self, node: usize) -> bool {
        if node == 0 {
            self.step_feeder()
        } else if node == self.layers.len() + 1 {
            self.step_sink()
        } else {
            self.step_stage(node - 1)
        }
    }

    fn step_feeder(&self) -> bool {
        let i = self.next_feed.load(Ordering::Relaxed);
        if i >= self.num_micro || !self.slots[0].is_empty() {
            return false;
        }
        let start = i * self.micro_batch;
        let end = (start + self.micro_batch).min(self.batch_size);
        let chunk = self
            .flat
            .slice2(start, end, 0, self.width)
            .map_err(relserve_nn::Error::Tensor)
            .map(|t| (i, t));
        self.next_feed.store(i + 1, Ordering::Relaxed);
        if self.slots[0].try_put(chunk).is_err() {
            unreachable!("feeder is its slot's only producer");
        }
        true
    }

    fn step_stage(&self, s: usize) -> bool {
        if !self.slots[s + 1].is_empty() {
            return false; // downstream link full: skip, don't block
        }
        let Some(msg) = self.slots[s].try_take() else {
            return false;
        };
        let out = msg.and_then(|(i, t)| {
            // Restore the example shape for spatial layers.
            let rows = t.shape().dim(0);
            let mut dims = vec![rows];
            dims.extend_from_slice(self.stage_in_shapes[s].dims());
            let t = t.reshape(dims)?;
            let y = self.layers[s].forward(&t, &self.stage_par)?;
            // Flatten back to [rows, features] for transport.
            let total: usize = y.shape().dims()[1..].iter().product();
            Ok((i, y.reshape([rows, total])?))
        });
        if self.slots[s + 1].try_put(out).is_err() {
            unreachable!("stage is its output slot's only producer");
        }
        true
    }

    fn step_sink(&self) -> bool {
        let Some(msg) = self.slots[self.layers.len()].try_take() else {
            return false;
        };
        match msg {
            Ok((i, t)) => {
                self.outputs.lock().expect("pipeline outputs lock")[i] = Some(t);
                if self.collected.fetch_add(1, Ordering::AcqRel) + 1 == self.num_micro {
                    self.done.store(true, Ordering::Release);
                }
            }
            Err(e) => {
                *self.first_error.lock().expect("pipeline error lock") = Some(e);
                self.done.store(true, Ordering::Release);
            }
        }
        true
    }

    /// Drive the pipeline until completion or error: repeatedly claim any
    /// unclaimed node and step it. Never blocks on a link, so any number of
    /// drivers (including one) finishes every in-flight micro-batch —
    /// progress is guaranteed because an unfinished micro-batch always sits
    /// in some slot whose consumer is claimable.
    fn drive(&self) {
        while !self.done.load(Ordering::Acquire) {
            if self
                .deadline
                .is_some_and(|d| std::time::Instant::now() >= d)
            {
                // Stop every driver: in-flight micro-batches are abandoned
                // and the query unwinds, releasing its grant mid-flight.
                self.deadline_hit.store(true, Ordering::Release);
                self.done.store(true, Ordering::Release);
                return;
            }
            let mut progressed = false;
            for node in 0..self.nodes() {
                if self.done.load(Ordering::Acquire) {
                    return;
                }
                if self.busy[node]
                    .compare_exchange(false, true, Ordering::Acquire, Ordering::Relaxed)
                    .is_err()
                {
                    continue;
                }
                let p = self.step(node);
                self.busy[node].store(false, Ordering::Release);
                progressed |= p;
            }
            if !progressed {
                std::thread::yield_now();
            }
        }
    }
}

/// Run `model` over `batch` as a layer pipeline with `micro_batch`-row
/// micro-batches, inside `ctx`'s admitted slice of the machine: the context's
/// granted kernel threads drive the stages cooperatively, and each stage's
/// kernels use the per-stage share of the context's thread plan (§3.1).
pub fn run(
    model: &Model,
    batch: &Tensor,
    micro_batch: usize,
    ctx: &ExecContext,
) -> Result<(Output, PipelineStats)> {
    if micro_batch == 0 {
        return Err(Error::Invalid("micro_batch must be positive".into()));
    }
    let governor = ctx.governor();
    let batch_size = model.check_input(batch)?;
    let width = model.input_shape().num_elements();
    let flat = batch.clone().reshape([batch_size, width])?;
    let layers = model.layers();
    if layers.is_empty() {
        return Ok((
            Output::Dense(flat),
            PipelineStats {
                micro_batches: 0,
                stages: 0,
            },
        ));
    }

    // Memory accounting: parameters + one micro-batch activation window per
    // stage boundary (input and output of every stage can be in flight).
    let _params = governor.reserve(model.param_bytes())?;
    let mut window_bytes = 0usize;
    let mut stage_in_shapes = Vec::with_capacity(layers.len());
    {
        let mut shape = model.input_shape().clone();
        window_bytes += micro_batch * shape.num_bytes();
        for layer in layers {
            stage_in_shapes.push(shape.clone());
            shape = layer.output_shape(&shape)?;
            window_bytes += micro_batch * shape.num_bytes();
        }
    }
    let _windows = governor.reserve(window_bytes)?;

    let num_micro = batch_size.div_ceil(micro_batch);
    let pipeline = Pipeline {
        flat: &flat,
        layers,
        stage_in_shapes: &stage_in_shapes,
        batch_size,
        micro_batch,
        width,
        num_micro,
        stage_par: ctx.parallelism_with(ctx.plan().kernel_threads),
        slots: (0..=layers.len()).map(|_| SpscSlot::new()).collect(),
        busy: (0..layers.len() + 2)
            .map(|_| AtomicBool::new(false))
            .collect(),
        next_feed: AtomicUsize::new(0),
        collected: AtomicUsize::new(0),
        done: AtomicBool::new(false),
        outputs: Mutex::new(vec![None; num_micro]),
        first_error: Mutex::new(None),
        deadline: ctx.deadline(),
        deadline_hit: AtomicBool::new(false),
    };

    // One driver per granted kernel thread, capped at the node count; the
    // drivers run as stripe tasks on the shared pool (a single driver runs
    // inline on this thread).
    let drivers = ctx.kernel_threads().min(pipeline.nodes());
    ctx.parallelism_with(drivers)
        .run_stripes(drivers, &|_| pipeline.drive());

    if let Some(e) = pipeline
        .first_error
        .lock()
        .expect("pipeline error lock")
        .take()
    {
        return Err(Error::Nn(e));
    }
    if pipeline.deadline_hit.load(Ordering::Acquire) {
        return Err(Error::Runtime(relserve_runtime::Error::DeadlineExceeded {
            phase: "pipelined.drive".into(),
        }));
    }
    let outputs = pipeline
        .outputs
        .into_inner()
        .expect("pipeline outputs lock");

    // Stitch micro-batch outputs back together, in order.
    let mut iter = outputs.into_iter();
    let mut result = iter
        .next()
        .flatten()
        .ok_or_else(|| Error::Invalid("pipeline produced no output".into()))?;
    for part in iter {
        let part = part.ok_or_else(|| Error::Invalid("pipeline dropped a micro-batch".into()))?;
        result = result.vconcat(&part)?;
    }
    Ok((
        Output::Dense(result),
        PipelineStats {
            micro_batches: num_micro,
            stages: layers.len(),
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use relserve_nn::init::seeded_rng;
    use relserve_nn::zoo;
    use relserve_runtime::MemoryGovernor;

    fn ctx(threads: usize, governor: &MemoryGovernor) -> ExecContext {
        ExecContext::standalone(threads, governor.clone())
    }

    #[test]
    fn matches_plain_forward_ffnn() {
        let mut rng = seeded_rng(150);
        let model = zoo::fraud_fc_256(&mut rng).unwrap();
        let x = Tensor::from_fn([37, 28], |i| ((i % 11) as f32 - 5.0) * 0.2);
        let governor = MemoryGovernor::unlimited("pipe");
        let (out, stats) = run(&model, &x, 8, &ctx(1, &governor)).unwrap();
        assert_eq!(stats.micro_batches, 5); // ceil(37/8)
        assert_eq!(stats.stages, 2);
        let expect = model.forward(&x, &Parallelism::serial()).unwrap();
        assert!(out.into_dense().unwrap().approx_eq(&expect, 1e-4));
        assert_eq!(governor.in_use(), 0);
    }

    #[test]
    fn concurrent_drivers_match_serial() {
        // Multiple granted threads drive the same pipeline cooperatively on
        // the shared pool; results must be identical to the 1-thread run.
        let mut rng = seeded_rng(156);
        let model = zoo::fraud_fc_256(&mut rng).unwrap();
        let x = Tensor::from_fn([53, 28], |i| ((i % 13) as f32 - 6.0) * 0.15);
        let governor = MemoryGovernor::unlimited("pipe");
        let (par_out, stats) = run(&model, &x, 4, &ctx(4, &governor)).unwrap();
        assert_eq!(stats.micro_batches, 14);
        let (ser_out, _) = run(&model, &x, 4, &ctx(1, &governor)).unwrap();
        assert!(par_out
            .into_dense()
            .unwrap()
            .approx_eq(&ser_out.into_dense().unwrap(), 1e-5));
        assert_eq!(governor.in_use(), 0);
    }

    #[test]
    fn matches_plain_forward_cnn() {
        let mut rng = seeded_rng(151);
        let model = zoo::caching_cnn(&mut rng).unwrap();
        let x = Tensor::from_fn([6, 28, 28, 1], |i| ((i % 7) as f32) * 0.1);
        let governor = MemoryGovernor::unlimited("pipe");
        let (out, _) = run(&model, &x, 2, &ctx(1, &governor)).unwrap();
        let expect = model.forward(&x, &Parallelism::serial()).unwrap();
        let (r, c) = expect.shape().as_matrix().unwrap();
        assert!(out
            .into_dense()
            .unwrap()
            .approx_eq(&expect.reshape([r, c]).unwrap(), 1e-4));
    }

    #[test]
    fn micro_batch_larger_than_batch() {
        let mut rng = seeded_rng(152);
        let model = zoo::fraud_fc_256(&mut rng).unwrap();
        let x = Tensor::from_fn([5, 28], |i| i as f32 * 0.01);
        let governor = MemoryGovernor::unlimited("pipe");
        let (out, stats) = run(&model, &x, 100, &ctx(1, &governor)).unwrap();
        assert_eq!(stats.micro_batches, 1);
        assert_eq!(out.num_rows(), 5);
    }

    #[test]
    fn memory_is_bounded_by_windows_not_batch() {
        // Pipelined peak must track micro-batch windows, far below the full
        // batch's activation footprint.
        let mut rng = seeded_rng(153);
        let model = zoo::encoder_fc(&mut rng).unwrap();
        let batch = 512;
        let x = Tensor::zeros([batch, 76]);
        let full = MemoryGovernor::unlimited("full");
        crate::exec::udf_centric::run(&model, &x, &ctx(1, &full)).unwrap();
        let pipe = MemoryGovernor::unlimited("pipe");
        run(&model, &x, 16, &ctx(1, &pipe)).unwrap();
        assert!(
            pipe.peak() < full.peak(),
            "pipeline peak {} ≥ batch peak {}",
            pipe.peak(),
            full.peak()
        );
    }

    #[test]
    fn oom_is_recoverable() {
        let mut rng = seeded_rng(154);
        let model = zoo::fraud_fc_512(&mut rng).unwrap();
        let x = Tensor::zeros([64, 28]);
        let governor = MemoryGovernor::with_budget("pipe", model.param_bytes() - 1);
        assert!(run(&model, &x, 8, &ctx(1, &governor)).unwrap_err().is_oom());
        assert_eq!(governor.in_use(), 0);
    }

    #[test]
    fn expired_deadline_stops_all_drivers() {
        use relserve_runtime::{AdmissionPolicy, ThreadCoordinator};
        let mut rng = seeded_rng(157);
        let model = zoo::fraud_fc_256(&mut rng).unwrap();
        let x = Tensor::zeros([64, 28]);
        let c = ThreadCoordinator::new(2);
        let deadline = std::time::Instant::now() + std::time::Duration::from_millis(2);
        let ctx = c
            .context_with(
                1,
                MemoryGovernor::unlimited("pipe"),
                &AdmissionPolicy::with_deadline(deadline),
            )
            .unwrap();
        std::thread::sleep(std::time::Duration::from_millis(5));
        let err = run(&model, &x, 4, &ctx).unwrap_err();
        assert!(err.is_deadline_exceeded(), "{err}");
        // The grant was released when the context dropped with the error.
        drop(ctx);
        assert_eq!(c.granted_threads(), 0);
    }

    #[test]
    fn zero_micro_batch_rejected() {
        let mut rng = seeded_rng(155);
        let model = zoo::fraud_fc_256(&mut rng).unwrap();
        let x = Tensor::zeros([4, 28]);
        let governor = MemoryGovernor::unlimited("pipe");
        assert!(run(&model, &x, 0, &ctx(1, &governor)).is_err());
    }
}
