//! Relation-centric execution: tensor operators lowered onto block relations.
//!
//! Each layer's tensor math is executed as relational dataflow over
//! [`TensorTable`]s (§7.1): weights are chunked into blocks, matmul becomes
//! a join + aggregation streaming one block-row at a time through the buffer
//! pool, pointwise convolutions are first spatially rewritten into a matmul
//! (`F × Kᵀ`), and general convolutions build their im2col patch relation
//! one image at a time. Activations map over blocks; softmax gathers one
//! block-row at a time (it needs whole rows). Because every intermediate
//! lives behind the buffer pool, working memory is bounded by block-row
//! stripes — not tensor sizes — which is exactly why this path survives the
//! Table 3 workloads that OOM everywhere else.

use crate::error::{Error, Result};
use relserve_nn::{Activation, Layer, Model};
use relserve_relational::tensor_table::TensorOpStats;
use relserve_relational::TensorTable;
use relserve_storage::BufferPool;
use relserve_tensor::parallel::Parallelism;
use relserve_tensor::{conv, BlockCoord, BlockingSpec, Tensor};
use std::sync::Arc;

/// The data flowing between layers during relation-centric execution.
pub enum Flow {
    /// Still dense in memory (the initial scanned batch, or small results).
    Dense(Tensor),
    /// A block relation with one row per logical example.
    Rows(TensorTable),
    /// A block relation with one row per *pixel* (conv output), remembering
    /// the spatial geometry for later flatten/conv layers.
    Pixels {
        /// The pixel-major block relation `[n*h*w, channels]`.
        table: TensorTable,
        /// Batch size.
        n: usize,
        /// Spatial height.
        h: usize,
        /// Spatial width.
        w: usize,
    },
}

impl Flow {
    fn describe(&self) -> String {
        match self {
            Flow::Dense(t) => format!("dense{}", t.shape()),
            Flow::Rows(t) => format!("rows[{}x{}]", t.rows(), t.cols()),
            Flow::Pixels { table, n, h, w } => {
                format!("pixels[{n}x{h}x{w} -> {}x{}]", table.rows(), table.cols())
            }
        }
    }
}

/// Accumulates rows into fixed-height block stripes and writes them into a
/// [`TensorTable`], so arbitrarily large row streams (im2col output, layer
/// results) materialize without ever being whole in memory.
pub(crate) struct RowStreamBuilder {
    table: TensorTable,
    cols: usize,
    block_rows: usize,
    block_cols: usize,
    buffered: Vec<f32>,
    next_block_row: usize,
    total_rows: usize,
    rows_seen: usize,
}

impl RowStreamBuilder {
    pub(crate) fn new(
        pool: Arc<BufferPool>,
        name: impl Into<String>,
        total_rows: usize,
        cols: usize,
        spec: BlockingSpec,
    ) -> Self {
        RowStreamBuilder {
            table: TensorTable::create(pool, name, total_rows, cols, spec),
            cols,
            block_rows: spec.block_rows,
            block_cols: spec.block_cols,
            buffered: Vec::with_capacity(spec.block_rows * cols),
            next_block_row: 0,
            total_rows,
            rows_seen: 0,
        }
    }

    /// Append `rows × cols` values (row-major).
    pub(crate) fn push_rows(&mut self, data: &[f32]) -> Result<()> {
        debug_assert_eq!(data.len() % self.cols, 0);
        self.rows_seen += data.len() / self.cols;
        if self.rows_seen > self.total_rows {
            return Err(Error::Invalid(format!(
                "row stream overflow: {} rows into a {}-row relation",
                self.rows_seen, self.total_rows
            )));
        }
        self.buffered.extend_from_slice(data);
        while self.buffered.len() >= self.block_rows * self.cols {
            let stripe: Vec<f32> = self.buffered.drain(..self.block_rows * self.cols).collect();
            self.flush_stripe(stripe, self.block_rows)?;
        }
        Ok(())
    }

    fn flush_stripe(&mut self, stripe: Vec<f32>, rows: usize) -> Result<()> {
        let stripe = Tensor::from_vec([rows, self.cols], stripe)?;
        for bc in 0..self.cols.div_ceil(self.block_cols) {
            let c0 = bc * self.block_cols;
            let c1 = (c0 + self.block_cols).min(self.cols);
            let block = stripe.slice2(0, rows, c0, c1)?;
            self.table.insert_block(
                BlockCoord {
                    row: self.next_block_row,
                    col: bc,
                },
                &block,
            )?;
        }
        self.next_block_row += 1;
        Ok(())
    }

    /// Flush the final partial stripe and return the finished relation.
    pub(crate) fn finish(mut self) -> Result<TensorTable> {
        if self.rows_seen != self.total_rows {
            return Err(Error::Invalid(format!(
                "row stream ended early: {} of {} rows",
                self.rows_seen, self.total_rows
            )));
        }
        if !self.buffered.is_empty() {
            let rows = self.buffered.len() / self.cols;
            let stripe = std::mem::take(&mut self.buffered);
            self.flush_stripe(stripe, rows)?;
        }
        Ok(self.table)
    }
}

/// Row-wise softmax over a block relation, gathering one block-row stripe at
/// a time (softmax needs whole rows; a stripe is the bounded unit).
///
/// Each stripe is assembled by copying blocks into a preallocated
/// `[rows, cols]` buffer — one write per element — instead of repeated
/// `hconcat`, whose rebuild-per-block assembly is quadratic in the number of
/// column blocks.
pub(crate) fn softmax_blocked(table: &TensorTable, name: &str) -> Result<TensorTable> {
    let spec = table.spec();
    let cols = table.cols();
    let mut out = TensorTable::create(table.pool().clone(), name, table.rows(), cols, spec);
    for block_row in 0..table.row_blocks() {
        if table.col_blocks() == 0 {
            continue;
        }
        // Gather this stripe's blocks into one contiguous [rows, cols] buffer.
        let mut stripe: Vec<f32> = Vec::new();
        let mut rows = 0usize;
        for bc in 0..table.col_blocks() {
            let block = table.get_block(BlockCoord {
                row: block_row,
                col: bc,
            })?;
            let (r, w) = block.shape().as_matrix()?;
            if stripe.is_empty() {
                rows = r;
                stripe.resize(rows * cols, 0.0);
            }
            let c0 = bc * spec.block_cols;
            for (i, src) in block.data().chunks_exact(w).enumerate() {
                stripe[i * cols + c0..i * cols + c0 + w].copy_from_slice(src);
            }
        }
        let stripe = Tensor::from_vec([rows, cols], stripe)?;
        let soft = relserve_tensor::ops::softmax(&stripe)?;
        for bc in 0..table.col_blocks() {
            let c0 = bc * spec.block_cols;
            let c1 = (c0 + spec.block_cols).min(cols);
            let block = soft.slice2(0, rows, c0, c1)?;
            out.insert_block(
                BlockCoord {
                    row: block_row,
                    col: bc,
                },
                &block,
            )?;
        }
    }
    Ok(out)
}

fn apply_activation_blocked(
    table: TensorTable,
    act: Activation,
    tag: &str,
    stats: &mut TensorOpStats,
) -> Result<TensorTable> {
    let out = match act {
        Activation::None => return Ok(table),
        // Slice-level map so each block runs the dispatched SIMD relu rather
        // than a per-element closure.
        Activation::Relu => table.map_blocks(format!("{tag}.relu"), |xs| {
            relserve_tensor::simd::kernels().relu(xs)
        })?,
        Activation::Sigmoid => table.map(format!("{tag}.sigmoid"), |x| 1.0 / (1.0 + (-x).exp()))?,
        Activation::Tanh => table.map(format!("{tag}.tanh"), f32::tanh)?,
        Activation::Softmax => softmax_blocked(&table, &format!("{tag}.softmax"))?,
    };
    // The activation read every input block and wrote every output block.
    stats.blocks_out += out.num_blocks() as u64;
    stats.bytes_read += table.bytes_stored();
    stats.bytes_written += out.bytes_stored();
    Ok(out)
}

fn densify(flow: Flow) -> Result<Tensor> {
    Ok(match flow {
        Flow::Dense(t) => t,
        Flow::Rows(table) => table.to_dense()?,
        Flow::Pixels { table, n, h, w } => {
            let c = table.cols();
            table.to_dense()?.reshape([n, h, w, c])?
        }
    })
}

fn rows_table(flow: Flow, pool: &Arc<BufferPool>, block: usize, tag: &str) -> Result<TensorTable> {
    Ok(match flow {
        Flow::Rows(t) => t,
        Flow::Dense(t) => {
            let (rows, cols) = t.shape().as_matrix()?;
            let flat = t.reshape([rows, cols])?;
            TensorTable::from_dense(pool.clone(), tag, &flat, BlockingSpec::square(block))?
        }
        Flow::Pixels { .. } => {
            return Err(Error::Invalid(
                "dense layer cannot consume pixel-major conv output; add a Flatten layer".into(),
            ))
        }
    })
}

/// Execute one model layer relation-centrically. `par` is this layer's
/// share of the query's admitted kernel budget: block-row stripes of the
/// matmul join fan out to the kernel pool up to that width.
pub(crate) fn exec_layer(
    layer: &Layer,
    flow: Flow,
    pool: &Arc<BufferPool>,
    block: usize,
    par: &Parallelism,
    tag: &str,
    stats: &mut TensorOpStats,
) -> Result<Flow> {
    match layer {
        Layer::Dense {
            weight,
            bias,
            activation,
        } => {
            let x = rows_table(flow, pool, block, &format!("{tag}.x"))?;
            // Chunk the weight matrix into a tensor relation (the runtime
            // chunking overhead Table 3 attributes to this path).
            let w = TensorTable::from_dense(
                pool.clone(),
                format!("{tag}.w"),
                weight,
                BlockingSpec::square(block),
            )?;
            let (product, op_stats) = x.matmul_bt_parallel(&w, format!("{tag}.xw"), par)?;
            stats.merge(op_stats);
            let biased = product.add_bias(format!("{tag}.b"), bias)?;
            Ok(Flow::Rows(apply_activation_blocked(
                biased,
                *activation,
                tag,
                stats,
            )?))
        }
        Layer::QuantDense {
            weight,
            bias,
            activation,
        } => {
            let x = rows_table(flow, pool, block, &format!("{tag}.x"))?;
            // Chunk the quantized weights into a tensor relation of genuine
            // i8 blocks — each stored block carries its own per-row scales,
            // so the buffer pool moves ~4× fewer bytes than the f32 path.
            let w = TensorTable::from_quantized(
                pool.clone(),
                format!("{tag}.w"),
                weight,
                BlockingSpec::square(block),
            )?;
            let (product, op_stats) = x.matmul_bt_quant_parallel(&w, format!("{tag}.xw"), par)?;
            stats.merge(op_stats);
            let biased = product.add_bias(format!("{tag}.b"), bias)?;
            Ok(Flow::Rows(apply_activation_blocked(
                biased,
                *activation,
                tag,
                stats,
            )?))
        }
        Layer::Conv2d {
            kernel,
            bias,
            spec,
            activation,
        } => {
            let input = densify(flow)?;
            let dims = input.shape().dims().to_vec();
            if dims.len() != 4 {
                return Err(Error::Invalid(format!(
                    "conv layer needs spatial input, got {dims:?}"
                )));
            }
            let (n, h, w) = (dims[0], dims[1], dims[2]);
            let (oh, ow) = spec.output_dims(h, w)?;
            let spec_sq = BlockingSpec::square(block);
            let (f_table, k_dense, fold_bias) = if spec.is_pointwise() {
                // Spatial rewriting (§7.1): F = pixels+bias column, conv ≡ F×Kᵀ.
                let f = conv::spatial_rewrite_1x1(&input)?;
                let ft = TensorTable::from_dense(pool.clone(), format!("{tag}.F"), &f, spec_sq)?;
                let k = conv::rewrite_kernel_1x1(kernel, bias)?;
                (ft, k, true)
            } else {
                // Stream the im2col patch relation one image at a time.
                let mut builder = RowStreamBuilder::new(
                    pool.clone(),
                    format!("{tag}.F"),
                    n * oh * ow,
                    spec.patch_len(),
                    spec_sq,
                );
                for img in 0..n {
                    let image = input.slice2(img * h * w, (img + 1) * h * w, 0, dims[3])?;
                    let image = image.reshape([1, h, w, dims[3]])?;
                    let cols = conv::im2col(&image, spec)?;
                    builder.push_rows(cols.data())?;
                }
                let ft = builder.finish()?;
                let k = kernel
                    .clone()
                    .reshape([spec.out_channels, spec.patch_len()])?;
                (ft, k, false)
            };
            let k_table =
                TensorTable::from_dense(pool.clone(), format!("{tag}.K"), &k_dense, spec_sq)?;
            let (product, op_stats) =
                f_table.matmul_bt_parallel(&k_table, format!("{tag}.FK"), par)?;
            stats.merge(op_stats);
            let biased = if fold_bias {
                product // bias rode along in the rewritten kernel's last column
            } else {
                product.add_bias(format!("{tag}.b"), bias)?
            };
            let activated = apply_activation_blocked(biased, *activation, tag, stats)?;
            Ok(Flow::Pixels {
                table: activated,
                n,
                h: oh,
                w: ow,
            })
        }
        Layer::Flatten => match flow {
            Flow::Pixels { table, n, h, w } => {
                // Regroup pixel-major rows into example-major rows. This
                // densifies one example at a time via block-row streaming.
                let channels = table.cols();
                let width = h * w * channels;
                let mut builder = RowStreamBuilder::new(
                    pool.clone(),
                    format!("{tag}.flat"),
                    n,
                    width,
                    BlockingSpec::square(block),
                );
                let dense = table.to_dense()?; // [n*h*w, c] — bounded by flatten sites
                for img in 0..n {
                    let rows = dense.slice2(img * h * w, (img + 1) * h * w, 0, channels)?;
                    builder.push_rows(rows.data())?;
                }
                Ok(Flow::Rows(builder.finish()?))
            }
            Flow::Dense(t) => {
                let dims = t.shape().dims().to_vec();
                let batch = dims[0];
                let rest: usize = dims[1..].iter().product();
                Ok(Flow::Dense(t.reshape([batch, rest])?))
            }
            rows @ Flow::Rows(_) => Ok(rows),
        },
    }
}

/// Run a whole model relation-centrically inside `ctx`'s admitted slice of
/// the machine: each layer's block-row join fans out on the shared kernel
/// pool, at most the context's granted kernel threads wide.
pub fn run(
    model: &Model,
    batch: &Tensor,
    pool: &Arc<BufferPool>,
    block: usize,
    ctx: &relserve_runtime::ExecContext,
) -> Result<(super::Output, TensorOpStats)> {
    let par = ctx.parallelism();
    let batch_size = model.check_input(batch)?;
    let mut full_dims = vec![batch_size];
    full_dims.extend_from_slice(model.input_shape().dims());
    let mut flow = Flow::Dense(batch.clone().reshape(full_dims)?);
    let mut stats = TensorOpStats::default();
    for (i, layer) in model.layers().iter().enumerate() {
        // Cooperative deadline check at every block-relation boundary: a
        // timed-out query unwinds here, dropping its context and grant.
        ctx.check_deadline("relation-centric.layer")?;
        let tag = format!("rc.l{i}");
        flow = exec_layer(layer, flow, pool, block, &par, &tag, &mut stats)?;
    }
    let output = match flow {
        Flow::Dense(t) => super::Output::Dense(t),
        Flow::Rows(t) => super::Output::Blocked(t),
        Flow::Pixels { table, .. } => super::Output::Blocked(table),
    };
    Ok((output, stats))
}

impl std::fmt::Debug for Flow {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Flow::{}", self.describe())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relserve_nn::init::seeded_rng;
    use relserve_nn::zoo;
    use relserve_storage::DiskManager;

    fn pool(frames: usize) -> Arc<BufferPool> {
        Arc::new(BufferPool::new(
            Arc::new(DiskManager::temp().unwrap()),
            frames,
        ))
    }

    fn ctx(threads: usize) -> relserve_runtime::ExecContext {
        relserve_runtime::ExecContext::standalone(
            threads,
            relserve_runtime::MemoryGovernor::unlimited("rc-test"),
        )
    }

    fn serial() -> Parallelism {
        Parallelism::serial()
    }

    #[test]
    fn ffnn_matches_udf_path() {
        let mut rng = seeded_rng(80);
        let model = zoo::fraud_fc_256(&mut rng).unwrap();
        let x = Tensor::from_fn([10, 28], |i| ((i % 11) as f32 - 5.0) * 0.2);
        let (out, stats) = run(&model, &x, &pool(64), 16, &ctx(2)).unwrap();
        let got = out.into_dense().unwrap();
        let expect = model.forward(&x, &serial()).unwrap();
        assert!(got.approx_eq(&expect, 1e-3));
        assert!(stats.joins > 0);
    }

    #[test]
    fn pointwise_conv_matches_udf_path() {
        let mut rng = seeded_rng(81);
        let model = zoo::landcover(250, &mut rng).unwrap(); // 10x10x3 → 8 kernels
        let x = Tensor::from_fn([2, 10, 10, 3], |i| ((i % 9) as f32 - 4.0) * 0.1);
        let (out, _) = run(&model, &x, &pool(64), 16, &ctx(2)).unwrap();
        let got = out.into_dense().unwrap();
        let expect = model
            .forward(&x, &serial())
            .unwrap()
            .reshape([2 * 10 * 10, 8])
            .unwrap();
        assert!(got.approx_eq(&expect, 1e-3));
    }

    #[test]
    fn general_conv_and_flatten_match_udf_path() {
        let mut rng = seeded_rng(82);
        let model = zoo::caching_cnn(&mut rng).unwrap();
        let x = Tensor::from_fn([2, 28, 28, 1], |i| ((i % 7) as f32) * 0.1);
        let (out, _) = run(&model, &x, &pool(256), 32, &ctx(2)).unwrap();
        let got = out.into_dense().unwrap();
        let expect = model.forward(&x, &serial()).unwrap();
        assert!(
            got.approx_eq(&expect, 1e-3),
            "max diff {}",
            got.max_abs_diff(&expect).unwrap()
        );
    }

    #[test]
    fn softmax_blocked_matches_dense() {
        let t = Tensor::from_fn([7, 9], |i| ((i * 13) % 17) as f32 * 0.3 - 2.0);
        let table = TensorTable::from_dense(pool(16), "s", &t, BlockingSpec::square(3)).unwrap();
        let soft = softmax_blocked(&table, "out").unwrap();
        let expect = relserve_tensor::ops::softmax(&t).unwrap();
        assert!(soft.to_dense().unwrap().approx_eq(&expect, 1e-5));
    }

    #[test]
    fn row_stream_builder_roundtrip() {
        let p = pool(16);
        let mut b = RowStreamBuilder::new(p, "rs", 10, 6, BlockingSpec::square(4));
        let full = Tensor::from_fn([10, 6], |i| i as f32);
        // Push in ragged chunks: 3 + 4 + 3 rows.
        b.push_rows(&full.data()[..3 * 6]).unwrap();
        b.push_rows(&full.data()[3 * 6..7 * 6]).unwrap();
        b.push_rows(&full.data()[7 * 6..]).unwrap();
        let table = b.finish().unwrap();
        assert!(table.to_dense().unwrap().approx_eq(&full, 0.0));
    }

    #[test]
    fn row_stream_builder_rejects_overflow_and_underflow() {
        let p = pool(16);
        let mut b = RowStreamBuilder::new(p.clone(), "rs", 2, 3, BlockingSpec::square(2));
        b.push_rows(&[0.0; 6]).unwrap();
        assert!(b.push_rows(&[0.0; 3]).is_err());
        let b2 = RowStreamBuilder::new(p, "rs2", 5, 3, BlockingSpec::square(2));
        assert!(b2.finish().is_err());
    }

    #[test]
    fn works_through_a_tiny_buffer_pool() {
        // The defining property: completes even when intermediates exceed
        // the pool, by spilling.
        let mut rng = seeded_rng(83);
        let model = zoo::fraud_fc_512(&mut rng).unwrap();
        let x = Tensor::from_fn([64, 28], |i| (i % 5) as f32 * 0.1);
        let p = pool(4); // 256 KiB pool; weights alone are ~57 KiB + activations
        let (out, _) = run(&model, &x, &p, 8, &ctx(2)).unwrap();
        let expect = model.forward(&x, &serial()).unwrap();
        assert!(out.into_dense().unwrap().approx_eq(&expect, 1e-3));
        assert!(p.stats().evictions > 0, "expected spilling");
    }

    #[test]
    fn dense_after_pixels_requires_flatten() {
        let mut rng = seeded_rng(84);
        // Hand-build an invalid flow: dense layer fed pixel-major output.
        let conv_model = zoo::landcover(500, &mut rng).unwrap();
        let x = Tensor::from_fn([1, 5, 5, 3], |i| i as f32 * 0.01);
        let p = pool(32);
        let mut stats = TensorOpStats::default();
        let flow = exec_layer(
            &conv_model.layers()[0],
            Flow::Dense(x),
            &p,
            4,
            &serial(),
            "t",
            &mut stats,
        )
        .unwrap();
        let dense_layer = relserve_nn::Layer::dense(4, 2, Activation::None, &mut rng);
        assert!(exec_layer(&dense_layer, flow, &p, 4, &serial(), "t2", &mut stats).is_err());
    }
}
