//! A capacity-1 single-producer single-consumer slot — the in-tree channel
//! the pipelined executor strings between stages.
//!
//! Each pipeline link holds at most one in-flight micro-batch (the bound
//! *is* the pipeline's "device memory"), so a full channel abstraction is
//! overkill: a mutex-guarded `Option` plus non-blocking `try_put`/`try_take`
//! is all the cooperative stage scheduler needs. Nothing here ever blocks,
//! which is what makes running every pipeline node on a shared, possibly
//! single-threaded kernel pool deadlock-free.

use std::sync::Mutex;

/// A slot holding at most one value. The pipeline guarantees one producer
/// and one consumer per slot (each node is claimed by one driver at a time),
/// but the implementation is safe under any access pattern.
pub(crate) struct SpscSlot<T> {
    cell: Mutex<Option<T>>,
}

impl<T> SpscSlot<T> {
    /// An empty slot.
    pub(crate) fn new() -> Self {
        SpscSlot {
            cell: Mutex::new(None),
        }
    }

    /// Whether the slot currently holds no value. Only advisory for the
    /// producer: the consumer can empty (never fill) the slot concurrently,
    /// so an `is_empty() == true` observed by the sole producer stays true
    /// until that producer puts.
    pub(crate) fn is_empty(&self) -> bool {
        self.cell.lock().expect("spsc slot lock").is_none()
    }

    /// Deposit `value` if the slot is empty; hands the value back otherwise.
    pub(crate) fn try_put(&self, value: T) -> Result<(), T> {
        let mut cell = self.cell.lock().expect("spsc slot lock");
        match *cell {
            Some(_) => Err(value),
            None => {
                *cell = Some(value);
                Ok(())
            }
        }
    }

    /// Remove and return the value, if any.
    pub(crate) fn try_take(&self) -> Option<T> {
        self.cell.lock().expect("spsc slot lock").take()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_take_roundtrip() {
        let slot = SpscSlot::new();
        assert!(slot.is_empty());
        assert!(slot.try_put(7).is_ok());
        assert!(!slot.is_empty());
        assert_eq!(slot.try_put(8), Err(8), "capacity is one");
        assert_eq!(slot.try_take(), Some(7));
        assert_eq!(slot.try_take(), None);
        assert!(slot.is_empty());
    }

    #[test]
    fn works_across_threads() {
        let slot = std::sync::Arc::new(SpscSlot::new());
        let producer = {
            let slot = std::sync::Arc::clone(&slot);
            std::thread::spawn(move || {
                for i in 0..100 {
                    let mut v = i;
                    loop {
                        match slot.try_put(v) {
                            Ok(()) => break,
                            Err(back) => {
                                v = back;
                                std::thread::yield_now();
                            }
                        }
                    }
                }
            })
        };
        let mut seen = Vec::new();
        while seen.len() < 100 {
            if let Some(v) = slot.try_take() {
                seen.push(v);
            } else {
                std::thread::yield_now();
            }
        }
        producer.join().unwrap();
        assert_eq!(seen, (0..100).collect::<Vec<_>>());
    }
}
