//! UDF-centric execution: the whole model as one in-database UDF.
//!
//! The entire inference runs on dense tensors inside the database process,
//! with every materialized tensor charged to the database memory governor:
//! parameters for the call's duration, plus a sliding input/output window as
//! layers execute (both the layer's input and output are live during the
//! layer, as is any im2col transient). A model that does not fit returns the
//! governor's recoverable OOM — the UDF-centric column of Table 3.

use crate::error::Result;
use crate::exec::{batch_dims, layer_transient_bytes, Output};
use relserve_nn::Model;
use relserve_runtime::ExecContext;
use relserve_tensor::Tensor;

/// Run `model` over `batch` as a single in-database UDF, inside `ctx`'s
/// admitted slice of the machine: tensors are charged to the context's
/// governor and kernels use its granted thread budget.
pub fn run(model: &Model, batch: &Tensor, ctx: &ExecContext) -> Result<Output> {
    let governor = ctx.governor();
    let par = ctx.parallelism();
    let (batch_size, _) = batch_dims(model, batch)?;
    // Parameters stay resident for the whole call.
    let _params = governor.reserve(model.param_bytes())?;
    // The input batch is materialized in the UDF. Each loop assignment
    // below drops the previous window's reservation — that drop is the read.
    #[allow(unused_assignments)]
    let mut live = governor.reserve(batch.num_bytes())?;
    let mut full_dims = vec![batch_size];
    full_dims.extend_from_slice(model.input_shape().dims());
    let mut x = batch.clone().reshape(full_dims)?;
    let mut shape = model.input_shape().clone();
    for layer in model.layers() {
        ctx.check_deadline("udf-centric.layer")?;
        let out_shape = layer.output_shape(&shape)?;
        let out_bytes = batch_size * out_shape.num_bytes();
        // Transients (im2col) exist only during the layer.
        let transient = layer_transient_bytes(layer, batch_size, &shape);
        let _scratch = if transient > 0 {
            Some(governor.reserve(transient)?)
        } else {
            None
        };
        let out_res = governor.reserve(out_bytes)?;
        x = layer.forward(&x, &par)?;
        // The input tensor dies here; the output becomes the live window.
        live = out_res;
        shape = out_shape;
    }
    let _ = live;
    Ok(Output::Dense(x))
}

#[cfg(test)]
mod tests {
    use super::*;
    use relserve_nn::init::seeded_rng;
    use relserve_nn::zoo;
    use relserve_runtime::MemoryGovernor;
    use relserve_tensor::parallel::Parallelism;

    fn ctx(threads: usize, governor: &MemoryGovernor) -> ExecContext {
        ExecContext::standalone(threads, governor.clone())
    }

    #[test]
    fn matches_plain_forward() {
        let mut rng = seeded_rng(70);
        let model = zoo::fraud_fc_256(&mut rng).unwrap();
        let x = Tensor::from_fn([16, 28], |i| ((i % 13) as f32 - 6.0) * 0.1);
        let governor = MemoryGovernor::unlimited("udf");
        let out = run(&model, &x, &ctx(2, &governor))
            .unwrap()
            .into_dense()
            .unwrap();
        let expect = model.forward(&x, &Parallelism::serial()).unwrap();
        assert!(out.approx_eq(&expect, 1e-5));
        // All reservations must be released.
        assert_eq!(governor.in_use(), 0);
        assert!(governor.peak() > model.param_bytes());
    }

    #[test]
    fn oom_when_budget_too_small() {
        let mut rng = seeded_rng(71);
        let model = zoo::fraud_fc_256(&mut rng).unwrap();
        let x = Tensor::zeros([64, 28]);
        // Budget below even the parameter size.
        let governor = MemoryGovernor::with_budget("udf", model.param_bytes() / 2);
        let err = run(&model, &x, &ctx(1, &governor)).unwrap_err();
        assert!(err.is_oom(), "{err}");
        assert_eq!(governor.in_use(), 0, "OOM must not leak reservations");
    }

    #[test]
    fn oom_scales_with_batch_size() {
        // A budget that fits batch 8 but not batch 4096 — the Table 3
        // pattern where UDF-centric works at small batch and OOMs at large.
        let mut rng = seeded_rng(72);
        let model = zoo::fraud_fc_512(&mut rng).unwrap();
        let budget = model.param_bytes() + 8 * (28 + 512 + 512 + 512 + 2 + 2 + 2) * 4 + 4096;
        let governor = MemoryGovernor::with_budget("udf", budget);
        assert!(run(&model, &Tensor::zeros([8, 28]), &ctx(1, &governor)).is_ok());
        let err = run(&model, &Tensor::zeros([4096, 28]), &ctx(1, &governor)).unwrap_err();
        assert!(err.is_oom());
    }

    #[test]
    fn conv_transient_is_charged() {
        // A 3×3 conv's im2col patch matrix is ~9× the input; a budget that
        // covers params + input + output but not the transient must OOM.
        let mut rng = seeded_rng(73);
        let model = zoo::caching_cnn(&mut rng).unwrap();
        let x = Tensor::zeros([4, 28, 28, 1]);
        let in_bytes = x.num_bytes();
        let governor = MemoryGovernor::with_budget(
            "udf",
            model.param_bytes() + in_bytes * 40, // enough without transients? compute below
        );
        // With an unlimited governor, record the true peak, then set the
        // budget just below it and expect OOM.
        let unlimited = MemoryGovernor::unlimited("probe");
        run(&model, &x, &ctx(1, &unlimited)).unwrap();
        let peak = unlimited.peak();
        let tight = MemoryGovernor::with_budget("udf", peak - 1);
        assert!(run(&model, &x, &ctx(1, &tight)).unwrap_err().is_oom());
        let enough = MemoryGovernor::with_budget("udf", peak);
        assert!(run(&model, &x, &ctx(1, &enough)).is_ok());
        let _ = governor;
    }

    #[test]
    fn peak_includes_input_and_output_window() {
        let mut rng = seeded_rng(74);
        let model = zoo::encoder_fc(&mut rng).unwrap();
        let batch = 32;
        let x = Tensor::zeros([batch, 76]);
        let governor = MemoryGovernor::unlimited("udf");
        run(&model, &x, &ctx(1, &governor)).unwrap();
        // Peak must cover params + the widest in/out window (76→3072 layer).
        let window = batch * (76 + 3072) * 4;
        assert!(governor.peak() >= model.param_bytes() + window);
    }
}
