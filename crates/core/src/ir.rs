//! The unified intermediate representation (§2.1).
//!
//! An inference query's model portion lowers to a linear-algebra graph
//! (`relserve_nn::graph`); the unified IR annotates every node of that graph
//! with the *representation* the optimizer chose for it. Any subgraph can
//! thus be scheduled DL-centric, UDF-centric, or relation-centric — the
//! flexibility the paper argues for.

use relserve_nn::LinalgOp;

/// Which architecture executes an operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Representation {
    /// Offloaded to the external DL runtime over the connector.
    DlCentric,
    /// Executed as an in-database UDF on dense tensors.
    UdfCentric,
    /// Lowered to join + aggregation over tensor-block relations.
    RelationCentric,
}

impl std::fmt::Display for Representation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Representation::DlCentric => write!(f, "dl-centric"),
            Representation::UdfCentric => write!(f, "udf-centric"),
            Representation::RelationCentric => write!(f, "relation-centric"),
        }
    }
}

/// One IR node: a linear-algebra operator plus its chosen representation.
#[derive(Debug, Clone)]
pub struct OpAssignment {
    /// The lowered operator.
    pub op: LinalgOp,
    /// The representation the optimizer selected.
    pub representation: Representation,
    /// The §7.1 memory estimate that drove the decision, in bytes.
    pub estimated_bytes: usize,
}

/// A fully-annotated inference plan for one model at one batch size.
#[derive(Debug, Clone)]
pub struct InferencePlan {
    /// Name of the planned model.
    pub model_name: String,
    /// Batch size the plan was generated for.
    pub batch_size: usize,
    /// Memory threshold (bytes) used by the rule.
    pub memory_threshold: usize,
    /// Per-operator assignments, in execution order.
    pub ops: Vec<OpAssignment>,
}

impl InferencePlan {
    /// Largest single-operator memory estimate in the plan.
    pub fn peak_estimate_bytes(&self) -> usize {
        self.ops
            .iter()
            .map(|o| o.estimated_bytes)
            .max()
            .unwrap_or(0)
    }

    /// Whether any operator was assigned the given representation.
    pub fn uses(&self, representation: Representation) -> bool {
        self.ops.iter().any(|o| o.representation == representation)
    }

    /// Per-layer representation: a layer runs relation-centric if *any* of
    /// its ops does (a layer's matmul and bias/activation stay together).
    pub fn layer_representations(&self) -> Vec<Representation> {
        let num_layers = self
            .ops
            .iter()
            .map(|o| o.op.layer_index + 1)
            .max()
            .unwrap_or(0);
        let mut reps = vec![Representation::UdfCentric; num_layers];
        for op in &self.ops {
            if op.representation == Representation::RelationCentric {
                reps[op.op.layer_index] = Representation::RelationCentric;
            }
        }
        reps
    }

    /// EXPLAIN-style rendering of the plan.
    pub fn explain(&self) -> String {
        let mut out = format!(
            "InferencePlan for `{}` (batch {}, threshold {} B)\n",
            self.model_name, self.batch_size, self.memory_threshold
        );
        for (i, op) in self.ops.iter().enumerate() {
            out.push_str(&format!(
                "  #{i:<2} {:<34} {:>14} B  -> {}\n",
                op.op.label(),
                op.estimated_bytes,
                op.representation
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relserve_nn::init::seeded_rng;
    use relserve_nn::zoo;

    fn plan_with(reps: &[Representation]) -> InferencePlan {
        let mut rng = seeded_rng(50);
        let model = zoo::fraud_fc_256(&mut rng).unwrap();
        let ops = model.to_graph(4).unwrap();
        InferencePlan {
            model_name: "m".into(),
            batch_size: 4,
            memory_threshold: 1024,
            ops: ops
                .into_iter()
                .enumerate()
                .map(|(i, op)| OpAssignment {
                    estimated_bytes: op.memory_requirement_bytes(),
                    representation: reps[i % reps.len()],
                    op,
                })
                .collect(),
        }
    }

    #[test]
    fn peak_is_max_over_ops() {
        let p = plan_with(&[Representation::UdfCentric]);
        let max = p.ops.iter().map(|o| o.estimated_bytes).max().unwrap();
        assert_eq!(p.peak_estimate_bytes(), max);
    }

    #[test]
    fn uses_detects_representations() {
        let p = plan_with(&[Representation::UdfCentric]);
        assert!(p.uses(Representation::UdfCentric));
        assert!(!p.uses(Representation::RelationCentric));
    }

    #[test]
    fn layer_representation_is_sticky_relation_centric() {
        // If any op of a layer is relation-centric, the layer is.
        let mut p = plan_with(&[Representation::UdfCentric]);
        p.ops[0].representation = Representation::RelationCentric; // layer 0 matmul
        let reps = p.layer_representations();
        assert_eq!(reps[0], Representation::RelationCentric);
        assert_eq!(reps[1], Representation::UdfCentric);
    }

    #[test]
    fn explain_lists_every_op() {
        let p = plan_with(&[Representation::UdfCentric]);
        let text = p.explain();
        assert_eq!(text.lines().count(), p.ops.len() + 1);
        assert!(text.contains("matmul"));
        assert!(text.contains("udf-centric"));
    }
}
