//! `relserve-core` — the paper's primary contribution, assembled.
//!
//! This crate unifies the three architectures for serving deep-learning
//! models over relational data (*Serving Deep Learning Models from
//! Relational Databases*, EDBT 2024):
//!
//! * **DL-centric** — ship features over the connector to a decoupled DL
//!   runtime and ship predictions back ([`exec::dl_centric`]).
//! * **UDF-centric** — run the whole model as one in-database UDF under the
//!   database memory governor ([`exec::udf_centric`]).
//! * **Relation-centric** — lower each tensor operator onto tensor-block
//!   relations: matmul becomes a join + aggregation that spills through the
//!   buffer pool ([`exec::relation_centric`]).
//!
//! The [`optimizer::RuleBasedOptimizer`] implements §7.1's adaptive rule:
//! estimate each operator's memory as `input + params + output` and choose
//! relation-centric iff the estimate exceeds the configured threshold,
//! otherwise UDF-centric. [`exec::hybrid`] executes the resulting mixed
//! plan. [`session::InferenceSession`] is the user-facing facade that wires
//! tables, models, governors and the optimizer together.
//!
//! Around that core sit the paper's §2–§5 techniques:
//! [`rules`] (model decomposition & push-down through joins),
//! [`dedup`] (accuracy-aware tensor-block deduplication),
//! [`versions`] (SLA-driven selection among compressed model versions), and
//! [`cache`] (the HNSW inference-result cache with Monte-Carlo error bounds).

#![warn(missing_docs)]

pub mod cache;
pub mod dedup;
pub mod error;
pub mod exec;
pub mod ir;
pub mod optimizer;
pub mod rules;
pub mod session;
pub mod shardplan;
pub mod versions;

pub use error::{Error, Result};
pub use ir::{InferencePlan, OpAssignment, Representation};
pub use optimizer::RuleBasedOptimizer;
pub use session::{
    Architecture, FusedOutcome, InferenceOutcome, InferenceSession, SessionConfig,
    SessionConfigBuilder, SessionStats,
};
pub use shardplan::{PartitionSpec, ShardRange};
