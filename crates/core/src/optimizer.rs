//! The rule-based adaptive optimizer (§7.1).
//!
//! "We developed a naive rule-based inference query optimizer, which
//! adaptively selects the in-database representation for each operator based
//! on the required memory size of the operator. If the operator's memory
//! requirement exceeds a configurable memory limit threshold, it will choose
//! the relation-centric representation, otherwise, it will choose the
//! UDF-centric representation."
//!
//! That rule is implemented verbatim here, plus the ahead-of-time planning
//! hook (§2.2): [`RuleBasedOptimizer::plan_for_batches`] generates plans for
//! several candidate batch sizes at model-load time so runtime dispatch is a
//! lookup.

use crate::error::Result;
use crate::ir::{InferencePlan, OpAssignment, Representation};
use relserve_nn::Model;
use relserve_runtime::{DeviceModel, PlacementDecision};
use std::collections::BTreeMap;

/// Per-operator representation chooser with a single memory threshold.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RuleBasedOptimizer {
    /// Operators whose `input + params + output` estimate exceeds this run
    /// relation-centric. The paper's experiments use 2 GiB.
    pub memory_threshold_bytes: usize,
}

impl RuleBasedOptimizer {
    /// An optimizer with the given threshold.
    pub fn new(memory_threshold_bytes: usize) -> Self {
        RuleBasedOptimizer {
            memory_threshold_bytes,
        }
    }

    /// The paper's configuration: a 2 GiB threshold.
    pub fn paper_default() -> Self {
        Self::new(2 * 1024 * 1024 * 1024)
    }

    /// Plan one model at one batch size.
    pub fn plan(&self, model: &Model, batch_size: usize) -> Result<InferencePlan> {
        let ops = model.to_graph(batch_size)?;
        let assignments = ops
            .into_iter()
            .map(|op| {
                let estimated_bytes = op.memory_requirement_bytes();
                let representation = if estimated_bytes > self.memory_threshold_bytes {
                    Representation::RelationCentric
                } else {
                    Representation::UdfCentric
                };
                OpAssignment {
                    op,
                    representation,
                    estimated_bytes,
                }
            })
            .collect();
        Ok(InferencePlan {
            model_name: model.name().to_string(),
            batch_size,
            memory_threshold: self.memory_threshold_bytes,
            ops: assignments,
        })
    }

    /// Device placement (§3.2): for every operator of a plan, run the
    /// producer-transfer-consumer estimate and decide CPU vs (modeled) GPU.
    /// Small operators stay on the CPU because host↔device transfer would
    /// dominate — the decision-forest observation the paper cites.
    pub fn place_devices(plan: &InferencePlan, devices: &DeviceModel) -> Vec<PlacementDecision> {
        plan.ops
            .iter()
            .map(|op| {
                devices.place(
                    op.op.flops(),
                    (op.op.input_shape.num_bytes() + op.op.param_bytes) as f64,
                    op.op.output_shape.num_bytes() as f64,
                )
            })
            .collect()
    }

    /// Ahead-of-time compilation (§2.2): plan several batch sizes at model
    /// load; at runtime the session picks the plan for the smallest
    /// pre-planned batch ≥ the actual batch.
    pub fn plan_for_batches(
        &self,
        model: &Model,
        batch_sizes: &[usize],
    ) -> Result<BTreeMap<usize, InferencePlan>> {
        let mut plans = BTreeMap::new();
        for &b in batch_sizes {
            plans.insert(b, self.plan(model, b)?);
        }
        Ok(plans)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relserve_nn::init::seeded_rng;
    use relserve_nn::zoo;

    #[test]
    fn small_model_is_all_udf_centric() {
        let mut rng = seeded_rng(60);
        let model = zoo::fraud_fc_256(&mut rng).unwrap();
        let plan = RuleBasedOptimizer::paper_default()
            .plan(&model, 1000)
            .unwrap();
        assert!(plan.uses(Representation::UdfCentric));
        assert!(!plan.uses(Representation::RelationCentric));
    }

    #[test]
    fn huge_operator_goes_relation_centric() {
        let mut rng = seeded_rng(61);
        // Amazon-scaled: first weight matrix alone exceeds a small threshold.
        let model = zoo::amazon_14k_fc(100, &mut rng).unwrap();
        let opt = RuleBasedOptimizer::new(4 * 1024 * 1024); // 4 MiB
        let plan = opt.plan(&model, 1000).unwrap();
        // First matmul (5975 features × 1024 hidden) must be relation-centric.
        assert_eq!(plan.ops[0].representation, Representation::RelationCentric);
        assert!(plan.uses(Representation::UdfCentric)); // small tail ops stay UDF
    }

    #[test]
    fn threshold_is_monotone() {
        // Raising the threshold can only move ops relation→udf, never back.
        let mut rng = seeded_rng(62);
        let model = zoo::encoder_fc(&mut rng).unwrap();
        let batch = 512;
        let mut prev_relational = usize::MAX;
        for threshold in [1 << 12, 1 << 16, 1 << 20, 1 << 24, 1 << 30] {
            let plan = RuleBasedOptimizer::new(threshold)
                .plan(&model, batch)
                .unwrap();
            let relational = plan
                .ops
                .iter()
                .filter(|o| o.representation == Representation::RelationCentric)
                .count();
            assert!(relational <= prev_relational, "threshold {threshold}");
            prev_relational = relational;
        }
    }

    #[test]
    fn batch_size_flips_the_decision() {
        // The same operator can fit at batch 10 and exceed at batch 100k.
        let mut rng = seeded_rng(63);
        let model = zoo::fraud_fc_512(&mut rng).unwrap();
        let opt = RuleBasedOptimizer::new(1 << 21); // 2 MiB
        let small = opt.plan(&model, 10).unwrap();
        let large = opt.plan(&model, 200_000).unwrap();
        assert!(!small.uses(Representation::RelationCentric));
        assert!(large.uses(Representation::RelationCentric));
    }

    #[test]
    fn device_placement_scales_with_operator_size() {
        use relserve_runtime::DeviceKind;
        let mut rng = seeded_rng(66);
        let opt = RuleBasedOptimizer::paper_default();
        let devices = DeviceModel::default_testbed();
        // Tiny fraud model at batch 1: every op stays on CPU.
        let small_model = zoo::fraud_fc_256(&mut rng).unwrap();
        let small = opt.plan(&small_model, 1).unwrap();
        for d in RuleBasedOptimizer::place_devices(&small, &devices) {
            assert_eq!(d.device, DeviceKind::Cpu);
        }
        // Encoder at batch 100k: the big matmuls are worth the transfer.
        let big_model = zoo::encoder_fc(&mut rng).unwrap();
        let big = opt.plan(&big_model, 100_000).unwrap();
        let placements = RuleBasedOptimizer::place_devices(&big, &devices);
        assert!(
            placements.iter().any(|d| d.device == DeviceKind::Gpu),
            "no op offloaded at batch 100k"
        );
    }

    #[test]
    fn aot_plans_cover_requested_batches() {
        let mut rng = seeded_rng(64);
        let model = zoo::fraud_fc_256(&mut rng).unwrap();
        let plans = RuleBasedOptimizer::paper_default()
            .plan_for_batches(&model, &[1, 100, 10_000])
            .unwrap();
        assert_eq!(plans.len(), 3);
        assert!(plans.contains_key(&100));
        assert_eq!(plans[&10_000].batch_size, 10_000);
    }

    #[test]
    fn paper_threshold_reproduces_section_7_1_arithmetic() {
        // At the paper's 2 GiB threshold, paper-scale Amazon-14k-FC at
        // batch 1000 must exceed the threshold on its first matmul: the
        // §7.1 estimate is (m·k + k·n + m·n) × 4 B with m=1000, k=597,540,
        // n=1024, dominated by the 2.28 GiB weight matrix. (Checked
        // arithmetically — materializing the real weights needs ~2.4 GB.)
        let (m, k, n) = (1000usize, 597_540usize, 1024usize);
        let estimate = (m * k + k * n + m * n) * relserve_tensor::ELEM_BYTES;
        let opt = RuleBasedOptimizer::paper_default();
        assert!(estimate > opt.memory_threshold_bytes);
        // And the batch-8000 row of Table 3 exceeds it even further.
        let estimate_8000 = (8000 * k + k * n + 8000 * n) * relserve_tensor::ELEM_BYTES;
        assert!(estimate_8000 > estimate);
    }
}
