//! Query-transformation rules (§2.2), headlined by **model decomposition and
//! push-down** — the §7.2.1 experiment.
//!
//! For a pipeline that joins two feature tables `D1 ⋈ D2` and then applies a
//! dense layer with weight `W`, the identity
//!
//! ```text
//! W × (D1 ⋈ D2) = (W1 × D1) ⊕ (W2 × D2)        (⊕ = join + elementwise add)
//! ```
//!
//! lets the optimizer push the two sub-multiplications *below* the join. The
//! join then moves `hidden`-wide intermediates instead of `features`-wide
//! rows — a large win whenever the first layer shrinks dimensionality, as in
//! the Bosch pipeline (968 features → 256 hidden; the paper reports 5.7×).

use crate::error::{Error, Result};
use relserve_nn::{Activation, Layer, Model};
use relserve_relational::ops::{Operator, SimilarityJoin};
use relserve_relational::{Expr, Table, Tuple, Value};
use relserve_tensor::parallel::Parallelism;
use relserve_tensor::{matmul, ops, Tensor};

/// Split a dense layer's weight `W: [out, in]` by input columns into
/// `W1: [out, split]` and `W2: [out, in - split]`.
pub fn decompose_weight(weight: &Tensor, split: usize) -> Result<(Tensor, Tensor)> {
    let (out, inf) = weight.shape().as_matrix()?;
    if split == 0 || split >= inf {
        return Err(Error::Invalid(format!("split {split} outside (0, {inf})")));
    }
    Ok((
        weight.slice2(0, out, 0, split)?,
        weight.slice2(0, out, split, inf)?,
    ))
}

/// The first dense layer of a model, or an error.
fn first_dense(model: &Model) -> Result<(&Tensor, &Tensor, Activation)> {
    match model.layers().first() {
        Some(Layer::Dense {
            weight,
            bias,
            activation,
        }) => Ok((weight, bias, *activation)),
        _ => Err(Error::Invalid(
            "decomposition requires a model starting with a dense layer".into(),
        )),
    }
}

/// Inputs to the §7.2.1 pipeline: two feature tables and the similarity-join
/// predicate `|d1.join_col - d2.join_col| ≤ epsilon`, where each table has a
/// join-key float column and a feature-vector column.
pub struct JoinedInference<'a> {
    /// Left feature table.
    pub d1: &'a Table,
    /// Right feature table.
    pub d2: &'a Table,
    /// Index of the float join column in `d1`.
    pub d1_join_col: usize,
    /// Index of the float join column in `d2`.
    pub d2_join_col: usize,
    /// Index of the feature-vector column in `d1`.
    pub d1_features: usize,
    /// Index of the feature-vector column in `d2`.
    pub d2_features: usize,
    /// Similarity-join tolerance.
    pub epsilon: f32,
}

/// Baseline plan: join first, **materialize the joined wide table** (an
/// RDBMS pipeline materializes intermediate sets between operators, as
/// netsDB does), then scan it back and run the model over the augmented
/// features. The materialized intermediate carries the *full* feature width
/// — the cost the push-down transformation removes.
pub fn run_join_then_infer(
    q: &JoinedInference<'_>,
    model: &Model,
    par: &Parallelism,
) -> Result<Tensor> {
    let pool = q.d1.heap().pool().clone();
    let left = relserve_relational::ops::SeqScan::new(q.d1);
    let right = relserve_relational::ops::SeqScan::new(q.d2);
    let mut join = SimilarityJoin::new(
        Box::new(left),
        Box::new(right),
        Expr::col(q.d1_join_col),
        Expr::col(q.d2_join_col),
        q.epsilon,
    )
    .map_err(Error::Relational)?;
    // Materialize the augmented feature table D = D1 ⋈ D2.
    let d1_arity = q.d1.schema().arity();
    let f2_idx = d1_arity + q.d2_features;
    let joined_schema = relserve_relational::Schema::new(vec![relserve_relational::Column::new(
        "features",
        relserve_relational::DataType::Vector,
    )]);
    let joined = Table::create(pool, "joined.wide", joined_schema);
    let mut width = 0usize;
    {
        use relserve_relational::ops::Operator;
        while let Some(t) = join.next().map_err(Error::Relational)? {
            let mut wide = t.value(q.d1_features)?.as_vector()?.to_vec();
            wide.extend_from_slice(t.value(f2_idx)?.as_vector()?);
            width = wide.len();
            joined
                .insert(&Tuple::new(vec![Value::Vector(wide)]))
                .map_err(Error::Relational)?;
        }
    }
    if joined.cardinality() == 0 {
        return Err(Error::Invalid("similarity join produced no rows".into()));
    }
    // Scan the materialized table back and run the model over it.
    let rows = joined.cardinality() as usize;
    let mut data = Vec::with_capacity(rows * width);
    for row in joined.scan() {
        let row = row.map_err(Error::Relational)?;
        data.extend_from_slice(row.value(0)?.as_vector()?);
    }
    let features = Tensor::from_vec([rows, width], data)?;
    Ok(model.forward(&features, par)?)
}

/// Push-down plan: multiply each side's features by its weight slice *before*
/// the join, join the narrow intermediates, add the partial products, then
/// finish the model (bias, activation, remaining layers).
pub fn run_pushdown_infer(
    q: &JoinedInference<'_>,
    model: &Model,
    par: &Parallelism,
) -> Result<Tensor> {
    let (weight, bias, activation) = first_dense(model)?;
    // Determine the split from the actual feature widths.
    let probe = |table: &Table, col: usize| -> Result<usize> {
        match table.scan().next() {
            Some(row) => {
                let row = row.map_err(Error::Relational)?;
                Ok(row.value(col)?.as_vector()?.len())
            }
            None => Err(Error::Invalid("empty feature table".into())),
        }
    };
    let f1_len = probe(q.d1, q.d1_features)?;
    let f2_len = probe(q.d2, q.d2_features)?;
    let (_, inf) = weight.shape().as_matrix()?;
    if f1_len + f2_len != inf {
        return Err(Error::Invalid(format!(
            "feature widths {f1_len}+{f2_len} do not match weight input {inf}"
        )));
    }
    let (w1, w2) = decompose_weight(weight, f1_len)?;

    // Push down: compute Xi × Wiᵀ per side and **materialize the narrow
    // partial tables** — the same pipeline materialization the baseline
    // pays, but on `hidden`-wide rows instead of raw-feature-wide rows.
    let pool = q.d1.heap().pool().clone();
    let partial_schema = relserve_relational::Schema::new(vec![
        relserve_relational::Column::new("key", relserve_relational::DataType::Float),
        relserve_relational::Column::new("partial", relserve_relational::DataType::Vector),
    ]);
    let pushed = |table: &Table,
                  join_col: usize,
                  feat_col: usize,
                  w: &Tensor,
                  name: &str|
     -> Result<Table> {
        let out = Table::create(pool.clone(), name, partial_schema.clone());
        let width = w.shape().as_matrix()?.1;
        // Stream the base table in bounded batches: scan → multiply → write.
        const CHUNK: usize = 4096;
        let mut keys: Vec<f32> = Vec::with_capacity(CHUNK);
        let mut batch: Vec<f32> = Vec::with_capacity(CHUNK * width);
        let flush = |keys: &mut Vec<f32>, batch: &mut Vec<f32>| -> Result<()> {
            if keys.is_empty() {
                return Ok(());
            }
            let rows = keys.len();
            let x = Tensor::from_vec([rows, width], std::mem::take(batch))?;
            let partial = matmul::matmul_bt_parallel(&x, w, par)?;
            for (i, key) in keys.iter().enumerate() {
                out.insert(&Tuple::new(vec![
                    Value::Float(*key),
                    Value::Vector(partial.row(i)?.to_vec()),
                ]))
                .map_err(Error::Relational)?;
            }
            keys.clear();
            Ok(())
        };
        for row in table.scan() {
            let row = row.map_err(Error::Relational)?;
            keys.push(row.value(join_col)?.as_float().map_err(Error::Relational)?);
            batch.extend_from_slice(row.value(feat_col)?.as_vector()?);
            if keys.len() == CHUNK {
                flush(&mut keys, &mut batch)?;
            }
        }
        flush(&mut keys, &mut batch)?;
        Ok(out)
    };
    let p1 = pushed(q.d1, q.d1_join_col, q.d1_features, &w1, "pushed.p1")?;
    let p2 = pushed(q.d2, q.d2_join_col, q.d2_features, &w2, "pushed.p2")?;

    let left = relserve_relational::ops::SeqScan::new(&p1);
    let right = relserve_relational::ops::SeqScan::new(&p2);
    let mut join = SimilarityJoin::new(
        Box::new(left),
        Box::new(right),
        Expr::col(0),
        Expr::col(0),
        q.epsilon,
    )
    .map_err(Error::Relational)?;

    // Combine partials: hidden = act(p1 + p2 + bias), then the tail layers.
    let mut hidden_rows: Vec<f32> = Vec::new();
    let mut count = 0usize;
    let hidden_width = bias.len();
    while let Some(t) = join.next().map_err(Error::Relational)? {
        let a = t.value(1)?.as_vector()?;
        let b = t.value(3)?.as_vector()?;
        hidden_rows.extend(a.iter().zip(b).map(|(x, y)| x + y));
        count += 1;
    }
    if count == 0 {
        return Err(Error::Invalid("similarity join produced no rows".into()));
    }
    let z = Tensor::from_vec([count, hidden_width], hidden_rows)?;
    let z = ops::add_bias(&z, bias)?;
    let mut x = activation.apply(&z).map_err(Error::Nn)?;
    for layer in &model.layers()[1..] {
        x = layer.forward(&x, par).map_err(Error::Nn)?;
    }
    Ok(x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use relserve_nn::init::seeded_rng;
    use relserve_relational::{Column, DataType, Schema};
    use relserve_storage::{BufferPool, DiskManager};
    use std::sync::Arc;

    fn feature_table(
        name: &str,
        n: usize,
        width: usize,
        key_of: impl Fn(usize) -> f32,
        seed: u64,
    ) -> Table {
        let pool = Arc::new(BufferPool::new(Arc::new(DiskManager::temp().unwrap()), 32));
        let schema = Schema::new(vec![
            Column::new("key", DataType::Float),
            Column::new("features", DataType::Vector),
        ]);
        let table = Table::create(pool, name, schema);
        use rand::Rng;
        let mut rng = relserve_nn::init::seeded_rng(seed);
        for i in 0..n {
            let features: Vec<f32> = (0..width).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
            table
                .insert(&Tuple::new(vec![
                    Value::Float(key_of(i)),
                    Value::Vector(features),
                ]))
                .unwrap();
        }
        table
    }

    fn query<'a>(d1: &'a Table, d2: &'a Table) -> JoinedInference<'a> {
        JoinedInference {
            d1,
            d2,
            d1_join_col: 0,
            d2_join_col: 0,
            d1_features: 1,
            d2_features: 1,
            epsilon: 0.25,
        }
    }

    #[test]
    fn decompose_weight_splits_columns() {
        let w = Tensor::from_fn([3, 10], |i| i as f32);
        let (w1, w2) = decompose_weight(&w, 4).unwrap();
        assert_eq!(w1.shape().dims(), &[3, 4]);
        assert_eq!(w2.shape().dims(), &[3, 6]);
        assert_eq!(w1.hconcat(&w2).unwrap(), w);
        assert!(decompose_weight(&w, 0).is_err());
        assert!(decompose_weight(&w, 10).is_err());
    }

    #[test]
    fn pushdown_matches_baseline() {
        // The correctness heart of §7.2.1: both plans must produce the same
        // predictions (up to float reassociation).
        let mut rng = seeded_rng(110);
        let model = Model::new("mini-bosch", [12])
            .push(Layer::dense(12, 6, Activation::Relu, &mut rng))
            .unwrap()
            .push(Layer::dense(6, 2, Activation::Softmax, &mut rng))
            .unwrap();
        // Keys 0.0, 1.0, 2.0, ... on both sides → each row joins its twin.
        let d1 = feature_table("d1", 30, 7, |i| i as f32, 1);
        let d2 = feature_table("d2", 30, 5, |i| i as f32, 2);
        let q = query(&d1, &d2);
        let baseline = run_join_then_infer(&q, &model, &Parallelism::serial()).unwrap();
        let pushed = run_pushdown_infer(&q, &model, &Parallelism::serial()).unwrap();
        assert_eq!(baseline.shape(), pushed.shape());
        assert!(
            baseline.approx_eq(&pushed, 1e-4),
            "max diff {}",
            baseline.max_abs_diff(&pushed).unwrap()
        );
    }

    #[test]
    fn pushdown_handles_one_to_many_joins() {
        let mut rng = seeded_rng(111);
        let model = Model::new("m", [8])
            .push(Layer::dense(8, 4, Activation::Relu, &mut rng))
            .unwrap()
            .push(Layer::dense(4, 2, Activation::Softmax, &mut rng))
            .unwrap();
        // d2 keys cluster: key/2 → two d2 rows match each d1 key bucket.
        let d1 = feature_table("d1", 10, 5, |i| i as f32, 3);
        let d2 = feature_table("d2", 20, 3, |i| (i / 2) as f32, 4);
        let q = query(&d1, &d2);
        let baseline = run_join_then_infer(&q, &model, &Parallelism::serial()).unwrap();
        let pushed = run_pushdown_infer(&q, &model, &Parallelism::serial()).unwrap();
        // Join order may differ between plans; compare sorted row checksums.
        let row_sums = |t: &Tensor| {
            let (r, c) = t.shape().as_matrix().unwrap();
            let mut sums: Vec<f32> = (0..r)
                .map(|i| {
                    t.row(i)
                        .unwrap()
                        .iter()
                        .enumerate()
                        .map(|(j, v)| v * (j as f32 + 1.0))
                        .sum()
                })
                .collect();
            sums.sort_by(f32::total_cmp);
            let _ = c;
            sums
        };
        let a = row_sums(&baseline);
        let b = row_sums(&pushed);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-4);
        }
    }

    #[test]
    fn feature_width_mismatch_is_rejected() {
        let mut rng = seeded_rng(112);
        let model = Model::new("m", [10])
            .push(Layer::dense(10, 4, Activation::Softmax, &mut rng))
            .unwrap();
        let d1 = feature_table("d1", 5, 7, |i| i as f32, 5);
        let d2 = feature_table("d2", 5, 5, |i| i as f32, 6); // 7+5 ≠ 10
        let q = query(&d1, &d2);
        assert!(run_pushdown_infer(&q, &model, &Parallelism::serial()).is_err());
    }

    #[test]
    fn non_dense_first_layer_rejected() {
        let mut rng = seeded_rng(113);
        let model = Model::new("m", [4, 4, 1])
            .push(Layer::conv2d(1, 2, 1, 1, Activation::None, &mut rng))
            .unwrap();
        let d1 = feature_table("d1", 5, 8, |i| i as f32, 7);
        let d2 = feature_table("d2", 5, 8, |i| i as f32, 8);
        let q = query(&d1, &d2);
        assert!(run_pushdown_infer(&q, &model, &Parallelism::serial()).is_err());
    }
}
