//! The user-facing facade: an RDBMS session that serves models.
//!
//! An [`InferenceSession`] owns the storage engine (disk + buffer pool +
//! catalog), the database memory governor, the thread coordinator, and the
//! adaptive optimizer. Users register tables, load models, and run inference
//! queries under any of the three architectures or the adaptive policy —
//! the workflow of Fig. 1's envisioned system.

use crate::cache::CachedModel;
use crate::error::{Error, Result};
use crate::exec::{dl_centric, hybrid, pipelined, relation_centric, udf_centric, Output};
use crate::ir::InferencePlan;
use crate::optimizer::RuleBasedOptimizer;
use parking_lot::Mutex;
use relserve_nn::Model;
use relserve_relational::{Schema, Table, Tuple};
use relserve_runtime::{
    AdmissionPolicy, Connector, ExecContext, ExternalRuntime, FaultInjector, KernelPool,
    MemoryGovernor, RetryPolicy, RuntimeProfile, ThreadCoordinator, TransferProfile,
};
use relserve_storage::catalog::{ObjectKind, StoredObject};
use relserve_storage::{BufferPool, Catalog, DiskManager};
use relserve_tensor::Tensor;
use relserve_vectoridx::HnswParams;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Session-wide configuration (every knob of the paper's experiments).
#[derive(Debug, Clone, Copy)]
pub struct SessionConfig {
    /// Database memory budget for dense (UDF-centric/hybrid) execution.
    pub db_memory_bytes: usize,
    /// Buffer-pool size (the paper's "20 GB buffer pool" knob, scaled).
    pub buffer_pool_bytes: usize,
    /// The §7.1 operator threshold (the paper uses 2 GiB).
    pub memory_threshold_bytes: usize,
    /// Tensor block side length for relation-centric execution.
    pub block_size: usize,
    /// Physical cores to coordinate.
    pub cores: usize,
    /// Memory budget of a launched external DL runtime process.
    pub external_memory_bytes: usize,
    /// Connector wire model for DL-centric execution.
    pub transfer: TransferProfile,
    /// Bounded retry applied to every connector shipment and external-runtime
    /// reservation of a DL-centric query.
    pub retry: RetryPolicy,
    /// When `true` (the default), a query that fails with a recoverable
    /// error — governor OOM or exhausted connector retries — is re-executed
    /// relation-centric under the same admission grant instead of failing.
    pub degradation: bool,
}

impl SessionConfig {
    /// A validating builder starting from [`SessionConfig::default`].
    pub fn builder() -> SessionConfigBuilder {
        SessionConfigBuilder {
            config: SessionConfig::default(),
        }
    }
}

impl Default for SessionConfig {
    fn default() -> Self {
        SessionConfig {
            db_memory_bytes: 1 << 30,        // 1 GiB
            buffer_pool_bytes: 256 << 20,    // 256 MiB
            memory_threshold_bytes: 2 << 30, // the paper's 2 GiB
            block_size: 256,
            cores: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
            external_memory_bytes: 1 << 30,
            transfer: TransferProfile::local_connectorx(),
            retry: RetryPolicy::default(),
            degradation: true,
        }
    }
}

/// Builds a [`SessionConfig`], rejecting degenerate values at
/// [`SessionConfigBuilder::build`] time instead of letting them surface as
/// panics or hangs deep inside an executor.
#[derive(Debug, Clone)]
pub struct SessionConfigBuilder {
    config: SessionConfig,
}

impl SessionConfigBuilder {
    /// Database memory budget for dense (UDF-centric/hybrid) execution.
    pub fn db_memory_bytes(mut self, bytes: usize) -> Self {
        self.config.db_memory_bytes = bytes;
        self
    }

    /// Buffer-pool size in bytes.
    pub fn buffer_pool_bytes(mut self, bytes: usize) -> Self {
        self.config.buffer_pool_bytes = bytes;
        self
    }

    /// The §7.1 operator memory threshold.
    pub fn memory_threshold_bytes(mut self, bytes: usize) -> Self {
        self.config.memory_threshold_bytes = bytes;
        self
    }

    /// Tensor block side length for relation-centric execution.
    pub fn block_size(mut self, block: usize) -> Self {
        self.config.block_size = block;
        self
    }

    /// Physical cores the session's coordinator manages.
    pub fn cores(mut self, cores: usize) -> Self {
        self.config.cores = cores;
        self
    }

    /// Memory budget of a launched external DL runtime process.
    pub fn external_memory_bytes(mut self, bytes: usize) -> Self {
        self.config.external_memory_bytes = bytes;
        self
    }

    /// Connector wire model for DL-centric execution.
    pub fn transfer(mut self, profile: TransferProfile) -> Self {
        self.config.transfer = profile;
        self
    }

    /// Retry policy for DL-centric boundary crossings.
    pub fn retry(mut self, policy: RetryPolicy) -> Self {
        self.config.retry = policy;
        self
    }

    /// Enable or disable the graceful-degradation fallback chain.
    pub fn degradation(mut self, enabled: bool) -> Self {
        self.config.degradation = enabled;
        self
    }

    /// Validate and produce the configuration.
    pub fn build(self) -> Result<SessionConfig> {
        let c = self.config;
        if c.block_size == 0 {
            return Err(Error::Invalid("block_size must be positive".into()));
        }
        if c.cores == 0 {
            return Err(Error::Invalid("cores must be at least 1".into()));
        }
        if c.db_memory_bytes == 0 {
            return Err(Error::Invalid("db_memory_bytes must be non-zero".into()));
        }
        if c.buffer_pool_bytes == 0 {
            return Err(Error::Invalid("buffer_pool_bytes must be non-zero".into()));
        }
        if c.external_memory_bytes == 0 {
            return Err(Error::Invalid(
                "external_memory_bytes must be non-zero".into(),
            ));
        }
        if c.retry.max_attempts == 0 {
            return Err(Error::Invalid(
                "retry.max_attempts must be at least 1".into(),
            ));
        }
        Ok(c)
    }
}

/// Which architecture to execute an inference query under.
///
/// Marked `#[non_exhaustive]`: downstream matches must keep a wildcard arm
/// so new execution strategies can be added without a breaking release.
#[non_exhaustive]
#[derive(Debug, Clone, Default, PartialEq)]
pub enum Architecture {
    /// The §7.1 rule decides per operator (the paper's recommended mode,
    /// and the default).
    #[default]
    Adaptive,
    /// Force everything through the in-database UDF path.
    UdfCentric,
    /// Force everything through tensor-block relations.
    RelationCentric,
    /// Offload to an external runtime with the given profile.
    DlCentric(RuntimeProfile),
    /// Stream micro-batches through per-layer stages (§5.2) inside the
    /// database process.
    Pipelined {
        /// Rows per micro-batch.
        micro_batch: usize,
    },
}

impl std::fmt::Display for Architecture {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Architecture::Adaptive => write!(f, "adaptive"),
            Architecture::UdfCentric => write!(f, "udf-centric"),
            Architecture::RelationCentric => write!(f, "relation-centric"),
            Architecture::DlCentric(p) => write!(f, "dl-centric({})", p.name),
            Architecture::Pipelined { micro_batch } => write!(f, "pipelined(mb={micro_batch})"),
        }
    }
}

/// Result of one inference query.
pub struct InferenceOutcome {
    /// The model output (dense or blocked).
    pub output: Output,
    /// Wall-clock execution time.
    pub elapsed: Duration,
    /// Which architecture the query was submitted under.
    pub architecture: String,
    /// The plan, when the adaptive optimizer produced one.
    pub plan: Option<InferencePlan>,
    /// The fallback architecture that actually produced the output, when the
    /// primary attempt failed recoverably and the degradation ladder ran.
    pub degraded_to: Option<&'static str>,
}

impl InferenceOutcome {
    /// Row-wise class predictions.
    pub fn predictions(&self) -> Result<Vec<usize>> {
        self.output.predictions()
    }
}

impl std::fmt::Debug for InferenceOutcome {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("InferenceOutcome")
            .field("output", &self.output)
            .field("elapsed", &self.elapsed)
            .field("architecture", &self.architecture)
            .field("degraded_to", &self.degraded_to)
            .finish()
    }
}

/// Robustness counters of one session, aggregated across every query it has
/// served; see [`InferenceSession::stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SessionStats {
    /// OOM rejections by the database memory governor.
    pub db_oom_events: u64,
    /// OOM rejections inside per-query external DL runtimes.
    pub external_oom_events: u64,
    /// Queries admitted by the shared coordinator (all sessions sharing it).
    pub admitted: u64,
    /// Queries shed with [`relserve_runtime::Error::Overloaded`] after
    /// queueing past their admission timeout.
    pub shed: u64,
    /// Queries whose deadline expired while still queued for admission.
    pub deadline_expired: u64,
    /// Queries this session completed via the relation-centric fallback.
    pub degradations: u64,
    /// Transient wire faults hit by this session's connector shipments.
    pub wire_transient_failures: u64,
    /// Connector shipment re-attempts made by the bounded retry.
    pub wire_retries: u64,
    /// External-runtime reservation re-attempts after transient stalls.
    pub runtime_retries: u64,
    /// Kernel panics caught and converted to typed errors.
    pub kernel_panics: u64,
}

impl SessionStats {
    /// The counters as stable `(name, value)` pairs, for exporting over a
    /// wire or into a metrics sink without the consumer knowing the struct
    /// layout. `SessionStats` itself is the plain-old-data snapshot: it is
    /// `Copy`, holds no locks, and is safe to ship across threads.
    pub fn counters(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("db_oom_events", self.db_oom_events),
            ("external_oom_events", self.external_oom_events),
            ("admitted", self.admitted),
            ("shed", self.shed),
            ("deadline_expired", self.deadline_expired),
            ("degradations", self.degradations),
            ("wire_transient_failures", self.wire_transient_failures),
            ("wire_retries", self.wire_retries),
            ("runtime_retries", self.runtime_retries),
            ("kernel_panics", self.kernel_panics),
        ]
    }
}

/// Outcome of one fused execution serving several coalesced requests: the
/// whole batch ran as a single admitted query, and the per-request
/// predictions were demultiplexed back out by row count. Produced by
/// [`InferenceSession::infer_fused`].
#[derive(Debug)]
pub struct FusedOutcome {
    /// Row-wise class predictions per fused request, in submission order.
    pub per_request: Vec<Vec<usize>>,
    /// Wall-clock execution time of the fused batch (shared by every
    /// request it carried).
    pub elapsed: Duration,
    /// Which architecture the fused batch was submitted under.
    pub architecture: String,
    /// The fallback architecture that actually produced the output, when
    /// the primary attempt failed recoverably (applies to every request in
    /// the batch).
    pub degraded_to: Option<&'static str>,
}

#[derive(Default)]
struct SessionCounters {
    external_oom_events: AtomicU64,
    degradations: AtomicU64,
    wire_transient_failures: AtomicU64,
    wire_retries: AtomicU64,
    runtime_retries: AtomicU64,
    kernel_panics: AtomicU64,
}

/// Best-effort extraction of a caught panic payload's message.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

/// An in-process RDBMS session serving deep-learning models.
pub struct InferenceSession {
    config: SessionConfig,
    pool: Arc<BufferPool>,
    catalog: Catalog,
    governor: MemoryGovernor,
    coordinator: ThreadCoordinator,
    kernel_pool: Arc<KernelPool>,
    optimizer: RuleBasedOptimizer,
    models: Mutex<HashMap<String, Arc<Model>>>,
    tables: Mutex<HashMap<String, Arc<Table>>>,
    faults: Option<FaultInjector>,
    counters: SessionCounters,
}

impl InferenceSession {
    /// Open a session on a scratch database with a private coordinator
    /// sized from `config.cores`.
    pub fn open(config: SessionConfig) -> Result<Self> {
        let coordinator = ThreadCoordinator::new(config.cores);
        Self::open_shared(config, &coordinator)
    }

    /// Open a session sharing `coordinator`'s admission ledger and kernel
    /// pool: concurrent queries across every session built from clones of
    /// one coordinator are budgeted against the same physical cores (§3.1).
    /// `config.cores` is ignored in favor of the coordinator's core count.
    /// There is no process-global state — each query's threads come from
    /// the [`relserve_runtime::ExecContext`] it is admitted into.
    pub fn open_shared(config: SessionConfig, coordinator: &ThreadCoordinator) -> Result<Self> {
        let disk = Arc::new(DiskManager::temp()?);
        let pool = Arc::new(BufferPool::with_budget_bytes(
            disk,
            config.buffer_pool_bytes,
        ));
        let coordinator = coordinator.clone();
        let kernel_pool = coordinator.kernel_pool();
        Ok(InferenceSession {
            governor: MemoryGovernor::with_budget("db", config.db_memory_bytes),
            coordinator,
            kernel_pool,
            optimizer: RuleBasedOptimizer::new(config.memory_threshold_bytes),
            pool,
            catalog: Catalog::new(),
            models: Mutex::new(HashMap::new()),
            tables: Mutex::new(HashMap::new()),
            faults: FaultInjector::from_env(),
            counters: SessionCounters::default(),
            config,
        })
    }

    /// Replace the session's fault injector (ambient injection is otherwise
    /// read from [`relserve_runtime::FAULT_SEED_ENV`] at open time). Tests
    /// and chaos harnesses use this to inject deterministic fault streams
    /// without touching process environment.
    pub fn with_fault_injector(mut self, faults: FaultInjector) -> Self {
        self.faults = Some(faults);
        self
    }

    /// The session's thread coordinator (admission ledger + kernel pool).
    /// Clone it to open further sessions that share this machine's budget
    /// via [`InferenceSession::open_shared`].
    pub fn coordinator(&self) -> &ThreadCoordinator {
        &self.coordinator
    }

    /// The session configuration.
    pub fn config(&self) -> &SessionConfig {
        &self.config
    }

    /// The database memory governor (inspect peaks and OOM counts).
    pub fn governor(&self) -> &MemoryGovernor {
        &self.governor
    }

    /// Aggregated robustness counters: OOM events, admission shedding,
    /// connector retries, and degradations across the session's lifetime.
    /// Admission counters come from the shared coordinator, so sessions
    /// built from clones of one coordinator observe the same ledger.
    pub fn stats(&self) -> SessionStats {
        let admission = self.coordinator.admission_stats();
        SessionStats {
            db_oom_events: self.governor.oom_events(),
            external_oom_events: self.counters.external_oom_events.load(Ordering::Relaxed),
            admitted: admission.admitted,
            shed: admission.shed,
            deadline_expired: admission.deadline_expired,
            degradations: self.counters.degradations.load(Ordering::Relaxed),
            wire_transient_failures: self
                .counters
                .wire_transient_failures
                .load(Ordering::Relaxed),
            wire_retries: self.counters.wire_retries.load(Ordering::Relaxed),
            runtime_retries: self.counters.runtime_retries.load(Ordering::Relaxed),
            kernel_panics: self.counters.kernel_panics.load(Ordering::Relaxed),
        }
    }

    /// The buffer pool (inspect spill statistics).
    pub fn pool(&self) -> &Arc<BufferPool> {
        &self.pool
    }

    /// The session's persistent kernel thread pool (inspect scheduling
    /// counters).
    pub fn kernel_pool(&self) -> &Arc<KernelPool> {
        &self.kernel_pool
    }

    /// Create a relational table.
    pub fn create_table(&self, name: &str, schema: Schema) -> Result<Arc<Table>> {
        let mut tables = self.tables.lock();
        if tables.contains_key(name) {
            return Err(Error::AlreadyExists(name.to_string()));
        }
        let table = Arc::new(Table::create(self.pool.clone(), name, schema));
        self.catalog.create(
            name,
            StoredObject {
                kind: ObjectKind::Table,
                pages: vec![],
                cardinality: 0,
                meta: vec![],
            },
        )?;
        tables.insert(name.to_string(), table.clone());
        Ok(table)
    }

    /// Look up a registered table.
    pub fn table(&self, name: &str) -> Result<Arc<Table>> {
        self.tables
            .lock()
            .get(name)
            .cloned()
            .ok_or_else(|| Error::NotFound(name.to_string()))
    }

    /// Insert tuples into a table.
    pub fn insert(&self, table: &str, rows: &[Tuple]) -> Result<()> {
        let table = self.table(table)?;
        for row in rows {
            table.insert(row)?;
        }
        Ok(())
    }

    /// Load a model into the session (and its serialized form into the
    /// catalog, binding model and metadata as §4.1 advocates).
    pub fn load_model(&self, model: Model) -> Result<()> {
        let name = model.name().to_string();
        let mut models = self.models.lock();
        if models.contains_key(&name) {
            return Err(Error::AlreadyExists(name));
        }
        let serialized = relserve_nn::serialize::to_bytes(&model);
        self.catalog.create(
            &name,
            StoredObject {
                kind: ObjectKind::Model,
                pages: vec![],
                cardinality: model.num_params() as u64,
                meta: serialized,
            },
        )?;
        models.insert(name, Arc::new(model));
        Ok(())
    }

    /// Look up a loaded model.
    pub fn model(&self, name: &str) -> Result<Arc<Model>> {
        self.models
            .lock()
            .get(name)
            .cloned()
            .ok_or_else(|| Error::NotFound(name.to_string()))
    }

    /// Reload a model from its catalog bytes (round-trip check, recovery).
    pub fn reload_model_from_catalog(&self, name: &str) -> Result<Model> {
        let object = self.catalog.get(name)?;
        if object.kind != ObjectKind::Model {
            return Err(Error::Invalid(format!("`{name}` is not a model")));
        }
        Ok(relserve_nn::serialize::from_bytes(&object.meta)?)
    }

    /// Produce the adaptive plan for a model at a batch size (EXPLAIN).
    pub fn plan(&self, model: &str, batch_size: usize) -> Result<InferencePlan> {
        let model = self.model(model)?;
        self.optimizer.plan(&model, batch_size)
    }

    /// Extract a dense feature batch from a table's vector column.
    pub fn features(&self, table: &str, vector_col: &str) -> Result<Tensor> {
        let table = self.table(table)?;
        let col = table.schema().index_of(vector_col)?;
        let mut data: Vec<f32> = Vec::new();
        let mut rows = 0usize;
        let mut width = 0usize;
        for row in table.scan() {
            let row = row.map_err(Error::Relational)?;
            let v = row.value(col)?.as_vector().map_err(Error::Relational)?;
            if rows == 0 {
                width = v.len();
            } else if v.len() != width {
                return Err(Error::Invalid(format!(
                    "ragged feature column: row {rows} has {} values, expected {width}",
                    v.len()
                )));
            }
            data.extend_from_slice(v);
            rows += 1;
        }
        if rows == 0 {
            return Err(Error::Invalid(format!("table `{}` is empty", table.name())));
        }
        Ok(Tensor::from_vec([rows, width], data)?)
    }

    /// Admit `architecture`'s context shape under `policy`: dedicated for
    /// DL-centric (kernels may use every granted core, no DB workers
    /// competing), one DB worker per stage for pipelined (§3.1: stage
    /// threads × stages must not oversubscribe cores), one DB worker
    /// otherwise.
    fn admit(
        &self,
        architecture: &Architecture,
        model: &Model,
        policy: &AdmissionPolicy,
    ) -> Result<ExecContext> {
        let governor = self.governor.clone();
        Ok(match architecture {
            Architecture::DlCentric(_) => {
                self.coordinator.context_dedicated_with(governor, policy)?
            }
            Architecture::Pipelined { .. } => {
                let stages = model.layers().len().max(1);
                self.coordinator.context_with(stages, governor, policy)?
            }
            _ => self.coordinator.context_with(1, governor, policy)?,
        })
    }

    /// One primary execution attempt under an already-admitted context.
    fn run_primary(
        &self,
        model: &Model,
        batch: &Tensor,
        architecture: &Architecture,
        batch_size: usize,
        ctx: &ExecContext,
    ) -> Result<(Output, Option<InferencePlan>)> {
        match architecture {
            Architecture::UdfCentric => Ok((udf_centric::run(model, batch, ctx)?, None)),
            Architecture::RelationCentric => {
                let (out, _) =
                    relation_centric::run(model, batch, &self.pool, self.config.block_size, ctx)?;
                Ok((out, None))
            }
            Architecture::DlCentric(profile) => {
                let runtime =
                    ExternalRuntime::launch(profile.clone(), self.config.external_memory_bytes);
                let runtime = match &self.faults {
                    Some(f) => runtime.with_faults(f.clone()),
                    None => runtime,
                };
                let mut connector = match &self.faults {
                    Some(f) => Connector::with_faults(self.config.transfer, f.clone()),
                    None => Connector::new(self.config.transfer),
                };
                let result = dl_centric::run(
                    model,
                    batch,
                    &mut connector,
                    &runtime,
                    ctx,
                    &self.config.retry,
                );
                // Wire and OOM accounting must survive a failed attempt —
                // that is exactly when it matters.
                let wire = connector.stats();
                self.counters
                    .wire_transient_failures
                    .fetch_add(wire.transient_failures, Ordering::Relaxed);
                self.counters
                    .wire_retries
                    .fetch_add(wire.retries, Ordering::Relaxed);
                self.counters
                    .external_oom_events
                    .fetch_add(runtime.governor().oom_events(), Ordering::Relaxed);
                let (out, stats) = result?;
                self.counters
                    .runtime_retries
                    .fetch_add(stats.runtime_retries, Ordering::Relaxed);
                Ok((out, None))
            }
            Architecture::Pipelined { micro_batch } => {
                let (out, _) = pipelined::run(model, batch, *micro_batch, ctx)?;
                Ok((out, None))
            }
            Architecture::Adaptive => {
                let plan = self.optimizer.plan(model, batch_size)?;
                let (out, _) =
                    hybrid::run(model, batch, &plan, &self.pool, self.config.block_size, ctx)?;
                Ok((out, Some(plan)))
            }
        }
    }

    /// Run inference over a dense feature batch under `architecture` and the
    /// default [`AdmissionPolicy`].
    pub fn infer_batch(
        &self,
        model_name: &str,
        batch: &Tensor,
        architecture: Architecture,
    ) -> Result<InferenceOutcome> {
        self.infer_batch_with(model_name, batch, architecture, &AdmissionPolicy::default())
    }

    /// Run inference under an explicit [`AdmissionPolicy`]: the query queues
    /// FIFO for admission for at most `policy.queue_timeout` (shedding with
    /// [`relserve_runtime::Error::Overloaded`] when the machine stays
    /// saturated), and `policy.deadline` is enforced both in the queue and
    /// cooperatively at every executor block/stage boundary.
    ///
    /// The query runs inside its own admitted execution context; the grant
    /// returns to the coordinator when the outcome (or error) is produced.
    /// If the primary attempt fails recoverably — governor OOM, or connector
    /// retries exhausted by transient faults — and degradation is enabled,
    /// the query re-executes relation-centric *under the same grant*, and
    /// the outcome records `degraded_to`. Kernel panics are caught and
    /// surfaced as typed [`relserve_runtime::Error::KernelPanicked`] errors
    /// so one poisoned stripe cannot take down the session.
    pub fn infer_batch_with(
        &self,
        model_name: &str,
        batch: &Tensor,
        architecture: Architecture,
        policy: &AdmissionPolicy,
    ) -> Result<InferenceOutcome> {
        let model = self.model(model_name)?;
        let batch_size = model.check_input(batch)?;
        let started = Instant::now();
        let label = architecture.to_string();
        let ctx = self.admit(&architecture, &model, policy)?;
        let primary = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            self.run_primary(&model, batch, &architecture, batch_size, &ctx)
        }))
        .unwrap_or_else(|payload| {
            self.counters.kernel_panics.fetch_add(1, Ordering::Relaxed);
            Err(Error::Runtime(relserve_runtime::Error::KernelPanicked {
                message: panic_message(payload.as_ref()),
            }))
        });
        let (output, plan, degraded_to) = match primary {
            Ok((out, plan)) => (out, plan, None),
            Err(err)
                if self.config.degradation
                    && err.is_degradable()
                    && architecture != Architecture::RelationCentric =>
            {
                // The degradation ladder: relation-centric streams through
                // the buffer pool instead of materializing dense tensors, so
                // it survives both budgets that OOMed the primary attempt
                // and connectors whose wire is down. The deadline still
                // applies — a timed-out query must not burn a second pass.
                ctx.check_deadline("degrade.relation-centric")?;
                let (out, _) =
                    relation_centric::run(&model, batch, &self.pool, self.config.block_size, &ctx)?;
                self.counters.degradations.fetch_add(1, Ordering::Relaxed);
                (out, None, Some("relation-centric"))
            }
            Err(err) => return Err(err),
        };
        Ok(InferenceOutcome {
            output,
            elapsed: started.elapsed(),
            architecture: label,
            plan,
            degraded_to,
        })
    }

    /// Execute several coalesced single- or multi-row requests as one fused
    /// batch: the serving layer's micro-batcher concatenates compatible
    /// requests (same model + version), the fused batch pays for admission,
    /// planning and kernel launch **once**, and the per-request predictions
    /// are demultiplexed back out by each part's row count.
    ///
    /// Every `part` must be a 2-D `[rows, width]` tensor with the same
    /// width. The whole batch shares one outcome: if the fused execution
    /// degrades, every request reports the same `degraded_to`; if it fails,
    /// the caller maps the single error to every request it fused.
    pub fn infer_fused(
        &self,
        model_name: &str,
        parts: &[Tensor],
        architecture: Architecture,
        policy: &AdmissionPolicy,
    ) -> Result<FusedOutcome> {
        if parts.is_empty() {
            return Err(Error::Invalid("fused batch needs at least one part".into()));
        }
        let width = match parts[0].shape().dims() {
            [_, w] => *w,
            other => {
                return Err(Error::Invalid(format!(
                    "fused parts must be 2-D [rows, width], got {other:?}"
                )))
            }
        };
        let mut rows_per_part = Vec::with_capacity(parts.len());
        let mut total_rows = 0usize;
        for part in parts {
            match part.shape().dims() {
                [r, w] if *w == width && *r > 0 => {
                    rows_per_part.push(*r);
                    total_rows += *r;
                }
                other => {
                    return Err(Error::Invalid(format!(
                        "fused part shape {other:?} incompatible with width {width}"
                    )))
                }
            }
        }
        let mut data = Vec::with_capacity(total_rows * width);
        for part in parts {
            data.extend_from_slice(part.data());
        }
        let fused = Tensor::from_vec([total_rows, width], data)?;
        let outcome = self.infer_batch_with(model_name, &fused, architecture, policy)?;
        let predictions = outcome.predictions()?;
        debug_assert_eq!(predictions.len(), total_rows);
        let mut per_request = Vec::with_capacity(parts.len());
        let mut offset = 0usize;
        for rows in rows_per_part {
            per_request.push(predictions[offset..offset + rows].to_vec());
            offset += rows;
        }
        Ok(FusedOutcome {
            per_request,
            elapsed: outcome.elapsed,
            architecture: outcome.architecture,
            degraded_to: outcome.degraded_to,
        })
    }

    /// Run inference over features scanned from a table column.
    pub fn infer(
        &self,
        model_name: &str,
        table: &str,
        vector_col: &str,
        architecture: Architecture,
    ) -> Result<InferenceOutcome> {
        let batch = self.features(table, vector_col)?;
        self.infer_batch(model_name, &batch, architecture)
    }

    /// Wrap a loaded model with an inference-result cache (§5.1).
    pub fn cached_model(
        &self,
        model_name: &str,
        max_distance: f32,
        params: HnswParams,
    ) -> Result<CachedModel> {
        let model = self.model(model_name)?;
        let threads = self.coordinator.plan_for(1).kernel_threads;
        let par = self.kernel_pool.parallelism(threads);
        CachedModel::new((*model).clone(), max_distance, params, par)
    }
}

impl std::fmt::Debug for InferenceSession {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("InferenceSession")
            .field("models", &self.models.lock().len())
            .field("tables", &self.tables.lock().len())
            .field("db_budget", &self.config.db_memory_bytes)
            .field("pool_frames", &self.pool.capacity())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relserve_nn::init::seeded_rng;
    use relserve_nn::zoo;
    use relserve_relational::{Column, DataType, Value};

    fn tiny_config() -> SessionConfig {
        SessionConfig::builder()
            .db_memory_bytes(8 << 20)
            .buffer_pool_bytes(4 << 20)
            .memory_threshold_bytes(1 << 20)
            .block_size(32)
            .cores(2)
            .external_memory_bytes(8 << 20)
            .transfer(TransferProfile::instant())
            .build()
            .expect("tiny config is valid")
    }

    fn fraud_session(rows: usize) -> InferenceSession {
        let session = InferenceSession::open(tiny_config()).unwrap();
        let mut rng = seeded_rng(140);
        session
            .load_model(zoo::fraud_fc_256(&mut rng).unwrap())
            .unwrap();
        let schema = Schema::new(vec![
            Column::new("id", DataType::Int),
            Column::new("features", DataType::Vector),
        ]);
        session.create_table("transactions", schema).unwrap();
        use rand::Rng;
        let tuples: Vec<Tuple> = (0..rows)
            .map(|i| {
                let features: Vec<f32> = (0..28).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
                Tuple::new(vec![Value::Int(i as i64), Value::Vector(features)])
            })
            .collect();
        session.insert("transactions", &tuples).unwrap();
        session
    }

    #[test]
    fn end_to_end_all_architectures_agree() {
        let session = fraud_session(40);
        let archs = [
            Architecture::UdfCentric,
            Architecture::RelationCentric,
            Architecture::Adaptive,
            Architecture::DlCentric(RuntimeProfile::tensorflow_like()),
            Architecture::Pipelined { micro_batch: 7 },
        ];
        let mut all_preds = Vec::new();
        for arch in archs {
            let outcome = session
                .infer("Fraud-FC-256", "transactions", "features", arch)
                .unwrap();
            assert_eq!(outcome.output.num_rows(), 40);
            all_preds.push(outcome.predictions().unwrap());
        }
        for preds in &all_preds[1..] {
            assert_eq!(preds, &all_preds[0]);
        }
    }

    #[test]
    fn adaptive_produces_a_plan() {
        let session = fraud_session(10);
        let outcome = session
            .infer(
                "Fraud-FC-256",
                "transactions",
                "features",
                Architecture::Adaptive,
            )
            .unwrap();
        let plan = outcome.plan.expect("adaptive plans");
        assert_eq!(plan.batch_size, 10);
        assert!(!plan.ops.is_empty());
    }

    fn starved_session(degradation: bool) -> InferenceSession {
        // The Table 3 pattern in miniature: a DB budget too small for the
        // dense path, but the relation-centric path streams through.
        let mut config = tiny_config();
        config.db_memory_bytes = 64 << 10; // 64 KiB — params alone exceed this
        config.degradation = degradation;
        let session = InferenceSession::open(config).unwrap();
        let mut rng = seeded_rng(141);
        session
            .load_model(zoo::fraud_fc_512(&mut rng).unwrap())
            .unwrap();
        session
    }

    #[test]
    fn udf_oom_degrades_to_relation_centric() {
        let session = starved_session(true);
        let batch = Tensor::from_fn([64, 28], |i| (i % 5) as f32 * 0.1);
        let degraded = session
            .infer_batch("Fraud-FC-512", &batch, Architecture::UdfCentric)
            .unwrap();
        assert_eq!(degraded.degraded_to, Some("relation-centric"));
        assert_eq!(degraded.architecture, "udf-centric");
        assert_eq!(degraded.output.num_rows(), 64);
        // The fallback output is the relation-centric output.
        let direct = session
            .infer_batch("Fraud-FC-512", &batch, Architecture::RelationCentric)
            .unwrap();
        assert_eq!(direct.degraded_to, None);
        assert_eq!(
            degraded.predictions().unwrap(),
            direct.predictions().unwrap()
        );
        let stats = session.stats();
        assert!(stats.db_oom_events >= 1);
        assert_eq!(stats.degradations, 1);
    }

    #[test]
    fn degradation_escape_hatch_surfaces_raw_oom() {
        let session = starved_session(false);
        let batch = Tensor::from_fn([64, 28], |i| (i % 5) as f32 * 0.1);
        let err = session
            .infer_batch("Fraud-FC-512", &batch, Architecture::UdfCentric)
            .unwrap_err();
        assert!(err.is_oom());
        assert_eq!(session.stats().degradations, 0);
    }

    #[test]
    fn dead_wire_dl_centric_degrades_to_relation_centric() {
        use relserve_runtime::{FaultConfig, FaultInjector};
        // Every shipment fails: the bounded retry exhausts, and the session
        // degrades the query to relation-centric instead of failing it.
        let session = fraud_session(16)
            .with_fault_injector(FaultInjector::new(FaultConfig::flaky_wire(7, 1.0)));
        let batch = session.features("transactions", "features").unwrap();
        let outcome = session
            .infer_batch(
                "Fraud-FC-256",
                &batch,
                Architecture::DlCentric(RuntimeProfile::tensorflow_like()),
            )
            .unwrap();
        assert_eq!(outcome.degraded_to, Some("relation-centric"));
        let oracle = session
            .infer_batch("Fraud-FC-256", &batch, Architecture::RelationCentric)
            .unwrap();
        assert_eq!(
            outcome.predictions().unwrap(),
            oracle.predictions().unwrap()
        );
        let stats = session.stats();
        assert_eq!(stats.degradations, 1);
        // Default policy: 4 attempts → 4 transient faults, 3 re-attempts.
        assert_eq!(stats.wire_transient_failures, 4);
        assert_eq!(stats.wire_retries, 3);
    }

    #[test]
    fn flaky_wire_dl_centric_heals_without_degrading() {
        use relserve_runtime::{FaultConfig, FaultInjector};
        let mut cfg = FaultConfig::flaky_wire(9, 1.0);
        cfg.max_faults = Some(1);
        let session = fraud_session(8).with_fault_injector(FaultInjector::new(cfg));
        let batch = session.features("transactions", "features").unwrap();
        let outcome = session
            .infer_batch(
                "Fraud-FC-256",
                &batch,
                Architecture::DlCentric(RuntimeProfile::tensorflow_like()),
            )
            .unwrap();
        assert_eq!(outcome.degraded_to, None);
        let stats = session.stats();
        assert_eq!(stats.degradations, 0);
        assert_eq!(stats.wire_transient_failures, 1);
        assert_eq!(stats.wire_retries, 1);
    }

    #[test]
    fn overloaded_session_sheds_with_typed_error() {
        use relserve_runtime::Error as RtError;
        let session = fraud_session(4);
        let batch = session.features("transactions", "features").unwrap();
        // Hold the whole machine, then ask for a query with a short queue
        // timeout: it must shed, not block.
        let hold = session.coordinator().admit(2).unwrap();
        let policy = AdmissionPolicy::with_queue_timeout(Duration::from_millis(20));
        let err = session
            .infer_batch_with("Fraud-FC-256", &batch, Architecture::UdfCentric, &policy)
            .unwrap_err();
        assert!(
            matches!(err, Error::Runtime(RtError::Overloaded { .. })),
            "{err:?}"
        );
        assert!(session.stats().shed >= 1);
        drop(hold);
        // The machine freed up: the same query now completes.
        let ok = session
            .infer_batch_with("Fraud-FC-256", &batch, Architecture::UdfCentric, &policy)
            .unwrap();
        assert_eq!(ok.output.num_rows(), 4);
    }

    #[test]
    fn expired_deadline_is_not_degraded() {
        let session = starved_session(true);
        let batch = Tensor::from_fn([16, 28], |i| (i % 5) as f32 * 0.1);
        let policy = AdmissionPolicy::with_deadline(Instant::now() - Duration::from_millis(1));
        let err = session
            .infer_batch_with("Fraud-FC-512", &batch, Architecture::UdfCentric, &policy)
            .unwrap_err();
        assert!(err.is_deadline_exceeded(), "{err:?}");
        assert_eq!(session.stats().degradations, 0);
    }

    /// The fused entry point demultiplexes exactly the per-part predictions
    /// a request-at-a-time execution would have produced.
    #[test]
    fn fused_batch_demuxes_per_request_predictions() {
        let session = fraud_session(0);
        let part_rows = [1usize, 5, 2, 8];
        let parts: Vec<Tensor> = part_rows
            .iter()
            .enumerate()
            .map(|(salt, &rows)| {
                Tensor::from_fn([rows, 28], move |i| {
                    ((i * 7 + salt * 31) % 13) as f32 * 0.1 - 0.6
                })
            })
            .collect();
        let fused = session
            .infer_fused(
                "Fraud-FC-256",
                &parts,
                Architecture::UdfCentric,
                &AdmissionPolicy::default(),
            )
            .unwrap();
        assert_eq!(fused.per_request.len(), parts.len());
        for (part, preds) in parts.iter().zip(&fused.per_request) {
            let solo = session
                .infer_batch("Fraud-FC-256", part, Architecture::UdfCentric)
                .unwrap();
            assert_eq!(preds, &solo.predictions().unwrap());
        }
        // Ragged widths and empty batches are rejected up front.
        let ragged = [
            Tensor::from_fn([2, 28], |_| 0.1),
            Tensor::from_fn([2, 27], |_| 0.1),
        ];
        assert!(session
            .infer_fused(
                "Fraud-FC-256",
                &ragged,
                Architecture::UdfCentric,
                &AdmissionPolicy::default()
            )
            .is_err());
        assert!(session
            .infer_fused(
                "Fraud-FC-256",
                &[],
                Architecture::UdfCentric,
                &AdmissionPolicy::default()
            )
            .is_err());
    }

    #[test]
    fn session_stats_counters_are_enumerable() {
        let session = fraud_session(4);
        let batch = session.features("transactions", "features").unwrap();
        session
            .infer_batch("Fraud-FC-256", &batch, Architecture::UdfCentric)
            .unwrap();
        let stats = session.stats();
        let counters = stats.counters();
        assert_eq!(counters.len(), 10);
        let admitted = counters
            .iter()
            .find(|(name, _)| *name == "admitted")
            .unwrap()
            .1;
        assert_eq!(admitted, stats.admitted);
        assert!(admitted >= 1);
    }

    #[test]
    fn duplicate_names_rejected() {
        let session = fraud_session(1);
        let mut rng = seeded_rng(142);
        assert!(matches!(
            session.load_model(zoo::fraud_fc_256(&mut rng).unwrap()),
            Err(Error::AlreadyExists(_))
        ));
        let schema = Schema::new(vec![Column::new("x", DataType::Int)]);
        assert!(matches!(
            session.create_table("transactions", schema),
            Err(Error::AlreadyExists(_))
        ));
    }

    #[test]
    fn model_round_trips_through_catalog() {
        let session = fraud_session(1);
        let reloaded = session.reload_model_from_catalog("Fraud-FC-256").unwrap();
        let original = session.model("Fraud-FC-256").unwrap();
        assert_eq!(&reloaded, original.as_ref());
    }

    #[test]
    fn missing_objects_are_not_found() {
        let session = fraud_session(1);
        assert!(matches!(session.model("ghost"), Err(Error::NotFound(_))));
        assert!(matches!(session.table("ghost"), Err(Error::NotFound(_))));
        assert!(session
            .infer("ghost", "transactions", "features", Architecture::Adaptive)
            .is_err());
    }

    #[test]
    fn features_validates_column() {
        let session = fraud_session(3);
        let batch = session.features("transactions", "features").unwrap();
        assert_eq!(batch.shape().dims(), &[3, 28]);
        assert!(session.features("transactions", "id").is_err());
        assert!(session.features("transactions", "nope").is_err());
    }
    #[test]
    fn builder_rejects_degenerate_configs() {
        assert!(SessionConfig::builder().block_size(0).build().is_err());
        assert!(SessionConfig::builder().cores(0).build().is_err());
        assert!(SessionConfig::builder().db_memory_bytes(0).build().is_err());
        assert!(SessionConfig::builder()
            .buffer_pool_bytes(0)
            .build()
            .is_err());
        assert!(SessionConfig::builder()
            .external_memory_bytes(0)
            .build()
            .is_err());
        assert!(SessionConfig::builder()
            .retry(RetryPolicy {
                max_attempts: 0,
                base_backoff: Duration::ZERO,
                jitter: 0.0,
            })
            .build()
            .is_err());
        // The unmodified default passes validation.
        assert!(SessionConfig::builder().build().is_ok());
    }

    #[test]
    fn architecture_default_and_display() {
        assert_eq!(Architecture::default(), Architecture::Adaptive);
        assert_eq!(Architecture::Adaptive.to_string(), "adaptive");
        assert_eq!(Architecture::UdfCentric.to_string(), "udf-centric");
        assert_eq!(
            Architecture::Pipelined { micro_batch: 4 }.to_string(),
            "pipelined(mb=4)"
        );
        assert_eq!(
            Architecture::DlCentric(RuntimeProfile::tensorflow_like()).to_string(),
            "dl-centric(tensorflow-like)"
        );
    }

    #[test]
    fn shared_sessions_share_admission_ledger() {
        let first = InferenceSession::open(tiny_config()).unwrap();
        let second = InferenceSession::open_shared(tiny_config(), first.coordinator()).unwrap();
        let grant = first.coordinator().admit(2).unwrap();
        assert_eq!(second.coordinator().granted_threads(), 2);
        drop(grant);
        assert_eq!(second.coordinator().granted_threads(), 0);
    }
}
