//! The user-facing facade: an RDBMS session that serves models.
//!
//! An [`InferenceSession`] owns the storage engine (disk + buffer pool +
//! catalog), the database memory governor, the thread coordinator, and the
//! adaptive optimizer. Users register tables, load models, and run inference
//! queries under any of the three architectures or the adaptive policy —
//! the workflow of Fig. 1's envisioned system.

use crate::cache::CachedModel;
use crate::error::{Error, Result};
use crate::exec::{dl_centric, hybrid, pipelined, relation_centric, udf_centric, Output};
use crate::ir::InferencePlan;
use crate::optimizer::RuleBasedOptimizer;
use parking_lot::Mutex;
use relserve_nn::Model;
use relserve_relational::{Schema, Table, Tuple};
use relserve_runtime::{
    Connector, ExternalRuntime, KernelPool, MemoryGovernor, RuntimeProfile, ThreadCoordinator,
    TransferProfile,
};
use relserve_storage::catalog::{ObjectKind, StoredObject};
use relserve_storage::{BufferPool, Catalog, DiskManager};
use relserve_tensor::Tensor;
use relserve_vectoridx::HnswParams;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Session-wide configuration (every knob of the paper's experiments).
#[derive(Debug, Clone, Copy)]
pub struct SessionConfig {
    /// Database memory budget for dense (UDF-centric/hybrid) execution.
    pub db_memory_bytes: usize,
    /// Buffer-pool size (the paper's "20 GB buffer pool" knob, scaled).
    pub buffer_pool_bytes: usize,
    /// The §7.1 operator threshold (the paper uses 2 GiB).
    pub memory_threshold_bytes: usize,
    /// Tensor block side length for relation-centric execution.
    pub block_size: usize,
    /// Physical cores to coordinate.
    pub cores: usize,
    /// Memory budget of a launched external DL runtime process.
    pub external_memory_bytes: usize,
    /// Connector wire model for DL-centric execution.
    pub transfer: TransferProfile,
}

impl SessionConfig {
    /// A validating builder starting from [`SessionConfig::default`].
    pub fn builder() -> SessionConfigBuilder {
        SessionConfigBuilder {
            config: SessionConfig::default(),
        }
    }
}

impl Default for SessionConfig {
    fn default() -> Self {
        SessionConfig {
            db_memory_bytes: 1 << 30,        // 1 GiB
            buffer_pool_bytes: 256 << 20,    // 256 MiB
            memory_threshold_bytes: 2 << 30, // the paper's 2 GiB
            block_size: 256,
            cores: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
            external_memory_bytes: 1 << 30,
            transfer: TransferProfile::local_connectorx(),
        }
    }
}

/// Builds a [`SessionConfig`], rejecting degenerate values at
/// [`SessionConfigBuilder::build`] time instead of letting them surface as
/// panics or hangs deep inside an executor.
#[derive(Debug, Clone)]
pub struct SessionConfigBuilder {
    config: SessionConfig,
}

impl SessionConfigBuilder {
    /// Database memory budget for dense (UDF-centric/hybrid) execution.
    pub fn db_memory_bytes(mut self, bytes: usize) -> Self {
        self.config.db_memory_bytes = bytes;
        self
    }

    /// Buffer-pool size in bytes.
    pub fn buffer_pool_bytes(mut self, bytes: usize) -> Self {
        self.config.buffer_pool_bytes = bytes;
        self
    }

    /// The §7.1 operator memory threshold.
    pub fn memory_threshold_bytes(mut self, bytes: usize) -> Self {
        self.config.memory_threshold_bytes = bytes;
        self
    }

    /// Tensor block side length for relation-centric execution.
    pub fn block_size(mut self, block: usize) -> Self {
        self.config.block_size = block;
        self
    }

    /// Physical cores the session's coordinator manages.
    pub fn cores(mut self, cores: usize) -> Self {
        self.config.cores = cores;
        self
    }

    /// Memory budget of a launched external DL runtime process.
    pub fn external_memory_bytes(mut self, bytes: usize) -> Self {
        self.config.external_memory_bytes = bytes;
        self
    }

    /// Connector wire model for DL-centric execution.
    pub fn transfer(mut self, profile: TransferProfile) -> Self {
        self.config.transfer = profile;
        self
    }

    /// Validate and produce the configuration.
    pub fn build(self) -> Result<SessionConfig> {
        let c = self.config;
        if c.block_size == 0 {
            return Err(Error::Invalid("block_size must be positive".into()));
        }
        if c.cores == 0 {
            return Err(Error::Invalid("cores must be at least 1".into()));
        }
        if c.db_memory_bytes == 0 {
            return Err(Error::Invalid("db_memory_bytes must be non-zero".into()));
        }
        if c.buffer_pool_bytes == 0 {
            return Err(Error::Invalid("buffer_pool_bytes must be non-zero".into()));
        }
        if c.external_memory_bytes == 0 {
            return Err(Error::Invalid(
                "external_memory_bytes must be non-zero".into(),
            ));
        }
        Ok(c)
    }
}

/// Which architecture to execute an inference query under.
///
/// Marked `#[non_exhaustive]`: downstream matches must keep a wildcard arm
/// so new execution strategies can be added without a breaking release.
#[non_exhaustive]
#[derive(Debug, Clone, Default, PartialEq)]
pub enum Architecture {
    /// The §7.1 rule decides per operator (the paper's recommended mode,
    /// and the default).
    #[default]
    Adaptive,
    /// Force everything through the in-database UDF path.
    UdfCentric,
    /// Force everything through tensor-block relations.
    RelationCentric,
    /// Offload to an external runtime with the given profile.
    DlCentric(RuntimeProfile),
    /// Stream micro-batches through per-layer stages (§5.2) inside the
    /// database process.
    Pipelined {
        /// Rows per micro-batch.
        micro_batch: usize,
    },
}

impl std::fmt::Display for Architecture {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Architecture::Adaptive => write!(f, "adaptive"),
            Architecture::UdfCentric => write!(f, "udf-centric"),
            Architecture::RelationCentric => write!(f, "relation-centric"),
            Architecture::DlCentric(p) => write!(f, "dl-centric({})", p.name),
            Architecture::Pipelined { micro_batch } => write!(f, "pipelined(mb={micro_batch})"),
        }
    }
}

/// Result of one inference query.
pub struct InferenceOutcome {
    /// The model output (dense or blocked).
    pub output: Output,
    /// Wall-clock execution time.
    pub elapsed: Duration,
    /// Which architecture actually ran.
    pub architecture: String,
    /// The plan, when the adaptive optimizer produced one.
    pub plan: Option<InferencePlan>,
}

impl InferenceOutcome {
    /// Row-wise class predictions.
    pub fn predictions(&self) -> Result<Vec<usize>> {
        self.output.predictions()
    }
}

impl std::fmt::Debug for InferenceOutcome {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("InferenceOutcome")
            .field("output", &self.output)
            .field("elapsed", &self.elapsed)
            .field("architecture", &self.architecture)
            .finish()
    }
}

/// An in-process RDBMS session serving deep-learning models.
pub struct InferenceSession {
    config: SessionConfig,
    pool: Arc<BufferPool>,
    catalog: Catalog,
    governor: MemoryGovernor,
    coordinator: ThreadCoordinator,
    kernel_pool: Arc<KernelPool>,
    optimizer: RuleBasedOptimizer,
    models: Mutex<HashMap<String, Arc<Model>>>,
    tables: Mutex<HashMap<String, Arc<Table>>>,
}

impl InferenceSession {
    /// Open a session on a scratch database with a private coordinator
    /// sized from `config.cores`.
    pub fn open(config: SessionConfig) -> Result<Self> {
        let coordinator = ThreadCoordinator::new(config.cores);
        Self::open_shared(config, &coordinator)
    }

    /// Open a session sharing `coordinator`'s admission ledger and kernel
    /// pool: concurrent queries across every session built from clones of
    /// one coordinator are budgeted against the same physical cores (§3.1).
    /// `config.cores` is ignored in favor of the coordinator's core count.
    /// There is no process-global state — each query's threads come from
    /// the [`relserve_runtime::ExecContext`] it is admitted into.
    pub fn open_shared(config: SessionConfig, coordinator: &ThreadCoordinator) -> Result<Self> {
        let disk = Arc::new(DiskManager::temp()?);
        let pool = Arc::new(BufferPool::with_budget_bytes(
            disk,
            config.buffer_pool_bytes,
        ));
        let coordinator = coordinator.clone();
        let kernel_pool = coordinator.kernel_pool();
        Ok(InferenceSession {
            governor: MemoryGovernor::with_budget("db", config.db_memory_bytes),
            coordinator,
            kernel_pool,
            optimizer: RuleBasedOptimizer::new(config.memory_threshold_bytes),
            pool,
            catalog: Catalog::new(),
            models: Mutex::new(HashMap::new()),
            tables: Mutex::new(HashMap::new()),
            config,
        })
    }

    /// The session's thread coordinator (admission ledger + kernel pool).
    /// Clone it to open further sessions that share this machine's budget
    /// via [`InferenceSession::open_shared`].
    pub fn coordinator(&self) -> &ThreadCoordinator {
        &self.coordinator
    }

    /// The session configuration.
    pub fn config(&self) -> &SessionConfig {
        &self.config
    }

    /// The database memory governor (inspect peaks and OOM counts).
    pub fn governor(&self) -> &MemoryGovernor {
        &self.governor
    }

    /// The buffer pool (inspect spill statistics).
    pub fn pool(&self) -> &Arc<BufferPool> {
        &self.pool
    }

    /// The session's persistent kernel thread pool (inspect scheduling
    /// counters).
    pub fn kernel_pool(&self) -> &Arc<KernelPool> {
        &self.kernel_pool
    }

    /// Create a relational table.
    pub fn create_table(&self, name: &str, schema: Schema) -> Result<Arc<Table>> {
        let mut tables = self.tables.lock();
        if tables.contains_key(name) {
            return Err(Error::AlreadyExists(name.to_string()));
        }
        let table = Arc::new(Table::create(self.pool.clone(), name, schema));
        self.catalog.create(
            name,
            StoredObject {
                kind: ObjectKind::Table,
                pages: vec![],
                cardinality: 0,
                meta: vec![],
            },
        )?;
        tables.insert(name.to_string(), table.clone());
        Ok(table)
    }

    /// Look up a registered table.
    pub fn table(&self, name: &str) -> Result<Arc<Table>> {
        self.tables
            .lock()
            .get(name)
            .cloned()
            .ok_or_else(|| Error::NotFound(name.to_string()))
    }

    /// Insert tuples into a table.
    pub fn insert(&self, table: &str, rows: &[Tuple]) -> Result<()> {
        let table = self.table(table)?;
        for row in rows {
            table.insert(row)?;
        }
        Ok(())
    }

    /// Load a model into the session (and its serialized form into the
    /// catalog, binding model and metadata as §4.1 advocates).
    pub fn load_model(&self, model: Model) -> Result<()> {
        let name = model.name().to_string();
        let mut models = self.models.lock();
        if models.contains_key(&name) {
            return Err(Error::AlreadyExists(name));
        }
        let serialized = relserve_nn::serialize::to_bytes(&model);
        self.catalog.create(
            &name,
            StoredObject {
                kind: ObjectKind::Model,
                pages: vec![],
                cardinality: model.num_params() as u64,
                meta: serialized,
            },
        )?;
        models.insert(name, Arc::new(model));
        Ok(())
    }

    /// Look up a loaded model.
    pub fn model(&self, name: &str) -> Result<Arc<Model>> {
        self.models
            .lock()
            .get(name)
            .cloned()
            .ok_or_else(|| Error::NotFound(name.to_string()))
    }

    /// Reload a model from its catalog bytes (round-trip check, recovery).
    pub fn reload_model_from_catalog(&self, name: &str) -> Result<Model> {
        let object = self.catalog.get(name)?;
        if object.kind != ObjectKind::Model {
            return Err(Error::Invalid(format!("`{name}` is not a model")));
        }
        Ok(relserve_nn::serialize::from_bytes(&object.meta)?)
    }

    /// Produce the adaptive plan for a model at a batch size (EXPLAIN).
    pub fn plan(&self, model: &str, batch_size: usize) -> Result<InferencePlan> {
        let model = self.model(model)?;
        self.optimizer.plan(&model, batch_size)
    }

    /// Extract a dense feature batch from a table's vector column.
    pub fn features(&self, table: &str, vector_col: &str) -> Result<Tensor> {
        let table = self.table(table)?;
        let col = table.schema().index_of(vector_col)?;
        let mut data: Vec<f32> = Vec::new();
        let mut rows = 0usize;
        let mut width = 0usize;
        for row in table.scan() {
            let row = row.map_err(Error::Relational)?;
            let v = row.value(col)?.as_vector().map_err(Error::Relational)?;
            if rows == 0 {
                width = v.len();
            } else if v.len() != width {
                return Err(Error::Invalid(format!(
                    "ragged feature column: row {rows} has {} values, expected {width}",
                    v.len()
                )));
            }
            data.extend_from_slice(v);
            rows += 1;
        }
        if rows == 0 {
            return Err(Error::Invalid(format!("table `{}` is empty", table.name())));
        }
        Ok(Tensor::from_vec([rows, width], data)?)
    }

    /// Run inference over a dense feature batch under `architecture`.
    pub fn infer_batch(
        &self,
        model_name: &str,
        batch: &Tensor,
        architecture: Architecture,
    ) -> Result<InferenceOutcome> {
        let model = self.model(model_name)?;
        let batch_size = model.check_input(batch)?;
        let started = Instant::now();
        let label = architecture.to_string();
        // Each query runs inside its own admitted execution context; the
        // context's grant returns to the coordinator when the arm finishes.
        let (output, plan) = match architecture {
            Architecture::UdfCentric => {
                let ctx = self.coordinator.context(1, self.governor.clone());
                (udf_centric::run(&model, batch, &ctx)?, None)
            }
            Architecture::RelationCentric => {
                let ctx = self.coordinator.context(1, self.governor.clone());
                let (out, _) =
                    relation_centric::run(&model, batch, &self.pool, self.config.block_size, &ctx)?;
                (out, None)
            }
            Architecture::DlCentric(profile) => {
                // A dedicated context: kernels may use every granted core,
                // with no DB workers competing.
                let ctx = self.coordinator.context_dedicated(self.governor.clone());
                let runtime = ExternalRuntime::launch(profile, self.config.external_memory_bytes);
                let mut connector = Connector::new(self.config.transfer);
                let (out, _) = dl_centric::run(&model, batch, &mut connector, &runtime, &ctx)?;
                (out, None)
            }
            Architecture::Pipelined { micro_batch } => {
                // §3.1: stage threads × stages must not oversubscribe cores,
                // so the context is planned for one DB worker per stage.
                let stages = model.layers().len().max(1);
                let ctx = self.coordinator.context(stages, self.governor.clone());
                let (out, _) = pipelined::run(&model, batch, micro_batch, &ctx)?;
                (out, None)
            }
            Architecture::Adaptive => {
                let plan = self.optimizer.plan(&model, batch_size)?;
                let ctx = self.coordinator.context(1, self.governor.clone());
                let (out, _) = hybrid::run(
                    &model,
                    batch,
                    &plan,
                    &self.pool,
                    self.config.block_size,
                    &ctx,
                )?;
                (out, Some(plan))
            }
        };
        Ok(InferenceOutcome {
            output,
            elapsed: started.elapsed(),
            architecture: label,
            plan,
        })
    }

    /// Run inference over features scanned from a table column.
    pub fn infer(
        &self,
        model_name: &str,
        table: &str,
        vector_col: &str,
        architecture: Architecture,
    ) -> Result<InferenceOutcome> {
        let batch = self.features(table, vector_col)?;
        self.infer_batch(model_name, &batch, architecture)
    }

    /// Wrap a loaded model with an inference-result cache (§5.1).
    pub fn cached_model(
        &self,
        model_name: &str,
        max_distance: f32,
        params: HnswParams,
    ) -> Result<CachedModel> {
        let model = self.model(model_name)?;
        let threads = self.coordinator.plan_for(1).kernel_threads;
        let par = self.kernel_pool.parallelism(threads);
        CachedModel::new((*model).clone(), max_distance, params, par)
    }
}

impl std::fmt::Debug for InferenceSession {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("InferenceSession")
            .field("models", &self.models.lock().len())
            .field("tables", &self.tables.lock().len())
            .field("db_budget", &self.config.db_memory_bytes)
            .field("pool_frames", &self.pool.capacity())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relserve_nn::init::seeded_rng;
    use relserve_nn::zoo;
    use relserve_relational::{Column, DataType, Value};

    fn tiny_config() -> SessionConfig {
        SessionConfig::builder()
            .db_memory_bytes(8 << 20)
            .buffer_pool_bytes(4 << 20)
            .memory_threshold_bytes(1 << 20)
            .block_size(32)
            .cores(2)
            .external_memory_bytes(8 << 20)
            .transfer(TransferProfile::instant())
            .build()
            .expect("tiny config is valid")
    }

    fn fraud_session(rows: usize) -> InferenceSession {
        let session = InferenceSession::open(tiny_config()).unwrap();
        let mut rng = seeded_rng(140);
        session
            .load_model(zoo::fraud_fc_256(&mut rng).unwrap())
            .unwrap();
        let schema = Schema::new(vec![
            Column::new("id", DataType::Int),
            Column::new("features", DataType::Vector),
        ]);
        session.create_table("transactions", schema).unwrap();
        use rand::Rng;
        let tuples: Vec<Tuple> = (0..rows)
            .map(|i| {
                let features: Vec<f32> = (0..28).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
                Tuple::new(vec![Value::Int(i as i64), Value::Vector(features)])
            })
            .collect();
        session.insert("transactions", &tuples).unwrap();
        session
    }

    #[test]
    fn end_to_end_all_architectures_agree() {
        let session = fraud_session(40);
        let archs = [
            Architecture::UdfCentric,
            Architecture::RelationCentric,
            Architecture::Adaptive,
            Architecture::DlCentric(RuntimeProfile::tensorflow_like()),
            Architecture::Pipelined { micro_batch: 7 },
        ];
        let mut all_preds = Vec::new();
        for arch in archs {
            let outcome = session
                .infer("Fraud-FC-256", "transactions", "features", arch)
                .unwrap();
            assert_eq!(outcome.output.num_rows(), 40);
            all_preds.push(outcome.predictions().unwrap());
        }
        for preds in &all_preds[1..] {
            assert_eq!(preds, &all_preds[0]);
        }
    }

    #[test]
    fn adaptive_produces_a_plan() {
        let session = fraud_session(10);
        let outcome = session
            .infer(
                "Fraud-FC-256",
                "transactions",
                "features",
                Architecture::Adaptive,
            )
            .unwrap();
        let plan = outcome.plan.expect("adaptive plans");
        assert_eq!(plan.batch_size, 10);
        assert!(!plan.ops.is_empty());
    }

    #[test]
    fn udf_oom_but_relation_centric_completes() {
        // The Table 3 pattern in miniature: a DB budget too small for the
        // dense path, but the relation-centric path streams through.
        let mut config = tiny_config();
        config.db_memory_bytes = 64 << 10; // 64 KiB — params alone exceed this
        let session = InferenceSession::open(config).unwrap();
        let mut rng = seeded_rng(141);
        session
            .load_model(zoo::fraud_fc_512(&mut rng).unwrap())
            .unwrap();
        let batch = Tensor::from_fn([64, 28], |i| (i % 5) as f32 * 0.1);
        let err = session
            .infer_batch("Fraud-FC-512", &batch, Architecture::UdfCentric)
            .unwrap_err();
        assert!(err.is_oom());
        let ok = session
            .infer_batch("Fraud-FC-512", &batch, Architecture::RelationCentric)
            .unwrap();
        assert_eq!(ok.output.num_rows(), 64);
    }

    #[test]
    fn duplicate_names_rejected() {
        let session = fraud_session(1);
        let mut rng = seeded_rng(142);
        assert!(matches!(
            session.load_model(zoo::fraud_fc_256(&mut rng).unwrap()),
            Err(Error::AlreadyExists(_))
        ));
        let schema = Schema::new(vec![Column::new("x", DataType::Int)]);
        assert!(matches!(
            session.create_table("transactions", schema),
            Err(Error::AlreadyExists(_))
        ));
    }

    #[test]
    fn model_round_trips_through_catalog() {
        let session = fraud_session(1);
        let reloaded = session.reload_model_from_catalog("Fraud-FC-256").unwrap();
        let original = session.model("Fraud-FC-256").unwrap();
        assert_eq!(&reloaded, original.as_ref());
    }

    #[test]
    fn missing_objects_are_not_found() {
        let session = fraud_session(1);
        assert!(matches!(session.model("ghost"), Err(Error::NotFound(_))));
        assert!(matches!(session.table("ghost"), Err(Error::NotFound(_))));
        assert!(session
            .infer("ghost", "transactions", "features", Architecture::Adaptive)
            .is_err());
    }

    #[test]
    fn features_validates_column() {
        let session = fraud_session(3);
        let batch = session.features("transactions", "features").unwrap();
        assert_eq!(batch.shape().dims(), &[3, 28]);
        assert!(session.features("transactions", "id").is_err());
        assert!(session.features("transactions", "nope").is_err());
    }
    #[test]
    fn builder_rejects_degenerate_configs() {
        assert!(SessionConfig::builder().block_size(0).build().is_err());
        assert!(SessionConfig::builder().cores(0).build().is_err());
        assert!(SessionConfig::builder().db_memory_bytes(0).build().is_err());
        assert!(SessionConfig::builder()
            .buffer_pool_bytes(0)
            .build()
            .is_err());
        assert!(SessionConfig::builder()
            .external_memory_bytes(0)
            .build()
            .is_err());
        // The unmodified default passes validation.
        assert!(SessionConfig::builder().build().is_ok());
    }

    #[test]
    fn architecture_default_and_display() {
        assert_eq!(Architecture::default(), Architecture::Adaptive);
        assert_eq!(Architecture::Adaptive.to_string(), "adaptive");
        assert_eq!(Architecture::UdfCentric.to_string(), "udf-centric");
        assert_eq!(
            Architecture::Pipelined { micro_batch: 4 }.to_string(),
            "pipelined(mb=4)"
        );
        assert_eq!(
            Architecture::DlCentric(RuntimeProfile::tensorflow_like()).to_string(),
            "dl-centric(tensorflow-like)"
        );
    }

    #[test]
    fn shared_sessions_share_admission_ledger() {
        let first = InferenceSession::open(tiny_config()).unwrap();
        let second = InferenceSession::open_shared(tiny_config(), first.coordinator()).unwrap();
        let grant = first.coordinator().admit(2);
        assert_eq!(second.coordinator().granted_threads(), 2);
        drop(grant);
        assert_eq!(second.coordinator().granted_threads(), 0);
    }
}
