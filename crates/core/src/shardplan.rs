//! Serializable partition specs for distributed model decomposition.
//!
//! The §2.2 push-down identity `W × (D1 ⋈ D2) = (W1 × D1) ⊕ (W2 × D2)`
//! generalizes from two column slices to *n*: split the first dense
//! layer's weight `W: [out, in]` into `n` contiguous column ranges
//! `W_i: [out, c_i..c_{i+1}]`, hand each range (and the matching feature
//! columns) to a different executor, and re-join by summing the partial
//! products before bias + activation. A [`PartitionSpec`] names those
//! ranges in a form that survives a process boundary: it has a compact
//! little-endian byte encoding so a serving coordinator can ship the plan
//! (and the weight slices it selects) to worker processes over the wire.
//!
//! The spec is pure metadata — slicing weights and feature batches happens
//! through [`PartitionSpec::slice_weight`] / [`PartitionSpec::slice_batch`]
//! against tensors the caller owns, both thin wrappers over
//! [`relserve_tensor::Tensor::slice2`], the same primitive
//! [`crate::rules::decompose_weight`] uses for the two-way in-process case.

use crate::error::{Error, Result};
use relserve_tensor::Tensor;

/// One contiguous input-column range of a partitioned dense layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardRange {
    /// Position of this shard in the plan, `0..shard_count`.
    pub shard_id: u32,
    /// First input column (inclusive).
    pub col_start: u32,
    /// One past the last input column (exclusive).
    pub col_end: u32,
}

impl ShardRange {
    /// Number of input columns this shard covers.
    pub fn width(&self) -> usize {
        (self.col_end - self.col_start) as usize
    }
}

/// A validated column partition of a dense layer's input width: every
/// column in `0..input_width` belongs to exactly one shard, shards are
/// contiguous, in order, and non-empty.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartitionSpec {
    input_width: u32,
    shards: Vec<ShardRange>,
}

impl PartitionSpec {
    /// An even partition of `input_width` columns into `shards` ranges;
    /// the first `input_width % shards` ranges take one extra column.
    pub fn even(input_width: usize, shards: usize) -> Result<PartitionSpec> {
        if input_width == 0 {
            return Err(Error::Invalid("partition of zero input columns".into()));
        }
        if shards == 0 || shards > input_width {
            return Err(Error::Invalid(format!(
                "{shards} shards outside 1..={input_width} for width {input_width}"
            )));
        }
        if input_width > u32::MAX as usize {
            return Err(Error::Invalid(format!(
                "input width {input_width} exceeds the wire's u32 range"
            )));
        }
        let base = input_width / shards;
        let extra = input_width % shards;
        let mut ranges = Vec::with_capacity(shards);
        let mut start = 0usize;
        for i in 0..shards {
            let width = base + usize::from(i < extra);
            ranges.push(ShardRange {
                shard_id: i as u32,
                col_start: start as u32,
                col_end: (start + width) as u32,
            });
            start += width;
        }
        debug_assert_eq!(start, input_width);
        Ok(PartitionSpec {
            input_width: input_width as u32,
            shards: ranges,
        })
    }

    /// Build a spec from explicit ranges, validating the cover.
    pub fn from_ranges(input_width: usize, ranges: Vec<ShardRange>) -> Result<PartitionSpec> {
        if ranges.is_empty() {
            return Err(Error::Invalid("partition spec with zero shards".into()));
        }
        let mut expect_start = 0u32;
        for (i, r) in ranges.iter().enumerate() {
            if r.shard_id != i as u32 {
                return Err(Error::Invalid(format!(
                    "shard {} carries id {} (ids must be dense and ordered)",
                    i, r.shard_id
                )));
            }
            if r.col_start != expect_start || r.col_end <= r.col_start {
                return Err(Error::Invalid(format!(
                    "shard {i} range [{}, {}) does not tile the width contiguously",
                    r.col_start, r.col_end
                )));
            }
            expect_start = r.col_end;
        }
        if expect_start as usize != input_width {
            return Err(Error::Invalid(format!(
                "partition covers {expect_start} of {input_width} input columns"
            )));
        }
        Ok(PartitionSpec {
            input_width: input_width as u32,
            shards: ranges,
        })
    }

    /// Total input columns being partitioned.
    pub fn input_width(&self) -> usize {
        self.input_width as usize
    }

    /// Number of shards in the plan.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The ordered shard ranges.
    pub fn shards(&self) -> &[ShardRange] {
        &self.shards
    }

    /// Slice a dense layer weight `W: [out, input_width]` down to the
    /// columns of `range` (a `[out, range.width()]` copy).
    pub fn slice_weight(&self, weight: &Tensor, range: ShardRange) -> Result<Tensor> {
        let (out, inf) = weight.shape().as_matrix()?;
        if inf != self.input_width as usize {
            return Err(Error::Invalid(format!(
                "weight input width {inf} does not match the spec's {}",
                self.input_width
            )));
        }
        Ok(weight.slice2(0, out, range.col_start as usize, range.col_end as usize)?)
    }

    /// Slice a feature batch `X: [rows, input_width]` down to the columns
    /// of `range` (a `[rows, range.width()]` copy).
    pub fn slice_batch(&self, batch: &Tensor, range: ShardRange) -> Result<Tensor> {
        let (rows, width) = batch.shape().as_matrix()?;
        if width != self.input_width as usize {
            return Err(Error::Invalid(format!(
                "batch width {width} does not match the spec's {}",
                self.input_width
            )));
        }
        Ok(batch.slice2(0, rows, range.col_start as usize, range.col_end as usize)?)
    }

    /// Compact little-endian byte encoding:
    /// `input_width: u32, shard_count: u32, (col_start: u32, col_end: u32)*`.
    /// Shard ids are positional and therefore not serialized.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(8 + self.shards.len() * 8);
        buf.extend_from_slice(&self.input_width.to_le_bytes());
        buf.extend_from_slice(&(self.shards.len() as u32).to_le_bytes());
        for r in &self.shards {
            buf.extend_from_slice(&r.col_start.to_le_bytes());
            buf.extend_from_slice(&r.col_end.to_le_bytes());
        }
        buf
    }

    /// Inverse of [`PartitionSpec::encode`], re-running full validation so
    /// a hostile or corrupted byte string cannot produce an uncovering or
    /// overlapping plan.
    pub fn decode(bytes: &[u8]) -> Result<PartitionSpec> {
        let take_u32 = |bytes: &[u8], at: usize| -> Result<u32> {
            bytes
                .get(at..at + 4)
                .map(|b| u32::from_le_bytes(b.try_into().expect("4-byte slice")))
                .ok_or_else(|| Error::Invalid("truncated partition spec".into()))
        };
        let input_width = take_u32(bytes, 0)?;
        let count = take_u32(bytes, 4)? as usize;
        // count is attacker-controlled: insist the ranges are actually
        // present before allocating for them.
        let need = count
            .checked_mul(8)
            .and_then(|n| n.checked_add(8))
            .filter(|&n| n == bytes.len())
            .ok_or_else(|| Error::Invalid("partition spec length mismatch".into()))?;
        debug_assert_eq!(need, bytes.len());
        let mut ranges = Vec::with_capacity(count);
        for i in 0..count {
            ranges.push(ShardRange {
                shard_id: i as u32,
                col_start: take_u32(bytes, 8 + i * 8)?,
                col_end: take_u32(bytes, 12 + i * 8)?,
            });
        }
        PartitionSpec::from_ranges(input_width as usize, ranges)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn even_partition_tiles_the_width() {
        let spec = PartitionSpec::even(28, 3).unwrap();
        assert_eq!(spec.shard_count(), 3);
        assert_eq!(spec.input_width(), 28);
        let widths: Vec<usize> = spec.shards().iter().map(|r| r.width()).collect();
        assert_eq!(widths, vec![10, 9, 9]);
        assert_eq!(spec.shards()[0].col_start, 0);
        assert_eq!(spec.shards()[2].col_end, 28);
        // Degenerate parameters are rejected.
        assert!(PartitionSpec::even(0, 1).is_err());
        assert!(PartitionSpec::even(4, 0).is_err());
        assert!(PartitionSpec::even(4, 5).is_err());
    }

    #[test]
    fn encode_decode_round_trips() {
        for (width, n) in [(28, 2), (968, 4), (5, 5), (7, 1)] {
            let spec = PartitionSpec::even(width, n).unwrap();
            assert_eq!(PartitionSpec::decode(&spec.encode()).unwrap(), spec);
        }
    }

    #[test]
    fn hostile_specs_are_rejected() {
        // Truncated.
        assert!(PartitionSpec::decode(&[1, 0, 0]).is_err());
        // Count says 2^29 ranges in a 16-byte buffer: no allocation.
        let mut buf = Vec::new();
        buf.extend_from_slice(&28u32.to_le_bytes());
        buf.extend_from_slice(&(1u32 << 29).to_le_bytes());
        buf.extend_from_slice(&[0u8; 8]);
        assert!(PartitionSpec::decode(&buf).is_err());
        // Gap between shards.
        let bad = PartitionSpec {
            input_width: 10,
            shards: vec![
                ShardRange {
                    shard_id: 0,
                    col_start: 0,
                    col_end: 4,
                },
                ShardRange {
                    shard_id: 1,
                    col_start: 5,
                    col_end: 10,
                },
            ],
        };
        assert!(PartitionSpec::decode(&bad.encode()).is_err());
        // Under-covering plan.
        let short = PartitionSpec {
            input_width: 10,
            shards: vec![ShardRange {
                shard_id: 0,
                col_start: 0,
                col_end: 9,
            }],
        };
        assert!(PartitionSpec::decode(&short.encode()).is_err());
    }

    #[test]
    fn slices_agree_with_two_way_decomposition() {
        use crate::rules::decompose_weight;
        let w = Tensor::from_vec([3, 8], (0..24).map(|v| v as f32).collect()).unwrap();
        let spec = PartitionSpec::even(8, 2).unwrap();
        let (w1, w2) = decompose_weight(&w, 4).unwrap();
        assert_eq!(spec.slice_weight(&w, spec.shards()[0]).unwrap(), w1);
        assert_eq!(spec.slice_weight(&w, spec.shards()[1]).unwrap(), w2);
        // Batch slicing mirrors weight slicing on the feature side.
        let x = Tensor::from_vec([2, 8], (0..16).map(|v| v as f32).collect()).unwrap();
        let x0 = spec.slice_batch(&x, spec.shards()[0]).unwrap();
        assert_eq!(x0.shape().dims(), &[2, 4]);
        assert_eq!(x0.data(), &[0.0, 1.0, 2.0, 3.0, 8.0, 9.0, 10.0, 11.0]);
        // Width mismatches are typed errors.
        let narrow = Tensor::from_vec([2, 4], vec![0.0; 8]).unwrap();
        assert!(spec.slice_batch(&narrow, spec.shards()[0]).is_err());
    }
}
