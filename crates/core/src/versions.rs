//! SLA-driven model-version selection (§4.1).
//!
//! The storage optimizer materializes several versions of each model
//! (original, quantized, pruned); at query time the planner picks the
//! smallest version whose measured accuracy still satisfies the query's SLA.

use crate::error::{Error, Result};
use relserve_nn::quant::ModelVersion;
use relserve_nn::{Model, Trainer};
use relserve_tensor::parallel::Parallelism;
use relserve_tensor::Tensor;

/// A query's service-level agreement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Sla {
    /// Minimum acceptable accuracy, in `[0, 1]`.
    pub min_accuracy: f32,
}

/// A model version with its measured accuracy on a validation set.
#[derive(Debug, Clone)]
pub struct ScoredVersion {
    /// The version (model + compression + storage bytes).
    pub version: ModelVersion,
    /// Accuracy on the validation set.
    pub accuracy: f32,
}

/// A version ladder with validation-measured accuracy per rung.
#[derive(Debug, Clone)]
pub struct VersionCatalog {
    versions: Vec<ScoredVersion>,
}

impl VersionCatalog {
    /// Build the default ladder for `model` and score every rung on the
    /// validation set.
    pub fn build(
        model: &Model,
        val_x: &Tensor,
        val_labels: &[usize],
        par: &Parallelism,
    ) -> Result<Self> {
        let versions = relserve_nn::quant::default_versions(model)?;
        let mut scored = Vec::with_capacity(versions.len());
        for version in versions {
            let accuracy = Trainer::evaluate(&version.model, val_x, val_labels, par)?;
            scored.push(ScoredVersion { version, accuracy });
        }
        Ok(VersionCatalog { versions: scored })
    }

    /// All rungs, original first.
    pub fn versions(&self) -> &[ScoredVersion] {
        &self.versions
    }

    /// The smallest version meeting the SLA, or an error naming the best
    /// achievable accuracy when none does.
    pub fn select(&self, sla: Sla) -> Result<&ScoredVersion> {
        self.versions
            .iter()
            .filter(|v| v.accuracy >= sla.min_accuracy)
            .min_by_key(|v| v.version.storage_bytes)
            .ok_or_else(|| {
                let best = self
                    .versions
                    .iter()
                    .map(|v| v.accuracy)
                    .fold(0.0f32, f32::max);
                Error::Invalid(format!(
                    "no model version reaches accuracy {:.3} (best is {best:.3})",
                    sla.min_accuracy
                ))
            })
    }
}

/// Queue-pressure-driven version step-down for a serving frontend.
///
/// Where [`VersionCatalog::select`] picks a version from an *accuracy* SLA,
/// a saturated server has a second lever: as the queue for an admission
/// class deepens past its SLA threshold, step queries down the rungs of a
/// pre-agreed ladder of loaded model versions (original first, cheaper
/// compressed versions after), trading accuracy for drain rate instead of
/// shedding. The mapping is pure and deterministic so a serving layer can
/// consult it per fused batch without coordination.
#[derive(Debug, Clone, PartialEq)]
pub struct PressureLadder {
    rungs: Vec<String>,
    step_depth: usize,
}

impl PressureLadder {
    /// A ladder over model names already loaded in the session, most
    /// accurate (and most expensive) first, with one step down per
    /// `step_depth` rows of queued work. `step_depth` is the class's SLA
    /// threshold: queue depth at or below it always serves rung 0.
    pub fn new(rungs: Vec<String>, step_depth: usize) -> Result<Self> {
        if rungs.is_empty() {
            return Err(Error::Invalid(
                "a pressure ladder needs at least one rung".into(),
            ));
        }
        if step_depth == 0 {
            return Err(Error::Invalid("step_depth must be positive".into()));
        }
        Ok(PressureLadder { rungs, step_depth })
    }

    /// The rung names, most accurate first.
    pub fn rungs(&self) -> &[String] {
        &self.rungs
    }

    /// The SLA queue-depth threshold per step.
    pub fn step_depth(&self) -> usize {
        self.step_depth
    }

    /// The model version to serve at `queue_depth` rows of backlog, with
    /// its rung index (0 = original). Depth below `step_depth` keeps rung
    /// 0; every full `step_depth` of backlog steps one rung down, clamped
    /// to the cheapest rung.
    pub fn rung_for_depth(&self, queue_depth: usize) -> (&str, usize) {
        let rung = (queue_depth / self.step_depth.max(1)).min(self.rungs.len() - 1);
        (&self.rungs[rung], rung)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;
    use relserve_nn::init::seeded_rng;
    use relserve_nn::{Activation, Layer};

    /// A trained model plus validation data it classifies well.
    fn trained_setup() -> (Model, Tensor, Vec<usize>) {
        let mut rng = seeded_rng(120);
        let mut model = Model::new("vc", [6])
            .push(Layer::dense(6, 12, Activation::Relu, &mut rng))
            .unwrap()
            .push(Layer::dense(12, 2, Activation::Softmax, &mut rng))
            .unwrap();
        let n = 160;
        let mut data = Vec::new();
        let mut labels = Vec::new();
        for i in 0..n {
            let label = i % 2;
            let center = if label == 0 { -1.0f32 } else { 1.0 };
            for _ in 0..6 {
                data.push(center + rng.gen_range(-0.4f32..0.4));
            }
            labels.push(label);
        }
        let x = Tensor::from_vec([n, 6], data).unwrap();
        let trainer = Trainer::new(0.1);
        for _ in 0..15 {
            trainer.train_epoch(&mut model, &x, &labels, 32).unwrap();
        }
        (model, x, labels)
    }

    #[test]
    fn catalog_scores_every_version() {
        let (model, x, labels) = trained_setup();
        let catalog = VersionCatalog::build(&model, &x, &labels, &Parallelism::serial()).unwrap();
        assert_eq!(catalog.versions().len(), 4);
        // The original must be highly accurate on this separable task.
        assert!(catalog.versions()[0].accuracy > 0.95);
    }

    #[test]
    fn sla_selects_smallest_sufficient() {
        let (model, x, labels) = trained_setup();
        let catalog = VersionCatalog::build(&model, &x, &labels, &Parallelism::serial()).unwrap();
        // A lenient SLA must pick something smaller than the original.
        let lenient = catalog.select(Sla { min_accuracy: 0.8 }).unwrap();
        let original_bytes = catalog.versions()[0].version.storage_bytes;
        assert!(lenient.version.storage_bytes < original_bytes);
        // A strict-but-satisfiable SLA still returns something.
        let strict = catalog.select(Sla { min_accuracy: 0.95 }).unwrap();
        assert!(strict.accuracy >= 0.95);
    }

    #[test]
    fn pressure_ladder_steps_down_with_depth() {
        let ladder =
            PressureLadder::new(vec!["m".into(), "m@int8".into(), "m@pruned".into()], 8).unwrap();
        assert_eq!(ladder.rung_for_depth(0), ("m", 0));
        assert_eq!(ladder.rung_for_depth(7), ("m", 0));
        assert_eq!(ladder.rung_for_depth(8), ("m@int8", 1));
        assert_eq!(ladder.rung_for_depth(16), ("m@pruned", 2));
        // Clamped to the cheapest rung, never out of range.
        assert_eq!(ladder.rung_for_depth(10_000), ("m@pruned", 2));
        assert!(PressureLadder::new(vec![], 8).is_err());
        assert!(PressureLadder::new(vec!["m".into()], 0).is_err());
    }

    #[test]
    fn impossible_sla_is_an_error() {
        let (model, x, labels) = trained_setup();
        let catalog = VersionCatalog::build(&model, &x, &labels, &Parallelism::serial()).unwrap();
        let err = catalog.select(Sla { min_accuracy: 1.01 }).unwrap_err();
        assert!(err.to_string().contains("no model version"));
    }
}
