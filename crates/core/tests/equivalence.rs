//! Property tests: every execution architecture computes the same function.
//!
//! The unified IR's whole premise (§2.1) is that representation choice is a
//! *performance* decision, never a *semantics* decision. These properties
//! pin that down over randomized models, batch sizes, block sizes, and
//! thresholds.

use proptest::prelude::*;
use relserve_core::exec::{hybrid, pipelined, relation_centric, udf_centric};
use relserve_core::RuleBasedOptimizer;
use relserve_nn::init::seeded_rng;
use relserve_nn::{Activation, Layer, Model};
use relserve_runtime::{ExecContext, MemoryGovernor};
use relserve_storage::{BufferPool, DiskManager};
use relserve_tensor::Tensor;
use std::sync::Arc;

fn ctx(threads: usize) -> ExecContext {
    ExecContext::standalone(threads, MemoryGovernor::unlimited("prop"))
}

/// A random small FFNN: 1–3 dense layers with relu, softmax head.
fn random_ffnn(features: usize, hiddens: &[usize], classes: usize, seed: u64) -> Model {
    let mut rng = seeded_rng(seed);
    let mut model = Model::new("prop-ffnn", [features]);
    let mut prev = features;
    for &h in hiddens {
        model = model
            .push(Layer::dense(prev, h, Activation::Relu, &mut rng))
            .unwrap();
        prev = h;
    }
    model
        .push(Layer::dense(prev, classes, Activation::Softmax, &mut rng))
        .unwrap()
}

fn pool(frames: usize) -> Arc<BufferPool> {
    Arc::new(BufferPool::new(
        Arc::new(DiskManager::temp().unwrap()),
        frames,
    ))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn relation_centric_matches_udf(
        features in 1usize..24,
        hidden in 1usize..24,
        classes in 2usize..6,
        batch in 1usize..20,
        block in 1usize..12,
        seed in 0u64..1000,
    ) {
        let model = random_ffnn(features, &[hidden], classes, seed);
        let x = Tensor::from_fn([batch, features], |i| (((i as u64 + seed) * 37 % 19) as f32 - 9.0) * 0.1);
        let dense = udf_centric::run(&model, &x, &ctx(1))
            .unwrap()
            .into_dense()
            .unwrap();
        let (rel, _) = relation_centric::run(&model, &x, &pool(64), block, &ctx(2)).unwrap();
        let rel = rel.into_dense().unwrap();
        prop_assert!(dense.approx_eq(&rel, 1e-3), "max diff {}", dense.max_abs_diff(&rel).unwrap());
    }

    #[test]
    fn hybrid_matches_udf_for_any_threshold(
        features in 1usize..20,
        hidden in 1usize..32,
        batch in 1usize..16,
        threshold_exp in 4u32..24,
        seed in 0u64..1000,
    ) {
        let model = random_ffnn(features, &[hidden], 3, seed);
        let x = Tensor::from_fn([batch, features], |i| (((i as u64 * 13 + seed) % 23) as f32 - 11.0) * 0.05);
        let dense = udf_centric::run(&model, &x, &ctx(1))
            .unwrap()
            .into_dense()
            .unwrap();
        let plan = RuleBasedOptimizer::new(1usize << threshold_exp)
            .plan(&model, batch)
            .unwrap();
        let (out, _) = hybrid::run(&model, &x, &plan, &pool(64), 8, &ctx(1)).unwrap();
        let out = out.into_dense().unwrap();
        prop_assert!(dense.approx_eq(&out, 1e-3));
    }

    #[test]
    fn pipelined_matches_udf_for_any_micro_batch(
        features in 1usize..16,
        hidden in 1usize..16,
        batch in 1usize..24,
        micro in 1usize..12,
        seed in 0u64..1000,
    ) {
        let model = random_ffnn(features, &[hidden], 2, seed);
        let x = Tensor::from_fn([batch, features], |i| (((i as u64 * 7 + seed) % 17) as f32 - 8.0) * 0.1);
        let dense = udf_centric::run(&model, &x, &ctx(1))
            .unwrap()
            .into_dense()
            .unwrap();
        let (out, _) = pipelined::run(&model, &x, micro, &ctx(1)).unwrap();
        let out = out.into_dense().unwrap();
        prop_assert!(dense.approx_eq(&out, 1e-4));
    }

    #[test]
    fn deeper_networks_agree_too(
        h1 in 1usize..12,
        h2 in 1usize..12,
        seed in 0u64..500,
    ) {
        let model = random_ffnn(8, &[h1, h2], 4, seed);
        let x = Tensor::from_fn([9, 8], |i| ((i * 11 % 13) as f32 - 6.0) * 0.1);
        let dense = udf_centric::run(&model, &x, &ctx(1))
            .unwrap()
            .into_dense()
            .unwrap();
        let (rel, _) = relation_centric::run(&model, &x, &pool(64), 4, &ctx(3)).unwrap();
        prop_assert!(dense.approx_eq(&rel.into_dense().unwrap(), 1e-3));
    }
}
