//! Errors for model construction, inference, and training.

use std::fmt;

/// Result alias for the nn crate.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors from the neural-network layer.
#[derive(Debug)]
pub enum Error {
    /// Underlying tensor failure.
    Tensor(relserve_tensor::Error),
    /// A layer stack is inconsistent (shape chain broken, bad config).
    InvalidModel(String),
    /// Input data does not match the model's expected input shape.
    InputMismatch {
        /// Shape the model expects per example.
        expected: Vec<usize>,
        /// Shape that arrived.
        actual: Vec<usize>,
    },
    /// Training configuration or data problem.
    Training(String),
    /// Model (de)serialization failure.
    Serde(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Tensor(e) => write!(f, "tensor error: {e}"),
            Error::InvalidModel(m) => write!(f, "invalid model: {m}"),
            Error::InputMismatch { expected, actual } => {
                write!(
                    f,
                    "input shape {actual:?} does not match model input {expected:?}"
                )
            }
            Error::Training(m) => write!(f, "training error: {m}"),
            Error::Serde(m) => write!(f, "model serialization error: {m}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Tensor(e) => Some(e),
            _ => None,
        }
    }
}

impl From<relserve_tensor::Error> for Error {
    fn from(e: relserve_tensor::Error) -> Self {
        Error::Tensor(e)
    }
}
