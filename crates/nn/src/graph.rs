//! The linear-algebra graph IR (§2.1) and its memory accounting (§7.1).
//!
//! A model UDF operator "can be lowered to a graph IR, where each node
//! represents a linear algebra operator such as matrix multiplication,
//! matrix addition, relu, softmax, conv2d" (§2.1). [`lower`] performs that
//! lowering for a sequential model at a given batch size, and each
//! [`LinalgOp`] reports the paper's memory estimate: for a matmul with
//! inputs `m×k` and `k×n`, `m×k + k×n + m×n` elements — i.e. data input +
//! parameters + output.

use crate::error::Result;
use crate::layer::{Activation, Layer};
use crate::model::Model;
use relserve_tensor::{Conv2dSpec, Shape};

/// Kind of a linear-algebra operator node.
#[derive(Debug, Clone, PartialEq)]
pub enum OpKind {
    /// `X[m,k] × Wᵀ` with `W: [n,k]` — a dense layer's linear part.
    MatMul {
        /// Batch rows.
        m: usize,
        /// Inner (feature) dimension.
        k: usize,
        /// Output features.
        n: usize,
    },
    /// `X[m,k] × Wᵀ` with int8-quantized `W: [n,k]` — the linear part of a
    /// quantized dense layer. Same FLOP-equivalent count as [`OpKind::MatMul`]
    /// but reads 1-byte parameters, so its memory estimate is ~4× smaller.
    MatMulI8 {
        /// Batch rows.
        m: usize,
        /// Inner (feature) dimension.
        k: usize,
        /// Output features.
        n: usize,
    },
    /// Bias addition over rows.
    AddBias {
        /// Bias width.
        width: usize,
    },
    /// Elementwise activation.
    Activation(Activation),
    /// 2-D convolution.
    Conv2d {
        /// Geometry of the convolution.
        spec: Conv2dSpec,
        /// Input spatial dims `(h, w)`.
        input_hw: (usize, usize),
    },
    /// Shape-only reshape (flatten); costs no memory of its own.
    Reshape,
}

/// One node of the lowered linear-algebra graph.
#[derive(Debug, Clone, PartialEq)]
pub struct LinalgOp {
    /// Which operator this is.
    pub kind: OpKind,
    /// Index of the model layer this op came from.
    pub layer_index: usize,
    /// Full input shape (batch included).
    pub input_shape: Shape,
    /// Full output shape (batch included).
    pub output_shape: Shape,
    /// Bytes of parameters the op reads (weights, kernels, biases).
    pub param_bytes: usize,
}

impl LinalgOp {
    /// The paper's §7.1 estimate: input size + parameter size + output size.
    ///
    /// (For matmul this is exactly the `m×k + k×n + m×n` formula; reshapes
    /// report zero because they are free in a strided tensor.)
    pub fn memory_requirement_bytes(&self) -> usize {
        if matches!(self.kind, OpKind::Reshape) {
            return 0;
        }
        self.input_shape.num_bytes() + self.param_bytes + self.output_shape.num_bytes()
    }

    /// Approximate FLOP count, used by the device-placement model (§3.2).
    pub fn flops(&self) -> f64 {
        match &self.kind {
            OpKind::MatMul { m, k, n } | OpKind::MatMulI8 { m, k, n } => {
                2.0 * (*m as f64) * (*k as f64) * (*n as f64)
            }
            OpKind::Conv2d { spec, input_hw } => {
                let (oh, ow) = spec.output_dims(input_hw.0, input_hw.1).unwrap_or((0, 0));
                let batch = self.output_shape.dims().first().copied().unwrap_or(1) as f64;
                2.0 * batch
                    * (oh * ow) as f64
                    * (spec.out_channels * spec.kh * spec.kw * spec.in_channels) as f64
            }
            OpKind::AddBias { .. } | OpKind::Activation(_) => {
                self.output_shape.num_elements() as f64
            }
            OpKind::Reshape => 0.0,
        }
    }

    /// Short label for plans and logs.
    pub fn label(&self) -> String {
        match &self.kind {
            OpKind::MatMul { m, k, n } => format!("matmul[{m}x{k} * {k}x{n}]"),
            OpKind::MatMulI8 { m, k, n } => format!("matmul_i8[{m}x{k} * {k}x{n}]"),
            OpKind::AddBias { width } => format!("add_bias[{width}]"),
            OpKind::Activation(a) => format!("{a:?}").to_lowercase(),
            OpKind::Conv2d { spec, .. } => format!(
                "conv2d[{}x{}x{}x{}]",
                spec.out_channels, spec.kh, spec.kw, spec.in_channels
            ),
            OpKind::Reshape => "reshape".to_string(),
        }
    }
}

/// Lower a model to its linear-algebra graph at `batch_size`.
pub fn lower(model: &Model, batch_size: usize) -> Result<Vec<LinalgOp>> {
    let mut ops = Vec::new();
    let mut shape = model.input_shape().clone();
    for (layer_index, layer) in model.layers().iter().enumerate() {
        let out_shape = layer.output_shape(&shape)?;
        let batched = |s: &Shape| {
            let mut dims = vec![batch_size];
            dims.extend_from_slice(s.dims());
            Shape::from(dims)
        };
        match layer {
            Layer::Dense {
                weight,
                bias,
                activation,
            } => {
                let (n, k) = weight.shape().as_matrix()?;
                let lin_out = Shape::from([batch_size, n]);
                ops.push(LinalgOp {
                    kind: OpKind::MatMul {
                        m: batch_size,
                        k,
                        n,
                    },
                    layer_index,
                    input_shape: Shape::from([batch_size, k]),
                    output_shape: lin_out.clone(),
                    param_bytes: weight.num_bytes(),
                });
                ops.push(LinalgOp {
                    kind: OpKind::AddBias { width: n },
                    layer_index,
                    input_shape: lin_out.clone(),
                    output_shape: lin_out.clone(),
                    param_bytes: bias.num_bytes(),
                });
                if *activation != Activation::None {
                    ops.push(LinalgOp {
                        kind: OpKind::Activation(*activation),
                        layer_index,
                        input_shape: lin_out.clone(),
                        output_shape: lin_out,
                        param_bytes: 0,
                    });
                }
            }
            Layer::QuantDense {
                weight,
                bias,
                activation,
            } => {
                let (n, k) = (weight.rows(), weight.cols());
                let lin_out = Shape::from([batch_size, n]);
                ops.push(LinalgOp {
                    kind: OpKind::MatMulI8 {
                        m: batch_size,
                        k,
                        n,
                    },
                    layer_index,
                    input_shape: Shape::from([batch_size, k]),
                    output_shape: lin_out.clone(),
                    // True i8 footprint: levels plus per-row scales.
                    param_bytes: weight.storage_bytes(),
                });
                ops.push(LinalgOp {
                    kind: OpKind::AddBias { width: n },
                    layer_index,
                    input_shape: lin_out.clone(),
                    output_shape: lin_out.clone(),
                    param_bytes: bias.num_bytes(),
                });
                if *activation != Activation::None {
                    ops.push(LinalgOp {
                        kind: OpKind::Activation(*activation),
                        layer_index,
                        input_shape: lin_out.clone(),
                        output_shape: lin_out,
                        param_bytes: 0,
                    });
                }
            }
            Layer::Conv2d {
                kernel,
                bias,
                spec,
                activation,
            } => {
                let dims = shape.dims();
                ops.push(LinalgOp {
                    kind: OpKind::Conv2d {
                        spec: *spec,
                        input_hw: (dims[0], dims[1]),
                    },
                    layer_index,
                    input_shape: batched(&shape),
                    output_shape: batched(&out_shape),
                    param_bytes: kernel.num_bytes() + bias.num_bytes(),
                });
                if *activation != Activation::None {
                    ops.push(LinalgOp {
                        kind: OpKind::Activation(*activation),
                        layer_index,
                        input_shape: batched(&out_shape),
                        output_shape: batched(&out_shape),
                        param_bytes: 0,
                    });
                }
            }
            Layer::Flatten => {
                ops.push(LinalgOp {
                    kind: OpKind::Reshape,
                    layer_index,
                    input_shape: batched(&shape),
                    output_shape: batched(&out_shape),
                    param_bytes: 0,
                });
            }
        }
        shape = out_shape;
    }
    Ok(ops)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::seeded_rng;
    use relserve_tensor::ELEM_BYTES;

    fn small_ffnn() -> Model {
        let mut rng = seeded_rng(11);
        Model::new("g", [28])
            .push(Layer::dense(28, 256, Activation::Relu, &mut rng))
            .unwrap()
            .push(Layer::dense(256, 2, Activation::Softmax, &mut rng))
            .unwrap()
    }

    #[test]
    fn lowering_expands_dense_layers() {
        let ops = small_ffnn().to_graph(100).unwrap();
        // dense+relu → matmul, add_bias, relu; dense+softmax → matmul, add_bias, softmax.
        assert_eq!(ops.len(), 6);
        assert!(matches!(
            ops[0].kind,
            OpKind::MatMul {
                m: 100,
                k: 28,
                n: 256
            }
        ));
        assert!(matches!(ops[2].kind, OpKind::Activation(Activation::Relu)));
        assert!(matches!(
            ops[5].kind,
            OpKind::Activation(Activation::Softmax)
        ));
    }

    #[test]
    fn matmul_memory_matches_paper_formula() {
        let ops = small_ffnn().to_graph(1000).unwrap();
        let matmul = &ops[0];
        // m×k + k×n + m×n elements, 4 bytes each.
        let expect = (1000 * 28 + 28 * 256 + 1000 * 256) * ELEM_BYTES;
        assert_eq!(matmul.memory_requirement_bytes(), expect);
    }

    #[test]
    fn reshape_is_free() {
        let mut rng = seeded_rng(12);
        let m = Model::new("c", [4, 4, 1])
            .push(Layer::Flatten)
            .unwrap()
            .push(Layer::dense(16, 2, Activation::None, &mut rng))
            .unwrap();
        let ops = m.to_graph(10).unwrap();
        assert!(matches!(ops[0].kind, OpKind::Reshape));
        assert_eq!(ops[0].memory_requirement_bytes(), 0);
    }

    #[test]
    fn conv_op_carries_geometry() {
        let mut rng = seeded_rng(13);
        let m = Model::new("c", [112, 112, 64])
            .push(Layer::conv2d(64, 64, 1, 1, Activation::None, &mut rng))
            .unwrap();
        let ops = m.to_graph(1).unwrap();
        assert_eq!(ops.len(), 1);
        let op = &ops[0];
        assert_eq!(op.input_shape.dims(), &[1, 112, 112, 64]);
        assert_eq!(op.output_shape.dims(), &[1, 112, 112, 64]);
        // DeepBench-CONV1 FLOPs: 2 * 112*112*64*64.
        let expect = 2.0 * (112 * 112) as f64 * (64 * 64) as f64;
        assert!((op.flops() - expect).abs() < 1.0);
    }

    #[test]
    fn memory_grows_with_batch() {
        let m = small_ffnn();
        let small = m.to_graph(10).unwrap()[0].memory_requirement_bytes();
        let large = m.to_graph(10_000).unwrap()[0].memory_requirement_bytes();
        assert!(large > small);
    }

    #[test]
    fn quantized_lowering_reports_i8_param_bytes() {
        let m = small_ffnn();
        let q = crate::quant::quantize_int8(&m).unwrap().model;
        let f32_ops = m.to_graph(64).unwrap();
        let q_ops = q.to_graph(64).unwrap();
        assert_eq!(f32_ops.len(), q_ops.len());
        assert!(matches!(
            q_ops[0].kind,
            OpKind::MatMulI8 {
                m: 64,
                k: 28,
                n: 256
            }
        ));
        assert_eq!(q_ops[0].label(), "matmul_i8[64x28 * 28x256]");
        // Same FLOP-equivalents, ~4× smaller parameter reads.
        assert_eq!(q_ops[0].flops(), f32_ops[0].flops());
        assert!(q_ops[0].param_bytes * 3 < f32_ops[0].param_bytes);
        assert!(q_ops[0].memory_requirement_bytes() < f32_ops[0].memory_requirement_bytes());
    }

    #[test]
    fn labels_are_descriptive() {
        let ops = small_ffnn().to_graph(8).unwrap();
        assert_eq!(ops[0].label(), "matmul[8x28 * 28x256]");
        assert_eq!(ops[1].label(), "add_bias[256]");
        assert_eq!(ops[2].label(), "relu");
    }
}
