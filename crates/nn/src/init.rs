//! Weight initializers.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use relserve_tensor::{Shape, Tensor};

/// He (Kaiming) normal initialization for relu networks: each weight is
/// drawn from `N(0, sqrt(2 / fan_in))`, approximated here by the sum of
/// twelve uniforms (Irwin–Hall) to avoid pulling in a distributions crate.
pub fn he_normal(shape: impl Into<Shape>, fan_in: usize, rng: &mut StdRng) -> Tensor {
    let std = (2.0 / fan_in.max(1) as f32).sqrt();
    gaussian(shape, 0.0, std, rng)
}

/// Xavier/Glorot uniform initialization: `U(-a, a)` with
/// `a = sqrt(6 / (fan_in + fan_out))`.
pub fn xavier_uniform(
    shape: impl Into<Shape>,
    fan_in: usize,
    fan_out: usize,
    rng: &mut StdRng,
) -> Tensor {
    let a = (6.0 / (fan_in + fan_out).max(1) as f32).sqrt();
    let shape = shape.into();
    let n = shape.num_elements();
    let mut data = Vec::with_capacity(n);
    for _ in 0..n {
        data.push(rng.gen_range(-a..=a));
    }
    Tensor::from_vec(shape, data).expect("sized to shape")
}

/// Approximate `N(mean, std)` samples via Irwin–Hall.
pub fn gaussian(shape: impl Into<Shape>, mean: f32, std: f32, rng: &mut StdRng) -> Tensor {
    let shape = shape.into();
    let n = shape.num_elements();
    let mut data = Vec::with_capacity(n);
    for _ in 0..n {
        let s: f32 = (0..12).map(|_| rng.gen_range(0.0f32..1.0)).sum::<f32>() - 6.0;
        data.push(mean + std * s);
    }
    Tensor::from_vec(shape, data).expect("sized to shape")
}

/// A deterministically-seeded RNG for reproducible experiments.
pub fn seeded_rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn he_normal_has_expected_scale() {
        let mut rng = seeded_rng(1);
        let t = he_normal([1000], 500, &mut rng);
        let mean: f32 = t.data().iter().sum::<f32>() / 1000.0;
        let var: f32 = t.data().iter().map(|v| (v - mean).powi(2)).sum::<f32>() / 1000.0;
        let expected_var = 2.0 / 500.0;
        assert!(mean.abs() < 0.02, "mean = {mean}");
        assert!((var - expected_var).abs() < expected_var, "var = {var}");
    }

    #[test]
    fn xavier_respects_bound() {
        let mut rng = seeded_rng(2);
        let t = xavier_uniform([100, 100], 100, 100, &mut rng);
        let a = (6.0f32 / 200.0).sqrt();
        assert!(t.data().iter().all(|v| v.abs() <= a + 1e-6));
    }

    #[test]
    fn same_seed_same_weights() {
        let a = he_normal([64], 64, &mut seeded_rng(42));
        let b = he_normal([64], 64, &mut seeded_rng(42));
        assert_eq!(a, b);
        let c = he_normal([64], 64, &mut seeded_rng(43));
        assert_ne!(a, c);
    }
}
