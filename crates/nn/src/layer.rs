//! Model layers.

use crate::error::{Error, Result};
use crate::init;
use rand::rngs::StdRng;
use relserve_tensor::parallel::Parallelism;
use relserve_tensor::{conv, ops, quant, Conv2dSpec, QuantizedTensor, Shape, Tensor};

/// Activation applied after a layer's linear part.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Activation {
    /// Identity.
    None,
    /// Rectified linear unit.
    Relu,
    /// Row-wise softmax (output layers).
    Softmax,
    /// Logistic sigmoid.
    Sigmoid,
    /// Hyperbolic tangent.
    Tanh,
}

impl Activation {
    /// Apply the activation to a rank-2 tensor.
    pub fn apply(&self, t: &Tensor) -> Result<Tensor> {
        Ok(match self {
            Activation::None => t.clone(),
            Activation::Relu => ops::relu(t),
            Activation::Softmax => ops::softmax(t)?,
            Activation::Sigmoid => ops::sigmoid(t),
            Activation::Tanh => ops::tanh(t),
        })
    }
}

/// One model layer.
#[derive(Debug, Clone, PartialEq)]
pub enum Layer {
    /// Fully connected: `y = act(x × Wᵀ + b)` with `W: [out, in]`.
    Dense {
        /// Weight matrix, `[out_features, in_features]`.
        weight: Tensor,
        /// Bias vector, `[out_features]`.
        bias: Tensor,
        /// Post-linear activation.
        activation: Activation,
    },
    /// Fully connected with **int8 quantized** weights: the storage form of
    /// an `@int8` model version. Weights are true i8 levels with
    /// per-output-channel scales; the forward pass runs the u8×i8
    /// micro-kernels with i32 accumulation and folds dequantization and the
    /// bias into the store. Quantized layers are frozen — the training path
    /// rejects them.
    QuantDense {
        /// Quantized weight matrix, logically `[out_features, in_features]`.
        weight: QuantizedTensor,
        /// Bias vector, `[out_features]` (kept f32; it is one row).
        bias: Tensor,
        /// Post-linear activation.
        activation: Activation,
    },
    /// 2-D convolution over NHWC input.
    Conv2d {
        /// Kernel bank, `[out_channels, kh, kw, in_channels]`.
        kernel: Tensor,
        /// Bias per output channel.
        bias: Tensor,
        /// Geometry (stride, padding, dims).
        spec: Conv2dSpec,
        /// Post-conv activation.
        activation: Activation,
    },
    /// Collapse all non-batch dims into one feature dim.
    Flatten,
}

impl Layer {
    /// A dense layer with He-initialized weights.
    pub fn dense(
        in_features: usize,
        out_features: usize,
        activation: Activation,
        rng: &mut StdRng,
    ) -> Layer {
        Layer::Dense {
            weight: init::he_normal([out_features, in_features], in_features, rng),
            bias: Tensor::zeros([out_features]),
            activation,
        }
    }

    /// A conv layer with He-initialized kernels (stride 1, padding 0 —
    /// the Table 2 configuration).
    pub fn conv2d(
        in_channels: usize,
        out_channels: usize,
        kh: usize,
        kw: usize,
        activation: Activation,
        rng: &mut StdRng,
    ) -> Layer {
        let spec = Conv2dSpec::unit(out_channels, kh, kw, in_channels);
        Layer::Conv2d {
            kernel: init::he_normal(
                [out_channels, kh, kw, in_channels],
                kh * kw * in_channels,
                rng,
            ),
            bias: Tensor::zeros([out_channels]),
            spec,
            activation,
        }
    }

    /// Number of trainable parameters.
    pub fn num_params(&self) -> usize {
        match self {
            Layer::Dense { weight, bias, .. } => weight.len() + bias.len(),
            Layer::QuantDense { weight, bias, .. } => weight.rows() * weight.cols() + bias.len(),
            Layer::Conv2d { kernel, bias, .. } => kernel.len() + bias.len(),
            Layer::Flatten => 0,
        }
    }

    /// Per-example output shape given the per-example input shape.
    pub fn output_shape(&self, input: &Shape) -> Result<Shape> {
        match self {
            Layer::Dense { weight, .. } => {
                let (out, inf) = weight.shape().as_matrix()?;
                let in_features = input.num_elements();
                if in_features != inf {
                    return Err(Error::InvalidModel(format!(
                        "dense layer expects {inf} input features, previous layer provides {in_features}"
                    )));
                }
                Ok(Shape::from([out]))
            }
            Layer::QuantDense { weight, .. } => {
                let in_features = input.num_elements();
                if in_features != weight.cols() {
                    return Err(Error::InvalidModel(format!(
                        "quantized dense layer expects {} input features, previous layer provides {in_features}",
                        weight.cols()
                    )));
                }
                Ok(Shape::from([weight.rows()]))
            }
            Layer::Conv2d { spec, .. } => {
                let dims = input.dims();
                if dims.len() != 3 {
                    return Err(Error::InvalidModel(format!(
                        "conv layer expects [h, w, c] input, got {dims:?}"
                    )));
                }
                if dims[2] != spec.in_channels {
                    return Err(Error::InvalidModel(format!(
                        "conv layer expects {} channels, got {}",
                        spec.in_channels, dims[2]
                    )));
                }
                let (oh, ow) = spec.output_dims(dims[0], dims[1])?;
                Ok(Shape::from([oh, ow, spec.out_channels]))
            }
            Layer::Flatten => Ok(Shape::from([input.num_elements()])),
        }
    }

    /// Forward pass over a batch.
    ///
    /// `input` is `[batch, ...example dims]`; `par` bounds kernel
    /// parallelism (set by the resource coordinator).
    pub fn forward(&self, input: &Tensor, par: &Parallelism) -> Result<Tensor> {
        match self {
            Layer::Dense {
                weight,
                bias,
                activation,
            } => {
                let z = relserve_tensor::matmul::matmul_bt_parallel(input, weight, par)?;
                let z = ops::add_bias(&z, bias)?;
                activation.apply(&z)
            }
            Layer::QuantDense {
                weight,
                bias,
                activation,
            } => {
                // Genuine int8 execution: activations quantize per row, the
                // u8×i8 kernels accumulate in i32, and the epilogue folds
                // scale and bias into the f32 store — no f32 weight tensor
                // is ever materialized on this path.
                let z = quant::qmatmul_bt_parallel(input, weight, Some(bias.data()), par)?;
                activation.apply(&z)
            }
            Layer::Conv2d {
                kernel,
                bias,
                spec,
                activation,
            } => {
                let z = conv::conv2d(input, kernel, bias, spec, par)?;
                let dims = z.shape().dims().to_vec();
                // Activations operate on a matrix view, then restore shape.
                let flat = z.reshape([dims[0] * dims[1] * dims[2], dims[3]])?;
                let a = activation.apply(&flat)?;
                Ok(a.reshape(dims)?)
            }
            Layer::Flatten => {
                let dims = input.shape().dims();
                let batch = dims[0];
                let rest: usize = dims[1..].iter().product();
                Ok(input.clone().reshape([batch, rest])?)
            }
        }
    }

    /// Human-readable kind, for plans and debugging.
    pub fn kind(&self) -> &'static str {
        match self {
            Layer::Dense { .. } => "dense",
            Layer::QuantDense { .. } => "quant_dense",
            Layer::Conv2d { .. } => "conv2d",
            Layer::Flatten => "flatten",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::seeded_rng;

    #[test]
    fn dense_forward_shape_and_value() {
        let layer = Layer::Dense {
            weight: Tensor::from_vec([2, 3], vec![1., 0., 0., 0., 1., 0.]).unwrap(),
            bias: Tensor::from_vec([2], vec![10.0, 20.0]).unwrap(),
            activation: Activation::None,
        };
        let x = Tensor::from_vec([1, 3], vec![1.0, 2.0, 3.0]).unwrap();
        let y = layer.forward(&x, &Parallelism::serial()).unwrap();
        assert_eq!(y.data(), &[11.0, 22.0]);
    }

    #[test]
    fn relu_activation_applied() {
        let layer = Layer::Dense {
            weight: Tensor::from_vec([1, 1], vec![-1.0]).unwrap(),
            bias: Tensor::zeros([1]),
            activation: Activation::Relu,
        };
        let x = Tensor::from_vec([1, 1], vec![5.0]).unwrap();
        assert_eq!(
            layer.forward(&x, &Parallelism::serial()).unwrap().data(),
            &[0.0]
        );
    }

    #[test]
    fn output_shape_chain() {
        let mut rng = seeded_rng(7);
        let conv = Layer::conv2d(3, 8, 3, 3, Activation::Relu, &mut rng);
        let out = conv.output_shape(&Shape::from([28, 28, 3])).unwrap();
        assert_eq!(out.dims(), &[26, 26, 8]);
        let flat = Layer::Flatten.output_shape(&out).unwrap();
        assert_eq!(flat.dims(), &[26 * 26 * 8]);
        let dense = Layer::dense(26 * 26 * 8, 10, Activation::Softmax, &mut rng);
        assert_eq!(dense.output_shape(&flat).unwrap().dims(), &[10]);
    }

    #[test]
    fn shape_chain_errors_on_mismatch() {
        let mut rng = seeded_rng(8);
        let dense = Layer::dense(10, 5, Activation::None, &mut rng);
        assert!(dense.output_shape(&Shape::from([11])).is_err());
        let conv = Layer::conv2d(3, 4, 1, 1, Activation::None, &mut rng);
        assert!(conv.output_shape(&Shape::from([28, 28, 4])).is_err());
        assert!(conv.output_shape(&Shape::from([784])).is_err());
    }

    #[test]
    fn flatten_forward_preserves_batch() {
        let x = Tensor::from_fn([2, 3, 4, 5], |i| i as f32);
        let y = Layer::Flatten.forward(&x, &Parallelism::serial()).unwrap();
        assert_eq!(y.shape().dims(), &[2, 60]);
        assert_eq!(y.data(), x.data());
    }

    #[test]
    fn conv_forward_shape() {
        let mut rng = seeded_rng(9);
        let conv = Layer::conv2d(3, 16, 3, 3, Activation::Relu, &mut rng);
        let x = Tensor::from_fn([2, 8, 8, 3], |i| (i % 7) as f32 * 0.1);
        let y = conv.forward(&x, &Parallelism::serial()).unwrap();
        assert_eq!(y.shape().dims(), &[2, 6, 6, 16]);
        // Relu output is non-negative.
        assert!(y.data().iter().all(|v| *v >= 0.0));
    }

    #[test]
    fn num_params_counts_weights_and_biases() {
        let mut rng = seeded_rng(10);
        assert_eq!(
            Layer::dense(28, 256, Activation::Relu, &mut rng).num_params(),
            28 * 256 + 256
        );
        assert_eq!(
            Layer::conv2d(3, 8, 3, 3, Activation::None, &mut rng).num_params(),
            8 * 3 * 3 * 3 + 8
        );
        assert_eq!(Layer::Flatten.num_params(), 0);
    }

    #[test]
    fn softmax_activation_normalizes() {
        let layer = Layer::Dense {
            weight: Tensor::eye(3),
            bias: Tensor::zeros([3]),
            activation: Activation::Softmax,
        };
        let x = Tensor::from_vec([2, 3], vec![1., 2., 3., 0., 0., 0.]).unwrap();
        let y = layer.forward(&x, &Parallelism::serial()).unwrap();
        for r in 0..2 {
            let s: f32 = y.row(r).unwrap().iter().sum();
            assert!((s - 1.0).abs() < 1e-5);
        }
    }
}
