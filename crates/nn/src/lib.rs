//! Neural-network library for `relserve`.
//!
//! Models here are what the paper loads *into* the RDBMS: feed-forward and
//! convolutional networks expressed as a sequence of layers, lowerable to a
//! linear-algebra graph IR (§2.1) whose per-operator memory requirements the
//! adaptive optimizer inspects (§7.1).
//!
//! * [`model`] — [`model::Model`]: a sequential layer stack with forward
//!   inference and parameter accounting.
//! * [`graph`] — the linear-algebra graph IR: one [`graph::LinalgOp`] per
//!   primitive operator, with shape inference and the paper's
//!   `bytes(inputs) + bytes(outputs)` memory estimate.
//! * [`train`] — SGD with backprop (dense and conv via im2col/col2im), the
//!   §6.1 training extension; used to produce the genuinely trained models
//!   the §7.2.2 caching experiment needs.
//! * [`zoo`] — constructors for every model in Tables 1–2 and §7.2,
//!   parameterized by a scale factor.
//! * [`quant`] — int8 quantization and magnitude pruning, producing the
//!   accuracy/size model versions of §4.1.
//! * [`serialize`] — a hand-rolled binary model format for catalog storage.

pub mod error;
pub mod graph;
pub mod init;
pub mod layer;
pub mod model;
pub mod quant;
pub mod serialize;
pub mod train;
pub mod zoo;

pub use error::{Error, Result};
pub use graph::{LinalgOp, OpKind};
pub use layer::{Activation, Layer};
pub use model::Model;
pub use train::Trainer;
