//! Sequential models.

use crate::error::{Error, Result};
use crate::graph::LinalgOp;
use crate::layer::Layer;
use relserve_tensor::parallel::Parallelism;
use relserve_tensor::{ops, Shape, Tensor};

/// A sequential neural network: an input shape and a stack of layers.
#[derive(Debug, Clone, PartialEq)]
pub struct Model {
    name: String,
    input_shape: Shape,
    layers: Vec<Layer>,
}

impl Model {
    /// An empty model taking per-example inputs of `input_shape`.
    pub fn new(name: impl Into<String>, input_shape: impl Into<Shape>) -> Self {
        Model {
            name: name.into(),
            input_shape: input_shape.into(),
            layers: Vec::new(),
        }
    }

    /// Append a layer, validating the shape chain.
    pub fn push(mut self, layer: Layer) -> Result<Self> {
        let current = self.output_shape()?;
        layer.output_shape(&current)?;
        self.layers.push(layer);
        Ok(self)
    }

    /// The model's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Rename the model (used when deriving quantized/pruned versions).
    pub fn with_name(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// Per-example input shape.
    pub fn input_shape(&self) -> &Shape {
        &self.input_shape
    }

    /// The layer stack.
    pub fn layers(&self) -> &[Layer] {
        &self.layers
    }

    /// Mutable access to the layer stack (training updates parameters).
    pub fn layers_mut(&mut self) -> &mut [Layer] {
        &mut self.layers
    }

    /// Per-example output shape after all layers.
    pub fn output_shape(&self) -> Result<Shape> {
        let mut shape = self.input_shape.clone();
        for layer in &self.layers {
            shape = layer.output_shape(&shape)?;
        }
        Ok(shape)
    }

    /// Total trainable parameters.
    pub fn num_params(&self) -> usize {
        self.layers.iter().map(Layer::num_params).sum()
    }

    /// Total parameter bytes.
    pub fn param_bytes(&self) -> usize {
        self.num_params() * relserve_tensor::ELEM_BYTES
    }

    /// Check a batch tensor against the model input shape.
    pub fn check_input(&self, batch: &Tensor) -> Result<usize> {
        let dims = batch.shape().dims();
        let expected = self.input_shape.dims();
        // Accept either [batch, ...example dims] or a flattened
        // [batch, num_features] for models with flat inputs.
        let matches_full = dims.len() == expected.len() + 1 && &dims[1..] == expected;
        let matches_flat = dims.len() == 2 && dims[1] == self.input_shape.num_elements();
        if !matches_full && !matches_flat {
            return Err(Error::InputMismatch {
                expected: expected.to_vec(),
                actual: dims.to_vec(),
            });
        }
        Ok(dims[0])
    }

    /// Forward inference over a batch under the caller's kernel grant.
    pub fn forward(&self, batch: &Tensor, par: &Parallelism) -> Result<Tensor> {
        let batch_size = self.check_input(batch)?;
        // Restore the full example shape in case a flat batch arrived for a
        // spatial model.
        let mut full_dims = vec![batch_size];
        full_dims.extend_from_slice(self.input_shape.dims());
        let mut x = batch.clone().reshape(full_dims)?;
        for layer in &self.layers {
            x = layer.forward(&x, par)?;
        }
        Ok(x)
    }

    /// Forward inference followed by row-wise argmax (classification).
    pub fn predict(&self, batch: &Tensor, par: &Parallelism) -> Result<Vec<usize>> {
        let logits = self.forward(batch, par)?;
        let (rows, cols) = logits.shape().as_matrix()?;
        let flat = logits.reshape([rows, cols])?;
        Ok(ops::argmax_rows(&flat)?)
    }

    /// Lower the model into its linear-algebra graph IR for `batch_size`
    /// (the representation the adaptive optimizer walks, §7.1).
    pub fn to_graph(&self, batch_size: usize) -> Result<Vec<LinalgOp>> {
        crate::graph::lower(self, batch_size)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::seeded_rng;
    use crate::layer::Activation;

    fn ffnn() -> Model {
        let mut rng = seeded_rng(3);
        Model::new("test-ffnn", [4])
            .push(Layer::dense(4, 8, Activation::Relu, &mut rng))
            .unwrap()
            .push(Layer::dense(8, 3, Activation::Softmax, &mut rng))
            .unwrap()
    }

    #[test]
    fn push_validates_shape_chain() {
        let mut rng = seeded_rng(4);
        let m = Model::new("bad", [4])
            .push(Layer::dense(4, 8, Activation::Relu, &mut rng))
            .unwrap();
        // Next layer expects 9 features but gets 8.
        assert!(m
            .push(Layer::dense(9, 2, Activation::None, &mut rng))
            .is_err());
    }

    #[test]
    fn forward_produces_distribution() {
        let m = ffnn();
        let x = Tensor::from_fn([5, 4], |i| (i % 3) as f32);
        let y = m.forward(&x, &Parallelism::serial()).unwrap();
        assert_eq!(y.shape().dims(), &[5, 3]);
        for r in 0..5 {
            let s: f32 = y.row(r).unwrap().iter().sum();
            assert!((s - 1.0).abs() < 1e-4);
        }
    }

    #[test]
    fn forward_rejects_wrong_width() {
        let m = ffnn();
        let x = Tensor::zeros([5, 7]);
        assert!(matches!(
            m.forward(&x, &Parallelism::serial()),
            Err(Error::InputMismatch { .. })
        ));
    }

    #[test]
    fn predict_returns_argmax() {
        let m = ffnn();
        let x = Tensor::from_fn([3, 4], |i| i as f32 * 0.1);
        let preds = m.predict(&x, &Parallelism::serial()).unwrap();
        assert_eq!(preds.len(), 3);
        assert!(preds.iter().all(|p| *p < 3));
    }

    #[test]
    fn num_params_sums_layers() {
        let m = ffnn();
        assert_eq!(m.num_params(), (4 * 8 + 8) + (8 * 3 + 3));
        assert_eq!(m.param_bytes(), m.num_params() * 4);
    }

    #[test]
    fn conv_model_accepts_flat_and_spatial_batches() {
        let mut rng = seeded_rng(5);
        let m = Model::new("cnn", [6, 6, 1])
            .push(Layer::conv2d(1, 4, 3, 3, Activation::Relu, &mut rng))
            .unwrap()
            .push(Layer::Flatten)
            .unwrap()
            .push(Layer::dense(4 * 4 * 4, 2, Activation::Softmax, &mut rng))
            .unwrap();
        let spatial = Tensor::from_fn([2, 6, 6, 1], |i| (i % 5) as f32);
        let flat = spatial.clone().reshape([2, 36]).unwrap();
        let a = m.forward(&spatial, &Parallelism::serial()).unwrap();
        let b = m.forward(&flat, &Parallelism::serial()).unwrap();
        assert!(a.approx_eq(&b, 1e-6));
    }

    #[test]
    fn output_shape_reports_final_layer() {
        assert_eq!(ffnn().output_shape().unwrap().dims(), &[3]);
    }
}
