//! Accuracy-aware model compression (§4.1).
//!
//! "The storage optimizer may automatically employ compression, such as
//! pruning and quantization, to create multiple versions of the same model
//! with different size, efficiency, and accuracy trade-offs." This module
//! produces those versions: int8-grid quantization and magnitude pruning,
//! each returning the compressed model plus its storage footprint so the
//! SLA-driven version selector in `relserve-core` can choose among them.

use crate::error::Result;
use crate::layer::Layer;
use crate::model::Model;
use relserve_tensor::Tensor;

/// How a model version was derived from the original.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CompressionKind {
    /// The uncompressed original.
    None,
    /// Symmetric int8 quantization (weights snapped to a 255-level grid).
    QuantizedInt8,
    /// Magnitude pruning: the given fraction of smallest weights zeroed.
    Pruned {
        /// Fraction of weights removed, in `[0, 1)`.
        fraction: f32,
    },
}

/// One storable version of a model.
#[derive(Debug, Clone)]
pub struct ModelVersion {
    /// The (possibly lossy) model.
    pub model: Model,
    /// How it was compressed.
    pub kind: CompressionKind,
    /// Storage bytes this version needs on disk.
    pub storage_bytes: usize,
}

/// Snap a tensor's values to a symmetric 255-level int8 grid (simulated
/// quantization: values stay f32 but carry only 8 bits of information).
fn quantize_tensor(t: &Tensor) -> Tensor {
    let max_abs = t.data().iter().fold(0.0f32, |m, v| m.max(v.abs()));
    if max_abs == 0.0 {
        return t.clone();
    }
    let scale = max_abs / 127.0;
    let mut out = t.clone();
    for v in out.data_mut() {
        *v = (*v / scale).round().clamp(-127.0, 127.0) * scale;
    }
    out
}

/// Zero the `fraction` of entries with smallest magnitude.
fn prune_tensor(t: &Tensor, fraction: f32) -> Tensor {
    let n = t.len();
    let kill = ((n as f32) * fraction) as usize;
    if kill == 0 {
        return t.clone();
    }
    let mut mags: Vec<f32> = t.data().iter().map(|v| v.abs()).collect();
    mags.sort_by(|a, b| a.partial_cmp(b).expect("no NaN weights"));
    let threshold = mags[kill.min(n - 1)];
    let mut out = t.clone();
    for v in out.data_mut() {
        if v.abs() < threshold {
            *v = 0.0;
        }
    }
    out
}

fn map_params(model: &Model, f: impl Fn(&Tensor) -> Tensor) -> Model {
    let mut out = model.clone();
    for layer in out.layers_mut() {
        match layer {
            Layer::Dense { weight, bias, .. } => {
                *weight = f(weight);
                *bias = f(bias);
            }
            Layer::Conv2d { kernel, bias, .. } => {
                *kernel = f(kernel);
                *bias = f(bias);
            }
            Layer::Flatten => {}
        }
    }
    out
}

fn count_nonzero(model: &Model) -> usize {
    let count = |t: &Tensor| t.data().iter().filter(|v| **v != 0.0).count();
    model
        .layers()
        .iter()
        .map(|l| match l {
            Layer::Dense { weight, bias, .. } => count(weight) + count(bias),
            Layer::Conv2d { kernel, bias, .. } => count(kernel) + count(bias),
            Layer::Flatten => 0,
        })
        .sum()
}

/// Int8-quantized version: 1 byte per parameter plus per-tensor scales.
pub fn quantize_int8(model: &Model) -> Result<ModelVersion> {
    let quantized = map_params(model, quantize_tensor).with_name(format!("{}@int8", model.name()));
    let storage_bytes = model.num_params() + model.layers().len() * 4;
    Ok(ModelVersion {
        model: quantized,
        kind: CompressionKind::QuantizedInt8,
        storage_bytes,
    })
}

/// Magnitude-pruned version: sparse storage as (index, value) pairs.
pub fn prune_magnitude(model: &Model, fraction: f32) -> Result<ModelVersion> {
    let fraction = fraction.clamp(0.0, 0.99);
    let pruned = map_params(model, |t| prune_tensor(t, fraction)).with_name(format!(
        "{}@prune{:.0}",
        model.name(),
        fraction * 100.0
    ));
    let nonzero = count_nonzero(&pruned);
    let storage_bytes = nonzero * 8; // 4 B index + 4 B value
    Ok(ModelVersion {
        model: pruned,
        kind: CompressionKind::Pruned { fraction },
        storage_bytes,
    })
}

/// The default version ladder the storage optimizer materializes: original,
/// int8, and 50 % / 80 % pruned.
pub fn default_versions(model: &Model) -> Result<Vec<ModelVersion>> {
    Ok(vec![
        ModelVersion {
            model: model.clone(),
            kind: CompressionKind::None,
            storage_bytes: model.param_bytes(),
        },
        quantize_int8(model)?,
        prune_magnitude(model, 0.5)?,
        prune_magnitude(model, 0.8)?,
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::seeded_rng;
    use crate::layer::Activation;

    fn model() -> Model {
        let mut rng = seeded_rng(30);
        Model::new("m", [16])
            .push(Layer::dense(16, 32, Activation::Relu, &mut rng))
            .unwrap()
            .push(Layer::dense(32, 4, Activation::Softmax, &mut rng))
            .unwrap()
    }

    #[test]
    fn quantization_shrinks_storage_4x() {
        let m = model();
        let q = quantize_int8(&m).unwrap();
        assert!(q.storage_bytes < m.param_bytes() / 3);
        assert_eq!(q.model.num_params(), m.num_params());
    }

    #[test]
    fn quantization_error_is_bounded() {
        let m = model();
        let q = quantize_int8(&m).unwrap();
        for (orig, quant) in m.layers().iter().zip(q.model.layers()) {
            if let (Layer::Dense { weight: w0, .. }, Layer::Dense { weight: w1, .. }) =
                (orig, quant)
            {
                let max_abs = w0.data().iter().fold(0.0f32, |a, v| a.max(v.abs()));
                let step = max_abs / 127.0;
                assert!(w0.max_abs_diff(w1).unwrap() <= step / 2.0 + 1e-6);
            }
        }
    }

    #[test]
    fn quantized_model_stays_close_on_inference() {
        let m = model();
        let q = quantize_int8(&m).unwrap();
        let x = Tensor::from_fn([8, 16], |i| ((i % 13) as f32 - 6.0) * 0.1);
        let y0 = m
            .forward(&x, &relserve_tensor::parallel::Parallelism::serial())
            .unwrap();
        let y1 = q
            .model
            .forward(&x, &relserve_tensor::parallel::Parallelism::serial())
            .unwrap();
        assert!(y0.max_abs_diff(&y1).unwrap() < 0.05);
    }

    #[test]
    fn pruning_zeroes_requested_fraction() {
        let m = model();
        let p = prune_magnitude(&m, 0.5).unwrap();
        let zeros = p.model.num_params() - count_nonzero(&p.model);
        let frac = zeros as f32 / p.model.num_params() as f32;
        assert!(frac > 0.4 && frac < 0.6, "pruned fraction = {frac}");
        assert!(p.storage_bytes < m.param_bytes());
    }

    #[test]
    fn version_ladder_is_monotone_in_size() {
        let m = model();
        let versions = default_versions(&m).unwrap();
        assert_eq!(versions.len(), 4);
        assert_eq!(versions[0].kind, CompressionKind::None);
        // 80 % pruned must be smaller than 50 % pruned.
        assert!(versions[3].storage_bytes < versions[2].storage_bytes);
        // int8 must be smaller than the original.
        assert!(versions[1].storage_bytes < versions[0].storage_bytes);
    }

    #[test]
    fn zero_tensor_quantizes_to_itself() {
        let t = Tensor::zeros([4, 4]);
        assert_eq!(quantize_tensor(&t), t);
    }
}
