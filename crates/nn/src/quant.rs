//! Accuracy-aware model compression (§4.1).
//!
//! "The storage optimizer may automatically employ compression, such as
//! pruning and quantization, to create multiple versions of the same model
//! with different size, efficiency, and accuracy trade-offs." This module
//! produces those versions: true int8 quantization (dense weights become
//! [`Layer::QuantDense`] with 1-byte levels and per-output-channel scales)
//! and magnitude pruning, each returning the compressed model plus its
//! storage footprint so the SLA-driven version selector in `relserve-core`
//! can choose among them.

use crate::error::Result;
use crate::layer::Layer;
use crate::model::Model;
use relserve_tensor::{QuantizedTensor, Tensor};

/// How a model version was derived from the original.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CompressionKind {
    /// The uncompressed original.
    None,
    /// Symmetric int8 quantization. Dense layers store genuine i8 levels
    /// with per-output-channel scales and execute on the u8×i8 SIMD
    /// kernels; conv layers (not on the serving ladder's dense hot path)
    /// keep f32 storage with values snapped to the 255-level grid.
    QuantizedInt8,
    /// Magnitude pruning: the given fraction of smallest weights zeroed.
    Pruned {
        /// Fraction of weights removed, in `[0, 1]`.
        fraction: f32,
    },
}

/// One storable version of a model.
#[derive(Debug, Clone)]
pub struct ModelVersion {
    /// The (possibly lossy) model.
    pub model: Model,
    /// How it was compressed.
    pub kind: CompressionKind,
    /// Storage bytes this version needs on disk.
    pub storage_bytes: usize,
}

/// Snap a tensor's values to a symmetric 255-level int8 grid (simulated
/// quantization: values stay f32 but carry only 8 bits of information).
/// Used for conv kernels, which stay off the i8 kernel path.
fn quantize_tensor(t: &Tensor) -> Tensor {
    let max_abs = t.data().iter().fold(0.0f32, |m, v| m.max(v.abs()));
    if max_abs == 0.0 {
        return t.clone();
    }
    let scale = max_abs / 127.0;
    let mut out = t.clone();
    for v in out.data_mut() {
        *v = (*v / scale).round().clamp(-127.0, 127.0) * scale;
    }
    out
}

/// Zero exactly `round(n · fraction)` entries of smallest magnitude
/// (capped at `n`; `fraction >= 1.0` therefore zeroes every entry).
///
/// Ties between equal magnitudes break by index, so the kill count is
/// deterministic even when many weights share a magnitude — a plain
/// threshold comparison would either spare or kill *all* duplicates of
/// the boundary value depending on strictness.
fn prune_tensor(t: &Tensor, fraction: f32) -> Tensor {
    let n = t.len();
    let kill = (((n as f64) * (fraction as f64)).round() as usize).min(n);
    if kill == 0 {
        return t.clone();
    }
    let mut order: Vec<usize> = (0..n).collect();
    let data = t.data();
    order.sort_by(|&a, &b| {
        data[a]
            .abs()
            .partial_cmp(&data[b].abs())
            .expect("no NaN weights")
            .then(a.cmp(&b))
    });
    let mut out = t.clone();
    for &i in &order[..kill] {
        out.data_mut()[i] = 0.0;
    }
    out
}

fn map_params(model: &Model, f: impl Fn(&Tensor) -> Tensor) -> Model {
    let mut out = model.clone();
    for layer in out.layers_mut() {
        match layer {
            Layer::Dense { weight, bias, .. } => {
                *weight = f(weight);
                *bias = f(bias);
            }
            // Quantized weights are frozen i8 levels; only the f32 bias is
            // still transformable.
            Layer::QuantDense { bias, .. } => {
                *bias = f(bias);
            }
            Layer::Conv2d { kernel, bias, .. } => {
                *kernel = f(kernel);
                *bias = f(bias);
            }
            Layer::Flatten => {}
        }
    }
    out
}

fn count_nonzero(model: &Model) -> usize {
    let count = |t: &Tensor| t.data().iter().filter(|v| **v != 0.0).count();
    model
        .layers()
        .iter()
        .map(|l| match l {
            Layer::Dense { weight, bias, .. } => count(weight) + count(bias),
            Layer::QuantDense { weight, bias, .. } => {
                weight.data().iter().filter(|lv| **lv != 0).count() + count(bias)
            }
            Layer::Conv2d { kernel, bias, .. } => count(kernel) + count(bias),
            Layer::Flatten => 0,
        })
        .sum()
}

/// Int8-quantized version.
///
/// Dense layers become [`Layer::QuantDense`]: genuine 1-byte levels with a
/// per-output-channel f32 scale, executed by the u8×i8 micro-kernels. Conv
/// layers keep f32 storage snapped to the int8 grid (the serving ladder
/// sheds work on the dense hot path; conv quantization would need its own
/// kernel tier) and are accounted at 1 byte per parameter plus one scale,
/// matching what a quantized conv store would occupy.
pub fn quantize_int8(model: &Model) -> Result<ModelVersion> {
    let mut quantized = model.clone().with_name(format!("{}@int8", model.name()));
    let mut storage_bytes = 0usize;
    for layer in quantized.layers_mut() {
        match layer {
            Layer::Dense { .. } => {
                let Layer::Dense {
                    weight,
                    bias,
                    activation,
                } = std::mem::replace(layer, Layer::Flatten)
                else {
                    unreachable!()
                };
                let q = QuantizedTensor::quantize(&weight)?;
                storage_bytes += q.storage_bytes() + bias.num_bytes();
                *layer = Layer::QuantDense {
                    weight: q,
                    bias,
                    activation,
                };
            }
            Layer::QuantDense { weight, bias, .. } => {
                storage_bytes += weight.storage_bytes() + bias.num_bytes();
            }
            Layer::Conv2d { kernel, bias, .. } => {
                *kernel = quantize_tensor(kernel);
                storage_bytes += kernel.len() + bias.num_bytes() + 4;
            }
            Layer::Flatten => {}
        }
    }
    Ok(ModelVersion {
        model: quantized,
        kind: CompressionKind::QuantizedInt8,
        storage_bytes,
    })
}

/// Magnitude-pruned version: sparse storage as (index, value) pairs.
pub fn prune_magnitude(model: &Model, fraction: f32) -> Result<ModelVersion> {
    let fraction = fraction.clamp(0.0, 1.0);
    let pruned = map_params(model, |t| prune_tensor(t, fraction)).with_name(format!(
        "{}@prune{:.0}",
        model.name(),
        fraction * 100.0
    ));
    let nonzero = count_nonzero(&pruned);
    let storage_bytes = nonzero * 8; // 4 B index + 4 B value
    Ok(ModelVersion {
        model: pruned,
        kind: CompressionKind::Pruned { fraction },
        storage_bytes,
    })
}

/// The default version ladder the storage optimizer materializes: original,
/// int8, and 50 % / 80 % pruned.
pub fn default_versions(model: &Model) -> Result<Vec<ModelVersion>> {
    Ok(vec![
        ModelVersion {
            model: model.clone(),
            kind: CompressionKind::None,
            storage_bytes: model.param_bytes(),
        },
        quantize_int8(model)?,
        prune_magnitude(model, 0.5)?,
        prune_magnitude(model, 0.8)?,
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::seeded_rng;
    use crate::layer::Activation;

    fn model() -> Model {
        let mut rng = seeded_rng(30);
        Model::new("m", [16])
            .push(Layer::dense(16, 32, Activation::Relu, &mut rng))
            .unwrap()
            .push(Layer::dense(32, 4, Activation::Softmax, &mut rng))
            .unwrap()
    }

    /// Wider layers so per-row scale overhead (4 B per output channel) is
    /// negligible next to the 1 B/param levels.
    fn wide_model() -> Model {
        let mut rng = seeded_rng(31);
        Model::new("w", [128])
            .push(Layer::dense(128, 128, Activation::Relu, &mut rng))
            .unwrap()
            .push(Layer::dense(128, 16, Activation::Softmax, &mut rng))
            .unwrap()
    }

    #[test]
    fn quantization_shrinks_storage_4x() {
        let m = wide_model();
        let q = quantize_int8(&m).unwrap();
        assert!(q.storage_bytes < m.param_bytes() / 3);
        assert_eq!(q.model.num_params(), m.num_params());
        // Every dense layer became a genuinely quantized one.
        for layer in q.model.layers() {
            assert_eq!(layer.kind(), "quant_dense");
        }
        // Accounting matches the actual i8 representation exactly.
        let expected: usize = q
            .model
            .layers()
            .iter()
            .map(|l| match l {
                Layer::QuantDense { weight, bias, .. } => weight.storage_bytes() + bias.num_bytes(),
                _ => 0,
            })
            .sum();
        assert_eq!(q.storage_bytes, expected);
    }

    #[test]
    fn quantization_error_is_bounded() {
        let m = model();
        let q = quantize_int8(&m).unwrap();
        for (orig, quant) in m.layers().iter().zip(q.model.layers()) {
            if let (Layer::Dense { weight: w0, .. }, Layer::QuantDense { weight: w1, .. }) =
                (orig, quant)
            {
                // Per-output-channel scales: each row's error is at most
                // half that row's quantization step.
                let deq = w1.dequantize();
                for r in 0..w1.rows() {
                    let row0 = w0.row(r).unwrap();
                    let row1 = deq.row(r).unwrap();
                    let max_abs = row0.iter().fold(0.0f32, |a, v| a.max(v.abs()));
                    let step = max_abs / 127.0;
                    let err = row0
                        .iter()
                        .zip(row1)
                        .fold(0.0f32, |a, (x, y)| a.max((x - y).abs()));
                    assert!(err <= step / 2.0 + 1e-6, "row {r}: err {err} > step {step}");
                }
            }
        }
    }

    #[test]
    fn quantized_model_stays_close_on_inference() {
        let m = model();
        let q = quantize_int8(&m).unwrap();
        let x = Tensor::from_fn([8, 16], |i| ((i % 13) as f32 - 6.0) * 0.1);
        let y0 = m
            .forward(&x, &relserve_tensor::parallel::Parallelism::serial())
            .unwrap();
        let y1 = q
            .model
            .forward(&x, &relserve_tensor::parallel::Parallelism::serial())
            .unwrap();
        assert!(y0.max_abs_diff(&y1).unwrap() < 0.05);
    }

    #[test]
    fn quantizing_twice_is_stable() {
        let m = model();
        let q1 = quantize_int8(&m).unwrap();
        let q2 = quantize_int8(&q1.model).unwrap();
        assert_eq!(q1.storage_bytes, q2.storage_bytes);
        assert_eq!(q1.model.layers(), q2.model.layers());
    }

    #[test]
    fn pruning_zeroes_requested_fraction() {
        let m = model();
        let p = prune_magnitude(&m, 0.5).unwrap();
        let zeros = p.model.num_params() - count_nonzero(&p.model);
        let frac = zeros as f32 / p.model.num_params() as f32;
        assert!(frac > 0.4 && frac < 0.6, "pruned fraction = {frac}");
        assert!(p.storage_bytes < m.param_bytes());
    }

    #[test]
    fn prune_kill_count_is_exact_with_duplicate_magnitudes() {
        // 8 entries, all the same magnitude: a threshold comparison would
        // zero either none or all of them; the exact-count rule zeroes
        // round(8 · f).
        let t = Tensor::from_vec([2, 4], vec![1.0, -1.0, 1.0, 1.0, -1.0, 1.0, 1.0, -1.0]).unwrap();
        for (fraction, expect_zeros) in [(0.25, 2usize), (0.5, 4), (0.75, 6)] {
            let p = prune_tensor(&t, fraction);
            let zeros = p.data().iter().filter(|v| **v == 0.0).count();
            assert_eq!(zeros, expect_zeros, "fraction {fraction}");
        }
        // Mixed magnitudes: exactly the smallest half dies.
        let t = Tensor::from_vec([1, 4], vec![0.1, -4.0, 0.2, 3.0]).unwrap();
        let p = prune_tensor(&t, 0.5);
        assert_eq!(p.data(), &[0.0, -4.0, 0.0, 3.0]);
    }

    #[test]
    fn prune_fraction_one_zeroes_everything() {
        let t = Tensor::from_vec([1, 5], vec![5.0, -3.0, 9.0, 1.0, -7.0]).unwrap();
        let p = prune_tensor(&t, 1.0);
        assert!(p.data().iter().all(|v| *v == 0.0), "max entry survived");
        // Over-unity requests clamp rather than panic.
        let p = prune_magnitude(&model(), 1.5).unwrap();
        assert_eq!(count_nonzero(&p.model), 0);
        assert_eq!(p.storage_bytes, 0);
    }

    #[test]
    fn version_ladder_is_monotone_in_size() {
        let m = model();
        let versions = default_versions(&m).unwrap();
        assert_eq!(versions.len(), 4);
        assert_eq!(versions[0].kind, CompressionKind::None);
        // 80 % pruned must be smaller than 50 % pruned.
        assert!(versions[3].storage_bytes < versions[2].storage_bytes);
        // int8 must be smaller than the original.
        assert!(versions[1].storage_bytes < versions[0].storage_bytes);
    }

    #[test]
    fn zero_tensor_quantizes_to_itself() {
        let t = Tensor::zeros([4, 4]);
        assert_eq!(quantize_tensor(&t), t);
    }
}
