//! Binary model serialization for catalog storage.
//!
//! Managing models *inside* the RDBMS catalog (§4.1) requires a storable
//! artifact. The format is a simple little-endian layout:
//!
//! ```text
//! "RSNN" magic | u32 version | name | input shape | u32 layer count | layers
//! ```
//!
//! where strings are `u32 len + bytes`, shapes are `u32 rank + u64 dims`,
//! tensors are `shape + f32 data`, and each layer is a tag byte plus its
//! fields.

use crate::error::{Error, Result};
use crate::layer::{Activation, Layer};
use crate::model::Model;
use bytes::{Buf, BufMut};
use relserve_tensor::{Conv2dSpec, QuantizedTensor, Shape, Tensor};

const MAGIC: &[u8; 4] = b"RSNN";
/// Format version 2 added int8 quantized dense layers ([`TAG_QDENSE`]);
/// version-1 artifacts (no quantized layers) still load.
const VERSION: u32 = 2;
const MIN_VERSION: u32 = 1;

const TAG_DENSE: u8 = 1;
const TAG_CONV: u8 = 2;
const TAG_FLATTEN: u8 = 3;
/// Quantized dense layer: activation, `u32 rows`, `u32 cols`, per-row f32
/// scales, row-major i8 levels, then the f32 bias tensor — true 1-byte
/// parameter storage, ~4× smaller than [`TAG_DENSE`].
const TAG_QDENSE: u8 = 4;

fn put_string(buf: &mut Vec<u8>, s: &str) {
    buf.put_u32_le(s.len() as u32);
    buf.put_slice(s.as_bytes());
}

fn get_string(buf: &mut &[u8]) -> Result<String> {
    if buf.remaining() < 4 {
        return Err(Error::Serde("truncated string length".into()));
    }
    let len = buf.get_u32_le() as usize;
    if buf.remaining() < len {
        return Err(Error::Serde("truncated string body".into()));
    }
    let mut bytes = vec![0u8; len];
    buf.copy_to_slice(&mut bytes);
    String::from_utf8(bytes).map_err(|e| Error::Serde(format!("invalid utf8: {e}")))
}

fn put_shape(buf: &mut Vec<u8>, shape: &Shape) {
    buf.put_u32_le(shape.rank() as u32);
    for d in shape.dims() {
        buf.put_u64_le(*d as u64);
    }
}

fn get_shape(buf: &mut &[u8]) -> Result<Shape> {
    if buf.remaining() < 4 {
        return Err(Error::Serde("truncated shape".into()));
    }
    let rank = buf.get_u32_le() as usize;
    if rank > 8 {
        return Err(Error::Serde(format!("implausible rank {rank}")));
    }
    if buf.remaining() < rank * 8 {
        return Err(Error::Serde("truncated shape dims".into()));
    }
    let mut dims = Vec::with_capacity(rank);
    for _ in 0..rank {
        dims.push(buf.get_u64_le() as usize);
    }
    Ok(Shape::new(dims))
}

fn put_tensor(buf: &mut Vec<u8>, t: &Tensor) {
    put_shape(buf, t.shape());
    for v in t.data() {
        buf.put_f32_le(*v);
    }
}

fn get_tensor(buf: &mut &[u8]) -> Result<Tensor> {
    let shape = get_shape(buf)?;
    let n = shape.num_elements();
    if buf.remaining() < n * 4 {
        return Err(Error::Serde("truncated tensor data".into()));
    }
    let mut data = Vec::with_capacity(n);
    for _ in 0..n {
        data.push(buf.get_f32_le());
    }
    Ok(Tensor::from_vec(shape, data)?)
}

fn activation_tag(a: Activation) -> u8 {
    match a {
        Activation::None => 0,
        Activation::Relu => 1,
        Activation::Softmax => 2,
        Activation::Sigmoid => 3,
        Activation::Tanh => 4,
    }
}

fn activation_from(tag: u8) -> Result<Activation> {
    Ok(match tag {
        0 => Activation::None,
        1 => Activation::Relu,
        2 => Activation::Softmax,
        3 => Activation::Sigmoid,
        4 => Activation::Tanh,
        other => return Err(Error::Serde(format!("unknown activation tag {other}"))),
    })
}

/// Serialize a model to bytes.
pub fn to_bytes(model: &Model) -> Vec<u8> {
    let mut buf = Vec::with_capacity(64 + model.param_bytes());
    buf.put_slice(MAGIC);
    buf.put_u32_le(VERSION);
    put_string(&mut buf, model.name());
    put_shape(&mut buf, model.input_shape());
    buf.put_u32_le(model.layers().len() as u32);
    for layer in model.layers() {
        match layer {
            Layer::Dense {
                weight,
                bias,
                activation,
            } => {
                buf.put_u8(TAG_DENSE);
                buf.put_u8(activation_tag(*activation));
                put_tensor(&mut buf, weight);
                put_tensor(&mut buf, bias);
            }
            Layer::Conv2d {
                kernel,
                bias,
                spec,
                activation,
            } => {
                buf.put_u8(TAG_CONV);
                buf.put_u8(activation_tag(*activation));
                buf.put_u32_le(spec.stride as u32);
                buf.put_u32_le(spec.padding as u32);
                put_tensor(&mut buf, kernel);
                put_tensor(&mut buf, bias);
            }
            Layer::QuantDense {
                weight,
                bias,
                activation,
            } => {
                buf.put_u8(TAG_QDENSE);
                buf.put_u8(activation_tag(*activation));
                buf.put_u32_le(weight.rows() as u32);
                buf.put_u32_le(weight.cols() as u32);
                for s in weight.scales() {
                    buf.put_f32_le(*s);
                }
                for lv in weight.data() {
                    buf.put_i8(*lv);
                }
                put_tensor(&mut buf, bias);
            }
            Layer::Flatten => buf.put_u8(TAG_FLATTEN),
        }
    }
    buf
}

/// Deserialize a model from bytes.
pub fn from_bytes(mut buf: &[u8]) -> Result<Model> {
    if buf.remaining() < 8 {
        return Err(Error::Serde("shorter than header".into()));
    }
    let mut magic = [0u8; 4];
    buf.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(Error::Serde(format!("bad magic {magic:?}")));
    }
    let version = buf.get_u32_le();
    if !(MIN_VERSION..=VERSION).contains(&version) {
        return Err(Error::Serde(format!("unsupported version {version}")));
    }
    let name = get_string(&mut buf)?;
    let input_shape = get_shape(&mut buf)?;
    if buf.remaining() < 4 {
        return Err(Error::Serde("truncated layer count".into()));
    }
    let layers = buf.get_u32_le() as usize;
    let mut model = Model::new(name, input_shape);
    for _ in 0..layers {
        if buf.remaining() < 1 {
            return Err(Error::Serde("truncated layer tag".into()));
        }
        let tag = buf.get_u8();
        let layer = match tag {
            TAG_DENSE => {
                let activation = activation_from(buf.get_u8())?;
                let weight = get_tensor(&mut buf)?;
                let bias = get_tensor(&mut buf)?;
                Layer::Dense {
                    weight,
                    bias,
                    activation,
                }
            }
            TAG_CONV => {
                let activation = activation_from(buf.get_u8())?;
                let stride = buf.get_u32_le() as usize;
                let padding = buf.get_u32_le() as usize;
                let kernel = get_tensor(&mut buf)?;
                let bias = get_tensor(&mut buf)?;
                let kdims = kernel.shape().dims();
                if kdims.len() != 4 {
                    return Err(Error::Serde("conv kernel must be rank 4".into()));
                }
                let spec = Conv2dSpec {
                    out_channels: kdims[0],
                    kh: kdims[1],
                    kw: kdims[2],
                    in_channels: kdims[3],
                    stride,
                    padding,
                };
                Layer::Conv2d {
                    kernel,
                    bias,
                    spec,
                    activation,
                }
            }
            TAG_QDENSE => {
                let activation = activation_from(buf.get_u8())?;
                if buf.remaining() < 8 {
                    return Err(Error::Serde("truncated quantized dims".into()));
                }
                let rows = buf.get_u32_le() as usize;
                let cols = buf.get_u32_le() as usize;
                if buf.remaining() < rows * 4 + rows * cols {
                    return Err(Error::Serde("truncated quantized payload".into()));
                }
                let mut scales = Vec::with_capacity(rows);
                for _ in 0..rows {
                    scales.push(buf.get_f32_le());
                }
                let mut levels = vec![0i8; rows * cols];
                for lv in levels.iter_mut() {
                    *lv = buf.get_i8();
                }
                let weight = QuantizedTensor::from_parts(rows, cols, levels, scales)
                    .map_err(|e| Error::Serde(format!("invalid quantized weight: {e}")))?;
                let bias = get_tensor(&mut buf)?;
                Layer::QuantDense {
                    weight,
                    bias,
                    activation,
                }
            }
            TAG_FLATTEN => Layer::Flatten,
            other => return Err(Error::Serde(format!("unknown layer tag {other}"))),
        };
        model = model.push(layer)?;
    }
    if buf.has_remaining() {
        return Err(Error::Serde(format!(
            "{} trailing bytes after model",
            buf.remaining()
        )));
    }
    Ok(model)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::seeded_rng;
    use crate::zoo;

    #[test]
    fn ffnn_roundtrip() {
        let mut rng = seeded_rng(40);
        let m = zoo::fraud_fc_256(&mut rng).unwrap();
        let back = from_bytes(&to_bytes(&m)).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn cnn_roundtrip_preserves_spec() {
        let mut rng = seeded_rng(41);
        let m = zoo::caching_cnn(&mut rng).unwrap();
        let back = from_bytes(&to_bytes(&m)).unwrap();
        assert_eq!(back, m);
        // Inference must agree exactly.
        let x = Tensor::from_fn([1, 28, 28, 1], |i| (i % 9) as f32 * 0.1);
        let par = relserve_tensor::parallel::Parallelism::serial();
        assert_eq!(
            m.forward(&x, &par).unwrap(),
            back.forward(&x, &par).unwrap()
        );
    }

    #[test]
    fn quantized_roundtrip_preserves_levels_and_scales() {
        let mut rng = seeded_rng(45);
        let m = zoo::fraud_fc_256(&mut rng).unwrap();
        let q = crate::quant::quantize_int8(&m).unwrap().model;
        let back = from_bytes(&to_bytes(&q)).unwrap();
        assert_eq!(back, q);
        // i8 storage makes the artifact ~4× smaller than the f32 one.
        assert!(to_bytes(&q).len() * 3 < to_bytes(&m).len());
        // Inference over the wire-roundtripped model agrees exactly.
        let x = Tensor::from_fn([2, 28], |i| ((i % 13) as f32 - 6.0) * 0.1);
        let par = relserve_tensor::parallel::Parallelism::serial();
        assert_eq!(
            q.forward(&x, &par).unwrap(),
            back.forward(&x, &par).unwrap()
        );
    }

    #[test]
    fn rejects_bad_magic_and_truncation() {
        let mut rng = seeded_rng(42);
        let m = zoo::fraud_fc_256(&mut rng).unwrap();
        let mut bytes = to_bytes(&m);
        assert!(from_bytes(&bytes[..bytes.len() - 4]).is_err());
        bytes[0] = b'X';
        assert!(from_bytes(&bytes).is_err());
        assert!(from_bytes(&[]).is_err());
    }

    #[test]
    fn rejects_trailing_bytes() {
        let mut rng = seeded_rng(43);
        let m = zoo::fraud_fc_256(&mut rng).unwrap();
        let mut bytes = to_bytes(&m);
        bytes.push(0);
        assert!(from_bytes(&bytes).is_err());
    }

    #[test]
    fn size_is_dominated_by_params() {
        let mut rng = seeded_rng(44);
        let m = zoo::fraud_fc_512(&mut rng).unwrap();
        let bytes = to_bytes(&m);
        assert!(bytes.len() >= m.param_bytes());
        assert!(bytes.len() < m.param_bytes() + 1024);
    }
}
