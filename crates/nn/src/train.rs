//! SGD training with backpropagation — the §6.1 extension.
//!
//! The paper notes that for the UDF-centric architecture, training support
//! "relies on the implementation of the UDF that should be able to integrate
//! the functionality of the corresponding backward computation and the
//! SGD-based optimizers". This module is that implementation: a forward pass
//! that caches per-layer intermediates, a backward pass for dense and conv
//! layers (conv via im2col/col2im so its backward is two matmuls plus a
//! scatter), and in-place SGD updates.
//!
//! The §7.2.2 caching experiment depends on it: cache-induced accuracy drops
//! are only observable on a genuinely trained model.

use crate::error::{Error, Result};
use crate::layer::{Activation, Layer};
use crate::model::Model;
use relserve_tensor::parallel::Parallelism;
use relserve_tensor::{conv, matmul, ops, Tensor};

/// Per-layer forward cache used by the backward pass.
enum Cache {
    Dense {
        /// Layer input `[batch, in]`.
        input: Tensor,
        /// Pre-activation `[batch, out]`.
        z: Tensor,
        /// Post-activation (needed for sigmoid/tanh gradients).
        a: Tensor,
    },
    Conv {
        /// im2col patch matrix `[batch*oh*ow, patch]`.
        cols: Tensor,
        /// Pre-activation matrix `[batch*oh*ow, oc]`.
        z: Tensor,
        /// Post-activation matrix.
        a: Tensor,
        /// Input spatial dims `(n, h, w)`.
        input_dims: (usize, usize, usize),
    },
    Flatten {
        /// Shape before flattening.
        input_dims: Vec<usize>,
    },
}

/// Gradient of the activation at cached `z`/`a`, chained with upstream `da`.
fn activation_backward(act: Activation, z: &Tensor, a: &Tensor, da: &Tensor) -> Result<Tensor> {
    match act {
        Activation::None => Ok(da.clone()),
        Activation::Relu => Ok(ops::mul(da, &ops::relu_grad_mask(z))?),
        Activation::Sigmoid => {
            let g = ops::zip(a, a, |y, _| y * (1.0 - y))?;
            Ok(ops::mul(da, &g)?)
        }
        Activation::Tanh => {
            let g = ops::map(a, |y| 1.0 - y * y);
            Ok(ops::mul(da, &g)?)
        }
        Activation::Softmax => Err(Error::Training(
            "softmax backward is fused with cross-entropy; only the final layer may use softmax"
                .into(),
        )),
    }
}

/// Mini-batch SGD trainer for classification models.
///
/// The model's final layer must use [`Activation::Softmax`]; the loss is
/// cross-entropy, whose gradient fuses with softmax into `p - onehot`.
#[derive(Debug, Clone)]
pub struct Trainer {
    /// Learning rate.
    pub learning_rate: f32,
    /// Kernel grant per matmul (coordinate with the resource manager).
    pub par: Parallelism,
}

impl Trainer {
    /// A trainer with the given learning rate, single-threaded kernels.
    pub fn new(learning_rate: f32) -> Self {
        Trainer {
            learning_rate,
            par: Parallelism::serial(),
        }
    }

    /// Set the kernel parallelism grant.
    pub fn with_parallelism(mut self, par: Parallelism) -> Self {
        self.par = par;
        self
    }

    fn forward_cached(&self, model: &Model, batch: &Tensor) -> Result<(Tensor, Vec<Cache>)> {
        let batch_size = model.check_input(batch)?;
        let mut full_dims = vec![batch_size];
        full_dims.extend_from_slice(model.input_shape().dims());
        let mut x = batch.clone().reshape(full_dims)?;
        let mut caches = Vec::with_capacity(model.layers().len());
        for layer in model.layers() {
            match layer {
                Layer::Dense {
                    weight,
                    bias,
                    activation,
                } => {
                    let z =
                        ops::add_bias(&matmul::matmul_bt_parallel(&x, weight, &self.par)?, bias)?;
                    let a = activation.apply(&z)?;
                    caches.push(Cache::Dense {
                        input: x,
                        z: z.clone(),
                        a: a.clone(),
                    });
                    x = a;
                }
                Layer::Conv2d {
                    kernel,
                    bias,
                    spec,
                    activation,
                } => {
                    let dims = x.shape().dims().to_vec();
                    let (n, h, w) = (dims[0], dims[1], dims[2]);
                    let cols = conv::im2col(&x, spec)?;
                    let kflat = kernel
                        .clone()
                        .reshape([spec.out_channels, spec.patch_len()])?;
                    let z = ops::add_bias(
                        &matmul::matmul_bt_parallel(&cols, &kflat, &self.par)?,
                        bias,
                    )?;
                    let a = activation.apply(&z)?;
                    let (oh, ow) = spec.output_dims(h, w)?;
                    caches.push(Cache::Conv {
                        cols,
                        z,
                        a: a.clone(),
                        input_dims: (n, h, w),
                    });
                    x = a.reshape([n, oh, ow, spec.out_channels])?;
                }
                Layer::QuantDense { .. } => {
                    return Err(Error::Training(
                        "quantized models are frozen: int8 levels carry no gradient; \
                         train the f32 original and re-quantize"
                            .into(),
                    ));
                }
                Layer::Flatten => {
                    let dims = x.shape().dims().to_vec();
                    let batch = dims[0];
                    let rest: usize = dims[1..].iter().product();
                    caches.push(Cache::Flatten { input_dims: dims });
                    x = x.reshape([batch, rest])?;
                }
            }
        }
        Ok((x, caches))
    }

    /// One SGD step on a mini-batch; returns the batch's mean cross-entropy.
    pub fn train_batch(&self, model: &mut Model, batch: &Tensor, labels: &[usize]) -> Result<f32> {
        let Some(Layer::Dense {
            activation: Activation::Softmax,
            ..
        }) = model.layers().last()
        else {
            return Err(Error::Training(
                "trainer requires a final dense layer with softmax activation".into(),
            ));
        };
        let (probs, caches) = self.forward_cached(model, batch)?;
        let (batch_size, classes) = probs.shape().as_matrix()?;
        if labels.len() != batch_size {
            return Err(Error::Training(format!(
                "{} labels for a batch of {batch_size}",
                labels.len()
            )));
        }
        // Loss and the fused softmax+CE gradient: dz = (p - onehot) / batch.
        let mut loss = 0.0f32;
        let mut dz = probs.clone();
        {
            let data = dz.data_mut();
            for (r, &label) in labels.iter().enumerate() {
                if label >= classes {
                    return Err(Error::Training(format!(
                        "label {label} out of range for {classes} classes"
                    )));
                }
                let p = data[r * classes + label].max(1e-12);
                loss -= p.ln();
                data[r * classes + label] -= 1.0;
            }
            for v in data.iter_mut() {
                *v /= batch_size as f32;
            }
        }
        loss /= batch_size as f32;
        self.backward(model, caches, dz)?;
        Ok(loss)
    }

    /// Backward pass + parameter update. `grad` arrives as dL/dz of the final
    /// layer (softmax fused), and as dL/da for every earlier layer.
    fn backward(&self, model: &mut Model, caches: Vec<Cache>, final_dz: Tensor) -> Result<()> {
        let lr = self.learning_rate;
        let num_layers = model.layers().len();
        let mut upstream = final_dz;
        for (rev_idx, cache) in caches.into_iter().rev().enumerate() {
            let idx = num_layers - 1 - rev_idx;
            let is_final = rev_idx == 0;
            let layer = &mut model.layers_mut()[idx];
            match (layer, cache) {
                (
                    Layer::Dense {
                        weight,
                        bias,
                        activation,
                    },
                    Cache::Dense { input, z, a },
                ) => {
                    let dz = if is_final {
                        upstream // already dL/dz (softmax+CE fused)
                    } else {
                        activation_backward(*activation, &z, &a, &upstream)?
                    };
                    // dW[out,in] = dzᵀ[out,batch] × input[batch,in]
                    let dw = matmul::matmul(&dz.transpose()?, &input)?;
                    let db = ops::col_sums(&dz)?;
                    // dx[batch,in] = dz[batch,out] × W[out,in]
                    upstream = matmul::matmul(&dz, weight)?;
                    ops::axpy(weight, &dw, -lr)?;
                    ops::axpy(bias, &db, -lr)?;
                }
                (
                    Layer::Conv2d {
                        kernel,
                        bias,
                        spec,
                        activation,
                    },
                    Cache::Conv {
                        cols,
                        z,
                        a,
                        input_dims,
                    },
                ) => {
                    let (n, h, w) = input_dims;
                    let (oh, ow) = spec.output_dims(h, w)?;
                    // Upstream is spatial [n, oh, ow, oc] (or already matrix
                    // for a final conv, which the trainer disallows).
                    let da = upstream.reshape([n * oh * ow, spec.out_channels])?;
                    let dz = activation_backward(*activation, &z, &a, &da)?;
                    let kflat = kernel
                        .clone()
                        .reshape([spec.out_channels, spec.patch_len()])?;
                    // dK[oc,patch] = dzᵀ[oc,rows] × cols[rows,patch]
                    let dk = matmul::matmul(&dz.transpose()?, &cols)?;
                    let db = ops::col_sums(&dz)?;
                    // dcols[rows,patch] = dz[rows,oc] × Kflat[oc,patch]
                    let dcols = matmul::matmul(&dz, &kflat)?;
                    upstream = conv::col2im(&dcols, spec, n, h, w)?;
                    let dk_shaped =
                        dk.reshape([spec.out_channels, spec.kh, spec.kw, spec.in_channels])?;
                    ops::axpy(kernel, &dk_shaped, -lr)?;
                    ops::axpy(bias, &db, -lr)?;
                }
                (Layer::Flatten, Cache::Flatten { input_dims }) => {
                    upstream = upstream.reshape(input_dims)?;
                }
                _ => {
                    return Err(Error::Training(
                        "forward cache out of sync with layer stack".into(),
                    ))
                }
            }
        }
        Ok(())
    }

    /// One pass over the dataset in mini-batches; returns mean loss.
    pub fn train_epoch(
        &self,
        model: &mut Model,
        data: &Tensor,
        labels: &[usize],
        batch_size: usize,
    ) -> Result<f32> {
        let (n, _width) = data.shape().as_matrix()?;
        if labels.len() != n {
            return Err(Error::Training(format!(
                "{} labels for {n} examples",
                labels.len()
            )));
        }
        if batch_size == 0 {
            return Err(Error::Training("batch_size must be positive".into()));
        }
        let width = data.shape().num_elements() / n;
        let flat = data.clone().reshape([n, width])?;
        let mut total = 0.0f32;
        let mut batches = 0usize;
        for start in (0..n).step_by(batch_size) {
            let end = (start + batch_size).min(n);
            let xb = flat.slice2(start, end, 0, width)?;
            total += self.train_batch(model, &xb, &labels[start..end])?;
            batches += 1;
        }
        Ok(total / batches.max(1) as f32)
    }

    /// Classification accuracy over a dataset.
    pub fn evaluate(
        model: &Model,
        data: &Tensor,
        labels: &[usize],
        par: &Parallelism,
    ) -> Result<f32> {
        let preds = model.predict(data, par)?;
        if preds.len() != labels.len() {
            return Err(Error::Training("prediction/label length mismatch".into()));
        }
        let correct = preds.iter().zip(labels).filter(|(p, l)| p == l).count();
        Ok(correct as f32 / labels.len().max(1) as f32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::seeded_rng;
    use rand::Rng;

    /// Two Gaussian blobs in `dim` dimensions, linearly separable.
    fn blobs(n: usize, dim: usize, seed: u64) -> (Tensor, Vec<usize>) {
        let mut rng = seeded_rng(seed);
        let mut data = Vec::with_capacity(n * dim);
        let mut labels = Vec::with_capacity(n);
        for i in 0..n {
            let label = i % 2;
            let center = if label == 0 { -1.0f32 } else { 1.0 };
            for _ in 0..dim {
                data.push(center + rng.gen_range(-0.5f32..0.5));
            }
            labels.push(label);
        }
        (Tensor::from_vec([n, dim], data).unwrap(), labels)
    }

    #[test]
    fn ffnn_learns_separable_blobs() {
        let mut rng = seeded_rng(100);
        let mut model = Model::new("blob-ffnn", [8])
            .push(Layer::dense(8, 16, Activation::Relu, &mut rng))
            .unwrap()
            .push(Layer::dense(16, 2, Activation::Softmax, &mut rng))
            .unwrap();
        let (x, y) = blobs(200, 8, 1);
        let trainer = Trainer::new(0.1);
        let first = trainer.train_epoch(&mut model, &x, &y, 32).unwrap();
        let mut last = first;
        for _ in 0..20 {
            last = trainer.train_epoch(&mut model, &x, &y, 32).unwrap();
        }
        assert!(last < first * 0.5, "loss {first} → {last}");
        let acc = Trainer::evaluate(&model, &x, &y, &Parallelism::serial()).unwrap();
        assert!(acc > 0.95, "accuracy = {acc}");
    }

    #[test]
    fn cnn_learns_spatial_patterns() {
        // Class 0: bright top half; class 1: bright bottom half.
        let mut rng = seeded_rng(101);
        let n = 120;
        let (h, w) = (6, 6);
        let mut data = Vec::with_capacity(n * h * w);
        let mut labels = Vec::with_capacity(n);
        for i in 0..n {
            let label = i % 2;
            for y in 0..h {
                for _x in 0..w {
                    let bright = (label == 0) == (y < h / 2);
                    data.push(if bright { 1.0 } else { 0.0 } + rng.gen_range(-0.2f32..0.2));
                }
            }
            labels.push(label);
        }
        let x = Tensor::from_vec([n, h, w, 1], data).unwrap();
        let mut model = Model::new("tiny-cnn", [h, w, 1])
            .push(Layer::conv2d(1, 4, 3, 3, Activation::Relu, &mut rng))
            .unwrap()
            .push(Layer::Flatten)
            .unwrap()
            .push(Layer::dense(4 * 4 * 4, 2, Activation::Softmax, &mut rng))
            .unwrap();
        let trainer = Trainer::new(0.05);
        let flat = x.clone().reshape([n, h * w]).unwrap();
        for _ in 0..25 {
            trainer.train_epoch(&mut model, &flat, &labels, 24).unwrap();
        }
        let acc = Trainer::evaluate(&model, &flat, &labels, &Parallelism::serial()).unwrap();
        assert!(acc > 0.9, "accuracy = {acc}");
    }

    #[test]
    fn trainer_requires_softmax_head() {
        let mut rng = seeded_rng(102);
        let mut model = Model::new("no-softmax", [4])
            .push(Layer::dense(4, 2, Activation::None, &mut rng))
            .unwrap();
        let x = Tensor::zeros([2, 4]);
        assert!(matches!(
            Trainer::new(0.1).train_batch(&mut model, &x, &[0, 1]),
            Err(Error::Training(_))
        ));
    }

    #[test]
    fn label_validation() {
        let mut rng = seeded_rng(103);
        let mut model = Model::new("m", [4])
            .push(Layer::dense(4, 2, Activation::Softmax, &mut rng))
            .unwrap();
        let x = Tensor::zeros([2, 4]);
        // Wrong label count.
        assert!(Trainer::new(0.1).train_batch(&mut model, &x, &[0]).is_err());
        // Out-of-range class.
        assert!(Trainer::new(0.1)
            .train_batch(&mut model, &x, &[0, 5])
            .is_err());
    }

    #[test]
    fn numerical_gradient_check_dense() {
        // Compare the analytic weight gradient against finite differences on
        // a tiny deterministic network.
        let mut rng = seeded_rng(104);
        let model = Model::new("gc", [3])
            .push(Layer::dense(3, 4, Activation::Relu, &mut rng))
            .unwrap()
            .push(Layer::dense(4, 2, Activation::Softmax, &mut rng))
            .unwrap();
        let x = Tensor::from_vec([2, 3], vec![0.5, -0.2, 0.8, -0.1, 0.4, 0.9]).unwrap();
        let labels = vec![0usize, 1];

        let loss_of = |m: &Model| -> f32 {
            let probs = m.forward(&x, &Parallelism::serial()).unwrap();
            let mut loss = 0.0;
            for (r, &l) in labels.iter().enumerate() {
                loss -= probs.at2(r, l).unwrap().max(1e-12).ln();
            }
            loss / labels.len() as f32
        };

        // Analytic: run one SGD step with lr and recover grad from the delta.
        let lr = 1e-3f32;
        let mut trained = model.clone();
        Trainer::new(lr)
            .train_batch(&mut trained, &x, &labels)
            .unwrap();
        let (w_before, w_after) = match (&model.layers()[0], &trained.layers()[0]) {
            (Layer::Dense { weight: a, .. }, Layer::Dense { weight: b, .. }) => (a, b),
            _ => unreachable!(),
        };
        // grad ≈ (before - after) / lr
        let eps = 1e-3f32;
        for flat in [0usize, 5, 11] {
            let analytic = (w_before.data()[flat] - w_after.data()[flat]) / lr;
            let mut plus = model.clone();
            if let Layer::Dense { weight, .. } = &mut plus.layers_mut()[0] {
                weight.data_mut()[flat] += eps;
            }
            let mut minus = model.clone();
            if let Layer::Dense { weight, .. } = &mut minus.layers_mut()[0] {
                weight.data_mut()[flat] -= eps;
            }
            let numeric = (loss_of(&plus) - loss_of(&minus)) / (2.0 * eps);
            assert!(
                (analytic - numeric).abs() < 2e-2 + 0.1 * numeric.abs(),
                "flat {flat}: analytic {analytic} vs numeric {numeric}"
            );
        }
    }

    #[test]
    fn epoch_batch_validation() {
        let mut rng = seeded_rng(105);
        let mut model = Model::new("m", [2])
            .push(Layer::dense(2, 2, Activation::Softmax, &mut rng))
            .unwrap();
        let x = Tensor::zeros([4, 2]);
        assert!(Trainer::new(0.1)
            .train_epoch(&mut model, &x, &[0, 1, 0], 2)
            .is_err());
        assert!(Trainer::new(0.1)
            .train_epoch(&mut model, &x, &[0, 1, 0, 1], 0)
            .is_err());
    }
}
