//! The paper's model zoo (Tables 1–2, §7.2.1, §7.2.2).
//!
//! Every constructor takes an RNG so experiments are reproducible, and the
//! large models take explicit dimension parameters so the benchmark harness
//! can run them at paper scale or scaled down (the scale used is always
//! printed by the harness and recorded in EXPERIMENTS.md).

use crate::error::Result;
use crate::layer::{Activation, Layer};
use crate::model::Model;
use rand::rngs::StdRng;

/// Table 1 row 1 — Fraud-FC-256: features 28, hidden 256, outputs 2.
pub fn fraud_fc_256(rng: &mut StdRng) -> Result<Model> {
    one_hidden_fc("Fraud-FC-256", 28, 256, 2, rng)
}

/// Table 1 row 2 — Fraud-FC-512: features 28, hidden 512, outputs 2.
pub fn fraud_fc_512(rng: &mut StdRng) -> Result<Model> {
    one_hidden_fc("Fraud-FC-512", 28, 512, 2, rng)
}

/// Table 1 row 3 — Encoder-FC: features 76, hidden 3,072, outputs 768.
///
/// An encoder, not a classifier: the output layer is linear.
pub fn encoder_fc(rng: &mut StdRng) -> Result<Model> {
    Model::new("Encoder-FC", [76])
        .push(Layer::dense(76, 3072, Activation::Relu, rng))?
        .push(Layer::dense(3072, 768, Activation::None, rng))
}

/// Table 1 row 4 — Amazon-14k-FC: features 597,540, hidden 1,024,
/// outputs 14,588, at `1/scale` of paper size (`scale = 1` is paper scale).
///
/// The weight matrix connecting input to hidden is the tensor that exceeds
/// the 2 GB operator threshold in §7.1 and forces the relation-centric
/// representation.
pub fn amazon_14k_fc(scale: usize, rng: &mut StdRng) -> Result<Model> {
    let scale = scale.max(1);
    let features = 597_540 / scale;
    let hidden = 1_024;
    let outputs = (14_588 / scale).max(2);
    let name = if scale == 1 {
        "Amazon-14k-FC".to_string()
    } else {
        format!("Amazon-14k-FC/{scale}")
    };
    Model::new(name, [features])
        .push(Layer::dense(features, hidden, Activation::Relu, rng))?
        .push(Layer::dense(hidden, outputs, Activation::Softmax, rng))
}

/// Table 2 row 1 — DeepBench-CONV1: 112×112×64 input, 64 kernels of
/// 64×1×1 (stride 1, padding 0).
pub fn deepbench_conv1(rng: &mut StdRng) -> Result<Model> {
    Model::new("DeepBench-CONV1", [112, 112, 64]).push(Layer::conv2d(
        64,
        64,
        1,
        1,
        Activation::None,
        rng,
    ))
}

/// Table 2 row 2 — LandCover: 2500×2500×3 input, 2,048 kernels of 3×1×1,
/// at `1/scale` spatial and channel size.
///
/// At paper scale (`scale = 1`) a single output feature map is
/// `2500 × 2500 × 2048` floats = 51 GB, which is exactly why every
/// non-relation-centric architecture OOMs in Table 3.
pub fn landcover(scale: usize, rng: &mut StdRng) -> Result<Model> {
    let scale = scale.max(1);
    let side = 2_500 / scale;
    let out_channels = (2_048 / scale).max(1);
    let name = if scale == 1 {
        "LandCover".to_string()
    } else {
        format!("LandCover/{scale}")
    };
    Model::new(name, [side, side, 3]).push(Layer::conv2d(
        3,
        out_channels,
        1,
        1,
        Activation::None,
        rng,
    ))
}

/// §7.2.1 — the Bosch FFNN: 968 features, hidden 256, outputs 2.
pub fn bosch_ffnn(rng: &mut StdRng) -> Result<Model> {
    one_hidden_fc("Bosch-FFNN", 968, 256, 2, rng)
}

/// §7.2.2 — the result-cache CNN: two conv layers (32 then 16 kernels of
/// 3×3) and two dense layers (64 then 10 neurons) over 28×28×1 images.
pub fn caching_cnn(rng: &mut StdRng) -> Result<Model> {
    let flat = 24 * 24 * 16; // 28 → 26 → 24 spatial after two unpadded 3×3 convs
    Model::new("Caching-CNN", [28, 28, 1])
        .push(Layer::conv2d(1, 32, 3, 3, Activation::Relu, rng))?
        .push(Layer::conv2d(32, 16, 3, 3, Activation::Relu, rng))?
        .push(Layer::Flatten)?
        .push(Layer::dense(flat, 64, Activation::Relu, rng))?
        .push(Layer::dense(64, 10, Activation::Softmax, rng))
}

/// §7.2.2 — the result-cache FFNN: four hidden layers of 128, 1,024, 2,048
/// and 64 neurons over 784-dim (MNIST-like) inputs, 10 outputs.
pub fn caching_ffnn(rng: &mut StdRng) -> Result<Model> {
    Model::new("Caching-FFNN", [784])
        .push(Layer::dense(784, 128, Activation::Relu, rng))?
        .push(Layer::dense(128, 1024, Activation::Relu, rng))?
        .push(Layer::dense(1024, 2048, Activation::Relu, rng))?
        .push(Layer::dense(2048, 64, Activation::Relu, rng))?
        .push(Layer::dense(64, 10, Activation::Softmax, rng))
}

fn one_hidden_fc(
    name: &str,
    features: usize,
    hidden: usize,
    outputs: usize,
    rng: &mut StdRng,
) -> Result<Model> {
    Model::new(name, [features])
        .push(Layer::dense(features, hidden, Activation::Relu, rng))?
        .push(Layer::dense(hidden, outputs, Activation::Softmax, rng))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::seeded_rng;
    use relserve_tensor::Tensor;

    #[test]
    fn table1_dimensions() {
        let mut rng = seeded_rng(20);
        let m = fraud_fc_256(&mut rng).unwrap();
        assert_eq!(m.input_shape().dims(), &[28]);
        assert_eq!(m.output_shape().unwrap().dims(), &[2]);
        assert_eq!(m.num_params(), 28 * 256 + 256 + 256 * 2 + 2);

        let m = fraud_fc_512(&mut rng).unwrap();
        assert_eq!(m.num_params(), 28 * 512 + 512 + 512 * 2 + 2);

        let m = encoder_fc(&mut rng).unwrap();
        assert_eq!(m.input_shape().dims(), &[76]);
        assert_eq!(m.output_shape().unwrap().dims(), &[768]);
    }

    #[test]
    fn amazon_scales_linearly() {
        let mut rng = seeded_rng(21);
        let m = amazon_14k_fc(100, &mut rng).unwrap();
        assert_eq!(m.input_shape().dims(), &[5975]);
        assert_eq!(m.output_shape().unwrap().dims(), &[145]);
        assert!(m.name().contains("/100"));
    }

    #[test]
    fn table2_dimensions() {
        let mut rng = seeded_rng(22);
        let m = deepbench_conv1(&mut rng).unwrap();
        assert_eq!(m.input_shape().dims(), &[112, 112, 64]);
        assert_eq!(m.output_shape().unwrap().dims(), &[112, 112, 64]);

        let m = landcover(10, &mut rng).unwrap();
        assert_eq!(m.input_shape().dims(), &[250, 250, 3]);
        assert_eq!(m.output_shape().unwrap().dims(), &[250, 250, 204]);
    }

    #[test]
    fn caching_models_run_forward() {
        let mut rng = seeded_rng(23);
        let cnn = caching_cnn(&mut rng).unwrap();
        assert_eq!(cnn.output_shape().unwrap().dims(), &[10]);
        let x = Tensor::from_fn([2, 28, 28, 1], |i| (i % 11) as f32 * 0.05);
        let y = cnn
            .forward(&x, &relserve_tensor::parallel::Parallelism::serial())
            .unwrap();
        assert_eq!(y.shape().dims(), &[2, 10]);

        let ffnn = caching_ffnn(&mut rng).unwrap();
        assert_eq!(ffnn.layers().len(), 5);
        let x = Tensor::from_fn([2, 784], |i| (i % 7) as f32 * 0.1);
        assert_eq!(
            ffnn.forward(&x, &relserve_tensor::parallel::Parallelism::serial())
                .unwrap()
                .shape()
                .dims(),
            &[2, 10]
        );
    }

    #[test]
    fn bosch_matches_decomposition_experiment() {
        let mut rng = seeded_rng(24);
        let m = bosch_ffnn(&mut rng).unwrap();
        // The §7.2.1 weight matrix W has shape 256 × 968.
        match &m.layers()[0] {
            crate::layer::Layer::Dense { weight, .. } => {
                assert_eq!(weight.shape().dims(), &[256, 968]);
            }
            other => panic!("unexpected layer {other:?}"),
        }
    }
}
