//! Relational-layer errors.

use std::fmt;

/// Result alias for the relational crate.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors from schema validation, expression evaluation, and operators.
#[derive(Debug)]
pub enum Error {
    /// Underlying storage failure.
    Storage(relserve_storage::Error),
    /// Underlying tensor failure.
    Tensor(relserve_tensor::Error),
    /// A tuple does not match the schema it was used with.
    SchemaMismatch(String),
    /// A referenced column does not exist.
    UnknownColumn(String),
    /// An expression was applied to values of the wrong type.
    TypeError(String),
    /// Tuple bytes failed to decode.
    Codec(String),
    /// An operator was configured inconsistently.
    Plan(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Storage(e) => write!(f, "storage error: {e}"),
            Error::Tensor(e) => write!(f, "tensor error: {e}"),
            Error::SchemaMismatch(m) => write!(f, "schema mismatch: {m}"),
            Error::UnknownColumn(c) => write!(f, "unknown column `{c}`"),
            Error::TypeError(m) => write!(f, "type error: {m}"),
            Error::Codec(m) => write!(f, "tuple codec error: {m}"),
            Error::Plan(m) => write!(f, "invalid plan: {m}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Storage(e) => Some(e),
            Error::Tensor(e) => Some(e),
            _ => None,
        }
    }
}

impl From<relserve_storage::Error> for Error {
    fn from(e: relserve_storage::Error) -> Self {
        Error::Storage(e)
    }
}

impl From<relserve_tensor::Error> for Error {
    fn from(e: relserve_tensor::Error) -> Self {
        Error::Tensor(e)
    }
}
