//! Scalar expressions over tuples.

use crate::error::{Error, Result};
use crate::tuple::Tuple;
use crate::value::Value;

/// Binary operators supported in expressions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division.
    Div,
    /// Equality.
    Eq,
    /// Inequality.
    Ne,
    /// Less-than.
    Lt,
    /// Less-or-equal.
    Le,
    /// Greater-than.
    Gt,
    /// Greater-or-equal.
    Ge,
    /// Logical and (operands must be 0/1 ints).
    And,
    /// Logical or.
    Or,
}

/// A scalar expression tree evaluated against one tuple.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// The value of column `i`.
    Column(usize),
    /// A constant.
    Literal(Value),
    /// A binary operation.
    Binary {
        /// The operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// Absolute value of a float operand.
    Abs(Box<Expr>),
    /// Element `i` of a vector column.
    VectorElem {
        /// Column holding the vector.
        column: usize,
        /// Element index.
        index: usize,
    },
}

impl Expr {
    /// Shorthand: column reference.
    pub fn col(i: usize) -> Expr {
        Expr::Column(i)
    }

    /// Shorthand: literal.
    pub fn lit(v: impl Into<Value>) -> Expr {
        Expr::Literal(v.into())
    }

    /// Shorthand: binary op.
    pub fn bin(op: BinOp, lhs: Expr, rhs: Expr) -> Expr {
        Expr::Binary {
            op,
            lhs: Box::new(lhs),
            rhs: Box::new(rhs),
        }
    }

    /// Evaluate against a tuple.
    pub fn eval(&self, tuple: &Tuple) -> Result<Value> {
        match self {
            Expr::Column(i) => tuple.value(*i).cloned(),
            Expr::Literal(v) => Ok(v.clone()),
            Expr::Abs(inner) => Ok(Value::Float(inner.eval(tuple)?.as_float()?.abs())),
            Expr::VectorElem { column, index } => {
                let v = tuple.value(*column)?.as_vector()?;
                v.get(*index).copied().map(Value::Float).ok_or_else(|| {
                    Error::TypeError(format!("vector index {index} out of bounds ({})", v.len()))
                })
            }
            Expr::Binary { op, lhs, rhs } => {
                let l = lhs.eval(tuple)?;
                let r = rhs.eval(tuple)?;
                eval_binary(*op, &l, &r)
            }
        }
    }

    /// Evaluate as a boolean predicate (nonzero int / true comparison).
    pub fn eval_bool(&self, tuple: &Tuple) -> Result<bool> {
        Ok(self.eval(tuple)?.as_int()? != 0)
    }
}

fn bool_val(b: bool) -> Value {
    Value::Int(b as i64)
}

fn eval_binary(op: BinOp, l: &Value, r: &Value) -> Result<Value> {
    use BinOp::*;
    match op {
        And => return Ok(bool_val(l.as_int()? != 0 && r.as_int()? != 0)),
        Or => return Ok(bool_val(l.as_int()? != 0 || r.as_int()? != 0)),
        _ => {}
    }
    // Int-int stays exact; anything involving floats is computed in f32.
    if let (Value::Int(a), Value::Int(b)) = (l, r) {
        return Ok(match op {
            Add => Value::Int(a + b),
            Sub => Value::Int(a - b),
            Mul => Value::Int(a * b),
            Div => {
                if *b == 0 {
                    return Err(Error::TypeError("integer division by zero".into()));
                }
                Value::Int(a / b)
            }
            Eq => bool_val(a == b),
            Ne => bool_val(a != b),
            Lt => bool_val(a < b),
            Le => bool_val(a <= b),
            Gt => bool_val(a > b),
            Ge => bool_val(a >= b),
            And | Or => unreachable!("handled above"),
        });
    }
    if let (Value::Text(a), Value::Text(b)) = (l, r) {
        return Ok(match op {
            Eq => bool_val(a == b),
            Ne => bool_val(a != b),
            Lt => bool_val(a < b),
            Le => bool_val(a <= b),
            Gt => bool_val(a > b),
            Ge => bool_val(a >= b),
            other => {
                return Err(Error::TypeError(format!(
                    "operator {other:?} not defined on text"
                )))
            }
        });
    }
    let a = l.as_float()?;
    let b = r.as_float()?;
    Ok(match op {
        Add => Value::Float(a + b),
        Sub => Value::Float(a - b),
        Mul => Value::Float(a * b),
        Div => Value::Float(a / b),
        Eq => bool_val(a == b),
        Ne => bool_val(a != b),
        Lt => bool_val(a < b),
        Le => bool_val(a <= b),
        Gt => bool_val(a > b),
        Ge => bool_val(a >= b),
        And | Or => unreachable!("handled above"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row() -> Tuple {
        Tuple::new(vec![
            Value::Int(10),
            Value::Float(2.5),
            Value::Text("abc".into()),
            Value::Vector(vec![1.0, 4.0, 9.0]),
        ])
    }

    #[test]
    fn column_and_literal() {
        assert_eq!(Expr::col(0).eval(&row()).unwrap(), Value::Int(10));
        assert_eq!(Expr::lit(5i64).eval(&row()).unwrap(), Value::Int(5));
    }

    #[test]
    fn integer_arithmetic_stays_exact() {
        let e = Expr::bin(BinOp::Add, Expr::col(0), Expr::lit(5i64));
        assert_eq!(e.eval(&row()).unwrap(), Value::Int(15));
        let div0 = Expr::bin(BinOp::Div, Expr::col(0), Expr::lit(0i64));
        assert!(div0.eval(&row()).is_err());
    }

    #[test]
    fn mixed_arithmetic_promotes_to_float() {
        let e = Expr::bin(BinOp::Mul, Expr::col(0), Expr::col(1));
        assert_eq!(e.eval(&row()).unwrap(), Value::Float(25.0));
    }

    #[test]
    fn comparisons_as_predicates() {
        let e = Expr::bin(BinOp::Gt, Expr::col(1), Expr::lit(2.0f32));
        assert!(e.eval_bool(&row()).unwrap());
        let e = Expr::bin(BinOp::Eq, Expr::col(2), Expr::lit("abc"));
        assert!(e.eval_bool(&row()).unwrap());
        let e = Expr::bin(BinOp::Eq, Expr::col(2), Expr::lit("xyz"));
        assert!(!e.eval_bool(&row()).unwrap());
    }

    #[test]
    fn logic_ops() {
        let t = Expr::lit(1i64);
        let f = Expr::lit(0i64);
        assert!(Expr::bin(BinOp::And, t.clone(), t.clone())
            .eval_bool(&row())
            .unwrap());
        assert!(!Expr::bin(BinOp::And, t.clone(), f.clone())
            .eval_bool(&row())
            .unwrap());
        assert!(Expr::bin(BinOp::Or, f.clone(), t)
            .eval_bool(&row())
            .unwrap());
        assert!(!Expr::bin(BinOp::Or, f.clone(), f)
            .eval_bool(&row())
            .unwrap());
    }

    #[test]
    fn abs_and_vector_elem() {
        // |features[1] - 5| = 1 — the similarity-join predicate shape (§7.2.1).
        let e = Expr::Abs(Box::new(Expr::bin(
            BinOp::Sub,
            Expr::VectorElem {
                column: 3,
                index: 1,
            },
            Expr::lit(5.0f32),
        )));
        assert_eq!(e.eval(&row()).unwrap(), Value::Float(1.0));
        let oob = Expr::VectorElem {
            column: 3,
            index: 10,
        };
        assert!(oob.eval(&row()).is_err());
    }

    #[test]
    fn text_arithmetic_rejected() {
        let e = Expr::bin(BinOp::Add, Expr::col(2), Expr::col(2));
        assert!(e.eval(&row()).is_err());
    }
}
