//! Relational algebra runtime for `relserve`.
//!
//! This crate is the query-processing half of the envisioned RDBMS: typed
//! schemas and tuples over the paged storage engine, a Volcano-style
//! pull-based operator tree (scan, filter, project, hash join, similarity
//! join, hash aggregation), and — the part specific to the paper — **tensor
//! relations**: tables whose tuples are tensor blocks, plus the relational
//! lowering of matrix multiplication into a join followed by an aggregation
//! over those blocks (§7.1).
//!
//! Everything executes through the buffer pool, so both ordinary tables and
//! tensor relations spill to disk transparently when they outgrow memory.

pub mod error;
pub mod expr;
pub mod ops;
pub mod query;
pub mod schema;
pub mod table;
pub mod tensor_table;
pub mod tuple;
pub mod value;

pub use error::{Error, Result};
pub use expr::Expr;
pub use query::Query;
pub use schema::{Column, DataType, Schema};
pub use table::Table;
pub use tensor_table::TensorTable;
pub use tuple::Tuple;
pub use value::Value;
