//! Hash aggregation with group-by.

use super::{hash_key, Operator};
use crate::error::{Error, Result};
use crate::expr::Expr;
use crate::schema::{Column, DataType, Schema};
use crate::tuple::Tuple;
use crate::value::Value;
use std::collections::HashMap;

/// Aggregate function.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFunc {
    /// Row count.
    Count,
    /// Sum of a float expression.
    Sum,
    /// Minimum of a float expression.
    Min,
    /// Maximum of a float expression.
    Max,
    /// Arithmetic mean of a float expression.
    Avg,
}

/// One aggregate column: a function over an expression, with an output name.
#[derive(Debug, Clone)]
pub struct AggSpec {
    /// The aggregate function.
    pub func: AggFunc,
    /// Input expression (ignored for `Count`).
    pub expr: Expr,
    /// Output column name.
    pub name: String,
}

impl AggSpec {
    /// Shorthand constructor.
    pub fn new(func: AggFunc, expr: Expr, name: impl Into<String>) -> Self {
        AggSpec {
            func,
            expr,
            name: name.into(),
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct AggState {
    count: u64,
    sum: f64,
    min: f32,
    max: f32,
}

impl AggState {
    fn new() -> Self {
        AggState {
            count: 0,
            sum: 0.0,
            min: f32::INFINITY,
            max: f32::NEG_INFINITY,
        }
    }

    fn update(&mut self, v: f32) {
        self.count += 1;
        self.sum += v as f64;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    fn finish(&self, func: AggFunc) -> Value {
        match func {
            AggFunc::Count => Value::Int(self.count as i64),
            AggFunc::Sum => Value::Float(self.sum as f32),
            AggFunc::Min => Value::Float(self.min),
            AggFunc::Max => Value::Float(self.max),
            AggFunc::Avg => Value::Float(if self.count == 0 {
                0.0
            } else {
                (self.sum / self.count as f64) as f32
            }),
        }
    }
}

/// Hash aggregation: `GROUP BY group_exprs` computing `aggs`.
///
/// With an empty `group_exprs` list this is a full-table aggregate that
/// always emits exactly one row.
pub struct HashAggregate<'a> {
    child: Option<Box<dyn Operator + 'a>>,
    group_exprs: Vec<Expr>,
    aggs: Vec<AggSpec>,
    schema: Schema,
    output: Option<std::vec::IntoIter<Tuple>>,
}

impl<'a> HashAggregate<'a> {
    /// Build the aggregation operator.
    ///
    /// `group_names` gives output names for the group-by columns.
    pub fn new(
        child: Box<dyn Operator + 'a>,
        group_exprs: Vec<Expr>,
        group_names: Vec<String>,
        aggs: Vec<AggSpec>,
    ) -> Result<Self> {
        if group_exprs.len() != group_names.len() {
            return Err(Error::Plan(format!(
                "{} group exprs but {} names",
                group_exprs.len(),
                group_names.len()
            )));
        }
        if aggs.is_empty() {
            return Err(Error::Plan("aggregation without aggregates".into()));
        }
        let mut columns: Vec<Column> = Vec::new();
        for (name, expr) in group_names.iter().zip(&group_exprs) {
            // Group columns keep the type of a sample evaluation; since we
            // cannot evaluate before execution, declare Int for column refs
            // to Int and Float otherwise — refined below at execution.
            let _ = expr;
            columns.push(Column::new(name.clone(), DataType::Float));
        }
        for a in &aggs {
            let dtype = match a.func {
                AggFunc::Count => DataType::Int,
                _ => DataType::Float,
            };
            columns.push(Column::new(a.name.clone(), dtype));
        }
        Ok(HashAggregate {
            child: Some(child),
            group_exprs,
            aggs,
            schema: Schema::new(columns),
            output: None,
        })
    }

    fn run(&mut self) -> Result<Vec<Tuple>> {
        let mut child = self.child.take().expect("run called once");
        // key bytes → (group values, per-agg state)
        let mut groups: HashMap<Vec<u8>, (Vec<Value>, Vec<AggState>)> = HashMap::new();
        let no_groups = self.group_exprs.is_empty();
        while let Some(t) = child.next()? {
            let group_vals: Vec<Value> = self
                .group_exprs
                .iter()
                .map(|e| e.eval(&t))
                .collect::<Result<_>>()?;
            let key = hash_key(&group_vals);
            let entry = groups
                .entry(key)
                .or_insert_with(|| (group_vals, vec![AggState::new(); self.aggs.len()]));
            for (spec, state) in self.aggs.iter().zip(entry.1.iter_mut()) {
                match spec.func {
                    AggFunc::Count => state.update(0.0),
                    _ => state.update(spec.expr.eval(&t)?.as_float()?),
                }
            }
        }
        if no_groups && groups.is_empty() {
            groups.insert(
                Vec::new(),
                (Vec::new(), vec![AggState::new(); self.aggs.len()]),
            );
        }
        let mut rows: Vec<Tuple> = groups
            .into_values()
            .map(|(mut vals, states)| {
                for (spec, state) in self.aggs.iter().zip(&states) {
                    vals.push(state.finish(spec.func));
                }
                Tuple::new(vals)
            })
            .collect();
        // Deterministic output order helps tests and reproducibility.
        rows.sort_by(|a, b| format!("{:?}", a.values()).cmp(&format!("{:?}", b.values())));
        Ok(rows)
    }
}

impl Operator for HashAggregate<'_> {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn next(&mut self) -> Result<Option<Tuple>> {
        if self.output.is_none() {
            let rows = self.run()?;
            self.output = Some(rows.into_iter());
        }
        Ok(self.output.as_mut().expect("set above").next())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::testutil::id_score_schema;
    use crate::ops::{collect, MemScan};

    fn rows(pairs: &[(i64, f32)]) -> Vec<Tuple> {
        pairs
            .iter()
            .map(|(i, s)| Tuple::new(vec![Value::Int(*i), Value::Float(*s)]))
            .collect()
    }

    #[test]
    fn grouped_sum_and_count() {
        let scan = MemScan::new(
            id_score_schema(),
            rows(&[(1, 10.0), (1, 20.0), (2, 5.0), (2, 7.0), (3, 1.0)]),
        );
        let mut agg = HashAggregate::new(
            Box::new(scan),
            vec![Expr::col(0)],
            vec!["id".into()],
            vec![
                AggSpec::new(AggFunc::Sum, Expr::col(1), "total"),
                AggSpec::new(AggFunc::Count, Expr::col(1), "n"),
            ],
        )
        .unwrap();
        let out = collect(&mut agg).unwrap();
        assert_eq!(out.len(), 3);
        let row1 = out
            .iter()
            .find(|t| t.value(0).unwrap().as_int().unwrap() == 1)
            .unwrap();
        assert_eq!(row1.value(1).unwrap(), &Value::Float(30.0));
        assert_eq!(row1.value(2).unwrap(), &Value::Int(2));
    }

    #[test]
    fn global_aggregate_without_groups() {
        let scan = MemScan::new(id_score_schema(), rows(&[(1, 2.0), (2, 4.0), (3, 9.0)]));
        let mut agg = HashAggregate::new(
            Box::new(scan),
            vec![],
            vec![],
            vec![
                AggSpec::new(AggFunc::Avg, Expr::col(1), "avg"),
                AggSpec::new(AggFunc::Min, Expr::col(1), "min"),
                AggSpec::new(AggFunc::Max, Expr::col(1), "max"),
            ],
        )
        .unwrap();
        let out = collect(&mut agg).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].value(0).unwrap(), &Value::Float(5.0));
        assert_eq!(out[0].value(1).unwrap(), &Value::Float(2.0));
        assert_eq!(out[0].value(2).unwrap(), &Value::Float(9.0));
    }

    #[test]
    fn empty_input_global_aggregate_emits_one_row() {
        let scan = MemScan::new(id_score_schema(), vec![]);
        let mut agg = HashAggregate::new(
            Box::new(scan),
            vec![],
            vec![],
            vec![AggSpec::new(AggFunc::Count, Expr::col(0), "n")],
        )
        .unwrap();
        let out = collect(&mut agg).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].value(0).unwrap(), &Value::Int(0));
    }

    #[test]
    fn empty_input_grouped_aggregate_emits_nothing() {
        let scan = MemScan::new(id_score_schema(), vec![]);
        let mut agg = HashAggregate::new(
            Box::new(scan),
            vec![Expr::col(0)],
            vec!["id".into()],
            vec![AggSpec::new(AggFunc::Count, Expr::col(0), "n")],
        )
        .unwrap();
        assert!(collect(&mut agg).unwrap().is_empty());
    }

    #[test]
    fn plan_validation() {
        let scan = MemScan::new(id_score_schema(), vec![]);
        assert!(HashAggregate::new(Box::new(scan), vec![Expr::col(0)], vec![], vec![]).is_err());
        let scan = MemScan::new(id_score_schema(), vec![]);
        assert!(HashAggregate::new(Box::new(scan), vec![], vec![], vec![]).is_err());
    }

    #[test]
    fn schema_names_and_types() {
        let scan = MemScan::new(id_score_schema(), vec![]);
        let agg = HashAggregate::new(
            Box::new(scan),
            vec![Expr::col(0)],
            vec!["g".into()],
            vec![
                AggSpec::new(AggFunc::Count, Expr::col(1), "n"),
                AggSpec::new(AggFunc::Sum, Expr::col(1), "s"),
            ],
        )
        .unwrap();
        let s = agg.schema();
        assert_eq!(s.column(0).unwrap().name, "g");
        assert_eq!(s.column(1).unwrap().name, "n");
        assert_eq!(s.column(1).unwrap().dtype, DataType::Int);
        assert_eq!(s.column(2).unwrap().dtype, DataType::Float);
    }
}
