//! Filter (selection) operator.

use super::Operator;
use crate::error::Result;
use crate::expr::Expr;
use crate::schema::Schema;
use crate::tuple::Tuple;

/// Passes through tuples for which the predicate evaluates true.
pub struct Filter<'a> {
    child: Box<dyn Operator + 'a>,
    predicate: Expr,
}

impl<'a> Filter<'a> {
    /// Filter `child` by `predicate`.
    pub fn new(child: Box<dyn Operator + 'a>, predicate: Expr) -> Self {
        Filter { child, predicate }
    }
}

impl Operator for Filter<'_> {
    fn schema(&self) -> &Schema {
        self.child.schema()
    }

    fn next(&mut self) -> Result<Option<Tuple>> {
        while let Some(t) = self.child.next()? {
            if self.predicate.eval_bool(&t)? {
                return Ok(Some(t));
            }
        }
        Ok(None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::BinOp;
    use crate::ops::testutil::{id_score_rows, id_score_schema};
    use crate::ops::{collect, MemScan};
    use crate::value::Value;

    #[test]
    fn keeps_matching_rows() {
        let scan = MemScan::new(id_score_schema(), id_score_rows(10, |i| i as f32));
        let mut filter = Filter::new(
            Box::new(scan),
            Expr::bin(BinOp::Ge, Expr::col(1), Expr::lit(7.0f32)),
        );
        let rows = collect(&mut filter).unwrap();
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].value(0).unwrap(), &Value::Int(7));
    }

    #[test]
    fn rejects_all() {
        let scan = MemScan::new(id_score_schema(), id_score_rows(5, |_| 1.0));
        let mut filter = Filter::new(
            Box::new(scan),
            Expr::bin(BinOp::Lt, Expr::col(1), Expr::lit(0.0f32)),
        );
        assert!(collect(&mut filter).unwrap().is_empty());
    }

    #[test]
    fn type_errors_propagate() {
        let scan = MemScan::new(id_score_schema(), id_score_rows(1, |_| 1.0));
        // Comparing an int column to text is a type error at eval time.
        let mut filter = Filter::new(
            Box::new(scan),
            Expr::bin(BinOp::Eq, Expr::col(0), Expr::lit("oops")),
        );
        assert!(filter.next().is_err());
    }
}
