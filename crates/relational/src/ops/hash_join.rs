//! Hash equi-join.

use super::{hash_key, Operator};
use crate::error::Result;
use crate::expr::Expr;
use crate::schema::Schema;
use crate::tuple::Tuple;
use crate::value::Value;
use std::collections::HashMap;

/// Classic build/probe hash equi-join.
///
/// The right (build) side is materialized into a hash table keyed by its
/// join expressions; the left side streams and probes. Output tuples are
/// `left ++ right`.
pub struct HashJoin<'a> {
    left: Box<dyn Operator + 'a>,
    right_keys: Vec<Expr>,
    left_keys: Vec<Expr>,
    schema: Schema,
    /// Build table: key bytes → matching right tuples.
    build: Option<HashMap<Vec<u8>, Vec<Tuple>>>,
    /// Right operator, consumed on first `next`.
    right: Option<Box<dyn Operator + 'a>>,
    /// Current probe state: the left tuple and remaining right matches.
    pending: Vec<Tuple>,
    pending_left: Option<Tuple>,
    pending_idx: usize,
}

impl<'a> HashJoin<'a> {
    /// Join `left ⋈ right` on `left_keys[i] == right_keys[i]` for all `i`.
    pub fn new(
        left: Box<dyn Operator + 'a>,
        right: Box<dyn Operator + 'a>,
        left_keys: Vec<Expr>,
        right_keys: Vec<Expr>,
    ) -> Result<Self> {
        if left_keys.is_empty() || left_keys.len() != right_keys.len() {
            return Err(crate::error::Error::Plan(format!(
                "hash join needs matching non-empty key lists ({} vs {})",
                left_keys.len(),
                right_keys.len()
            )));
        }
        let schema = left.schema().join(right.schema());
        Ok(HashJoin {
            left,
            right_keys,
            left_keys,
            schema,
            build: None,
            right: Some(right),
            pending: Vec::new(),
            pending_left: None,
            pending_idx: 0,
        })
    }

    fn eval_keys(keys: &[Expr], tuple: &Tuple) -> Result<Vec<Value>> {
        keys.iter().map(|k| k.eval(tuple)).collect()
    }

    fn build_side(&mut self) -> Result<()> {
        let mut right = self.right.take().expect("build called once");
        let mut table: HashMap<Vec<u8>, Vec<Tuple>> = HashMap::new();
        while let Some(t) = right.next()? {
            let key = hash_key(&Self::eval_keys(&self.right_keys, &t)?);
            table.entry(key).or_default().push(t);
        }
        self.build = Some(table);
        Ok(())
    }
}

impl Operator for HashJoin<'_> {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn next(&mut self) -> Result<Option<Tuple>> {
        if self.build.is_none() {
            self.build_side()?;
        }
        loop {
            // Drain matches for the current left tuple first.
            if let Some(left) = &self.pending_left {
                if self.pending_idx < self.pending.len() {
                    let joined = left.clone().join(&self.pending[self.pending_idx]);
                    self.pending_idx += 1;
                    return Ok(Some(joined));
                }
                self.pending_left = None;
            }
            let Some(left) = self.left.next()? else {
                return Ok(None);
            };
            let key = hash_key(&Self::eval_keys(&self.left_keys, &left)?);
            let matches = self
                .build
                .as_ref()
                .expect("built above")
                .get(&key)
                .cloned()
                .unwrap_or_default();
            if matches.is_empty() {
                continue;
            }
            self.pending = matches;
            self.pending_idx = 0;
            self.pending_left = Some(left);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::testutil::id_score_schema;
    use crate::ops::{collect, MemScan};
    use crate::schema::{Column, DataType};

    fn rows(pairs: &[(i64, f32)]) -> Vec<Tuple> {
        pairs
            .iter()
            .map(|(i, s)| Tuple::new(vec![Value::Int(*i), Value::Float(*s)]))
            .collect()
    }

    #[test]
    fn inner_join_on_int_key() {
        let left = MemScan::new(id_score_schema(), rows(&[(1, 10.0), (2, 20.0), (3, 30.0)]));
        let right = MemScan::new(
            id_score_schema(),
            rows(&[(2, 200.0), (3, 300.0), (4, 400.0)]),
        );
        let mut join = HashJoin::new(
            Box::new(left),
            Box::new(right),
            vec![Expr::col(0)],
            vec![Expr::col(0)],
        )
        .unwrap();
        assert_eq!(join.schema().arity(), 4);
        let out = collect(&mut join).unwrap();
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].value(0).unwrap(), &Value::Int(2));
        assert_eq!(out[0].value(3).unwrap(), &Value::Float(200.0));
    }

    #[test]
    fn duplicate_keys_produce_cross_products() {
        let left = MemScan::new(id_score_schema(), rows(&[(1, 1.0), (1, 2.0)]));
        let right = MemScan::new(id_score_schema(), rows(&[(1, 10.0), (1, 20.0), (1, 30.0)]));
        let mut join = HashJoin::new(
            Box::new(left),
            Box::new(right),
            vec![Expr::col(0)],
            vec![Expr::col(0)],
        )
        .unwrap();
        assert_eq!(collect(&mut join).unwrap().len(), 6);
    }

    #[test]
    fn disjoint_keys_yield_nothing() {
        let left = MemScan::new(id_score_schema(), rows(&[(1, 1.0)]));
        let right = MemScan::new(id_score_schema(), rows(&[(2, 2.0)]));
        let mut join = HashJoin::new(
            Box::new(left),
            Box::new(right),
            vec![Expr::col(0)],
            vec![Expr::col(0)],
        )
        .unwrap();
        assert!(collect(&mut join).unwrap().is_empty());
    }

    #[test]
    fn composite_keys() {
        let schema = Schema::new(vec![
            Column::new("a", DataType::Int),
            Column::new("b", DataType::Int),
        ]);
        let mk = |pairs: &[(i64, i64)]| {
            pairs
                .iter()
                .map(|(a, b)| Tuple::new(vec![Value::Int(*a), Value::Int(*b)]))
                .collect::<Vec<_>>()
        };
        let left = MemScan::new(schema.clone(), mk(&[(1, 1), (1, 2)]));
        let right = MemScan::new(schema, mk(&[(1, 1), (1, 3)]));
        let mut join = HashJoin::new(
            Box::new(left),
            Box::new(right),
            vec![Expr::col(0), Expr::col(1)],
            vec![Expr::col(0), Expr::col(1)],
        )
        .unwrap();
        // Only (1,1) matches on both columns.
        assert_eq!(collect(&mut join).unwrap().len(), 1);
    }

    #[test]
    fn empty_key_lists_rejected() {
        let left = MemScan::new(id_score_schema(), vec![]);
        let right = MemScan::new(id_score_schema(), vec![]);
        assert!(HashJoin::new(Box::new(left), Box::new(right), vec![], vec![]).is_err());
    }

    #[test]
    fn joined_schema_prefixes_duplicates() {
        let left = MemScan::new(id_score_schema(), vec![]);
        let right = MemScan::new(id_score_schema(), vec![]);
        let join = HashJoin::new(
            Box::new(left),
            Box::new(right),
            vec![Expr::col(0)],
            vec![Expr::col(0)],
        )
        .unwrap();
        assert_eq!(join.schema().column(2).unwrap().name, "r.id");
    }
}
