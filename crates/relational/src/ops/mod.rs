//! Pull-based (Volcano-style) relational operators.
//!
//! Operators form a tree; calling [`Operator::next`] on the root pulls one
//! tuple at a time through the pipeline. The set implemented here is exactly
//! what the paper's experiments need: sequential scan, filter, projection,
//! hash equi-join, similarity join (§7.2.1), hash aggregation (the
//! "join followed by an aggregation" that matmul lowers to at tuple level),
//! plus sort and limit for top-k result queries.

mod aggregate;
mod filter;
mod hash_join;
mod project;
mod scan;
mod sim_join;
mod sort;

pub use aggregate::{AggFunc, AggSpec, HashAggregate};
pub use filter::Filter;
pub use hash_join::HashJoin;
pub use project::Project;
pub use scan::{MemScan, SeqScan};
pub use sim_join::SimilarityJoin;
pub use sort::{Limit, Sort, SortOrder};

use crate::error::Result;
use crate::schema::Schema;
use crate::tuple::Tuple;
use crate::value::Value;

/// A pull-based relational operator.
pub trait Operator {
    /// Schema of the tuples this operator produces.
    fn schema(&self) -> &Schema;

    /// Produce the next tuple, or `None` when exhausted.
    fn next(&mut self) -> Result<Option<Tuple>>;
}

/// Drain an operator into a vector.
pub fn collect(op: &mut dyn Operator) -> Result<Vec<Tuple>> {
    let mut out = Vec::new();
    while let Some(t) = op.next()? {
        out.push(t);
    }
    Ok(out)
}

/// Encode a list of key values into a hashable byte key.
///
/// Floats are keyed by their bit pattern, so `-0.0` and `0.0` are distinct
/// keys — acceptable for the synthetic workloads, documented here.
pub(crate) fn hash_key(values: &[Value]) -> Vec<u8> {
    let mut key = Vec::with_capacity(values.len() * 9);
    for v in values {
        v.encode(&mut key);
    }
    key
}

#[cfg(test)]
pub(crate) mod testutil {
    use super::*;
    use crate::schema::{Column, DataType};

    /// An `(id: Int, score: Float)` schema used across operator tests.
    pub fn id_score_schema() -> Schema {
        Schema::new(vec![
            Column::new("id", DataType::Int),
            Column::new("score", DataType::Float),
        ])
    }

    /// Rows `(i, f(i))` for `i in 0..n`.
    pub fn id_score_rows(n: i64, f: impl Fn(i64) -> f32) -> Vec<Tuple> {
        (0..n)
            .map(|i| Tuple::new(vec![Value::Int(i), Value::Float(f(i))]))
            .collect()
    }
}
