//! Projection operator.

use super::Operator;
use crate::error::Result;
use crate::schema::Schema;
use crate::tuple::Tuple;

/// Keeps only the given columns, in the given order.
pub struct Project<'a> {
    child: Box<dyn Operator + 'a>,
    indices: Vec<usize>,
    schema: Schema,
}

impl<'a> Project<'a> {
    /// Project `child` onto `indices`.
    pub fn new(child: Box<dyn Operator + 'a>, indices: Vec<usize>) -> Result<Self> {
        let schema = child.schema().project(&indices)?;
        Ok(Project {
            child,
            indices,
            schema,
        })
    }

    /// Project by column names.
    pub fn by_names(child: Box<dyn Operator + 'a>, names: &[&str]) -> Result<Self> {
        let indices = names
            .iter()
            .map(|n| child.schema().index_of(n))
            .collect::<Result<Vec<_>>>()?;
        Self::new(child, indices)
    }
}

impl Operator for Project<'_> {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn next(&mut self) -> Result<Option<Tuple>> {
        match self.child.next()? {
            Some(t) => Ok(Some(t.project(&self.indices)?)),
            None => Ok(None),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::testutil::{id_score_rows, id_score_schema};
    use crate::ops::{collect, MemScan};
    use crate::value::Value;

    #[test]
    fn selects_and_reorders() {
        let scan = MemScan::new(id_score_schema(), id_score_rows(3, |i| i as f32 * 10.0));
        let mut p = Project::new(Box::new(scan), vec![1, 0]).unwrap();
        assert_eq!(p.schema().column(0).unwrap().name, "score");
        let rows = collect(&mut p).unwrap();
        assert_eq!(rows[2].values(), &[Value::Float(20.0), Value::Int(2)]);
    }

    #[test]
    fn by_names_resolves() {
        let scan = MemScan::new(id_score_schema(), id_score_rows(1, |_| 0.0));
        let mut p = Project::by_names(Box::new(scan), &["score"]).unwrap();
        assert_eq!(p.schema().arity(), 1);
        assert_eq!(collect(&mut p).unwrap()[0].arity(), 1);
    }

    #[test]
    fn unknown_column_fails_at_plan_time() {
        let scan = MemScan::new(id_score_schema(), vec![]);
        assert!(Project::by_names(Box::new(scan), &["nope"]).is_err());
        let scan = MemScan::new(id_score_schema(), vec![]);
        assert!(Project::new(Box::new(scan), vec![5]).is_err());
    }
}
