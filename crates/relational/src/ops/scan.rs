//! Scan operators: sequential table scan and in-memory scan.

use super::Operator;
use crate::error::Result;
use crate::schema::Schema;
use crate::table::Table;
use crate::tuple::Tuple;

/// Sequential scan over a stored table (reads through the buffer pool).
pub struct SeqScan<'a> {
    schema: Schema,
    iter: Box<dyn Iterator<Item = Result<Tuple>> + 'a>,
}

impl<'a> SeqScan<'a> {
    /// Scan all live tuples of `table`.
    pub fn new(table: &'a Table) -> Self {
        SeqScan {
            schema: table.schema().clone(),
            iter: Box::new(table.scan()),
        }
    }
}

impl Operator for SeqScan<'_> {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn next(&mut self) -> Result<Option<Tuple>> {
        self.iter.next().transpose()
    }
}

/// Scan over an in-memory tuple vector (test fixtures, staged intermediates).
pub struct MemScan {
    schema: Schema,
    rows: std::vec::IntoIter<Tuple>,
}

impl MemScan {
    /// Scan `rows` with the given schema.
    pub fn new(schema: Schema, rows: Vec<Tuple>) -> Self {
        MemScan {
            schema,
            rows: rows.into_iter(),
        }
    }
}

impl Operator for MemScan {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn next(&mut self) -> Result<Option<Tuple>> {
        Ok(self.rows.next())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::collect;
    use crate::ops::testutil::{id_score_rows, id_score_schema};
    use crate::value::Value;
    use relserve_storage::{BufferPool, DiskManager};
    use std::sync::Arc;

    #[test]
    fn mem_scan_yields_all() {
        let mut scan = MemScan::new(id_score_schema(), id_score_rows(5, |i| i as f32));
        let rows = collect(&mut scan).unwrap();
        assert_eq!(rows.len(), 5);
        assert_eq!(rows[3].value(0).unwrap(), &Value::Int(3));
    }

    #[test]
    fn seq_scan_reads_table() {
        let pool = Arc::new(BufferPool::new(Arc::new(DiskManager::temp().unwrap()), 4));
        let table = Table::create(pool, "t", id_score_schema());
        for row in id_score_rows(10, |i| i as f32 * 2.0) {
            table.insert(&row).unwrap();
        }
        let mut scan = SeqScan::new(&table);
        assert_eq!(scan.schema().arity(), 2);
        let rows = collect(&mut scan).unwrap();
        assert_eq!(rows.len(), 10);
        assert_eq!(rows[4].value(1).unwrap(), &Value::Float(8.0));
    }

    #[test]
    fn empty_scan_terminates() {
        let mut scan = MemScan::new(id_score_schema(), vec![]);
        assert!(scan.next().unwrap().is_none());
        assert!(scan.next().unwrap().is_none());
    }
}
