//! Similarity (band) join on float keys.
//!
//! The §7.2.1 pipeline joins two feature tables on the *similarity* of two
//! float columns: `|l.key - r.key| ≤ ε`. A nested loop would be quadratic;
//! this operator buckets the build side by `floor(key / ε)` so each probe
//! only inspects three buckets (its own and both neighbours), then verifies
//! the predicate exactly.

use super::Operator;
use crate::error::Result;
use crate::expr::Expr;
use crate::schema::Schema;
use crate::tuple::Tuple;
use std::collections::HashMap;

/// Band join: emits `left ++ right` when the two float keys differ by ≤ ε.
pub struct SimilarityJoin<'a> {
    left: Box<dyn Operator + 'a>,
    left_key: Expr,
    right_key: Expr,
    epsilon: f32,
    schema: Schema,
    build: Option<HashMap<i64, Vec<(f32, Tuple)>>>,
    right: Option<Box<dyn Operator + 'a>>,
    pending: Vec<Tuple>,
    pending_left: Option<Tuple>,
    pending_idx: usize,
}

impl<'a> SimilarityJoin<'a> {
    /// Join on `|left_key - right_key| <= epsilon`.
    pub fn new(
        left: Box<dyn Operator + 'a>,
        right: Box<dyn Operator + 'a>,
        left_key: Expr,
        right_key: Expr,
        epsilon: f32,
    ) -> Result<Self> {
        if epsilon <= 0.0 || !epsilon.is_finite() {
            return Err(crate::error::Error::Plan(format!(
                "similarity join needs a positive finite epsilon, got {epsilon}"
            )));
        }
        let schema = left.schema().join(right.schema());
        Ok(SimilarityJoin {
            left,
            left_key,
            right_key,
            epsilon,
            schema,
            build: None,
            right: Some(right),
            pending: Vec::new(),
            pending_left: None,
            pending_idx: 0,
        })
    }

    fn bucket(&self, v: f32) -> i64 {
        (v / self.epsilon).floor() as i64
    }

    fn build_side(&mut self) -> Result<()> {
        let mut right = self.right.take().expect("build called once");
        let mut table: HashMap<i64, Vec<(f32, Tuple)>> = HashMap::new();
        while let Some(t) = right.next()? {
            let key = self.right_key.eval(&t)?.as_float()?;
            table.entry(self.bucket(key)).or_default().push((key, t));
        }
        self.build = Some(table);
        Ok(())
    }
}

impl Operator for SimilarityJoin<'_> {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn next(&mut self) -> Result<Option<Tuple>> {
        if self.build.is_none() {
            self.build_side()?;
        }
        loop {
            if let Some(left) = &self.pending_left {
                if self.pending_idx < self.pending.len() {
                    let joined = left.clone().join(&self.pending[self.pending_idx]);
                    self.pending_idx += 1;
                    return Ok(Some(joined));
                }
                self.pending_left = None;
            }
            let Some(left) = self.left.next()? else {
                return Ok(None);
            };
            let key = self.left_key.eval(&left)?.as_float()?;
            let bucket = self.bucket(key);
            let mut matches = Vec::new();
            let build = self.build.as_ref().expect("built above");
            for b in [bucket - 1, bucket, bucket + 1] {
                if let Some(entries) = build.get(&b) {
                    for (rk, rt) in entries {
                        if (key - rk).abs() <= self.epsilon {
                            matches.push(rt.clone());
                        }
                    }
                }
            }
            if matches.is_empty() {
                continue;
            }
            self.pending = matches;
            self.pending_idx = 0;
            self.pending_left = Some(left);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::testutil::id_score_schema;
    use crate::ops::{collect, MemScan};
    use crate::value::Value;

    fn rows(pairs: &[(i64, f32)]) -> Vec<Tuple> {
        pairs
            .iter()
            .map(|(i, s)| Tuple::new(vec![Value::Int(*i), Value::Float(*s)]))
            .collect()
    }

    fn run_join(left: &[(i64, f32)], right: &[(i64, f32)], eps: f32) -> Vec<(i64, i64)> {
        let l = MemScan::new(id_score_schema(), rows(left));
        let r = MemScan::new(id_score_schema(), rows(right));
        let mut j =
            SimilarityJoin::new(Box::new(l), Box::new(r), Expr::col(1), Expr::col(1), eps).unwrap();
        collect(&mut j)
            .unwrap()
            .iter()
            .map(|t| {
                (
                    t.value(0).unwrap().as_int().unwrap(),
                    t.value(2).unwrap().as_int().unwrap(),
                )
            })
            .collect()
    }

    #[test]
    fn matches_within_epsilon() {
        let out = run_join(&[(1, 1.0), (2, 5.0)], &[(10, 1.05), (20, 7.0)], 0.1);
        assert_eq!(out, vec![(1, 10)]);
    }

    #[test]
    fn boundary_is_inclusive() {
        let out = run_join(&[(1, 0.0)], &[(2, 0.5)], 0.5);
        assert_eq!(out, vec![(1, 2)]);
    }

    #[test]
    fn cross_bucket_matches_found() {
        // 0.99 and 1.01 land in different ε=0.5 buckets (1 and 2) but differ by 0.02.
        let out = run_join(&[(1, 0.99)], &[(2, 1.01)], 0.5);
        assert_eq!(out, vec![(1, 2)]);
    }

    #[test]
    fn matches_agree_with_nested_loop() {
        let left: Vec<(i64, f32)> = (0..40).map(|i| (i, (i as f32 * 0.37) % 5.0)).collect();
        let right: Vec<(i64, f32)> = (0..40)
            .map(|i| (100 + i, (i as f32 * 0.61) % 5.0))
            .collect();
        let eps = 0.15;
        let mut expect: Vec<(i64, i64)> = Vec::new();
        for (li, lv) in &left {
            for (ri, rv) in &right {
                if (lv - rv).abs() <= eps {
                    expect.push((*li, *ri));
                }
            }
        }
        let mut got = run_join(&left, &right, eps);
        got.sort_unstable();
        expect.sort_unstable();
        assert_eq!(got, expect);
        assert!(
            !expect.is_empty(),
            "test needs some matches to be meaningful"
        );
    }

    #[test]
    fn invalid_epsilon_rejected() {
        let l = MemScan::new(id_score_schema(), vec![]);
        let r = MemScan::new(id_score_schema(), vec![]);
        assert!(
            SimilarityJoin::new(Box::new(l), Box::new(r), Expr::col(1), Expr::col(1), 0.0).is_err()
        );
        let l = MemScan::new(id_score_schema(), vec![]);
        let r = MemScan::new(id_score_schema(), vec![]);
        assert!(SimilarityJoin::new(
            Box::new(l),
            Box::new(r),
            Expr::col(1),
            Expr::col(1),
            f32::NAN
        )
        .is_err());
    }
}
