//! Sort and limit operators.

use super::Operator;
use crate::error::{Error, Result};
use crate::expr::Expr;
use crate::schema::Schema;
use crate::tuple::Tuple;
use crate::value::Value;

/// Sort direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SortOrder {
    /// Smallest first.
    Ascending,
    /// Largest first.
    Descending,
}

/// Materializing sort on one key expression.
///
/// Inference queries use this for "top risk scores first" style output; the
/// sort key may be any scalar expression (int, float, or text).
pub struct Sort<'a> {
    child: Option<Box<dyn Operator + 'a>>,
    key: Expr,
    order: SortOrder,
    schema: Schema,
    sorted: Option<std::vec::IntoIter<Tuple>>,
}

impl<'a> Sort<'a> {
    /// Sort `child` by `key` in `order`.
    pub fn new(child: Box<dyn Operator + 'a>, key: Expr, order: SortOrder) -> Self {
        let schema = child.schema().clone();
        Sort {
            child: Some(child),
            key,
            order,
            schema,
            sorted: None,
        }
    }

    fn run(&mut self) -> Result<Vec<Tuple>> {
        let mut child = self.child.take().expect("run called once");
        let mut rows: Vec<(Tuple, Value)> = Vec::new();
        while let Some(t) = child.next()? {
            let key = self.key.eval(&t)?;
            rows.push((t, key));
        }
        let cmp = |a: &Value, b: &Value| -> Result<std::cmp::Ordering> {
            Ok(match (a, b) {
                (Value::Int(x), Value::Int(y)) => x.cmp(y),
                (Value::Text(x), Value::Text(y)) => x.cmp(y),
                _ => a.as_float()?.total_cmp(&b.as_float()?),
            })
        };
        // Validate comparability once, then sort with the infallible total order.
        if let Some((_, first)) = rows.first() {
            for (_, key) in &rows {
                cmp(first, key)?;
            }
        }
        rows.sort_by(|(_, a), (_, b)| cmp(a, b).unwrap_or(std::cmp::Ordering::Equal));
        if self.order == SortOrder::Descending {
            rows.reverse();
        }
        Ok(rows.into_iter().map(|(t, _)| t).collect())
    }
}

impl Operator for Sort<'_> {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn next(&mut self) -> Result<Option<Tuple>> {
        if self.sorted.is_none() {
            let rows = self.run()?;
            self.sorted = Some(rows.into_iter());
        }
        Ok(self.sorted.as_mut().expect("set above").next())
    }
}

/// Pass through at most `limit` tuples.
pub struct Limit<'a> {
    child: Box<dyn Operator + 'a>,
    remaining: usize,
}

impl<'a> Limit<'a> {
    /// Limit `child` to `limit` rows.
    pub fn new(child: Box<dyn Operator + 'a>, limit: usize) -> Result<Self> {
        if limit == 0 {
            return Err(Error::Plan("LIMIT 0 yields nothing; reject it".into()));
        }
        Ok(Limit {
            child,
            remaining: limit,
        })
    }
}

impl Operator for Limit<'_> {
    fn schema(&self) -> &Schema {
        self.child.schema()
    }

    fn next(&mut self) -> Result<Option<Tuple>> {
        if self.remaining == 0 {
            return Ok(None);
        }
        match self.child.next()? {
            Some(t) => {
                self.remaining -= 1;
                Ok(Some(t))
            }
            None => Ok(None),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::testutil::{id_score_rows, id_score_schema};
    use crate::ops::{collect, MemScan};

    fn ids(rows: &[Tuple]) -> Vec<i64> {
        rows.iter()
            .map(|t| t.value(0).unwrap().as_int().unwrap())
            .collect()
    }

    #[test]
    fn sort_ascending_by_float() {
        let scan = MemScan::new(id_score_schema(), id_score_rows(5, |i| (5 - i) as f32));
        let mut sort = Sort::new(Box::new(scan), Expr::col(1), SortOrder::Ascending);
        let rows = collect(&mut sort).unwrap();
        assert_eq!(ids(&rows), vec![4, 3, 2, 1, 0]);
    }

    #[test]
    fn sort_descending_by_int() {
        let scan = MemScan::new(id_score_schema(), id_score_rows(4, |i| i as f32));
        let mut sort = Sort::new(Box::new(scan), Expr::col(0), SortOrder::Descending);
        let rows = collect(&mut sort).unwrap();
        assert_eq!(ids(&rows), vec![3, 2, 1, 0]);
    }

    #[test]
    fn sort_empty_input() {
        let scan = MemScan::new(id_score_schema(), vec![]);
        let mut sort = Sort::new(Box::new(scan), Expr::col(0), SortOrder::Ascending);
        assert!(collect(&mut sort).unwrap().is_empty());
    }

    #[test]
    fn limit_truncates() {
        let scan = MemScan::new(id_score_schema(), id_score_rows(10, |i| i as f32));
        let mut limit = Limit::new(Box::new(scan), 3).unwrap();
        assert_eq!(collect(&mut limit).unwrap().len(), 3);
    }

    #[test]
    fn limit_larger_than_input() {
        let scan = MemScan::new(id_score_schema(), id_score_rows(2, |i| i as f32));
        let mut limit = Limit::new(Box::new(scan), 100).unwrap();
        assert_eq!(collect(&mut limit).unwrap().len(), 2);
    }

    #[test]
    fn limit_zero_rejected() {
        let scan = MemScan::new(id_score_schema(), vec![]);
        assert!(Limit::new(Box::new(scan), 0).is_err());
    }

    #[test]
    fn top_k_pipeline() {
        // Sort desc + limit = top-k: the "top risk scores" query shape.
        let scan = MemScan::new(
            id_score_schema(),
            id_score_rows(20, |i| ((i * 7) % 20) as f32),
        );
        let sort = Sort::new(Box::new(scan), Expr::col(1), SortOrder::Descending);
        let mut topk = Limit::new(Box::new(sort), 3).unwrap();
        let rows = collect(&mut topk).unwrap();
        let scores: Vec<f32> = rows
            .iter()
            .map(|t| t.value(1).unwrap().as_float().unwrap())
            .collect();
        assert_eq!(scores, vec![19.0, 18.0, 17.0]);
    }
}
