//! A fluent builder over the operator tree.
//!
//! Inference queries nest relational preparation around model invocation
//! (§1); this builder gives the upper layers an ergonomic way to compose
//! scans, filters, joins, aggregates, sorts and limits without hand-wiring
//! boxed operators.
//!
//! ```
//! # use relserve_relational::query::Query;
//! # use relserve_relational::ops::{AggFunc, AggSpec, SortOrder};
//! # use relserve_relational::{Column, DataType, Expr, Schema, Table, Tuple, Value};
//! # use relserve_relational::expr::BinOp;
//! # use relserve_storage::{BufferPool, DiskManager};
//! # use std::sync::Arc;
//! # let pool = Arc::new(BufferPool::new(Arc::new(DiskManager::temp().unwrap()), 8));
//! # let schema = Schema::new(vec![Column::new("id", DataType::Int),
//! #                               Column::new("score", DataType::Float)]);
//! # let table = Table::create(pool, "t", schema);
//! # for i in 0..10 {
//! #     table.insert(&Tuple::new(vec![Value::Int(i), Value::Float(i as f32)])).unwrap();
//! # }
//! let top = Query::scan(&table)
//!     .filter(Expr::bin(BinOp::Ge, Expr::col(1), Expr::lit(3.0f32)))
//!     .sort(Expr::col(1), SortOrder::Descending)
//!     .limit(3)
//!     .unwrap()
//!     .collect()
//!     .unwrap();
//! assert_eq!(top.len(), 3);
//! ```

use crate::error::Result;
use crate::expr::Expr;
use crate::ops::{
    collect, AggSpec, Filter, HashAggregate, HashJoin, Limit, MemScan, Operator, Project, SeqScan,
    SimilarityJoin, Sort, SortOrder,
};
use crate::schema::Schema;
use crate::table::Table;
use crate::tuple::Tuple;

/// A composable query over boxed operators.
pub struct Query<'a> {
    root: Box<dyn Operator + 'a>,
}

impl<'a> Query<'a> {
    /// Start from a table scan.
    pub fn scan(table: &'a Table) -> Self {
        Query {
            root: Box::new(SeqScan::new(table)),
        }
    }

    /// Start from in-memory rows.
    pub fn values(schema: Schema, rows: Vec<Tuple>) -> Self {
        Query {
            root: Box::new(MemScan::new(schema, rows)),
        }
    }

    /// Schema of the current query result.
    pub fn schema(&self) -> &Schema {
        self.root.schema()
    }

    /// Keep rows matching `predicate`.
    pub fn filter(self, predicate: Expr) -> Self {
        Query {
            root: Box::new(Filter::new(self.root, predicate)),
        }
    }

    /// Keep the given columns, in order.
    pub fn project(self, indices: Vec<usize>) -> Result<Self> {
        Ok(Query {
            root: Box::new(Project::new(self.root, indices)?),
        })
    }

    /// Keep the named columns, in order.
    pub fn project_names(self, names: &[&str]) -> Result<Self> {
        Ok(Query {
            root: Box::new(Project::by_names(self.root, names)?),
        })
    }

    /// Hash equi-join with another query.
    pub fn join(
        self,
        right: Query<'a>,
        left_keys: Vec<Expr>,
        right_keys: Vec<Expr>,
    ) -> Result<Self> {
        Ok(Query {
            root: Box::new(HashJoin::new(self.root, right.root, left_keys, right_keys)?),
        })
    }

    /// Similarity (band) join: `|left_key - right_key| ≤ epsilon`.
    pub fn similarity_join(
        self,
        right: Query<'a>,
        left_key: Expr,
        right_key: Expr,
        epsilon: f32,
    ) -> Result<Self> {
        Ok(Query {
            root: Box::new(SimilarityJoin::new(
                self.root, right.root, left_key, right_key, epsilon,
            )?),
        })
    }

    /// Group-by aggregation.
    pub fn aggregate(
        self,
        group_exprs: Vec<Expr>,
        group_names: Vec<String>,
        aggs: Vec<AggSpec>,
    ) -> Result<Self> {
        Ok(Query {
            root: Box::new(HashAggregate::new(
                self.root,
                group_exprs,
                group_names,
                aggs,
            )?),
        })
    }

    /// Sort by one key expression.
    pub fn sort(self, key: Expr, order: SortOrder) -> Self {
        Query {
            root: Box::new(Sort::new(self.root, key, order)),
        }
    }

    /// Keep at most `n` rows.
    pub fn limit(self, n: usize) -> Result<Self> {
        Ok(Query {
            root: Box::new(Limit::new(self.root, n)?),
        })
    }

    /// Execute and collect all rows.
    pub fn collect(mut self) -> Result<Vec<Tuple>> {
        collect(self.root.as_mut())
    }

    /// Execute and count rows without materializing them.
    pub fn count(mut self) -> Result<usize> {
        let mut n = 0;
        while self.root.next()?.is_some() {
            n += 1;
        }
        Ok(n)
    }

    /// Unwrap into the raw operator (for custom executors).
    pub fn into_operator(self) -> Box<dyn Operator + 'a> {
        self.root
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::BinOp;
    use crate::ops::AggFunc;
    use crate::schema::{Column, DataType};
    use crate::value::Value;
    use relserve_storage::{BufferPool, DiskManager};
    use std::sync::Arc;

    fn orders_table() -> Table {
        let pool = Arc::new(BufferPool::new(Arc::new(DiskManager::temp().unwrap()), 8));
        let schema = Schema::new(vec![
            Column::new("customer", DataType::Int),
            Column::new("amount", DataType::Float),
        ]);
        let t = Table::create(pool, "orders", schema);
        for (c, a) in [(1, 10.0), (1, 20.0), (2, 5.0), (2, 50.0), (3, 7.0)] {
            t.insert(&Tuple::new(vec![Value::Int(c), Value::Float(a)]))
                .unwrap();
        }
        t
    }

    #[test]
    fn filter_project_pipeline() {
        let t = orders_table();
        let rows = Query::scan(&t)
            .filter(Expr::bin(BinOp::Gt, Expr::col(1), Expr::lit(9.0f32)))
            .project_names(&["amount"])
            .unwrap()
            .collect()
            .unwrap();
        assert_eq!(rows.len(), 3);
        assert!(rows.iter().all(|r| r.arity() == 1));
    }

    #[test]
    fn group_by_total_per_customer() {
        let t = orders_table();
        let rows = Query::scan(&t)
            .aggregate(
                vec![Expr::col(0)],
                vec!["customer".into()],
                vec![AggSpec::new(AggFunc::Sum, Expr::col(1), "total")],
            )
            .unwrap()
            .sort(Expr::col(1), SortOrder::Descending)
            .collect()
            .unwrap();
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].value(1).unwrap(), &Value::Float(55.0)); // customer 2
    }

    #[test]
    fn join_and_count() {
        let t = orders_table();
        let u = orders_table();
        let n = Query::scan(&t)
            .join(Query::scan(&u), vec![Expr::col(0)], vec![Expr::col(0)])
            .unwrap()
            .count()
            .unwrap();
        // Per-customer order counts 2,2,1 → join sizes 4+4+1.
        assert_eq!(n, 9);
    }

    #[test]
    fn top_k_query() {
        let t = orders_table();
        let rows = Query::scan(&t)
            .sort(Expr::col(1), SortOrder::Descending)
            .limit(2)
            .unwrap()
            .collect()
            .unwrap();
        assert_eq!(rows[0].value(1).unwrap(), &Value::Float(50.0));
        assert_eq!(rows[1].value(1).unwrap(), &Value::Float(20.0));
    }

    #[test]
    fn similarity_join_via_builder() {
        let schema = Schema::new(vec![Column::new("k", DataType::Float)]);
        let left = Query::values(
            schema.clone(),
            vec![
                Tuple::new(vec![Value::Float(1.0)]),
                Tuple::new(vec![Value::Float(5.0)]),
            ],
        );
        let right = Query::values(schema, vec![Tuple::new(vec![Value::Float(1.05)])]);
        let rows = left
            .similarity_join(right, Expr::col(0), Expr::col(0), 0.1)
            .unwrap()
            .collect()
            .unwrap();
        assert_eq!(rows.len(), 1);
    }
}
