//! Column and schema descriptors.

use crate::error::{Error, Result};
use crate::value::Value;

/// Data type of a column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    /// 64-bit signed integer.
    Int,
    /// 32-bit float.
    Float,
    /// UTF-8 text.
    Text,
    /// Dense f32 vector.
    Vector,
    /// Raw bytes.
    Blob,
}

/// One column: a name and a type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Column {
    /// Column name (unique within a schema).
    pub name: String,
    /// Column type.
    pub dtype: DataType,
}

impl Column {
    /// Shorthand constructor.
    pub fn new(name: impl Into<String>, dtype: DataType) -> Self {
        Column {
            name: name.into(),
            dtype,
        }
    }
}

/// An ordered list of columns.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Schema {
    columns: Vec<Column>,
}

impl Schema {
    /// Build a schema from columns.
    pub fn new(columns: Vec<Column>) -> Self {
        Schema { columns }
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// The columns in order.
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// Column at `i`.
    pub fn column(&self, i: usize) -> Result<&Column> {
        self.columns
            .get(i)
            .ok_or_else(|| Error::UnknownColumn(format!("#{i}")))
    }

    /// Index of the column named `name`.
    pub fn index_of(&self, name: &str) -> Result<usize> {
        self.columns
            .iter()
            .position(|c| c.name == name)
            .ok_or_else(|| Error::UnknownColumn(name.to_string()))
    }

    /// Validate that `values` conforms to this schema.
    pub fn check(&self, values: &[Value]) -> Result<()> {
        if values.len() != self.arity() {
            return Err(Error::SchemaMismatch(format!(
                "tuple has {} values, schema has {} columns",
                values.len(),
                self.arity()
            )));
        }
        for (v, c) in values.iter().zip(&self.columns) {
            if v.dtype() != c.dtype {
                return Err(Error::SchemaMismatch(format!(
                    "column `{}` expects {:?}, got {:?}",
                    c.name,
                    c.dtype,
                    v.dtype()
                )));
            }
        }
        Ok(())
    }

    /// Schema of `self ++ other` (join output), prefixing clashing names.
    pub fn join(&self, other: &Schema) -> Schema {
        let mut columns = self.columns.clone();
        for c in &other.columns {
            let name = if columns.iter().any(|e| e.name == c.name) {
                format!("r.{}", c.name)
            } else {
                c.name.clone()
            };
            columns.push(Column::new(name, c.dtype));
        }
        Schema { columns }
    }

    /// Schema consisting of the given columns of `self`, in order.
    pub fn project(&self, indices: &[usize]) -> Result<Schema> {
        let mut columns = Vec::with_capacity(indices.len());
        for &i in indices {
            columns.push(self.column(i)?.clone());
        }
        Ok(Schema { columns })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Schema {
        Schema::new(vec![
            Column::new("id", DataType::Int),
            Column::new("amount", DataType::Float),
            Column::new("features", DataType::Vector),
        ])
    }

    #[test]
    fn index_lookup() {
        let s = sample();
        assert_eq!(s.index_of("amount").unwrap(), 1);
        assert!(s.index_of("missing").is_err());
        assert_eq!(s.arity(), 3);
    }

    #[test]
    fn check_validates_arity_and_types() {
        let s = sample();
        assert!(s
            .check(&[Value::Int(1), Value::Float(2.0), Value::Vector(vec![])])
            .is_ok());
        assert!(s.check(&[Value::Int(1)]).is_err());
        assert!(s
            .check(&[Value::Float(1.0), Value::Float(2.0), Value::Vector(vec![])])
            .is_err());
    }

    #[test]
    fn join_prefixes_duplicates() {
        let a = sample();
        let b = Schema::new(vec![
            Column::new("id", DataType::Int),
            Column::new("label", DataType::Int),
        ]);
        let j = a.join(&b);
        assert_eq!(j.arity(), 5);
        assert_eq!(j.column(3).unwrap().name, "r.id");
        assert_eq!(j.column(4).unwrap().name, "label");
    }

    #[test]
    fn project_selects_columns() {
        let s = sample();
        let p = s.project(&[2, 0]).unwrap();
        assert_eq!(p.column(0).unwrap().name, "features");
        assert_eq!(p.column(1).unwrap().name, "id");
        assert!(s.project(&[9]).is_err());
    }
}
