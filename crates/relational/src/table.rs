//! Schema-typed tables over the storage heap.

use crate::error::Result;
use crate::schema::Schema;
use crate::tuple::Tuple;
use relserve_storage::{BufferPool, TableHeap, TupleId};
use std::sync::Arc;

/// A named, schema-typed relational table stored in heap pages.
pub struct Table {
    name: String,
    schema: Schema,
    heap: TableHeap,
}

impl Table {
    /// Create an empty table on `pool`.
    pub fn create(pool: Arc<BufferPool>, name: impl Into<String>, schema: Schema) -> Self {
        Table {
            name: name.into(),
            schema,
            heap: TableHeap::new(pool),
        }
    }

    /// The table's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The table's schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The underlying heap.
    pub fn heap(&self) -> &TableHeap {
        &self.heap
    }

    /// Number of tuples inserted.
    pub fn cardinality(&self) -> u64 {
        self.heap.tuple_count()
    }

    /// Insert a tuple after validating it against the schema.
    pub fn insert(&self, tuple: &Tuple) -> Result<TupleId> {
        self.schema.check(tuple.values())?;
        Ok(self.heap.insert(&tuple.encode())?)
    }

    /// Read one tuple by id.
    pub fn get(&self, id: TupleId) -> Result<Tuple> {
        Tuple::decode(&self.heap.get(id)?)
    }

    /// Iterate all live tuples.
    pub fn scan(&self) -> impl Iterator<Item = Result<Tuple>> + '_ {
        self.heap.scan().map(|r| {
            let (_, bytes) = r?;
            Tuple::decode(&bytes)
        })
    }
}

impl std::fmt::Debug for Table {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Table")
            .field("name", &self.name)
            .field("arity", &self.schema.arity())
            .field("cardinality", &self.cardinality())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Column, DataType};
    use crate::value::Value;
    use relserve_storage::DiskManager;

    fn pool(frames: usize) -> Arc<BufferPool> {
        Arc::new(BufferPool::new(
            Arc::new(DiskManager::temp().unwrap()),
            frames,
        ))
    }

    fn tx_schema() -> Schema {
        Schema::new(vec![
            Column::new("id", DataType::Int),
            Column::new("features", DataType::Vector),
        ])
    }

    #[test]
    fn insert_scan_roundtrip() {
        let t = Table::create(pool(4), "tx", tx_schema());
        for i in 0..50 {
            t.insert(&Tuple::new(vec![
                Value::Int(i),
                Value::Vector(vec![i as f32; 28]),
            ]))
            .unwrap();
        }
        let rows: Vec<Tuple> = t.scan().map(|r| r.unwrap()).collect();
        assert_eq!(rows.len(), 50);
        assert_eq!(rows[7].value(0).unwrap(), &Value::Int(7));
        assert_eq!(rows[7].value(1).unwrap().as_vector().unwrap()[0], 7.0);
    }

    #[test]
    fn insert_validates_schema() {
        let t = Table::create(pool(4), "tx", tx_schema());
        assert!(t.insert(&Tuple::new(vec![Value::Int(1)])).is_err());
        assert!(t
            .insert(&Tuple::new(vec![Value::Float(1.0), Value::Vector(vec![])]))
            .is_err());
        assert_eq!(t.cardinality(), 0);
    }

    #[test]
    fn get_by_id() {
        let t = Table::create(pool(4), "tx", tx_schema());
        let id = t
            .insert(&Tuple::new(vec![Value::Int(42), Value::Vector(vec![1.0])]))
            .unwrap();
        assert_eq!(t.get(id).unwrap().value(0).unwrap(), &Value::Int(42));
    }

    #[test]
    fn scan_spills_through_small_pool() {
        let t = Table::create(pool(2), "wide", tx_schema());
        // 28-feature rows are small; write enough to overflow a 2-frame pool.
        for i in 0..3000 {
            t.insert(&Tuple::new(vec![
                Value::Int(i),
                Value::Vector(vec![0.5; 28]),
            ]))
            .unwrap();
        }
        assert_eq!(t.scan().count(), 3000);
        assert!(t.heap().pool().stats().evictions > 0);
    }
}
