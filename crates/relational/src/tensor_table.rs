//! Tensor relations: tensors stored as block collections in the RDBMS.
//!
//! A [`TensorTable`] is the storage form of the relation-centric
//! architecture (§1, §7.1): a matrix is a relation of tuples
//! `(row_block, col_block, block_payload)`, with payloads kept in multi-page
//! blobs behind the buffer pool. The two central relational rewrites live
//! here:
//!
//! * [`TensorTable::matmul`] — `A × B` as a **join** of A's blocks with B's
//!   blocks on the inner block coordinate followed by an **aggregation**
//!   (block sum) on the output coordinate.
//! * [`TensorTable::matmul_bt`] — `A × Bᵀ` with B stored `[n, k]`, the
//!   `X × Wᵀ` layout inference uses.
//!
//! Both stream A one block-row at a time and flush finished output blocks
//! immediately, so the working set is one block-row of partial sums — never
//! the whole tensor. That is precisely why this path avoids the OOM errors
//! of Table 3.

use crate::error::{Error, Result};
use bytes::{Buf, BufMut};
use relserve_storage::{BlobId, BlobStore, BufferPool};
use relserve_tensor::parallel::Parallelism;
use relserve_tensor::quant::{self, QuantizedTensor};
use relserve_tensor::{BlockCoord, BlockedTensor, BlockingSpec, Tensor};
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

/// Leading magic of an int8 quantized block payload. f32 block payloads
/// start with the block's row count, which never plausibly reaches this
/// value, so the two encodings are distinguishable from the first word.
const QBLOCK_MAGIC: u32 = 0x5138_424B; // "Q8BK"

/// Execution statistics of one relational tensor operation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TensorOpStats {
    /// Block pairs joined (partial products computed).
    pub joins: u64,
    /// Output blocks aggregated and written.
    pub blocks_out: u64,
    /// Block payload bytes read from the store.
    pub bytes_read: u64,
    /// Block payload bytes written to the store.
    pub bytes_written: u64,
}

impl TensorOpStats {
    /// Fold another worker's accumulator into this one.
    pub fn merge(&mut self, other: TensorOpStats) {
        self.joins += other.joins;
        self.blocks_out += other.blocks_out;
        self.bytes_read += other.bytes_read;
        self.bytes_written += other.bytes_written;
    }
}

/// A matrix stored as a relation of tensor blocks.
pub struct TensorTable {
    name: String,
    rows: usize,
    cols: usize,
    spec: BlockingSpec,
    blobs: BlobStore,
    index: BTreeMap<BlockCoord, BlobId>,
    /// Whether this relation stores int8 quantized block payloads.
    quantized: bool,
}

impl TensorTable {
    /// An empty tensor relation for a `rows × cols` matrix.
    pub fn create(
        pool: Arc<BufferPool>,
        name: impl Into<String>,
        rows: usize,
        cols: usize,
        spec: BlockingSpec,
    ) -> Self {
        TensorTable {
            name: name.into(),
            rows,
            cols,
            spec,
            blobs: BlobStore::new(pool),
            index: BTreeMap::new(),
            quantized: false,
        }
    }

    /// Materialize an in-memory blocked tensor into a tensor relation.
    pub fn from_blocked(
        pool: Arc<BufferPool>,
        name: impl Into<String>,
        blocked: &BlockedTensor,
    ) -> Result<Self> {
        let mut table = Self::create(pool, name, blocked.rows(), blocked.cols(), blocked.spec());
        for (coord, block) in blocked.iter_blocks() {
            table.insert_block(coord, block)?;
        }
        Ok(table)
    }

    /// Chunk a dense matrix and store it.
    pub fn from_dense(
        pool: Arc<BufferPool>,
        name: impl Into<String>,
        dense: &Tensor,
        spec: BlockingSpec,
    ) -> Result<Self> {
        let blocked = BlockedTensor::from_dense(dense, spec)?;
        Self::from_blocked(pool, name, &blocked)
    }

    /// Chunk an int8 quantized matrix into quantized block payloads.
    ///
    /// The per-output-channel scales slice with the rows: block `(rb, cb)`
    /// carries levels `data[r0..r1][c0..c1]` plus `scales[r0..r1]`, so each
    /// stored block is itself a self-contained [`QuantizedTensor`] whose
    /// dequantization equals the same chunk of the full dequantized matrix.
    /// This is the storage form of an `@int8` model version's weights: the
    /// block join reads these payloads directly — roughly 4× fewer bytes
    /// than f32 blocks — and feeds them to the int8 micro-kernels without
    /// ever materializing f32 weights.
    pub fn from_quantized(
        pool: Arc<BufferPool>,
        name: impl Into<String>,
        q: &QuantizedTensor,
        spec: BlockingSpec,
    ) -> Result<Self> {
        let (rows, cols) = (q.rows(), q.cols());
        let mut table = Self::create(pool, name, rows, cols, spec);
        for rb in 0..spec.row_blocks(rows) {
            let r0 = rb * spec.block_rows;
            let r1 = (r0 + spec.block_rows).min(rows);
            for cb in 0..spec.col_blocks(cols) {
                let c0 = cb * spec.block_cols;
                let c1 = (c0 + spec.block_cols).min(cols);
                let mut data = Vec::with_capacity((r1 - r0) * (c1 - c0));
                for r in r0..r1 {
                    data.extend_from_slice(&q.data()[r * cols + c0..r * cols + c1]);
                }
                let block = QuantizedTensor::from_parts(
                    r1 - r0,
                    c1 - c0,
                    data,
                    q.scales()[r0..r1].to_vec(),
                )
                .map_err(Error::Tensor)?;
                table.insert_qblock(BlockCoord { row: rb, col: cb }, &block)?;
            }
        }
        Ok(table)
    }

    /// The relation's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Logical matrix row count.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Logical matrix column count.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The blocking spec.
    pub fn spec(&self) -> BlockingSpec {
        self.spec
    }

    /// Number of stored blocks.
    pub fn num_blocks(&self) -> usize {
        self.index.len()
    }

    /// Number of block rows.
    pub fn row_blocks(&self) -> usize {
        self.spec.row_blocks(self.rows)
    }

    /// Number of block columns.
    pub fn col_blocks(&self) -> usize {
        self.spec.col_blocks(self.cols)
    }

    /// Payload bytes stored.
    pub fn bytes_stored(&self) -> u64 {
        self.blobs.bytes_stored()
    }

    /// The buffer pool backing this relation.
    pub fn pool(&self) -> &Arc<BufferPool> {
        self.blobs.pool()
    }

    /// Coordinates of stored blocks, `(row, col)` ordered.
    pub fn coords(&self) -> impl Iterator<Item = BlockCoord> + '_ {
        self.index.keys().copied()
    }

    fn encode_block(block: &Tensor) -> Result<Vec<u8>> {
        let (r, c) = block.shape().as_matrix()?;
        let mut buf = Vec::with_capacity(8 + block.num_bytes());
        buf.put_u32_le(r as u32);
        buf.put_u32_le(c as u32);
        for v in block.data() {
            buf.put_f32_le(*v);
        }
        Ok(buf)
    }

    fn decode_block(mut bytes: &[u8]) -> Result<Tensor> {
        if bytes.remaining() < 8 {
            return Err(Error::Codec("block shorter than header".into()));
        }
        let r = bytes.get_u32_le() as usize;
        let c = bytes.get_u32_le() as usize;
        if bytes.remaining() != r * c * relserve_tensor::ELEM_BYTES {
            return Err(Error::Codec(format!(
                "block body {} B, header implies {} B",
                bytes.remaining(),
                r * c * relserve_tensor::ELEM_BYTES
            )));
        }
        let mut data = Vec::with_capacity(r * c);
        for _ in 0..r * c {
            data.push(bytes.get_f32_le());
        }
        Ok(Tensor::from_vec([r, c], data)?)
    }

    /// Serialize an int8 quantized block:
    /// `[magic u32][rows u32][cols u32][scales f32×rows][levels i8×rows·cols]`
    /// — `rows·cols + 4·rows + 12` bytes, vs `4·rows·cols + 8` for f32.
    /// Row sums are derived on decode, not stored.
    fn encode_qblock(block: &QuantizedTensor) -> Vec<u8> {
        let (r, c) = (block.rows(), block.cols());
        let mut buf = Vec::with_capacity(12 + 4 * r + r * c);
        buf.put_u32_le(QBLOCK_MAGIC);
        buf.put_u32_le(r as u32);
        buf.put_u32_le(c as u32);
        for s in block.scales() {
            buf.put_f32_le(*s);
        }
        for q in block.data() {
            buf.put_i8(*q);
        }
        buf
    }

    fn decode_qblock(mut bytes: &[u8]) -> Result<QuantizedTensor> {
        if bytes.remaining() < 12 || bytes.get_u32_le() != QBLOCK_MAGIC {
            return Err(Error::Codec(
                "payload is not an int8 quantized block".into(),
            ));
        }
        let r = bytes.get_u32_le() as usize;
        let c = bytes.get_u32_le() as usize;
        if bytes.remaining() != 4 * r + r * c {
            return Err(Error::Codec(format!(
                "quantized block body {} B, header implies {} B",
                bytes.remaining(),
                4 * r + r * c
            )));
        }
        let mut scales = Vec::with_capacity(r);
        for _ in 0..r {
            scales.push(bytes.get_f32_le());
        }
        let mut data = Vec::with_capacity(r * c);
        for _ in 0..r * c {
            data.push(bytes.get_i8());
        }
        Ok(QuantizedTensor::from_parts(r, c, data, scales)?)
    }

    fn payload_is_qblock(mut bytes: &[u8]) -> bool {
        bytes.len() >= 4 && bytes.get_u32_le() == QBLOCK_MAGIC
    }

    /// Whether this relation stores int8 quantized block payloads.
    pub fn is_quantized(&self) -> bool {
        self.quantized
    }

    /// Insert (or replace) the block at `coord`.
    pub fn insert_block(&mut self, coord: BlockCoord, block: &Tensor) -> Result<()> {
        let payload = Self::encode_block(block)?;
        let id = self.blobs.put(&payload)?;
        if let Some(old) = self.index.insert(coord, id) {
            self.blobs.delete(old)?;
        }
        Ok(())
    }

    /// Insert (or replace) an int8 quantized block at `coord`; marks the
    /// relation as quantized.
    pub fn insert_qblock(&mut self, coord: BlockCoord, block: &QuantizedTensor) -> Result<()> {
        let payload = Self::encode_qblock(block);
        let id = self.blobs.put(&payload)?;
        if let Some(old) = self.index.insert(coord, id) {
            self.blobs.delete(old)?;
        }
        self.quantized = true;
        Ok(())
    }

    fn blob_for(&self, coord: BlockCoord) -> Result<&BlobId> {
        Ok(self
            .index
            .get(&coord)
            .ok_or(relserve_tensor::Error::MissingBlock {
                row: coord.row,
                col: coord.col,
            })?)
    }

    /// Fetch the block at `coord` (reads through the buffer pool). A
    /// quantized payload is transparently dequantized so f32 consumers
    /// (`to_dense`, elementwise maps) keep working on quantized relations.
    pub fn get_block(&self, coord: BlockCoord) -> Result<Tensor> {
        let payload = self.blobs.get(*self.blob_for(coord)?)?;
        if Self::payload_is_qblock(&payload) {
            return Ok(Self::decode_qblock(&payload)?.dequantize());
        }
        Self::decode_block(&payload)
    }

    /// Fetch the int8 quantized block at `coord`; errors if the stored
    /// payload is an f32 block.
    pub fn get_qblock(&self, coord: BlockCoord) -> Result<QuantizedTensor> {
        Self::decode_qblock(&self.blobs.get(*self.blob_for(coord)?)?)
    }

    /// Reassemble the full dense matrix (allocates it whole; only for
    /// results known to fit, e.g. final logits).
    pub fn to_dense(&self) -> Result<Tensor> {
        let mut blocked = BlockedTensor::empty(self.rows, self.cols, self.spec);
        for coord in self.index.keys() {
            blocked.insert_block(*coord, self.get_block(*coord)?)?;
        }
        Ok(blocked.to_dense()?)
    }

    /// Relation-centric `C = A × B`: join on `a.col_blk == b.row_blk`,
    /// aggregate partial products by output coordinate.
    ///
    /// Streams one block-row of `A` at a time; peak memory is one block-row
    /// of output partials plus two operand blocks.
    pub fn matmul(
        &self,
        other: &TensorTable,
        out_name: impl Into<String>,
    ) -> Result<(TensorTable, TensorOpStats)> {
        if self.cols != other.rows {
            return Err(Error::Tensor(relserve_tensor::Error::ShapeMismatch {
                op: "relational matmul",
                lhs: vec![self.rows, self.cols],
                rhs: vec![other.rows, other.cols],
            }));
        }
        if self.spec.block_cols != other.spec.block_rows {
            return Err(Error::Plan(format!(
                "inner blockings differ: {} vs {}",
                self.spec.block_cols, other.spec.block_rows
            )));
        }
        let out_spec = BlockingSpec {
            block_rows: self.spec.block_rows,
            block_cols: other.spec.block_cols,
        };
        let mut out = TensorTable::create(
            self.pool().clone(),
            out_name,
            self.rows,
            other.cols,
            out_spec,
        );
        let mut stats = TensorOpStats::default();
        // Join index over B: inner coordinate → B coords sharing it.
        let mut b_by_row: BTreeMap<usize, Vec<BlockCoord>> = BTreeMap::new();
        for coord in other.coords() {
            b_by_row.entry(coord.row).or_default().push(coord);
        }
        self.for_each_block_row(|block_row, a_blocks| {
            let mut partials: BTreeMap<usize, Tensor> = BTreeMap::new();
            for (a_coord, a_block) in a_blocks {
                stats.bytes_read += a_block.num_bytes() as u64;
                let Some(b_coords) = b_by_row.get(&a_coord.col) else {
                    continue;
                };
                for b_coord in b_coords {
                    let b_block = other.get_block(*b_coord)?;
                    stats.bytes_read += b_block.num_bytes() as u64;
                    let partial = relserve_tensor::matmul::matmul(a_block, &b_block)?;
                    stats.joins += 1;
                    match partials.get_mut(&b_coord.col) {
                        Some(sum) => relserve_tensor::ops::axpy(sum, &partial, 1.0)?,
                        None => {
                            partials.insert(b_coord.col, partial);
                        }
                    }
                }
            }
            for (out_col, block) in partials {
                stats.blocks_out += 1;
                stats.bytes_written += block.num_bytes() as u64;
                out.insert_block(
                    BlockCoord {
                        row: block_row,
                        col: out_col,
                    },
                    &block,
                )?;
            }
            Ok(())
        })?;
        Ok((out, stats))
    }

    /// Relation-centric `C = A × Bᵀ` with `B` stored `[n, k]` — join on the
    /// shared `k` block coordinate (`a.col_blk == b.col_blk`), aggregate by
    /// `(a.row_blk, b.row_blk)`. Single-threaded; see
    /// [`TensorTable::matmul_bt_parallel`].
    pub fn matmul_bt(
        &self,
        other: &TensorTable,
        out_name: impl Into<String>,
    ) -> Result<(TensorTable, TensorOpStats)> {
        self.matmul_bt_parallel(other, out_name, &Parallelism::serial())
    }

    /// Parallel relation-centric `C = A × Bᵀ`: A's block-rows are split into
    /// up to `par.threads()` contiguous stripes and the stripes run as
    /// tasks on the caller's kernel-pool grant. Each worker owns a disjoint
    /// set of *output* block-rows, so workers only contend on the
    /// (internally locked) buffer pool for reads and on the output table's
    /// insert lock when flushing a finished block-row; stats accumulate per
    /// worker and merge at the end. Peak memory is one block-row of partials
    /// per worker. With a serial grant this is the serial streaming join.
    pub fn matmul_bt_parallel(
        &self,
        other: &TensorTable,
        out_name: impl Into<String>,
        par: &Parallelism,
    ) -> Result<(TensorTable, TensorOpStats)> {
        if self.cols != other.cols {
            return Err(Error::Tensor(relserve_tensor::Error::ShapeMismatch {
                op: "relational matmul_bt",
                lhs: vec![self.rows, self.cols],
                rhs: vec![other.rows, other.cols],
            }));
        }
        if self.spec.block_cols != other.spec.block_cols {
            return Err(Error::Plan(format!(
                "inner blockings differ: {} vs {}",
                self.spec.block_cols, other.spec.block_cols
            )));
        }
        let out_spec = BlockingSpec {
            block_rows: self.spec.block_rows,
            block_cols: other.spec.block_rows,
        };
        let mut out = TensorTable::create(
            self.pool().clone(),
            out_name,
            self.rows,
            other.rows,
            out_spec,
        );
        // Join index over B: shared k coordinate → B coords carrying it.
        let mut b_by_col: BTreeMap<usize, Vec<BlockCoord>> = BTreeMap::new();
        for coord in other.coords() {
            b_by_col.entry(coord.col).or_default().push(coord);
        }
        // A's coords grouped by block-row (index iteration is row-major).
        let mut row_groups: Vec<(usize, Vec<BlockCoord>)> = Vec::new();
        for coord in self.coords() {
            match row_groups.last_mut() {
                Some((row, group)) if *row == coord.row => group.push(coord),
                _ => row_groups.push((coord.row, vec![coord])),
            }
        }
        let threads = par.threads().clamp(1, row_groups.len().max(1));
        let per_stripe = row_groups.len().div_ceil(threads).max(1);
        let stripes: Vec<&[(usize, Vec<BlockCoord>)]> = row_groups.chunks(per_stripe).collect();
        let out_lock = Mutex::new(&mut out);
        let results: Vec<Mutex<Option<Result<TensorOpStats>>>> =
            stripes.iter().map(|_| Mutex::new(None)).collect();
        par.with_threads(threads).run_stripes(stripes.len(), &|t| {
            let res = self.matmul_bt_stripe(other, &b_by_col, stripes[t], &out_lock);
            *results[t].lock().expect("stripe result lock") = Some(res);
        });
        let mut stats = TensorOpStats::default();
        for slot in results {
            let worker_stats = slot
                .into_inner()
                .expect("stripe result lock")
                .expect("stripe task did not run")?;
            stats.merge(worker_stats);
        }
        Ok((out, stats))
    }

    /// One worker's share of the block-row join: compute and flush every
    /// block-row in `stripe`, returning this worker's stats accumulator.
    fn matmul_bt_stripe(
        &self,
        other: &TensorTable,
        b_by_col: &BTreeMap<usize, Vec<BlockCoord>>,
        stripe: &[(usize, Vec<BlockCoord>)],
        out: &Mutex<&mut TensorTable>,
    ) -> Result<TensorOpStats> {
        let mut stats = TensorOpStats::default();
        for (block_row, a_coords) in stripe {
            let mut partials: BTreeMap<usize, Tensor> = BTreeMap::new();
            for a_coord in a_coords {
                let a_block = self.get_block(*a_coord)?;
                stats.bytes_read += a_block.num_bytes() as u64;
                let Some(b_coords) = b_by_col.get(&a_coord.col) else {
                    continue;
                };
                for b_coord in b_coords {
                    let b_block = other.get_block(*b_coord)?;
                    stats.bytes_read += b_block.num_bytes() as u64;
                    let partial = relserve_tensor::matmul::matmul_bt(&a_block, &b_block)?;
                    stats.joins += 1;
                    match partials.get_mut(&b_coord.row) {
                        Some(sum) => relserve_tensor::ops::axpy(sum, &partial, 1.0)?,
                        None => {
                            partials.insert(b_coord.row, partial);
                        }
                    }
                }
            }
            let mut guard = out.lock().expect("output table lock");
            for (out_col, block) in partials {
                stats.blocks_out += 1;
                stats.bytes_written += block.num_bytes() as u64;
                guard.insert_block(
                    BlockCoord {
                        row: *block_row,
                        col: out_col,
                    },
                    &block,
                )?;
            }
        }
        Ok(stats)
    }

    /// Relation-centric **quantized** `C = X × Wᵀ` with `W` stored as int8
    /// block payloads (see [`TensorTable::from_quantized`]). Single-threaded
    /// form of [`TensorTable::matmul_bt_quant_parallel`].
    pub fn matmul_bt_quant(
        &self,
        other: &TensorTable,
        out_name: impl Into<String>,
    ) -> Result<(TensorTable, TensorOpStats)> {
        self.matmul_bt_quant_parallel(other, out_name, &Parallelism::serial())
    }

    /// Parallel relation-centric quantized `C = X × Wᵀ`: the same block-row
    /// join as [`TensorTable::matmul_bt_parallel`], but each weight block is
    /// read as its stored i8 payload (≈4× fewer bytes through the buffer
    /// pool) and multiplied by the int8 micro-kernels. Each activation block
    /// is quantized to 7-bit levels **once per block-row sweep** and reused
    /// across every matching weight block; each partial product dequantizes
    /// into f32 at the kernel epilogue, and the aggregation over the shared
    /// `k` coordinate stays in f32 — so per-k-block activation scales never
    /// have to agree across blocks.
    pub fn matmul_bt_quant_parallel(
        &self,
        other: &TensorTable,
        out_name: impl Into<String>,
        par: &Parallelism,
    ) -> Result<(TensorTable, TensorOpStats)> {
        if self.cols != other.cols {
            return Err(Error::Tensor(relserve_tensor::Error::ShapeMismatch {
                op: "relational matmul_bt_quant",
                lhs: vec![self.rows, self.cols],
                rhs: vec![other.rows, other.cols],
            }));
        }
        if self.spec.block_cols != other.spec.block_cols {
            return Err(Error::Plan(format!(
                "inner blockings differ: {} vs {}",
                self.spec.block_cols, other.spec.block_cols
            )));
        }
        if !other.quantized {
            return Err(Error::Plan(format!(
                "matmul_bt_quant requires an int8 weight relation, but {:?} stores f32 blocks",
                other.name
            )));
        }
        let out_spec = BlockingSpec {
            block_rows: self.spec.block_rows,
            block_cols: other.spec.block_rows,
        };
        let mut out = TensorTable::create(
            self.pool().clone(),
            out_name,
            self.rows,
            other.rows,
            out_spec,
        );
        let mut b_by_col: BTreeMap<usize, Vec<BlockCoord>> = BTreeMap::new();
        for coord in other.coords() {
            b_by_col.entry(coord.col).or_default().push(coord);
        }
        let mut row_groups: Vec<(usize, Vec<BlockCoord>)> = Vec::new();
        for coord in self.coords() {
            match row_groups.last_mut() {
                Some((row, group)) if *row == coord.row => group.push(coord),
                _ => row_groups.push((coord.row, vec![coord])),
            }
        }
        let threads = par.threads().clamp(1, row_groups.len().max(1));
        let per_stripe = row_groups.len().div_ceil(threads).max(1);
        let stripes: Vec<&[(usize, Vec<BlockCoord>)]> = row_groups.chunks(per_stripe).collect();
        let out_lock = Mutex::new(&mut out);
        let results: Vec<Mutex<Option<Result<TensorOpStats>>>> =
            stripes.iter().map(|_| Mutex::new(None)).collect();
        par.with_threads(threads).run_stripes(stripes.len(), &|t| {
            let res = self.matmul_bt_quant_stripe(other, &b_by_col, stripes[t], &out_lock);
            *results[t].lock().expect("stripe result lock") = Some(res);
        });
        let mut stats = TensorOpStats::default();
        for slot in results {
            let worker_stats = slot
                .into_inner()
                .expect("stripe result lock")
                .expect("stripe task did not run")?;
            stats.merge(worker_stats);
        }
        Ok((out, stats))
    }

    /// One worker's share of the quantized block-row join.
    fn matmul_bt_quant_stripe(
        &self,
        other: &TensorTable,
        b_by_col: &BTreeMap<usize, Vec<BlockCoord>>,
        stripe: &[(usize, Vec<BlockCoord>)],
        out: &Mutex<&mut TensorTable>,
    ) -> Result<TensorOpStats> {
        let mut stats = TensorOpStats::default();
        for (block_row, a_coords) in stripe {
            let mut partials: BTreeMap<usize, Tensor> = BTreeMap::new();
            for a_coord in a_coords {
                let a_block = self.get_block(*a_coord)?;
                stats.bytes_read += a_block.num_bytes() as u64;
                let Some(b_coords) = b_by_col.get(&a_coord.col) else {
                    continue;
                };
                // Quantize this activation block once; every weight block
                // sharing its k coordinate reuses the levels.
                let aq = quant::quantize_activations(&a_block)?;
                for b_coord in b_coords {
                    let b_block = other.get_qblock(*b_coord)?;
                    // Count the bytes the i8 payload actually occupies —
                    // this is the 4× traffic reduction the step-down buys.
                    stats.bytes_read += b_block.storage_bytes() as u64;
                    let partial =
                        quant::qmatmul_prequantized(&aq, &b_block, None, &Parallelism::serial())?;
                    stats.joins += 1;
                    match partials.get_mut(&b_coord.row) {
                        Some(sum) => relserve_tensor::ops::axpy(sum, &partial, 1.0)?,
                        None => {
                            partials.insert(b_coord.row, partial);
                        }
                    }
                }
            }
            let mut guard = out.lock().expect("output table lock");
            for (out_col, block) in partials {
                stats.blocks_out += 1;
                stats.bytes_written += block.num_bytes() as u64;
                guard.insert_block(
                    BlockCoord {
                        row: *block_row,
                        col: out_col,
                    },
                    &block,
                )?;
            }
        }
        Ok(stats)
    }

    /// Apply `f` to every stored block, producing a new relation (the
    /// relation-centric form of an elementwise operator such as relu).
    pub fn map(&self, out_name: impl Into<String>, f: impl Fn(f32) -> f32) -> Result<TensorTable> {
        let mut out = TensorTable::create(
            self.pool().clone(),
            out_name,
            self.rows,
            self.cols,
            self.spec,
        );
        for coord in self.coords() {
            let mut block = self.get_block(coord)?;
            relserve_tensor::ops::map_inplace(&mut block, &f);
            out.insert_block(coord, &block)?;
        }
        Ok(out)
    }

    /// Apply a slice-level kernel to every stored block, producing a new
    /// relation. Unlike [`TensorTable::map`], `f` sees each block payload as
    /// one contiguous slice, so callers can hand it a vectorized kernel from
    /// the `relserve_tensor::simd` dispatch table (e.g. the SIMD relu)
    /// instead of a per-element closure.
    pub fn map_blocks(
        &self,
        out_name: impl Into<String>,
        f: impl Fn(&mut [f32]),
    ) -> Result<TensorTable> {
        let mut out = TensorTable::create(
            self.pool().clone(),
            out_name,
            self.rows,
            self.cols,
            self.spec,
        );
        for coord in self.coords() {
            let mut block = self.get_block(coord)?;
            f(block.data_mut());
            out.insert_block(coord, &block)?;
        }
        Ok(out)
    }

    /// Add a bias row-vector (length = logical cols) to every row, blockwise.
    pub fn add_bias(&self, out_name: impl Into<String>, bias: &Tensor) -> Result<TensorTable> {
        if bias.len() != self.cols {
            return Err(Error::Tensor(relserve_tensor::Error::ShapeMismatch {
                op: "relational add_bias",
                lhs: vec![self.rows, self.cols],
                rhs: bias.shape().dims().to_vec(),
            }));
        }
        let mut out = TensorTable::create(
            self.pool().clone(),
            out_name,
            self.rows,
            self.cols,
            self.spec,
        );
        for coord in self.coords() {
            let block = self.get_block(coord)?;
            let c0 = coord.col * self.spec.block_cols;
            let (_, bw) = block.shape().as_matrix()?;
            let bias_slice = Tensor::from_vec([bw], bias.data()[c0..c0 + bw].to_vec())?;
            let with_bias = relserve_tensor::ops::add_bias(&block, &bias_slice)?;
            out.insert_block(coord, &with_bias)?;
        }
        Ok(out)
    }

    /// Visit blocks grouped by block-row, in order, fetching each block once.
    fn for_each_block_row(
        &self,
        mut f: impl FnMut(usize, &[(BlockCoord, Tensor)]) -> Result<()>,
    ) -> Result<()> {
        let mut current_row = None;
        let mut group: Vec<(BlockCoord, Tensor)> = Vec::new();
        for coord in self.index.keys().copied() {
            if current_row != Some(coord.row) {
                if let Some(row) = current_row {
                    f(row, &group)?;
                    group.clear();
                }
                current_row = Some(coord.row);
            }
            group.push((coord, self.get_block(coord)?));
        }
        if let Some(row) = current_row {
            f(row, &group)?;
        }
        Ok(())
    }
}

impl std::fmt::Debug for TensorTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TensorTable")
            .field("name", &self.name)
            .field("shape", &(self.rows, self.cols))
            .field("blocks", &self.index.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relserve_storage::DiskManager;

    fn pool(frames: usize) -> Arc<BufferPool> {
        Arc::new(BufferPool::new(
            Arc::new(DiskManager::temp().unwrap()),
            frames,
        ))
    }

    fn pattern(rows: usize, cols: usize, salt: usize) -> Tensor {
        Tensor::from_fn([rows, cols], |i| ((i * 29 + salt * 13) % 19) as f32 - 9.0)
    }

    #[test]
    fn dense_roundtrip() {
        let t = pattern(10, 7, 1);
        let table = TensorTable::from_dense(pool(16), "t", &t, BlockingSpec::square(4)).unwrap();
        assert_eq!(table.num_blocks(), 3 * 2);
        assert!(table.to_dense().unwrap().approx_eq(&t, 0.0));
    }

    #[test]
    fn get_block_matches_blocked_tensor() {
        let t = pattern(6, 6, 2);
        let spec = BlockingSpec::square(3);
        let blocked = BlockedTensor::from_dense(&t, spec).unwrap();
        let table = TensorTable::from_blocked(pool(16), "t", &blocked).unwrap();
        for (coord, block) in blocked.iter_blocks() {
            assert_eq!(&table.get_block(coord).unwrap(), block);
        }
        assert!(table.get_block(BlockCoord { row: 9, col: 9 }).is_err());
    }

    #[test]
    fn relational_matmul_matches_dense() {
        let a = pattern(7, 9, 3);
        let b = pattern(9, 5, 4);
        let p = pool(32);
        let at = TensorTable::from_dense(
            p.clone(),
            "A",
            &a,
            BlockingSpec {
                block_rows: 3,
                block_cols: 4,
            },
        )
        .unwrap();
        let bt = TensorTable::from_dense(
            p,
            "B",
            &b,
            BlockingSpec {
                block_rows: 4,
                block_cols: 2,
            },
        )
        .unwrap();
        let (c, stats) = at.matmul(&bt, "C").unwrap();
        let expect = relserve_tensor::matmul::matmul(&a, &b).unwrap();
        assert!(c.to_dense().unwrap().approx_eq(&expect, 1e-3));
        assert!(stats.joins > 0);
        assert_eq!(stats.blocks_out as usize, c.num_blocks());
    }

    #[test]
    fn relational_matmul_bt_matches_dense() {
        let x = pattern(8, 10, 5);
        let w = pattern(6, 10, 6); // [n, k] weight layout
        let p = pool(32);
        let xt = TensorTable::from_dense(p.clone(), "X", &x, BlockingSpec::square(4)).unwrap();
        let wt = TensorTable::from_dense(p, "W", &w, BlockingSpec::square(4)).unwrap();
        let (c, _) = xt.matmul_bt(&wt, "C").unwrap();
        let expect = relserve_tensor::matmul::matmul_bt(&x, &w).unwrap();
        assert!(c.to_dense().unwrap().approx_eq(&expect, 1e-3));
    }

    #[test]
    fn parallel_matmul_bt_matches_serial_any_thread_count() {
        let x = pattern(13, 10, 12);
        let w = pattern(9, 10, 13);
        let p = pool(64);
        let xt = TensorTable::from_dense(p.clone(), "X", &x, BlockingSpec::square(4)).unwrap();
        let wt = TensorTable::from_dense(p, "W", &w, BlockingSpec::square(4)).unwrap();
        let (serial, serial_stats) = xt.matmul_bt(&wt, "C").unwrap();
        let expect = serial.to_dense().unwrap();
        for threads in [1, 2, 3, 7, 16] {
            let grant = Parallelism::new(
                std::sync::Arc::new(relserve_tensor::parallel::SerialRunner),
                threads,
            );
            let (c, stats) = xt.matmul_bt_parallel(&wt, "Cp", &grant).unwrap();
            assert!(
                c.to_dense().unwrap().approx_eq(&expect, 1e-4),
                "threads={threads}"
            );
            // Stats describe the same logical work however it is striped.
            assert_eq!(stats, serial_stats, "threads={threads}");
        }
    }

    #[test]
    fn matmul_streams_through_tiny_pool() {
        // The point of relation-centric execution: a matmul whose operands
        // exceed the buffer pool must still complete, spilling via disk.
        let a = pattern(64, 64, 7);
        let b = pattern(64, 64, 8);
        let p = pool(4); // 4 frames = 256 KiB; operands are 16 KiB each + outputs
        let at = TensorTable::from_dense(p.clone(), "A", &a, BlockingSpec::square(16)).unwrap();
        let bt = TensorTable::from_dense(p.clone(), "B", &b, BlockingSpec::square(16)).unwrap();
        let (c, _) = at.matmul(&bt, "C").unwrap();
        let expect = relserve_tensor::matmul::matmul(&a, &b).unwrap();
        assert!(c.to_dense().unwrap().approx_eq(&expect, 1e-2));
        assert!(p.stats().evictions > 0);
    }

    #[test]
    fn shape_and_blocking_validation() {
        let p = pool(8);
        let a = TensorTable::from_dense(p.clone(), "A", &pattern(4, 4, 1), BlockingSpec::square(2))
            .unwrap();
        let bad_shape =
            TensorTable::from_dense(p.clone(), "B", &pattern(5, 4, 2), BlockingSpec::square(2))
                .unwrap();
        assert!(a.matmul(&bad_shape, "C").is_err());
        let bad_blocking =
            TensorTable::from_dense(p, "B2", &pattern(4, 4, 3), BlockingSpec::square(3)).unwrap();
        assert!(a.matmul(&bad_blocking, "C").is_err());
    }

    #[test]
    fn map_applies_elementwise() {
        let t = pattern(5, 5, 9);
        let table = TensorTable::from_dense(pool(8), "t", &t, BlockingSpec::square(2)).unwrap();
        let relu = table.map("relu", |x| x.max(0.0)).unwrap();
        let expect = relserve_tensor::ops::relu(&t);
        assert!(relu.to_dense().unwrap().approx_eq(&expect, 0.0));
    }

    #[test]
    fn add_bias_blockwise() {
        let t = pattern(4, 6, 10);
        let bias = Tensor::from_fn([6], |i| i as f32);
        let table = TensorTable::from_dense(pool(8), "t", &t, BlockingSpec::square(2)).unwrap();
        let out = table.add_bias("b", &bias).unwrap();
        let expect = relserve_tensor::ops::add_bias(&t, &bias).unwrap();
        assert!(out.to_dense().unwrap().approx_eq(&expect, 0.0));
        // Wrong-length bias is rejected.
        assert!(table.add_bias("bad", &Tensor::zeros([5])).is_err());
    }

    #[test]
    fn quantized_roundtrip_and_dequantizing_get_block() {
        let w = pattern(10, 7, 21);
        let q = QuantizedTensor::quantize(&w).unwrap();
        let table =
            TensorTable::from_quantized(pool(16), "wq", &q, BlockingSpec::square(4)).unwrap();
        assert!(table.is_quantized());
        assert_eq!(table.num_blocks(), 3 * 2);
        // i8 payloads approach a quarter of the f32 encoding at realistic
        // block sizes (per-row scales amortize over the block width).
        let big = pattern(64, 64, 22);
        let big_q = QuantizedTensor::quantize(&big).unwrap();
        let big_qt =
            TensorTable::from_quantized(pool(16), "bq", &big_q, BlockingSpec::square(16)).unwrap();
        let big_ft =
            TensorTable::from_dense(pool(16), "bf", &big, BlockingSpec::square(16)).unwrap();
        assert!(big_qt.bytes_stored() * 3 < big_ft.bytes_stored());
        let f32_table =
            TensorTable::from_dense(pool(16), "wf", &w, BlockingSpec::square(4)).unwrap();
        // get_block transparently dequantizes; blocks match the chunks of
        // the full dequantized matrix exactly (scales slice with rows).
        assert!(table.to_dense().unwrap().approx_eq(&q.dequantize(), 0.0));
        // get_qblock hands back the raw i8 block; on an f32 table it errors.
        let qb = table.get_qblock(BlockCoord { row: 0, col: 0 }).unwrap();
        assert_eq!(qb.rows(), 4);
        assert!(f32_table.get_qblock(BlockCoord { row: 0, col: 0 }).is_err());
    }

    #[test]
    fn quantized_matmul_bt_matches_dequantized_reference() {
        let x = pattern(8, 10, 31);
        let w = pattern(6, 10, 32);
        let p = pool(32);
        let xt = TensorTable::from_dense(p.clone(), "X", &x, BlockingSpec::square(4)).unwrap();
        let q = QuantizedTensor::quantize(&w).unwrap();
        let wt = TensorTable::from_quantized(p, "Wq", &q, BlockingSpec::square(4)).unwrap();
        let (c, stats) = xt.matmul_bt_quant(&wt, "C").unwrap();
        // The quantized join must track the f32 product of the same data to
        // within quantization error (weights snap to 127 levels per row,
        // activations to 127 levels per block row).
        let expect = relserve_tensor::matmul::matmul_bt(&x, &w).unwrap();
        let got = c.to_dense().unwrap();
        let scale = expect.data().iter().fold(1.0f32, |m, v| m.max(v.abs()));
        assert!(
            got.approx_eq(&expect, scale * 0.05),
            "max diff {}",
            got.max_abs_diff(&expect).unwrap()
        );
        assert!(stats.joins > 0);
        // The weight side of the join must be charged i8 bytes, not f32:
        // total weight traffic strictly below the f32 payload volume.
        let f32_weight_bytes = (w.num_bytes() + 8 * wt.num_blocks()) as u64;
        assert!(stats.bytes_read < x.num_bytes() as u64 + f32_weight_bytes);
    }

    #[test]
    fn quantized_join_parallel_matches_serial() {
        let x = pattern(13, 12, 41);
        let w = pattern(9, 12, 42);
        let p = pool(64);
        let xt = TensorTable::from_dense(p.clone(), "X", &x, BlockingSpec::square(4)).unwrap();
        let q = QuantizedTensor::quantize(&w).unwrap();
        let wt = TensorTable::from_quantized(p, "Wq", &q, BlockingSpec::square(4)).unwrap();
        let (serial, serial_stats) = xt.matmul_bt_quant(&wt, "C").unwrap();
        let expect = serial.to_dense().unwrap();
        for threads in [2, 3, 7] {
            let grant = Parallelism::new(
                std::sync::Arc::new(relserve_tensor::parallel::SerialRunner),
                threads,
            );
            let (c, stats) = xt.matmul_bt_quant_parallel(&wt, "Cp", &grant).unwrap();
            assert!(
                c.to_dense().unwrap().approx_eq(&expect, 1e-4),
                "threads={threads}"
            );
            assert_eq!(stats, serial_stats, "threads={threads}");
        }
    }

    #[test]
    fn quantized_join_rejects_f32_weight_relation() {
        let p = pool(16);
        let x = pattern(4, 6, 1);
        let w = pattern(3, 6, 2);
        let xt = TensorTable::from_dense(p.clone(), "X", &x, BlockingSpec::square(2)).unwrap();
        let wt = TensorTable::from_dense(p, "W", &w, BlockingSpec::square(2)).unwrap();
        assert!(xt.matmul_bt_quant(&wt, "C").is_err());
    }

    #[test]
    fn insert_block_replaces() {
        let t = pattern(4, 4, 11);
        let mut table = TensorTable::from_dense(pool(8), "t", &t, BlockingSpec::square(2)).unwrap();
        let coord = BlockCoord { row: 0, col: 0 };
        let replacement = Tensor::full([2, 2], 42.0);
        table.insert_block(coord, &replacement).unwrap();
        assert_eq!(table.get_block(coord).unwrap(), replacement);
        assert_eq!(table.num_blocks(), 4);
    }
}
