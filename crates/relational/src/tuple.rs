//! Tuples and their storage encoding.

use crate::error::{Error, Result};
use crate::schema::Schema;
use crate::value::Value;
use bytes::{Buf, BufMut};

/// An ordered list of values, matching some schema positionally.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Tuple {
    values: Vec<Value>,
}

impl Tuple {
    /// Build a tuple from values.
    pub fn new(values: Vec<Value>) -> Self {
        Tuple { values }
    }

    /// Number of values.
    pub fn arity(&self) -> usize {
        self.values.len()
    }

    /// The values in order.
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// Value at column `i`.
    pub fn value(&self, i: usize) -> Result<&Value> {
        self.values
            .get(i)
            .ok_or_else(|| Error::UnknownColumn(format!("#{i}")))
    }

    /// Consume into the value list.
    pub fn into_values(self) -> Vec<Value> {
        self.values
    }

    /// Concatenate two tuples (join output).
    pub fn join(mut self, right: &Tuple) -> Tuple {
        self.values.extend(right.values.iter().cloned());
        self
    }

    /// Keep only the given columns, in the given order.
    pub fn project(&self, indices: &[usize]) -> Result<Tuple> {
        let mut values = Vec::with_capacity(indices.len());
        for &i in indices {
            values.push(self.value(i)?.clone());
        }
        Ok(Tuple { values })
    }

    /// Encoded size in bytes.
    pub fn encoded_len(&self) -> usize {
        2 + self.values.iter().map(Value::encoded_len).sum::<usize>()
    }

    /// Encode into a fresh byte vector.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(self.encoded_len());
        buf.put_u16_le(self.values.len() as u16);
        for v in &self.values {
            v.encode(&mut buf);
        }
        buf
    }

    /// Decode a tuple from bytes.
    pub fn decode(bytes: &[u8]) -> Result<Tuple> {
        let mut buf = bytes;
        if buf.remaining() < 2 {
            return Err(Error::Codec("tuple shorter than header".into()));
        }
        let n = buf.get_u16_le() as usize;
        let mut values = Vec::with_capacity(n);
        for _ in 0..n {
            values.push(Value::decode(&mut buf)?);
        }
        if buf.has_remaining() {
            return Err(Error::Codec(format!(
                "{} trailing bytes after tuple",
                buf.remaining()
            )));
        }
        Ok(Tuple { values })
    }

    /// Decode and validate against a schema.
    pub fn decode_checked(bytes: &[u8], schema: &Schema) -> Result<Tuple> {
        let t = Self::decode(bytes)?;
        schema.check(&t.values)?;
        Ok(t)
    }
}

impl From<Vec<Value>> for Tuple {
    fn from(values: Vec<Value>) -> Self {
        Tuple::new(values)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Column, DataType};
    use proptest::prelude::*;

    #[test]
    fn encode_decode_roundtrip() {
        let t = Tuple::new(vec![
            Value::Int(7),
            Value::Text("row".into()),
            Value::Vector(vec![1.0, 2.0]),
        ]);
        let bytes = t.encode();
        assert_eq!(bytes.len(), t.encoded_len());
        assert_eq!(Tuple::decode(&bytes).unwrap(), t);
    }

    #[test]
    fn decode_rejects_trailing_garbage() {
        let t = Tuple::new(vec![Value::Int(1)]);
        let mut bytes = t.encode();
        bytes.push(0xff);
        assert!(Tuple::decode(&bytes).is_err());
    }

    #[test]
    fn decode_checked_validates_schema() {
        let schema = Schema::new(vec![Column::new("id", DataType::Int)]);
        let good = Tuple::new(vec![Value::Int(1)]).encode();
        let bad = Tuple::new(vec![Value::Float(1.0)]).encode();
        assert!(Tuple::decode_checked(&good, &schema).is_ok());
        assert!(Tuple::decode_checked(&bad, &schema).is_err());
    }

    #[test]
    fn join_concatenates() {
        let l = Tuple::new(vec![Value::Int(1)]);
        let r = Tuple::new(vec![Value::Int(2), Value::Int(3)]);
        let j = l.join(&r);
        assert_eq!(j.values(), &[Value::Int(1), Value::Int(2), Value::Int(3)]);
    }

    #[test]
    fn project_reorders() {
        let t = Tuple::new(vec![Value::Int(1), Value::Int(2), Value::Int(3)]);
        let p = t.project(&[2, 0]).unwrap();
        assert_eq!(p.values(), &[Value::Int(3), Value::Int(1)]);
        assert!(t.project(&[5]).is_err());
    }

    fn value_strategy() -> impl Strategy<Value = Value> {
        prop_oneof![
            any::<i64>().prop_map(Value::Int),
            (-1e6f32..1e6).prop_map(Value::Float),
            "[a-z]{0,12}".prop_map(Value::Text),
            proptest::collection::vec(-100.0f32..100.0, 0..32).prop_map(Value::Vector),
            proptest::collection::vec(any::<u8>(), 0..64).prop_map(Value::Blob),
        ]
    }

    proptest! {
        #[test]
        fn roundtrip_any_tuple(values in proptest::collection::vec(value_strategy(), 0..8)) {
            let t = Tuple::new(values);
            let bytes = t.encode();
            prop_assert_eq!(bytes.len(), t.encoded_len());
            prop_assert_eq!(Tuple::decode(&bytes).unwrap(), t);
        }
    }
}
