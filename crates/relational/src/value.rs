//! Scalar and vector values, with a self-describing binary encoding.

use crate::error::{Error, Result};
use bytes::{Buf, BufMut};
use std::fmt;

/// A single value in a tuple.
///
/// `Vector` carries a dense feature vector in one column — the layout
/// inference queries prefer, since a 28- or 968-feature row would otherwise
/// need that many scalar columns.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// 64-bit signed integer.
    Int(i64),
    /// 32-bit float (the tensor element type).
    Float(f32),
    /// UTF-8 text.
    Text(String),
    /// Dense `f32` vector.
    Vector(Vec<f32>),
    /// Raw bytes (serialized tensor blocks, model fragments, ...).
    Blob(Vec<u8>),
}

const TAG_INT: u8 = 1;
const TAG_FLOAT: u8 = 2;
const TAG_TEXT: u8 = 3;
const TAG_VECTOR: u8 = 4;
const TAG_BLOB: u8 = 5;

impl Value {
    /// The value's data type.
    pub fn dtype(&self) -> crate::schema::DataType {
        use crate::schema::DataType;
        match self {
            Value::Int(_) => DataType::Int,
            Value::Float(_) => DataType::Float,
            Value::Text(_) => DataType::Text,
            Value::Vector(_) => DataType::Vector,
            Value::Blob(_) => DataType::Blob,
        }
    }

    /// Extract an integer, coercing floats with integral values.
    pub fn as_int(&self) -> Result<i64> {
        match self {
            Value::Int(v) => Ok(*v),
            Value::Float(v) if v.fract() == 0.0 => Ok(*v as i64),
            other => Err(Error::TypeError(format!("{other:?} is not an integer"))),
        }
    }

    /// Extract a float, coercing integers.
    pub fn as_float(&self) -> Result<f32> {
        match self {
            Value::Float(v) => Ok(*v),
            Value::Int(v) => Ok(*v as f32),
            other => Err(Error::TypeError(format!("{other:?} is not a float"))),
        }
    }

    /// Extract a text reference.
    pub fn as_text(&self) -> Result<&str> {
        match self {
            Value::Text(s) => Ok(s),
            other => Err(Error::TypeError(format!("{other:?} is not text"))),
        }
    }

    /// Extract a vector reference.
    pub fn as_vector(&self) -> Result<&[f32]> {
        match self {
            Value::Vector(v) => Ok(v),
            other => Err(Error::TypeError(format!("{other:?} is not a vector"))),
        }
    }

    /// Extract a blob reference.
    pub fn as_blob(&self) -> Result<&[u8]> {
        match self {
            Value::Blob(b) => Ok(b),
            other => Err(Error::TypeError(format!("{other:?} is not a blob"))),
        }
    }

    /// Encoded size in bytes (tag + payload).
    pub fn encoded_len(&self) -> usize {
        1 + match self {
            Value::Int(_) => 8,
            Value::Float(_) => 4,
            Value::Text(s) => 4 + s.len(),
            Value::Vector(v) => 4 + v.len() * 4,
            Value::Blob(b) => 4 + b.len(),
        }
    }

    /// Append the encoding to `buf`.
    pub fn encode(&self, buf: &mut impl BufMut) {
        match self {
            Value::Int(v) => {
                buf.put_u8(TAG_INT);
                buf.put_i64_le(*v);
            }
            Value::Float(v) => {
                buf.put_u8(TAG_FLOAT);
                buf.put_f32_le(*v);
            }
            Value::Text(s) => {
                buf.put_u8(TAG_TEXT);
                buf.put_u32_le(s.len() as u32);
                buf.put_slice(s.as_bytes());
            }
            Value::Vector(v) => {
                buf.put_u8(TAG_VECTOR);
                buf.put_u32_le(v.len() as u32);
                for x in v {
                    buf.put_f32_le(*x);
                }
            }
            Value::Blob(b) => {
                buf.put_u8(TAG_BLOB);
                buf.put_u32_le(b.len() as u32);
                buf.put_slice(b);
            }
        }
    }

    /// Decode one value from `buf`, advancing it.
    pub fn decode(buf: &mut impl Buf) -> Result<Value> {
        if buf.remaining() < 1 {
            return Err(Error::Codec("empty buffer".into()));
        }
        let tag = buf.get_u8();
        let need = |buf: &mut dyn Buf, n: usize| -> Result<()> {
            if buf.remaining() < n {
                Err(Error::Codec(format!(
                    "need {n} bytes, have {}",
                    buf.remaining()
                )))
            } else {
                Ok(())
            }
        };
        match tag {
            TAG_INT => {
                need(buf, 8)?;
                Ok(Value::Int(buf.get_i64_le()))
            }
            TAG_FLOAT => {
                need(buf, 4)?;
                Ok(Value::Float(buf.get_f32_le()))
            }
            TAG_TEXT => {
                need(buf, 4)?;
                let len = buf.get_u32_le() as usize;
                need(buf, len)?;
                let mut bytes = vec![0u8; len];
                buf.copy_to_slice(&mut bytes);
                String::from_utf8(bytes)
                    .map(Value::Text)
                    .map_err(|e| Error::Codec(format!("invalid utf8: {e}")))
            }
            TAG_VECTOR => {
                need(buf, 4)?;
                let len = buf.get_u32_le() as usize;
                need(buf, len * 4)?;
                let mut v = Vec::with_capacity(len);
                for _ in 0..len {
                    v.push(buf.get_f32_le());
                }
                Ok(Value::Vector(v))
            }
            TAG_BLOB => {
                need(buf, 4)?;
                let len = buf.get_u32_le() as usize;
                need(buf, len)?;
                let mut b = vec![0u8; len];
                buf.copy_to_slice(&mut b);
                Ok(Value::Blob(b))
            }
            other => Err(Error::Codec(format!("unknown value tag {other}"))),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(v) => write!(f, "{v}"),
            Value::Float(v) => write!(f, "{v}"),
            Value::Text(s) => write!(f, "{s:?}"),
            Value::Vector(v) => write!(f, "vec[{}]", v.len()),
            Value::Blob(b) => write!(f, "blob[{}]", b.len()),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<f32> for Value {
    fn from(v: f32) -> Self {
        Value::Float(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Text(v.to_string())
    }
}

impl From<Vec<f32>> for Value {
    fn from(v: Vec<f32>) -> Self {
        Value::Vector(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(v: Value) {
        let mut buf = Vec::new();
        v.encode(&mut buf);
        assert_eq!(buf.len(), v.encoded_len());
        let mut slice = buf.as_slice();
        let back = Value::decode(&mut slice).unwrap();
        assert_eq!(back, v);
        assert!(slice.is_empty());
    }

    #[test]
    fn roundtrip_all_variants() {
        roundtrip(Value::Int(-42));
        roundtrip(Value::Float(3.5));
        roundtrip(Value::Text("héllo".into()));
        roundtrip(Value::Vector(vec![1.0, -2.0, 3.25]));
        roundtrip(Value::Blob(vec![0, 255, 128]));
        roundtrip(Value::Vector(vec![]));
        roundtrip(Value::Text(String::new()));
    }

    #[test]
    fn decode_rejects_garbage() {
        let mut slice: &[u8] = &[99, 1, 2, 3];
        assert!(Value::decode(&mut slice).is_err());
        let mut empty: &[u8] = &[];
        assert!(Value::decode(&mut empty).is_err());
        let mut truncated: &[u8] = &[TAG_INT, 1, 2];
        assert!(Value::decode(&mut truncated).is_err());
    }

    #[test]
    fn coercions() {
        assert_eq!(Value::Float(4.0).as_int().unwrap(), 4);
        assert!(Value::Float(4.5).as_int().is_err());
        assert_eq!(Value::Int(3).as_float().unwrap(), 3.0);
        assert!(Value::Text("x".into()).as_float().is_err());
        assert_eq!(Value::Vector(vec![1.0]).as_vector().unwrap(), &[1.0]);
    }

    #[test]
    fn display_is_compact() {
        assert_eq!(Value::Vector(vec![0.0; 968]).to_string(), "vec[968]");
        assert_eq!(Value::Int(7).to_string(), "7");
    }
}
