//! The simulated cross-system boundary (ConnectorX in the paper's setup).
//!
//! In the DL-centric architecture, features prepared by the RDBMS must be
//! serialized, moved to the DL framework's process, and deserialized into
//! framework tensors before a single FLOP of inference runs — and results
//! must make the return trip. [`Connector`] reproduces that tax honestly:
//!
//! * Encoding and decoding are *real work* on real bytes (a length-prefixed
//!   little-endian f32 wire format), so CPU cost scales with data volume.
//! * The wire itself (IPC/socket/network) is a latency + bandwidth model;
//!   when `simulate_wire` is set, the connector actually sleeps the modeled
//!   duration so end-to-end benchmarks observe it.

use crate::error::{Error, Result};
use crate::faults::{FaultInjector, RetryPolicy};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use relserve_tensor::Tensor;
use std::time::Duration;

const MAGIC: u32 = 0x52_53_58_46; // "RSXF"

/// Bandwidth/latency description of the link between the RDBMS and the
/// external DL runtime.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransferProfile {
    /// Sustained wire bandwidth, bytes per second.
    pub bandwidth_bytes_per_sec: f64,
    /// Fixed per-message latency (connection + protocol round trip).
    pub fixed_latency: Duration,
    /// Per-row protocol overhead in nanoseconds (cursor iteration, row
    /// framing — the cost ConnectorX works hard to minimize but cannot zero).
    pub per_row_overhead_ns: f64,
    /// When true, `ship` really sleeps the modeled wire time; benchmarks set
    /// this, unit tests leave it off.
    pub simulate_wire: bool,
}

impl TransferProfile {
    /// A fast local setup, calibrated to the ConnectorX-to-local-PostgreSQL
    /// class of link: ~1.2 GB/s effective, 2 ms setup, ~80 ns/row.
    pub fn local_connectorx() -> Self {
        TransferProfile {
            bandwidth_bytes_per_sec: 1.2e9,
            fixed_latency: Duration::from_millis(2),
            per_row_overhead_ns: 80.0,
            simulate_wire: true,
        }
    }

    /// An instantaneous wire — isolates pure codec cost (tests use this).
    pub fn instant() -> Self {
        TransferProfile {
            bandwidth_bytes_per_sec: f64::INFINITY,
            fixed_latency: Duration::ZERO,
            per_row_overhead_ns: 0.0,
            simulate_wire: false,
        }
    }

    /// Modeled wire duration for a payload.
    pub fn wire_time(&self, payload_bytes: usize, rows: usize) -> Duration {
        let bw = if self.bandwidth_bytes_per_sec.is_finite() && self.bandwidth_bytes_per_sec > 0.0 {
            Duration::from_secs_f64(payload_bytes as f64 / self.bandwidth_bytes_per_sec)
        } else {
            Duration::ZERO
        };
        let rows = Duration::from_nanos((rows as f64 * self.per_row_overhead_ns) as u64);
        self.fixed_latency + bw + rows
    }
}

/// Statistics accumulated by a connector across shipments.
///
/// Byte/row/wire counters are **delta-safe under retry**: a shipment is
/// counted once, when it succeeds — a transiently failed attempt bumps only
/// `transient_failures` (and, when re-attempted, `retries`), never the moved
/// volume, so `stats()` deltas around a retried shipment still equal the
/// payload shipped exactly once.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ConnectorStats {
    /// Total payload bytes moved in either direction (successful shipments
    /// only).
    pub bytes_moved: usize,
    /// Total rows moved (successful shipments only).
    pub rows_moved: usize,
    /// Total modeled wire time of successful shipments.
    pub wire_time: Duration,
    /// Number of successful shipments.
    pub shipments: u64,
    /// Number of shipment attempts that failed transiently (injected wire
    /// faults).
    pub transient_failures: u64,
    /// Number of re-attempts made by [`Connector::ship_retry`].
    pub retries: u64,
}

/// Serializes row batches across the simulated system boundary.
#[derive(Debug, Clone)]
pub struct Connector {
    profile: TransferProfile,
    stats: ConnectorStats,
    faults: Option<FaultInjector>,
}

impl Connector {
    /// A connector with the given wire profile.
    pub fn new(profile: TransferProfile) -> Self {
        Connector {
            profile,
            stats: ConnectorStats::default(),
            faults: None,
        }
    }

    /// A connector whose wire fails transiently according to `faults`
    /// (deterministic, seeded — see [`crate::faults`]).
    pub fn with_faults(profile: TransferProfile, faults: FaultInjector) -> Self {
        Connector {
            profile,
            stats: ConnectorStats::default(),
            faults: Some(faults),
        }
    }

    /// The wire profile in use.
    pub fn profile(&self) -> TransferProfile {
        self.profile
    }

    /// Cumulative transfer statistics.
    pub fn stats(&self) -> ConnectorStats {
        self.stats
    }

    /// Encode a rank-2 tensor (a feature batch) into the wire format.
    pub fn encode(&self, batch: &Tensor) -> Result<Bytes> {
        let (rows, cols) = batch.shape().as_matrix()?;
        let mut buf = BytesMut::with_capacity(12 + batch.num_bytes());
        buf.put_u32_le(MAGIC);
        buf.put_u32_le(rows as u32);
        buf.put_u32_le(cols as u32);
        for v in batch.data() {
            buf.put_f32_le(*v);
        }
        Ok(buf.freeze())
    }

    /// Decode a wire payload back into a tensor.
    pub fn decode(&self, mut payload: Bytes) -> Result<Tensor> {
        if payload.remaining() < 12 {
            return Err(Error::Codec("payload shorter than header".into()));
        }
        let magic = payload.get_u32_le();
        if magic != MAGIC {
            return Err(Error::Codec(format!("bad magic 0x{magic:08x}")));
        }
        let rows = payload.get_u32_le() as usize;
        let cols = payload.get_u32_le() as usize;
        let need = rows
            .checked_mul(cols)
            .and_then(|n| n.checked_mul(relserve_tensor::ELEM_BYTES))
            .ok_or_else(|| Error::Codec("dimension overflow".into()))?;
        if payload.remaining() != need {
            return Err(Error::Codec(format!(
                "payload body is {} B, header implies {need} B",
                payload.remaining()
            )));
        }
        let mut data = Vec::with_capacity(rows * cols);
        for _ in 0..rows * cols {
            data.push(payload.get_f32_le());
        }
        Ok(Tensor::from_vec([rows, cols], data)?)
    }

    /// Ship a batch across the boundary: encode, pay the modeled wire time,
    /// decode on the far side. Returns the received tensor.
    ///
    /// With an injector attached, the wire may drop the shipment —
    /// [`Error::Transient`] — after the time was paid but *before* any
    /// volume counters move, so retried shipments are never double-counted.
    pub fn ship(&mut self, batch: &Tensor) -> Result<Tensor> {
        let (rows, _) = batch.shape().as_matrix()?;
        let payload = self.encode(batch)?;
        let wire = self.profile.wire_time(payload.len(), rows);
        if self.profile.simulate_wire && wire > Duration::ZERO {
            std::thread::sleep(wire);
        }
        if self.faults.as_ref().is_some_and(|f| f.should_fail_wire()) {
            self.stats.transient_failures += 1;
            return Err(Error::Transient {
                op: "connector.ship".into(),
            });
        }
        let payload_len = payload.len();
        let received = self.decode(payload)?;
        self.stats.bytes_moved += payload_len;
        self.stats.rows_moved += rows;
        self.stats.wire_time += wire;
        self.stats.shipments += 1;
        Ok(received)
    }

    /// [`Connector::ship`] wrapped in bounded retry with exponential
    /// backoff: transient wire faults are re-attempted up to
    /// `policy.max_attempts` total tries (each re-attempt recorded in
    /// [`ConnectorStats::retries`]); the backoff is really slept only when
    /// the profile simulates the wire. Non-transient errors and exhausted
    /// retries surface to the caller.
    pub fn ship_retry(&mut self, batch: &Tensor, policy: &RetryPolicy) -> Result<Tensor> {
        let attempts = policy.max_attempts.max(1);
        for attempt in 1..=attempts {
            match self.ship(batch) {
                Err(e) if e.is_transient() && attempt < attempts => {
                    self.stats.retries += 1;
                    let backoff = policy.backoff_for(attempt);
                    if self.profile.simulate_wire && backoff > Duration::ZERO {
                        std::thread::sleep(backoff);
                    }
                }
                other => return other,
            }
        }
        unreachable!("loop always returns on its final attempt")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn roundtrip_preserves_tensor() {
        let c = Connector::new(TransferProfile::instant());
        let t = Tensor::from_fn([5, 7], |i| i as f32 * 0.5 - 3.0);
        let decoded = c.decode(c.encode(&t).unwrap()).unwrap();
        assert_eq!(decoded, t);
    }

    #[test]
    fn decode_rejects_bad_magic() {
        let c = Connector::new(TransferProfile::instant());
        let mut buf = BytesMut::new();
        buf.put_u32_le(0xdeadbeef);
        buf.put_u32_le(1);
        buf.put_u32_le(1);
        buf.put_f32_le(1.0);
        assert!(matches!(c.decode(buf.freeze()), Err(Error::Codec(_))));
    }

    #[test]
    fn decode_rejects_truncated_body() {
        let c = Connector::new(TransferProfile::instant());
        let t = Tensor::zeros([2, 2]);
        let mut payload = c.encode(&t).unwrap();
        payload.truncate(payload.len() - 4);
        assert!(matches!(c.decode(payload), Err(Error::Codec(_))));
    }

    #[test]
    fn decode_rejects_short_header() {
        let c = Connector::new(TransferProfile::instant());
        assert!(c.decode(Bytes::from_static(&[1, 2, 3])).is_err());
    }

    #[test]
    fn wire_time_scales_with_payload() {
        let p = TransferProfile {
            bandwidth_bytes_per_sec: 1000.0,
            fixed_latency: Duration::from_millis(1),
            per_row_overhead_ns: 1000.0,
            simulate_wire: false,
        };
        let t = p.wire_time(2000, 10);
        // 1 ms fixed + 2 s bandwidth + 10 µs rows.
        assert!((t.as_secs_f64() - 2.001_01).abs() < 1e-6);
    }

    #[test]
    fn ship_accumulates_stats() {
        let mut c = Connector::new(TransferProfile::instant());
        let t = Tensor::zeros([4, 3]);
        c.ship(&t).unwrap();
        c.ship(&t).unwrap();
        let s = c.stats();
        assert_eq!(s.shipments, 2);
        assert_eq!(s.rows_moved, 8);
        assert_eq!(s.bytes_moved, 2 * (12 + 48));
        assert_eq!(s.transient_failures, 0);
        assert_eq!(s.retries, 0);
    }

    #[test]
    fn injected_wire_fault_is_transient_and_not_counted_as_moved() {
        use crate::faults::FaultConfig;
        let mut cfg = FaultConfig::flaky_wire(11, 1.0);
        cfg.max_faults = Some(1);
        let mut c = Connector::with_faults(TransferProfile::instant(), FaultInjector::new(cfg));
        let t = Tensor::zeros([2, 2]);
        let err = c.ship(&t).unwrap_err();
        assert!(err.is_transient());
        let s = c.stats();
        assert_eq!(s.transient_failures, 1);
        assert_eq!(s.bytes_moved, 0, "failed attempt moved nothing");
        assert_eq!(s.shipments, 0);
        // The wire healed (max_faults reached): the next ship succeeds.
        c.ship(&t).unwrap();
        assert_eq!(c.stats().shipments, 1);
    }

    #[test]
    fn ship_retry_is_delta_safe_under_retry() {
        use crate::faults::FaultConfig;
        let mut cfg = FaultConfig::flaky_wire(5, 1.0);
        cfg.max_faults = Some(2);
        let mut c = Connector::with_faults(TransferProfile::instant(), FaultInjector::new(cfg));
        let t = Tensor::zeros([4, 3]);
        let before = c.stats();
        let shipped = c.ship_retry(&t, &RetryPolicy::default()).unwrap();
        assert_eq!(shipped, t);
        let s = c.stats();
        // Two injected failures, two re-attempts, exactly one counted
        // shipment — bytes/rows reflect a single successful transfer.
        assert_eq!(s.transient_failures, 2);
        assert_eq!(s.retries, 2);
        assert_eq!(s.shipments - before.shipments, 1);
        assert_eq!(s.bytes_moved - before.bytes_moved, 12 + 48);
        assert_eq!(s.rows_moved - before.rows_moved, 4);
    }

    #[test]
    fn ship_retry_exhausts_and_surfaces_transient() {
        use crate::faults::FaultConfig;
        let mut c = Connector::with_faults(
            TransferProfile::instant(),
            FaultInjector::new(FaultConfig::flaky_wire(1, 1.0)),
        );
        let t = Tensor::zeros([2, 2]);
        let policy = RetryPolicy {
            max_attempts: 3,
            base_backoff: Duration::ZERO,
            jitter: 0.0,
        };
        let err = c.ship_retry(&t, &policy).unwrap_err();
        assert!(err.is_transient());
        let s = c.stats();
        assert_eq!(s.transient_failures, 3, "every attempt failed");
        assert_eq!(s.retries, 2, "two re-attempts after the first failure");
        assert_eq!(s.shipments, 0);
        assert_eq!(s.bytes_moved, 0);
    }

    proptest! {
        #[test]
        fn roundtrip_any_shape(rows in 1usize..20, cols in 1usize..20, seed in 0u32..1000) {
            let c = Connector::new(TransferProfile::instant());
            let t = Tensor::from_fn([rows, cols], |i| ((i as u32).wrapping_mul(seed) % 1000) as f32 - 500.0);
            let back = c.decode(c.encode(&t).unwrap()).unwrap();
            prop_assert_eq!(back, t);
        }
    }
}
