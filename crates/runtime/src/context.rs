//! Query-scoped execution contexts: the admitted slice of the machine one
//! query runs in.
//!
//! The paper's unified resource manager (§3.1) is *per query*: a query's
//! relational workers and kernel threads together must fit the share of the
//! machine the scheduler granted it, even while other queries run. An
//! [`ExecContext`] packages that share — the [`ThreadPlan`], the admitted
//! [`BudgetGrant`], a budgeted handle on the shared [`KernelPool`], and the
//! [`MemoryGovernor`] lease — and travels by value through every execution
//! backend. When the context drops, its grant returns to the coordinator
//! and the next waiting query is admitted. There is deliberately no
//! process-global runner: two sessions built from clones of one
//! [`ThreadCoordinator`] each get a bounded, admission-controlled slice of
//! the same pool instead of first-install-wins.

use crate::governor::MemoryGovernor;
use crate::pool::{KernelPool, PoolHandle};
use crate::threads::{BudgetGrant, ThreadCoordinator, ThreadPlan};
use relserve_tensor::parallel::{Parallelism, StripeRunner};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Per-query kernel scheduling statistics, accumulated by every stripe
/// batch the context's grants submit.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ContextStats {
    /// Stripe batches submitted through this context.
    pub batches: usize,
    /// Individual stripe tasks those batches contained.
    pub tasks: usize,
}

#[derive(Default)]
struct StatsCells {
    batches: AtomicUsize,
    tasks: AtomicUsize,
}

/// A [`StripeRunner`] that counts submissions into the owning context's
/// stats before delegating to the budgeted pool handle.
struct CountingRunner {
    handle: PoolHandle,
    stats: Arc<StatsCells>,
}

impl StripeRunner for CountingRunner {
    fn run_stripes(&self, n_tasks: usize, task: &(dyn Fn(usize) + Sync)) {
        self.stats.batches.fetch_add(1, Ordering::Relaxed);
        self.stats.tasks.fetch_add(n_tasks, Ordering::Relaxed);
        self.handle.run_stripes(n_tasks, task);
    }

    fn max_concurrency(&self) -> usize {
        self.handle.max_concurrency()
    }
}

/// Everything one query needs to execute inside its admitted share of the
/// machine; see the module docs. Created by
/// [`ThreadCoordinator::context`] / [`ThreadCoordinator::context_dedicated`]
/// and threaded by value through the execution backends.
pub struct ExecContext {
    plan: ThreadPlan,
    grant: BudgetGrant,
    pool: Arc<KernelPool>,
    governor: MemoryGovernor,
    stats: Arc<StatsCells>,
}

impl ExecContext {
    fn new(
        plan: ThreadPlan,
        grant: BudgetGrant,
        pool: Arc<KernelPool>,
        governor: MemoryGovernor,
    ) -> Self {
        ExecContext {
            plan,
            grant,
            pool,
            governor,
            stats: Arc::new(StatsCells::default()),
        }
    }

    /// A context for tests and benches that is not admission-controlled:
    /// a private coordinator with exactly `threads` cores, granted in full.
    /// Production queries get their contexts from a shared coordinator.
    pub fn standalone(threads: usize, governor: MemoryGovernor) -> Self {
        ThreadCoordinator::new(threads.max(1)).context(1, governor)
    }

    /// The agreed DB-worker / kernel-thread split for this query.
    pub fn plan(&self) -> ThreadPlan {
        self.plan
    }

    /// Kernel threads this query was actually granted (`<=` what the plan
    /// requested whenever other queries hold part of the machine).
    pub fn kernel_threads(&self) -> usize {
        self.grant
            .granted()
            .clamp(1, self.plan.worst_case_threads())
    }

    /// The memory lease this query charges tensor allocations against.
    pub fn governor(&self) -> &MemoryGovernor {
        &self.governor
    }

    /// The full granted kernel budget as a [`Parallelism`] seam value for
    /// tensor kernels. Submissions are budgeted: a batch occupies at most
    /// [`ExecContext::kernel_threads`] pool threads.
    pub fn parallelism(&self) -> Parallelism {
        self.parallelism_with(self.kernel_threads())
    }

    /// A sub-grant of at most `threads` kernel threads (still capped by the
    /// admitted budget) — used by executors that subdivide their budget
    /// across concurrently running pipeline stages.
    pub fn parallelism_with(&self, threads: usize) -> Parallelism {
        let threads = threads.clamp(1, self.kernel_threads());
        let runner = CountingRunner {
            handle: PoolHandle::new(Arc::clone(&self.pool), threads),
            stats: Arc::clone(&self.stats),
        };
        Parallelism::new(Arc::new(runner), threads)
    }

    /// Snapshot of the kernel batches and tasks this query has submitted.
    pub fn stats(&self) -> ContextStats {
        ContextStats {
            batches: self.stats.batches.load(Ordering::Relaxed),
            tasks: self.stats.tasks.load(Ordering::Relaxed),
        }
    }
}

impl std::fmt::Debug for ExecContext {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ExecContext")
            .field("plan", &self.plan)
            .field("granted", &self.grant.granted())
            .field("stats", &self.stats())
            .finish()
    }
}

impl ThreadCoordinator {
    /// Admit a query whose relational side runs `db_parallelism` pipeline
    /// workers and build its execution context: plans the thread split,
    /// requests the plan's worst case from the admission ledger, and wraps
    /// the granted share around the shared kernel pool plus the query's
    /// memory lease. Blocks while the machine is fully granted.
    pub fn context(&self, db_parallelism: usize, governor: MemoryGovernor) -> ExecContext {
        let plan = self.plan_for(db_parallelism);
        let grant = self.admit(plan.worst_case_threads());
        ExecContext::new(plan, grant, self.kernel_pool(), governor)
    }

    /// An execution context for a dedicated (external) DL runtime: the
    /// kernels may use every granted core, with no DB workers competing.
    pub fn context_dedicated(&self, governor: MemoryGovernor) -> ExecContext {
        let plan = self.plan_dedicated();
        let grant = self.admit(plan.worst_case_threads());
        ExecContext::new(plan, grant, self.kernel_pool(), governor)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gov() -> MemoryGovernor {
        MemoryGovernor::unlimited("test")
    }

    #[test]
    fn context_grants_release_on_drop() {
        let c = ThreadCoordinator::new(4);
        let ctx = c.context(1, gov());
        assert_eq!(ctx.plan().kernel_threads, 4);
        assert_eq!(ctx.kernel_threads(), 4);
        assert_eq!(c.granted_threads(), 4);
        drop(ctx);
        assert_eq!(c.granted_threads(), 0);
    }

    #[test]
    fn concurrent_contexts_split_the_machine() {
        let c = ThreadCoordinator::new(4);
        // Another query holds part of the machine while ours is admitted:
        // the context gets exactly the remainder, never oversubscribing.
        let other = c.admit(3);
        let ctx = c.context(1, gov());
        assert_eq!(other.granted() + ctx.kernel_threads(), 4);
        assert!(c.granted_threads() <= c.cores());
        drop(other);
        drop(ctx);
        let full = c.context_dedicated(gov());
        assert_eq!(full.kernel_threads(), 4);
    }

    /// Admission is blocking: a context request against a fully granted
    /// machine waits for a release instead of oversubscribing, so the sum
    /// of grants can never exceed the cores.
    #[test]
    fn saturated_machine_queues_the_next_context() {
        let c = ThreadCoordinator::new(2);
        let hold = c.context(1, gov());
        assert_eq!(c.granted_threads(), 2);
        let c2 = c.clone();
        let waiter = std::thread::spawn(move || {
            let ctx = c2.context(1, gov());
            (ctx.kernel_threads(), c2.granted_threads())
        });
        std::thread::sleep(std::time::Duration::from_millis(50));
        drop(hold);
        let (granted, outstanding) = waiter.join().unwrap();
        assert_eq!(granted, 2);
        assert!(outstanding <= 2);
    }

    #[test]
    fn parallelism_counts_into_stats() {
        let c = ThreadCoordinator::new(2);
        let ctx = c.context(1, gov());
        let par = ctx.parallelism();
        par.run_stripes(5, &|_| {});
        par.run_stripes(3, &|_| {});
        // A 1-task batch short-circuits inside Parallelism and never reaches
        // the runner, so only multi-task batches are counted.
        par.run_stripes(1, &|_| {});
        let stats = ctx.stats();
        assert_eq!(stats.batches, 2);
        assert_eq!(stats.tasks, 8);
    }

    #[test]
    fn sub_grants_never_exceed_the_admitted_budget() {
        let c = ThreadCoordinator::new(4);
        let hold = c.admit(3);
        let ctx = c.context(1, gov());
        assert_eq!(ctx.kernel_threads(), 1, "only one core remained");
        assert_eq!(ctx.parallelism_with(64).threads(), 1);
        drop(hold);
    }

    #[test]
    fn standalone_context_is_self_contained() {
        let ctx = ExecContext::standalone(3, gov());
        assert_eq!(ctx.kernel_threads(), 3);
        let par = ctx.parallelism();
        let sum = std::sync::atomic::AtomicUsize::new(0);
        par.run_stripes(7, &|t| {
            sum.fetch_add(t, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 21);
    }
}
