//! Query-scoped execution contexts: the admitted slice of the machine one
//! query runs in.
//!
//! The paper's unified resource manager (§3.1) is *per query*: a query's
//! relational workers and kernel threads together must fit the share of the
//! machine the scheduler granted it, even while other queries run. An
//! [`ExecContext`] packages that share — the [`ThreadPlan`], the admitted
//! [`BudgetGrant`], a budgeted handle on the shared [`KernelPool`], and the
//! [`MemoryGovernor`] lease — and travels by value through every execution
//! backend. When the context drops, its grant returns to the coordinator
//! and the next waiting query is admitted. There is deliberately no
//! process-global runner: two sessions built from clones of one
//! [`ThreadCoordinator`] each get a bounded, admission-controlled slice of
//! the same pool instead of first-install-wins.

use crate::error::{Error, Result};
use crate::governor::MemoryGovernor;
use crate::pool::{KernelPool, PoolHandle};
use crate::threads::{AdmissionPolicy, BudgetGrant, ThreadCoordinator, ThreadPlan};
use relserve_tensor::parallel::{Parallelism, StripeRunner};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Per-query kernel scheduling statistics, accumulated by every stripe
/// batch the context's grants submit.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ContextStats {
    /// Stripe batches submitted through this context.
    pub batches: usize,
    /// Individual stripe tasks those batches contained.
    pub tasks: usize,
}

#[derive(Default)]
struct StatsCells {
    batches: AtomicUsize,
    tasks: AtomicUsize,
}

/// A [`StripeRunner`] that counts submissions into the owning context's
/// stats before delegating to the budgeted pool handle.
struct CountingRunner {
    handle: PoolHandle,
    stats: Arc<StatsCells>,
}

impl StripeRunner for CountingRunner {
    fn run_stripes(&self, n_tasks: usize, task: &(dyn Fn(usize) + Sync)) {
        self.stats.batches.fetch_add(1, Ordering::Relaxed);
        self.stats.tasks.fetch_add(n_tasks, Ordering::Relaxed);
        self.handle.run_stripes(n_tasks, task);
    }

    fn max_concurrency(&self) -> usize {
        self.handle.max_concurrency()
    }
}

/// Everything one query needs to execute inside its admitted share of the
/// machine; see the module docs. Created by
/// [`ThreadCoordinator::context`] / [`ThreadCoordinator::context_dedicated`]
/// and threaded by value through the execution backends.
pub struct ExecContext {
    plan: ThreadPlan,
    grant: BudgetGrant,
    pool: Arc<KernelPool>,
    governor: MemoryGovernor,
    stats: Arc<StatsCells>,
    deadline: Option<Instant>,
}

impl ExecContext {
    fn new(
        plan: ThreadPlan,
        grant: BudgetGrant,
        pool: Arc<KernelPool>,
        governor: MemoryGovernor,
        deadline: Option<Instant>,
    ) -> Self {
        ExecContext {
            plan,
            grant,
            pool,
            governor,
            stats: Arc::new(StatsCells::default()),
            deadline,
        }
    }

    /// A context for tests and benches that is not admission-controlled:
    /// a private coordinator with exactly `threads` cores, granted in full.
    /// Production queries get their contexts from a shared coordinator.
    pub fn standalone(threads: usize, governor: MemoryGovernor) -> Self {
        ThreadCoordinator::new(threads.max(1))
            .context(1, governor)
            .expect("a private unloaded coordinator always admits")
    }

    /// The query's absolute deadline, when it arrived with one.
    pub fn deadline(&self) -> Option<Instant> {
        self.deadline
    }

    /// Cooperative deadline check, called by executors at block/stage
    /// boundaries: [`Error::DeadlineExceeded`] once the query's deadline
    /// has passed, naming `phase` as the detection point. Returning the
    /// error unwinds the executor, dropping this context and releasing the
    /// grant mid-flight — a timed-out query stops consuming the machine.
    pub fn check_deadline(&self, phase: &str) -> Result<()> {
        match self.deadline {
            Some(d) if Instant::now() >= d => Err(Error::DeadlineExceeded {
                phase: phase.into(),
            }),
            _ => Ok(()),
        }
    }

    /// The agreed DB-worker / kernel-thread split for this query.
    pub fn plan(&self) -> ThreadPlan {
        self.plan
    }

    /// Kernel threads this query was actually granted (`<=` what the plan
    /// requested whenever other queries hold part of the machine).
    pub fn kernel_threads(&self) -> usize {
        self.grant
            .granted()
            .clamp(1, self.plan.worst_case_threads())
    }

    /// The memory lease this query charges tensor allocations against.
    pub fn governor(&self) -> &MemoryGovernor {
        &self.governor
    }

    /// The full granted kernel budget as a [`Parallelism`] seam value for
    /// tensor kernels. Submissions are budgeted: a batch occupies at most
    /// [`ExecContext::kernel_threads`] pool threads.
    pub fn parallelism(&self) -> Parallelism {
        self.parallelism_with(self.kernel_threads())
    }

    /// A sub-grant of at most `threads` kernel threads (still capped by the
    /// admitted budget) — used by executors that subdivide their budget
    /// across concurrently running pipeline stages.
    pub fn parallelism_with(&self, threads: usize) -> Parallelism {
        let threads = threads.clamp(1, self.kernel_threads());
        let runner = CountingRunner {
            handle: PoolHandle::new(Arc::clone(&self.pool), threads),
            stats: Arc::clone(&self.stats),
        };
        Parallelism::new(Arc::new(runner), threads)
    }

    /// Snapshot of the kernel batches and tasks this query has submitted.
    pub fn stats(&self) -> ContextStats {
        ContextStats {
            batches: self.stats.batches.load(Ordering::Relaxed),
            tasks: self.stats.tasks.load(Ordering::Relaxed),
        }
    }
}

impl std::fmt::Debug for ExecContext {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ExecContext")
            .field("plan", &self.plan)
            .field("granted", &self.grant.granted())
            .field("stats", &self.stats())
            .finish()
    }
}

impl ThreadCoordinator {
    /// Admit a query whose relational side runs `db_parallelism` pipeline
    /// workers and build its execution context under the default
    /// [`AdmissionPolicy`]: plans the thread split, requests the plan's
    /// worst case from the admission ledger, and wraps the granted share
    /// around the shared kernel pool plus the query's memory lease. A
    /// machine that stays saturated past the default queue timeout sheds
    /// the query with [`Error::Overloaded`] instead of blocking forever.
    pub fn context(&self, db_parallelism: usize, governor: MemoryGovernor) -> Result<ExecContext> {
        self.context_with(db_parallelism, governor, &AdmissionPolicy::default())
    }

    /// [`ThreadCoordinator::context`] under an explicit [`AdmissionPolicy`]:
    /// the query queues FIFO for at most `policy.queue_timeout`, respects
    /// `policy.deadline` both in the queue and (carried on the context)
    /// cooperatively during execution, and refuses grants below
    /// `policy.min_threads`.
    pub fn context_with(
        &self,
        db_parallelism: usize,
        governor: MemoryGovernor,
        policy: &AdmissionPolicy,
    ) -> Result<ExecContext> {
        let plan = self.plan_for(db_parallelism);
        let grant = self.admit_with(plan.worst_case_threads(), policy)?;
        Ok(ExecContext::new(
            plan,
            grant,
            self.kernel_pool(),
            governor,
            policy.deadline,
        ))
    }

    /// An execution context for a dedicated (external) DL runtime: the
    /// kernels may use every granted core, with no DB workers competing.
    pub fn context_dedicated(&self, governor: MemoryGovernor) -> Result<ExecContext> {
        self.context_dedicated_with(governor, &AdmissionPolicy::default())
    }

    /// [`ThreadCoordinator::context_dedicated`] under an explicit
    /// [`AdmissionPolicy`].
    pub fn context_dedicated_with(
        &self,
        governor: MemoryGovernor,
        policy: &AdmissionPolicy,
    ) -> Result<ExecContext> {
        let plan = self.plan_dedicated();
        let grant = self.admit_with(plan.worst_case_threads(), policy)?;
        Ok(ExecContext::new(
            plan,
            grant,
            self.kernel_pool(),
            governor,
            policy.deadline,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gov() -> MemoryGovernor {
        MemoryGovernor::unlimited("test")
    }

    #[test]
    fn context_grants_release_on_drop() {
        let c = ThreadCoordinator::new(4);
        let ctx = c.context(1, gov()).unwrap();
        assert_eq!(ctx.plan().kernel_threads, 4);
        assert_eq!(ctx.kernel_threads(), 4);
        assert_eq!(c.granted_threads(), 4);
        drop(ctx);
        assert_eq!(c.granted_threads(), 0);
    }

    #[test]
    fn concurrent_contexts_split_the_machine() {
        let c = ThreadCoordinator::new(4);
        // Another query holds part of the machine while ours is admitted:
        // the context gets exactly the remainder, never oversubscribing.
        let other = c.admit(3).unwrap();
        let ctx = c.context(1, gov()).unwrap();
        assert_eq!(other.granted() + ctx.kernel_threads(), 4);
        assert!(c.granted_threads() <= c.cores());
        drop(other);
        drop(ctx);
        let full = c.context_dedicated(gov()).unwrap();
        assert_eq!(full.kernel_threads(), 4);
    }

    /// Admission queues: a context request against a fully granted machine
    /// waits for a release instead of oversubscribing, so the sum of grants
    /// can never exceed the cores.
    #[test]
    fn saturated_machine_queues_the_next_context() {
        let c = ThreadCoordinator::new(2);
        let hold = c.context(1, gov()).unwrap();
        assert_eq!(c.granted_threads(), 2);
        let c2 = c.clone();
        let waiter = std::thread::spawn(move || {
            let ctx = c2.context(1, gov()).unwrap();
            (ctx.kernel_threads(), c2.granted_threads())
        });
        std::thread::sleep(std::time::Duration::from_millis(50));
        drop(hold);
        let (granted, outstanding) = waiter.join().unwrap();
        assert_eq!(granted, 2);
        assert!(outstanding <= 2);
    }

    /// The saturated machine sheds instead of blocking when the policy says
    /// so, and the context carries its deadline for cooperative checks.
    #[test]
    fn saturated_machine_sheds_context_and_deadline_is_carried() {
        let c = ThreadCoordinator::new(2);
        let hold = c.context(1, gov()).unwrap();
        let policy = AdmissionPolicy::with_queue_timeout(std::time::Duration::from_millis(25));
        let err = c.context_with(1, gov(), &policy).unwrap_err();
        assert!(matches!(err, Error::Overloaded { .. }), "{err:?}");
        drop(hold);

        let deadline = Instant::now() + std::time::Duration::from_secs(60);
        let ctx = c
            .context_with(1, gov(), &AdmissionPolicy::with_deadline(deadline))
            .unwrap();
        assert_eq!(ctx.deadline(), Some(deadline));
        assert!(ctx.check_deadline("test.block").is_ok());
    }

    #[test]
    fn expired_deadline_is_detected_cooperatively() {
        let c = ThreadCoordinator::new(1);
        let past = Instant::now() - std::time::Duration::from_millis(1);
        // Admission itself fails fast on an already-expired deadline…
        let err = c
            .context_with(1, gov(), &AdmissionPolicy::with_deadline(past))
            .unwrap_err();
        assert!(matches!(err, Error::DeadlineExceeded { .. }));
        // …and a context whose deadline expires mid-flight reports the
        // phase that detected it.
        let soon = Instant::now() + std::time::Duration::from_millis(10);
        let ctx = c
            .context_with(1, gov(), &AdmissionPolicy::with_deadline(soon))
            .unwrap();
        std::thread::sleep(std::time::Duration::from_millis(20));
        let err = ctx.check_deadline("relation-centric.block").unwrap_err();
        assert!(
            matches!(err, Error::DeadlineExceeded { ref phase } if phase == "relation-centric.block")
        );
    }

    #[test]
    fn parallelism_counts_into_stats() {
        let c = ThreadCoordinator::new(2);
        let ctx = c.context(1, gov()).unwrap();
        let par = ctx.parallelism();
        par.run_stripes(5, &|_| {});
        par.run_stripes(3, &|_| {});
        // A 1-task batch short-circuits inside Parallelism and never reaches
        // the runner, so only multi-task batches are counted.
        par.run_stripes(1, &|_| {});
        let stats = ctx.stats();
        assert_eq!(stats.batches, 2);
        assert_eq!(stats.tasks, 8);
    }

    #[test]
    fn sub_grants_never_exceed_the_admitted_budget() {
        let c = ThreadCoordinator::new(4);
        let hold = c.admit(3).unwrap();
        let ctx = c.context(1, gov()).unwrap();
        assert_eq!(ctx.kernel_threads(), 1, "only one core remained");
        assert_eq!(ctx.parallelism_with(64).threads(), 1);
        drop(hold);
    }

    #[test]
    fn standalone_context_is_self_contained() {
        let ctx = ExecContext::standalone(3, gov());
        assert_eq!(ctx.kernel_threads(), 3);
        let par = ctx.parallelism();
        let sum = std::sync::atomic::AtomicUsize::new(0);
        par.run_stripes(7, &|t| {
            sum.fetch_add(t, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 21);
    }
}
