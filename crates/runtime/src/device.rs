//! Producer-transfer-consumer device placement model (§3.2).
//!
//! Whether an operator benefits from an accelerator depends on the balance
//! between compute speedup and host↔device transfer cost. Following the
//! paper's decision-forest study, the model estimates per-device latency as
//!
//! ```text
//! latency(dev) = transfer_in + max(compute, overlapped_transfer) + transfer_out
//! ```
//!
//! and the planner picks the cheaper device. The GPU here is a *model* (this
//! repo targets CPU-only hosts); its throughput parameters are configurable
//! so the ablation bench can sweep them.

/// The kind of execution device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DeviceKind {
    /// Host CPU.
    Cpu,
    /// Accelerator reachable over an interconnect.
    Gpu,
}

/// Throughput description of one device.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Device {
    /// What kind of device this is.
    pub kind: DeviceKind,
    /// Sustained compute throughput in FLOP/s.
    pub flops_per_sec: f64,
    /// Host↔device bandwidth in bytes/s (`f64::INFINITY` for the CPU, which
    /// already owns the data).
    pub transfer_bytes_per_sec: f64,
    /// Fixed per-kernel launch/transfer latency in seconds.
    pub fixed_overhead_sec: f64,
}

impl Device {
    /// A CPU sized for `flops_per_sec` sustained throughput.
    pub fn cpu(flops_per_sec: f64) -> Self {
        Device {
            kind: DeviceKind::Cpu,
            flops_per_sec,
            transfer_bytes_per_sec: f64::INFINITY,
            fixed_overhead_sec: 0.0,
        }
    }

    /// A PCIe-attached GPU model.
    pub fn gpu(flops_per_sec: f64, transfer_bytes_per_sec: f64, fixed_overhead_sec: f64) -> Self {
        Device {
            kind: DeviceKind::Gpu,
            flops_per_sec,
            transfer_bytes_per_sec,
            fixed_overhead_sec,
        }
    }

    /// Estimated latency for an operator moving `input_bytes` in,
    /// `output_bytes` out, and performing `flops` floating-point operations,
    /// with input transfer overlapped against compute where possible.
    pub fn estimate_sec(&self, flops: f64, input_bytes: f64, output_bytes: f64) -> f64 {
        let compute = flops / self.flops_per_sec;
        if self.transfer_bytes_per_sec.is_infinite() {
            return compute + self.fixed_overhead_sec;
        }
        let t_in = input_bytes / self.transfer_bytes_per_sec;
        let t_out = output_bytes / self.transfer_bytes_per_sec;
        // Producer-transfer-consumer: the input stream overlaps with compute,
        // so the steady-state cost is the max of the two, plus drain.
        self.fixed_overhead_sec + t_in.max(compute) + t_out
    }
}

/// Outcome of a placement decision.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlacementDecision {
    /// The chosen device kind.
    pub device: DeviceKind,
    /// Estimated latency on the chosen device, seconds.
    pub est_sec: f64,
    /// Estimated latency on the rejected device, seconds.
    pub alternative_sec: f64,
}

/// A two-device (CPU + modeled GPU) placement planner.
#[derive(Debug, Clone, Copy)]
pub struct DeviceModel {
    cpu: Device,
    gpu: Device,
}

impl DeviceModel {
    /// Build a planner from explicit device descriptions.
    pub fn new(cpu: Device, gpu: Device) -> Self {
        DeviceModel { cpu, gpu }
    }

    /// A default calibrated roughly like the paper's testbed class: an 8-core
    /// CPU (~40 GFLOP/s sustained) against a PCIe 3 GPU (~5 TFLOP/s, 12 GB/s,
    /// 50 µs launch overhead).
    pub fn default_testbed() -> Self {
        DeviceModel {
            cpu: Device::cpu(40e9),
            gpu: Device::gpu(5e12, 12e9, 50e-6),
        }
    }

    /// The CPU description.
    pub fn cpu(&self) -> Device {
        self.cpu
    }

    /// The GPU description.
    pub fn gpu(&self) -> Device {
        self.gpu
    }

    /// Choose the cheaper device for one operator.
    pub fn place(&self, flops: f64, input_bytes: f64, output_bytes: f64) -> PlacementDecision {
        let cpu_sec = self.cpu.estimate_sec(flops, input_bytes, output_bytes);
        let gpu_sec = self.gpu.estimate_sec(flops, input_bytes, output_bytes);
        if gpu_sec < cpu_sec {
            PlacementDecision {
                device: DeviceKind::Gpu,
                est_sec: gpu_sec,
                alternative_sec: cpu_sec,
            }
        } else {
            PlacementDecision {
                device: DeviceKind::Cpu,
                est_sec: cpu_sec,
                alternative_sec: gpu_sec,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_ops_stay_on_cpu() {
        // The §3.2 observation: for small models + small data, transfer
        // overhead outweighs GPU acceleration.
        let m = DeviceModel::default_testbed();
        let d = m.place(1e4, 1e3, 1e2);
        assert_eq!(d.device, DeviceKind::Cpu);
    }

    #[test]
    fn large_ops_go_to_gpu() {
        let m = DeviceModel::default_testbed();
        // 100 GFLOP over 100 MB in / 10 MB out: compute-bound, GPU wins.
        let d = m.place(1e11, 1e8, 1e7);
        assert_eq!(d.device, DeviceKind::Gpu);
        assert!(d.est_sec < d.alternative_sec);
    }

    #[test]
    fn cpu_has_no_transfer_term() {
        let cpu = Device::cpu(1e9);
        // 1 GFLOP at 1 GFLOP/s = 1 s regardless of data size.
        assert!((cpu.estimate_sec(1e9, 1e12, 1e12) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn gpu_overlaps_input_with_compute() {
        let gpu = Device::gpu(1e9, 1e9, 0.0);
        // compute 1 s, input transfer 2 s, output 0.5 s → max(2,1) + 0.5.
        let est = gpu.estimate_sec(1e9, 2e9, 0.5e9);
        assert!((est - 2.5).abs() < 1e-9);
    }

    #[test]
    fn crossover_exists() {
        // Sweep operator size; placement must flip exactly once from CPU to GPU.
        let m = DeviceModel::default_testbed();
        let mut last = DeviceKind::Cpu;
        let mut flips = 0;
        for exp in 4..14 {
            let flops = 10f64.powi(exp);
            let bytes = flops / 10.0;
            let d = m.place(flops, bytes, bytes / 100.0);
            if d.device != last {
                flips += 1;
                last = d.device;
            }
        }
        assert_eq!(flips, 1);
        assert_eq!(last, DeviceKind::Gpu);
    }
}
