//! Errors for resource management and cross-system transfer.

use std::fmt;

/// Result alias for the runtime crate.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors raised by governors, connectors and the external runtime.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// A memory budget would be exceeded.
    ///
    /// This error is *recoverable by design*: the adaptive optimizer catches
    /// it (or avoids it ahead of time via estimation) and falls back to the
    /// relation-centric representation, exactly as the paper's Table 3
    /// experiment requires. It must therefore never be turned into a panic.
    OutOfMemory {
        /// The governor's domain, e.g. `"udf-centric"` or `"tensorflow-like"`.
        domain: String,
        /// Bytes the failed request asked for.
        requested: usize,
        /// Bytes already in use at the time of the request.
        in_use: usize,
        /// The configured budget.
        budget: usize,
    },
    /// Malformed payload on the connector wire.
    Codec(String),
    /// Tensor-level failure surfaced through a runtime API.
    Tensor(relserve_tensor::Error),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::OutOfMemory {
                domain,
                requested,
                in_use,
                budget,
            } => write!(
                f,
                "out of memory in `{domain}`: requested {requested} B with {in_use} B in use (budget {budget} B)"
            ),
            Error::Codec(msg) => write!(f, "connector codec error: {msg}"),
            Error::Tensor(e) => write!(f, "tensor error: {e}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Tensor(e) => Some(e),
            _ => None,
        }
    }
}

impl From<relserve_tensor::Error> for Error {
    fn from(e: relserve_tensor::Error) -> Self {
        Error::Tensor(e)
    }
}
