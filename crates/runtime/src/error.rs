//! Errors for resource management and cross-system transfer.

use std::fmt;
use std::time::Duration;

/// Result alias for the runtime crate.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors raised by governors, connectors, admission and the external
/// runtime.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// A memory budget would be exceeded.
    ///
    /// This error is *recoverable by design*: the adaptive optimizer catches
    /// it (or avoids it ahead of time via estimation) and falls back to the
    /// relation-centric representation, exactly as the paper's Table 3
    /// experiment requires. It must therefore never be turned into a panic.
    OutOfMemory {
        /// The governor's domain, e.g. `"udf-centric"` or `"tensorflow-like"`.
        domain: String,
        /// Bytes the failed request asked for.
        requested: usize,
        /// Bytes already in use at the time of the request.
        in_use: usize,
        /// The configured budget.
        budget: usize,
    },
    /// Malformed payload on the connector wire.
    Codec(String),
    /// Tensor-level failure surfaced through a runtime API.
    Tensor(relserve_tensor::Error),
    /// The machine stayed saturated for the query's whole admission
    /// `queue_timeout`, so the query was shed instead of served. Like OOM,
    /// this is recoverable by design: callers retry later or route the load
    /// elsewhere.
    Overloaded {
        /// How long the query waited in the admission queue before shedding.
        waited: Duration,
        /// The queue timeout the query arrived with.
        queue_timeout: Duration,
    },
    /// The query's deadline passed — while queued for admission or
    /// cooperatively detected mid-execution at a block/stage boundary.
    DeadlineExceeded {
        /// Where the deadline was detected, e.g. `"admission-queue"` or
        /// `"relation-centric.layer"`.
        phase: String,
    },
    /// A transient (retryable) fault on the cross-system boundary: a flaky
    /// wire, a codec hiccup, an external-runtime allocator stall. Bounded
    /// retry with backoff is the intended response; exhausted retries
    /// degrade to relation-centric execution.
    Transient {
        /// The operation that failed, e.g. `"connector.ship"`.
        op: String,
    },
    /// A kernel-pool task panicked. The panic payload is captured so a
    /// poisoned query surfaces a typed error on its own thread instead of
    /// aborting a serving thread; the pool itself stays usable.
    KernelPanicked {
        /// The captured panic payload (message).
        message: String,
    },
}

impl Error {
    /// True for transient (retryable) faults.
    pub fn is_transient(&self) -> bool {
        matches!(self, Error::Transient { .. })
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::OutOfMemory {
                domain,
                requested,
                in_use,
                budget,
            } => write!(
                f,
                "out of memory in `{domain}`: requested {requested} B with {in_use} B in use (budget {budget} B)"
            ),
            Error::Codec(msg) => write!(f, "connector codec error: {msg}"),
            Error::Tensor(e) => write!(f, "tensor error: {e}"),
            Error::Overloaded {
                waited,
                queue_timeout,
            } => write!(
                f,
                "overloaded: shed from the admission queue after {waited:?} (queue timeout {queue_timeout:?})"
            ),
            Error::DeadlineExceeded { phase } => {
                write!(f, "deadline exceeded during `{phase}`")
            }
            Error::Transient { op } => write!(f, "transient fault in `{op}` (retryable)"),
            Error::KernelPanicked { message } => {
                write!(f, "kernel pool task panicked: {message}")
            }
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Tensor(e) => Some(e),
            _ => None,
        }
    }
}

impl From<relserve_tensor::Error> for Error {
    fn from(e: relserve_tensor::Error) -> Self {
        Error::Tensor(e)
    }
}
