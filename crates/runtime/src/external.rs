//! Decoupled external DL runtime profiles (the DL-centric architecture).
//!
//! The paper's baselines offload inference to TensorFlow 2.5 and PyTorch
//! 2.1.0 running beside the database. This repo cannot (and per the
//! substitution rule should not) embed those frameworks; instead an
//! [`ExternalRuntime`] models what makes them *architecturally* different
//! from in-database execution:
//!
//! 1. **Their own address space and memory ceiling** — a dedicated
//!    [`MemoryGovernor`], with a per-framework *memory overhead factor*
//!    (framework bookkeeping, eager-mode caching, workspace buffers) applied
//!    to every allocation. The factors below are calibrated so the OOM
//!    pattern of the paper's Table 3 reproduces: the PyTorch-like profile is
//!    hungrier and OOMs on the LandCover conv where the TensorFlow-like one
//!    still fits.
//! 2. **Dedicated threads** — no DB workers compete inside the runtime, so
//!    kernels get the full core budget (see `ThreadCoordinator::plan_dedicated`).
//! 3. **A connector on both sides** — inputs and results cross the wire.
//!
//! The actual kernels executed inside the runtime are this repo's own — a
//! deliberately conservative choice documented in DESIGN.md.

use crate::error::Error;
use crate::faults::FaultInjector;
use crate::governor::{MemoryGovernor, Reservation};
use crate::Result;

/// Static description of an external framework's resource behaviour.
#[derive(Debug, Clone, PartialEq)]
pub struct RuntimeProfile {
    /// Display name, e.g. `"tensorflow-like"`.
    pub name: String,
    /// Multiplier on every tensor allocation, modeling framework overhead
    /// (graph metadata, workspace buffers, allocator slack). ≥ 1.0.
    pub memory_overhead: f64,
}

impl RuntimeProfile {
    /// TensorFlow-class profile: moderate allocator overhead; its
    /// graph-mode executor releases intermediates aggressively.
    pub fn tensorflow_like() -> Self {
        RuntimeProfile {
            name: "tensorflow-like".into(),
            memory_overhead: 1.4,
        }
    }

    /// PyTorch-class profile: eager mode keeps more intermediates and the
    /// caching allocator holds slack, so effective footprint is larger.
    pub fn pytorch_like() -> Self {
        RuntimeProfile {
            name: "pytorch-like".into(),
            memory_overhead: 2.0,
        }
    }
}

/// A running external DL runtime: a profile bound to its own memory budget.
#[derive(Debug, Clone)]
pub struct ExternalRuntime {
    profile: RuntimeProfile,
    governor: MemoryGovernor,
    faults: Option<FaultInjector>,
}

impl ExternalRuntime {
    /// Launch a runtime with `budget` bytes of process memory.
    pub fn launch(profile: RuntimeProfile, budget: usize) -> Self {
        let governor = MemoryGovernor::with_budget(profile.name.clone(), budget);
        ExternalRuntime {
            profile,
            governor,
            faults: None,
        }
    }

    /// Attach a deterministic fault stream: reservations may now fail with
    /// [`Error::Transient`] (an allocator stall / runtime hiccup) according
    /// to the injector's `runtime_failure_rate`. Clones share the stream.
    pub fn with_faults(mut self, faults: FaultInjector) -> Self {
        self.faults = Some(faults);
        self
    }

    /// The runtime's display name.
    pub fn name(&self) -> &str {
        &self.profile.name
    }

    /// The runtime's private memory governor.
    pub fn governor(&self) -> &MemoryGovernor {
        &self.governor
    }

    /// The profile this runtime was launched with.
    pub fn profile(&self) -> &RuntimeProfile {
        &self.profile
    }

    /// Reserve memory for a tensor of `bytes` payload, applying the
    /// framework overhead factor. This is the call every tensor the
    /// "framework" materializes goes through. With a fault stream attached
    /// the reservation may fail transiently (retryable) before the governor
    /// is consulted; a genuine budget miss still surfaces as the
    /// non-retryable [`Error::OutOfMemory`].
    pub fn reserve_tensor(&self, bytes: usize) -> Result<Reservation> {
        if self
            .faults
            .as_ref()
            .is_some_and(|f| f.should_fail_runtime())
        {
            return Err(Error::Transient {
                op: format!("{}.reserve_tensor", self.profile.name),
            });
        }
        let effective = (bytes as f64 * self.profile.memory_overhead).ceil() as usize;
        self.governor.reserve(effective)
    }

    /// Whether a working set of `bytes` payload would fit right now.
    pub fn would_fit(&self, bytes: usize) -> bool {
        let effective = (bytes as f64 * self.profile.memory_overhead).ceil() as usize;
        self.governor.would_fit(effective)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overhead_factor_inflates_reservations() {
        let rt = ExternalRuntime::launch(RuntimeProfile::pytorch_like(), 1000);
        // 400 B payload × 2.0 overhead = 800 B effective.
        let r = rt.reserve_tensor(400).unwrap();
        assert_eq!(r.bytes(), 800);
        assert!(!rt.would_fit(400)); // another 800 would exceed 1000
    }

    #[test]
    fn pytorch_profile_is_hungrier_than_tensorflow() {
        let budget = 1500;
        let tf = ExternalRuntime::launch(RuntimeProfile::tensorflow_like(), budget);
        let pt = ExternalRuntime::launch(RuntimeProfile::pytorch_like(), budget);
        // A 1000 B tensor fits TF (1400 effective) but not PT (2000 effective)
        // — the Table 3 LandCover pattern in miniature.
        assert!(tf.reserve_tensor(1000).is_ok());
        assert!(pt.reserve_tensor(1000).is_err());
    }

    #[test]
    fn oom_carries_runtime_name() {
        let rt = ExternalRuntime::launch(RuntimeProfile::tensorflow_like(), 10);
        let err = rt.reserve_tensor(100).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("tensorflow-like"), "{msg}");
    }

    #[test]
    fn injected_runtime_fault_is_transient_not_oom() {
        use crate::faults::{FaultConfig, FaultInjector};
        let mut cfg = FaultConfig::flaky_runtime(17, 1.0);
        cfg.max_faults = Some(1);
        let rt = ExternalRuntime::launch(RuntimeProfile::tensorflow_like(), 10_000)
            .with_faults(FaultInjector::new(cfg));
        let err = rt.reserve_tensor(100).unwrap_err();
        assert!(err.is_transient(), "fault is retryable, not OOM: {err}");
        // Healed: the same reservation now goes through the governor.
        assert!(rt.reserve_tensor(100).is_ok());
        // A genuine budget miss is still a hard OOM.
        let oom = rt.reserve_tensor(1_000_000).unwrap_err();
        assert!(!oom.is_transient());
    }
}
