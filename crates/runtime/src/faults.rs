//! Deterministic fault injection for the cross-system boundary.
//!
//! The DL-centric architecture crosses a fragile process boundary twice per
//! query (features out, predictions back), and the external runtime itself
//! can stall or reject allocations. A serving system must survive that —
//! which can only be tested if the faults are *reproducible*. This module
//! provides a [`FaultInjector`] driven by a seeded SplitMix64 stream: no
//! wall-clock or OS randomness, so a failing run replays exactly from its
//! [`FaultConfig`].
//!
//! Injection points are opt-in: a [`crate::Connector`] or
//! [`crate::ExternalRuntime`] built `with_faults` consults the injector on
//! every shipment / reservation and surfaces [`Error::Transient`] when the
//! draw says so. [`RetryPolicy`] describes the bounded exponential-backoff
//! response executors wrap around those operations.
//!
//! Setting the `RELSERVE_FAULT_SEED` environment variable turns injection on
//! for every session-created connector and external runtime (see
//! [`FaultInjector::from_env`]) — CI runs the whole test suite a second time
//! under that seed so the flaky-wire paths are exercised on every push.

use crate::error::{Error, Result};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Environment variable that enables ambient fault injection (see module
/// docs). The value is the decimal seed.
pub const FAULT_SEED_ENV: &str = "RELSERVE_FAULT_SEED";

/// Configuration of one deterministic fault stream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultConfig {
    /// Seed of the SplitMix64 draw stream; equal seeds replay identically.
    pub seed: u64,
    /// Probability in `[0, 1]` that a connector shipment fails transiently.
    pub wire_failure_rate: f64,
    /// Probability in `[0, 1]` that an external-runtime tensor reservation
    /// fails transiently.
    pub runtime_failure_rate: f64,
    /// Stop injecting after this many faults (`None` = unbounded). Lets a
    /// test assert "fails exactly k times, then heals" with rate 1.0.
    pub max_faults: Option<u64>,
}

impl FaultConfig {
    /// A flaky wire: shipments fail with `rate`, the runtime never does.
    pub fn flaky_wire(seed: u64, rate: f64) -> Self {
        FaultConfig {
            seed,
            wire_failure_rate: rate,
            runtime_failure_rate: 0.0,
            max_faults: None,
        }
    }

    /// A flaky external runtime: reservations fail with `rate`.
    pub fn flaky_runtime(seed: u64, rate: f64) -> Self {
        FaultConfig {
            seed,
            wire_failure_rate: 0.0,
            runtime_failure_rate: rate,
            max_faults: None,
        }
    }

    /// The ambient profile used under [`FAULT_SEED_ENV`]: a mildly flaky
    /// wire and runtime, low enough that bounded retry almost always heals,
    /// high enough that the retry and degradation paths actually run.
    pub fn ambient(seed: u64) -> Self {
        FaultConfig {
            seed,
            wire_failure_rate: 0.05,
            runtime_failure_rate: 0.02,
            max_faults: None,
        }
    }
}

#[derive(Debug)]
struct InjectorState {
    rng: u64,
    injected: u64,
}

/// A shareable deterministic fault stream; see the module docs. Clones share
/// one draw stream and one injected-fault counter, so a connector and a
/// runtime handed clones of the same injector consume a single deterministic
/// sequence.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    config: FaultConfig,
    state: Arc<Mutex<InjectorState>>,
}

impl FaultInjector {
    /// An injector over `config`'s seeded stream.
    pub fn new(config: FaultConfig) -> Self {
        FaultInjector {
            state: Arc::new(Mutex::new(InjectorState {
                rng: config.seed,
                injected: 0,
            })),
            config,
        }
    }

    /// The ambient injector configured by the [`FAULT_SEED_ENV`] environment
    /// variable, or `None` when the variable is unset/unparsable.
    pub fn from_env() -> Option<Self> {
        let seed: u64 = std::env::var(FAULT_SEED_ENV).ok()?.parse().ok()?;
        Some(Self::new(FaultConfig::ambient(seed)))
    }

    /// The configuration this injector draws from.
    pub fn config(&self) -> FaultConfig {
        self.config
    }

    /// Number of faults injected so far across all clones.
    pub fn injected(&self) -> u64 {
        self.state.lock().expect("fault injector lock").injected
    }

    /// SplitMix64 step — a tiny, well-mixed deterministic generator; no OS
    /// entropy anywhere.
    fn next_f64(state: &mut InjectorState) -> f64 {
        state.rng = state.rng.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state.rng;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        (z >> 11) as f64 / (1u64 << 53) as f64
    }

    fn draw(&self, rate: f64) -> bool {
        if rate <= 0.0 {
            return false;
        }
        let mut st = self.state.lock().expect("fault injector lock");
        if self.config.max_faults.is_some_and(|max| st.injected >= max) {
            return false;
        }
        let fail = Self::next_f64(&mut st) < rate;
        if fail {
            st.injected += 1;
        }
        fail
    }

    /// Draw: should the next connector shipment fail transiently?
    pub fn should_fail_wire(&self) -> bool {
        self.draw(self.config.wire_failure_rate)
    }

    /// Draw: should the next external-runtime reservation fail transiently?
    pub fn should_fail_runtime(&self) -> bool {
        self.draw(self.config.runtime_failure_rate)
    }
}

/// Bounded retry with exponential backoff — the response executors wrap
/// around transiently failing boundary operations.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Total attempts including the first (≥ 1).
    pub max_attempts: u32,
    /// Backoff before attempt `n+1` is `base_backoff * 2^(n-1)`. Callers
    /// that model wire time (`simulate_wire`) really sleep it; unit tests
    /// do not.
    pub base_backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 4,
            base_backoff: Duration::from_millis(5),
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries (one attempt).
    pub fn none() -> Self {
        RetryPolicy {
            max_attempts: 1,
            base_backoff: Duration::ZERO,
        }
    }

    /// Backoff to pay before retry number `retry` (1-based): exponential in
    /// the retry count, `base_backoff * 2^(retry-1)`.
    pub fn backoff_for(&self, retry: u32) -> Duration {
        self.base_backoff * 2u32.saturating_pow(retry.saturating_sub(1))
    }

    /// Run `op` up to [`RetryPolicy::max_attempts`] times, retrying only on
    /// [`Error::Transient`]. `on_retry(retry_number, backoff)` fires before
    /// each re-attempt (the caller decides whether to actually sleep the
    /// backoff — tests never do). Returns the last transient error when
    /// attempts are exhausted, and any non-transient error immediately.
    pub fn run<T>(
        &self,
        mut op: impl FnMut() -> Result<T>,
        mut on_retry: impl FnMut(u32, Duration),
    ) -> Result<T> {
        let attempts = self.max_attempts.max(1);
        let mut last = None;
        for attempt in 1..=attempts {
            match op() {
                Ok(v) => return Ok(v),
                Err(e) if e.is_transient() && attempt < attempts => {
                    on_retry(attempt, self.backoff_for(attempt));
                    last = Some(e);
                }
                Err(e) => return Err(e),
            }
        }
        Err(last.unwrap_or(Error::Transient { op: "retry".into() }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_replays_identically() {
        let a = FaultInjector::new(FaultConfig::flaky_wire(42, 0.5));
        let b = FaultInjector::new(FaultConfig::flaky_wire(42, 0.5));
        let draws_a: Vec<bool> = (0..64).map(|_| a.should_fail_wire()).collect();
        let draws_b: Vec<bool> = (0..64).map(|_| b.should_fail_wire()).collect();
        assert_eq!(draws_a, draws_b);
        assert_eq!(a.injected(), b.injected());
        assert!(a.injected() > 0, "rate 0.5 over 64 draws must inject");
    }

    #[test]
    fn rate_bounds_are_respected() {
        let never = FaultInjector::new(FaultConfig::flaky_wire(7, 0.0));
        assert!((0..100).all(|_| !never.should_fail_wire()));
        let always = FaultInjector::new(FaultConfig::flaky_wire(7, 1.0));
        assert!((0..100).all(|_| always.should_fail_wire()));
    }

    #[test]
    fn max_faults_caps_injection() {
        let mut config = FaultConfig::flaky_wire(3, 1.0);
        config.max_faults = Some(2);
        let inj = FaultInjector::new(config);
        assert!(inj.should_fail_wire());
        assert!(inj.should_fail_wire());
        assert!(!inj.should_fail_wire(), "healed after max_faults");
        assert_eq!(inj.injected(), 2);
    }

    #[test]
    fn clones_share_one_stream() {
        let mut config = FaultConfig::flaky_wire(9, 1.0);
        config.max_faults = Some(1);
        let a = FaultInjector::new(config);
        let b = a.clone();
        assert!(a.should_fail_wire());
        assert!(!b.should_fail_wire(), "clone sees the shared fault budget");
        assert_eq!(b.injected(), 1);
    }

    #[test]
    fn retry_policy_backoff_is_exponential() {
        let p = RetryPolicy {
            max_attempts: 4,
            base_backoff: Duration::from_millis(10),
        };
        assert_eq!(p.backoff_for(1), Duration::from_millis(10));
        assert_eq!(p.backoff_for(2), Duration::from_millis(20));
        assert_eq!(p.backoff_for(3), Duration::from_millis(40));
    }

    #[test]
    fn retry_run_retries_only_transient() {
        let p = RetryPolicy {
            max_attempts: 3,
            base_backoff: Duration::ZERO,
        };
        // Heals on the third attempt.
        let mut calls = 0;
        let mut retries = 0;
        let out = p.run(
            || {
                calls += 1;
                if calls < 3 {
                    Err(Error::Transient { op: "t".into() })
                } else {
                    Ok(calls)
                }
            },
            |_, _| retries += 1,
        );
        assert_eq!(out.unwrap(), 3);
        assert_eq!(retries, 2);

        // Exhausts and returns the transient error.
        let exhausted = p.run(
            || -> Result<()> { Err(Error::Transient { op: "t".into() }) },
            |_, _| {},
        );
        assert!(exhausted.unwrap_err().is_transient());

        // Non-transient errors pass straight through.
        let mut calls = 0;
        let hard = p.run(
            || -> Result<()> {
                calls += 1;
                Err(Error::Codec("bad".into()))
            },
            |_, _| {},
        );
        assert!(matches!(hard.unwrap_err(), Error::Codec(_)));
        assert_eq!(calls, 1);
    }
}
