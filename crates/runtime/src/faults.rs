//! Deterministic fault injection for the cross-system boundary.
//!
//! The DL-centric architecture crosses a fragile process boundary twice per
//! query (features out, predictions back), and the external runtime itself
//! can stall or reject allocations. A serving system must survive that —
//! which can only be tested if the faults are *reproducible*. This module
//! provides a [`FaultInjector`] driven by a seeded SplitMix64 stream: no
//! wall-clock or OS randomness, so a failing run replays exactly from its
//! [`FaultConfig`].
//!
//! Injection points are opt-in: a [`crate::Connector`] or
//! [`crate::ExternalRuntime`] built `with_faults` consults the injector on
//! every shipment / reservation and surfaces [`Error::Transient`] when the
//! draw says so. [`RetryPolicy`] describes the bounded exponential-backoff
//! response executors wrap around those operations.
//!
//! Setting the `RELSERVE_FAULT_SEED` environment variable turns injection on
//! for every session-created connector and external runtime (see
//! [`FaultInjector::from_env`]) — CI runs the whole test suite a second time
//! under that seed so the flaky-wire paths are exercised on every push.

use crate::error::{Error, Result};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Environment variable that enables ambient fault injection (see module
/// docs). The value is the decimal seed.
pub const FAULT_SEED_ENV: &str = "RELSERVE_FAULT_SEED";

/// Environment variable that adds *socket* faults to the ambient profile
/// (only meaningful together with [`FAULT_SEED_ENV`]). Two forms:
///
/// * a single float `r` — torn reads, stalled reads and delayed accepts
///   each fire with rate `r`; write resets stay 0 (safe to re-run the
///   ordinary serving suites under);
/// * four comma-separated floats `tear,stall,reset,delay` — full control,
///   including connection-killing mid-write resets for chaos soaks.
pub const SOCK_FAULTS_ENV: &str = "RELSERVE_SOCK_FAULTS";

/// Configuration of one deterministic fault stream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultConfig {
    /// Seed of the SplitMix64 draw stream; equal seeds replay identically.
    pub seed: u64,
    /// Probability in `[0, 1]` that a connector shipment fails transiently.
    pub wire_failure_rate: f64,
    /// Probability in `[0, 1]` that an external-runtime tensor reservation
    /// fails transiently.
    pub runtime_failure_rate: f64,
    /// Probability in `[0, 1]` that a socket read is torn: the reactor
    /// pulls only a few bytes off the socket this readiness event, so
    /// frames arrive in fragments and exercise reassembly.
    pub sock_tear_rate: f64,
    /// Probability in `[0, 1]` that a socket read stalls: the readiness
    /// event is skipped entirely (level-triggered epoll re-reports it).
    pub sock_stall_rate: f64,
    /// Probability in `[0, 1]` that a response write is reset mid-frame:
    /// the connection is severed as if the peer sent RST while the server
    /// was writing. Kills real connections — keep 0 outside chaos soaks.
    pub sock_reset_rate: f64,
    /// Probability in `[0, 1]` that an accept burst is delayed one reactor
    /// round (the listener's readiness event is deferred, not lost).
    pub accept_delay_rate: f64,
    /// Probability in `[0, 1]` that a shard worker kills itself before
    /// serving its next request — the deterministic kill switch behind the
    /// distributed tier's worker-loss chaos tests. The worker severs every
    /// connection and stops, as if the process died; coordinators must
    /// absorb the shard locally.
    pub worker_kill_rate: f64,
    /// Stop injecting after this many faults (`None` = unbounded). Lets a
    /// test assert "fails exactly k times, then heals" with rate 1.0.
    pub max_faults: Option<u64>,
}

impl FaultConfig {
    /// A quiet stream: `seed` set, every rate 0. The base other profiles
    /// build on.
    pub fn quiet(seed: u64) -> Self {
        FaultConfig {
            seed,
            wire_failure_rate: 0.0,
            runtime_failure_rate: 0.0,
            sock_tear_rate: 0.0,
            sock_stall_rate: 0.0,
            sock_reset_rate: 0.0,
            accept_delay_rate: 0.0,
            worker_kill_rate: 0.0,
            max_faults: None,
        }
    }

    /// A flaky wire: shipments fail with `rate`, the runtime never does.
    pub fn flaky_wire(seed: u64, rate: f64) -> Self {
        FaultConfig {
            wire_failure_rate: rate,
            ..Self::quiet(seed)
        }
    }

    /// A flaky external runtime: reservations fail with `rate`.
    pub fn flaky_runtime(seed: u64, rate: f64) -> Self {
        FaultConfig {
            runtime_failure_rate: rate,
            ..Self::quiet(seed)
        }
    }

    /// Hostile sockets for the serving frontend: torn reads, stalled
    /// reads, mid-write resets and delayed accepts. The connector/runtime
    /// boundary stays healthy so the chaos is attributable to the wire.
    pub fn sock_chaos(seed: u64, tear: f64, stall: f64, reset: f64, delay: f64) -> Self {
        FaultConfig {
            sock_tear_rate: tear,
            sock_stall_rate: stall,
            sock_reset_rate: reset,
            accept_delay_rate: delay,
            ..Self::quiet(seed)
        }
    }

    /// A suicidal shard worker: before serving each request it dies with
    /// `kill` probability. Combine with `max_faults: Some(1)` for "exactly
    /// one worker loss, then stability" chaos tests.
    pub fn worker_chaos(seed: u64, kill: f64) -> Self {
        FaultConfig {
            worker_kill_rate: kill,
            ..Self::quiet(seed)
        }
    }

    /// The ambient profile used under [`FAULT_SEED_ENV`]: a mildly flaky
    /// wire and runtime, low enough that bounded retry almost always heals,
    /// high enough that the retry and degradation paths actually run.
    /// Socket faults stay off unless [`SOCK_FAULTS_ENV`] adds them.
    pub fn ambient(seed: u64) -> Self {
        FaultConfig {
            wire_failure_rate: 0.05,
            runtime_failure_rate: 0.02,
            ..Self::quiet(seed)
        }
    }

    /// True when any socket-level rate is nonzero (the reactor only
    /// consults the injector when this holds).
    pub fn has_socket_faults(&self) -> bool {
        self.sock_tear_rate > 0.0
            || self.sock_stall_rate > 0.0
            || self.sock_reset_rate > 0.0
            || self.accept_delay_rate > 0.0
    }

    /// Parse [`SOCK_FAULTS_ENV`]'s value into `(tear, stall, reset,
    /// delay)` rates; `None` when the value is absent or unparsable.
    pub fn socket_rates_from_env() -> Option<(f64, f64, f64, f64)> {
        let raw = std::env::var(SOCK_FAULTS_ENV).ok()?;
        let parts: Vec<f64> = raw
            .split(',')
            .map(|p| p.trim().parse::<f64>())
            .collect::<std::result::Result<_, _>>()
            .ok()?;
        let clamp = |r: f64| r.clamp(0.0, 1.0);
        match parts.as_slice() {
            // Single rate: tears, stalls and delays only — safe to re-run
            // the ordinary suites under (no connection-killing resets).
            [r] => Some((clamp(*r), clamp(*r), 0.0, clamp(*r))),
            [t, s, r, d] => Some((clamp(*t), clamp(*s), clamp(*r), clamp(*d))),
            _ => None,
        }
    }
}

#[derive(Debug)]
struct InjectorState {
    rng: u64,
    injected: u64,
}

/// A shareable deterministic fault stream; see the module docs. Clones share
/// one draw stream and one injected-fault counter, so a connector and a
/// runtime handed clones of the same injector consume a single deterministic
/// sequence.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    config: FaultConfig,
    state: Arc<Mutex<InjectorState>>,
}

impl FaultInjector {
    /// An injector over `config`'s seeded stream.
    pub fn new(config: FaultConfig) -> Self {
        FaultInjector {
            state: Arc::new(Mutex::new(InjectorState {
                rng: config.seed,
                injected: 0,
            })),
            config,
        }
    }

    /// The ambient injector configured by the [`FAULT_SEED_ENV`] environment
    /// variable, or `None` when the variable is unset/unparsable.
    pub fn from_env() -> Option<Self> {
        let seed: u64 = std::env::var(FAULT_SEED_ENV).ok()?.parse().ok()?;
        Some(Self::new(FaultConfig::ambient(seed)))
    }

    /// A socket-chaos injector for the serving frontend, configured by
    /// [`FAULT_SEED_ENV`] + [`SOCK_FAULTS_ENV`] together; `None` unless both
    /// are set and parse. The stream is independent of the ambient
    /// connector/runtime injector so socket draws don't perturb connector
    /// replay determinism (the seed is offset by a fixed constant).
    pub fn socket_from_env() -> Option<Self> {
        let seed: u64 = std::env::var(FAULT_SEED_ENV).ok()?.parse().ok()?;
        let (tear, stall, reset, delay) = FaultConfig::socket_rates_from_env()?;
        Some(Self::new(FaultConfig::sock_chaos(
            seed.wrapping_add(0x050C_4E75),
            tear,
            stall,
            reset,
            delay,
        )))
    }

    /// The configuration this injector draws from.
    pub fn config(&self) -> FaultConfig {
        self.config
    }

    /// Number of faults injected so far across all clones.
    pub fn injected(&self) -> u64 {
        self.state.lock().expect("fault injector lock").injected
    }

    /// SplitMix64 step — a tiny, well-mixed deterministic generator; no OS
    /// entropy anywhere.
    fn next_f64(state: &mut InjectorState) -> f64 {
        state.rng = state.rng.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state.rng;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        (z >> 11) as f64 / (1u64 << 53) as f64
    }

    fn draw(&self, rate: f64) -> bool {
        if rate <= 0.0 {
            return false;
        }
        let mut st = self.state.lock().expect("fault injector lock");
        if self.config.max_faults.is_some_and(|max| st.injected >= max) {
            return false;
        }
        let fail = Self::next_f64(&mut st) < rate;
        if fail {
            st.injected += 1;
        }
        fail
    }

    /// Draw: should the next connector shipment fail transiently?
    pub fn should_fail_wire(&self) -> bool {
        self.draw(self.config.wire_failure_rate)
    }

    /// Draw: should the next external-runtime reservation fail transiently?
    pub fn should_fail_runtime(&self) -> bool {
        self.draw(self.config.runtime_failure_rate)
    }

    /// Draw: should the next socket read be torn into a tiny fragment?
    pub fn should_tear_read(&self) -> bool {
        self.draw(self.config.sock_tear_rate)
    }

    /// Draw: should the next read-readiness event be skipped (stalled peer)?
    pub fn should_stall_read(&self) -> bool {
        self.draw(self.config.sock_stall_rate)
    }

    /// Draw: should the next response write reset the connection mid-frame?
    pub fn should_reset_write(&self) -> bool {
        self.draw(self.config.sock_reset_rate)
    }

    /// Draw: should the next accept burst be deferred one reactor round?
    pub fn should_delay_accept(&self) -> bool {
        self.draw(self.config.accept_delay_rate)
    }

    /// Draw: should this shard worker kill itself before serving the next
    /// request?
    pub fn should_kill_worker(&self) -> bool {
        self.draw(self.config.worker_kill_rate)
    }
}

/// One SplitMix64 step over caller-owned state — the same generator the
/// injector uses, exposed so jitter streams (client backoff, tests) stay
/// deterministic without sharing the injector's lock.
pub fn splitmix64_next(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// One SplitMix64 draw mapped to `[0, 1)`.
pub fn splitmix64_f64(state: &mut u64) -> f64 {
    (splitmix64_next(state) >> 11) as f64 / (1u64 << 53) as f64
}

/// Bounded retry with exponential backoff — the response executors wrap
/// around transiently failing boundary operations.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Total attempts including the first (≥ 1).
    pub max_attempts: u32,
    /// Backoff before attempt `n+1` is `base_backoff * 2^(n-1)`. Callers
    /// that model wire time (`simulate_wire`) really sleep it; unit tests
    /// do not.
    pub base_backoff: Duration,
    /// Jitter fraction in `[0, 1]`: [`RetryPolicy::backoff_jittered`]
    /// scales each exponential step by a deterministic draw from
    /// `[1 - jitter, 1 + jitter]` so synchronized clients don't
    /// thundering-herd a recovering server. `backoff_for` stays exact.
    pub jitter: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 4,
            base_backoff: Duration::from_millis(5),
            jitter: 0.25,
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries (one attempt).
    pub fn none() -> Self {
        RetryPolicy {
            max_attempts: 1,
            base_backoff: Duration::ZERO,
            jitter: 0.0,
        }
    }

    /// Backoff to pay before retry number `retry` (1-based): exponential in
    /// the retry count, `base_backoff * 2^(retry-1)`.
    pub fn backoff_for(&self, retry: u32) -> Duration {
        self.base_backoff * 2u32.saturating_pow(retry.saturating_sub(1))
    }

    /// [`RetryPolicy::backoff_for`] with deterministic jitter drawn from
    /// the caller's SplitMix64 `stream` (seed it from the fault stream or
    /// a per-client identity). The result is bounded by
    /// `backoff_for(retry) * [1 - jitter, 1 + jitter]`, with `jitter`
    /// clamped to `[0, 1]` so the backoff can never go negative.
    pub fn backoff_jittered(&self, retry: u32, stream: &mut u64) -> Duration {
        let exact = self.backoff_for(retry);
        let j = self.jitter.clamp(0.0, 1.0);
        if j == 0.0 || exact.is_zero() {
            return exact;
        }
        // Draw in [1 - j, 1 + j); mulf keeps sub-millisecond precision.
        let scale = 1.0 - j + 2.0 * j * splitmix64_f64(stream);
        exact.mul_f64(scale)
    }

    /// Run `op` up to [`RetryPolicy::max_attempts`] times, retrying only on
    /// [`Error::Transient`]. `on_retry(retry_number, backoff)` fires before
    /// each re-attempt (the caller decides whether to actually sleep the
    /// backoff — tests never do). Returns the last transient error when
    /// attempts are exhausted, and any non-transient error immediately.
    pub fn run<T>(
        &self,
        mut op: impl FnMut() -> Result<T>,
        mut on_retry: impl FnMut(u32, Duration),
    ) -> Result<T> {
        let attempts = self.max_attempts.max(1);
        let mut last = None;
        for attempt in 1..=attempts {
            match op() {
                Ok(v) => return Ok(v),
                Err(e) if e.is_transient() && attempt < attempts => {
                    on_retry(attempt, self.backoff_for(attempt));
                    last = Some(e);
                }
                Err(e) => return Err(e),
            }
        }
        Err(last.unwrap_or(Error::Transient { op: "retry".into() }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_replays_identically() {
        let a = FaultInjector::new(FaultConfig::flaky_wire(42, 0.5));
        let b = FaultInjector::new(FaultConfig::flaky_wire(42, 0.5));
        let draws_a: Vec<bool> = (0..64).map(|_| a.should_fail_wire()).collect();
        let draws_b: Vec<bool> = (0..64).map(|_| b.should_fail_wire()).collect();
        assert_eq!(draws_a, draws_b);
        assert_eq!(a.injected(), b.injected());
        assert!(a.injected() > 0, "rate 0.5 over 64 draws must inject");
    }

    #[test]
    fn rate_bounds_are_respected() {
        let never = FaultInjector::new(FaultConfig::flaky_wire(7, 0.0));
        assert!((0..100).all(|_| !never.should_fail_wire()));
        let always = FaultInjector::new(FaultConfig::flaky_wire(7, 1.0));
        assert!((0..100).all(|_| always.should_fail_wire()));
    }

    #[test]
    fn max_faults_caps_injection() {
        let mut config = FaultConfig::flaky_wire(3, 1.0);
        config.max_faults = Some(2);
        let inj = FaultInjector::new(config);
        assert!(inj.should_fail_wire());
        assert!(inj.should_fail_wire());
        assert!(!inj.should_fail_wire(), "healed after max_faults");
        assert_eq!(inj.injected(), 2);
    }

    #[test]
    fn clones_share_one_stream() {
        let mut config = FaultConfig::flaky_wire(9, 1.0);
        config.max_faults = Some(1);
        let a = FaultInjector::new(config);
        let b = a.clone();
        assert!(a.should_fail_wire());
        assert!(!b.should_fail_wire(), "clone sees the shared fault budget");
        assert_eq!(b.injected(), 1);
    }

    #[test]
    fn retry_policy_backoff_is_exponential() {
        let p = RetryPolicy {
            max_attempts: 4,
            base_backoff: Duration::from_millis(10),
            jitter: 0.0,
        };
        assert_eq!(p.backoff_for(1), Duration::from_millis(10));
        assert_eq!(p.backoff_for(2), Duration::from_millis(20));
        assert_eq!(p.backoff_for(3), Duration::from_millis(40));
    }

    #[test]
    fn socket_draws_share_the_stream_and_budget() {
        let mut config = FaultConfig::sock_chaos(11, 1.0, 1.0, 1.0, 1.0);
        config.max_faults = Some(3);
        let inj = FaultInjector::new(config);
        assert!(inj.should_tear_read());
        assert!(inj.should_stall_read());
        assert!(inj.should_reset_write());
        assert!(!inj.should_delay_accept(), "budget of 3 exhausted");
        assert_eq!(inj.injected(), 3);
    }

    #[test]
    fn worker_kill_switch_is_deterministic_and_bounded() {
        let mut config = FaultConfig::worker_chaos(13, 1.0);
        config.max_faults = Some(1);
        let inj = FaultInjector::new(config);
        assert!(inj.should_kill_worker());
        assert!(!inj.should_kill_worker(), "budget of 1 exhausted");
        assert_eq!(inj.injected(), 1);
        // The kill switch leaves every other boundary quiet.
        assert_eq!(config.wire_failure_rate, 0.0);
        assert!(!config.has_socket_faults());
        assert!(!FaultInjector::new(FaultConfig::quiet(13)).should_kill_worker());
    }

    #[test]
    fn sock_chaos_keeps_connector_boundary_quiet() {
        let c = FaultConfig::sock_chaos(5, 0.2, 0.2, 0.05, 0.2);
        assert_eq!(c.wire_failure_rate, 0.0);
        assert_eq!(c.runtime_failure_rate, 0.0);
        assert!(c.has_socket_faults());
        assert!(!FaultConfig::ambient(5).has_socket_faults());
    }

    #[test]
    fn jittered_backoff_is_bounded_and_deterministic() {
        let p = RetryPolicy {
            max_attempts: 6,
            base_backoff: Duration::from_millis(10),
            jitter: 0.25,
        };
        let mut s1 = 42u64;
        let mut s2 = 42u64;
        for retry in 1..=5 {
            let exact = p.backoff_for(retry);
            let a = p.backoff_jittered(retry, &mut s1);
            let b = p.backoff_jittered(retry, &mut s2);
            assert_eq!(a, b, "same stream state replays identically");
            assert!(
                a >= exact.mul_f64(0.75),
                "retry {retry}: {a:?} < lower bound"
            );
            assert!(
                a <= exact.mul_f64(1.25),
                "retry {retry}: {a:?} > upper bound"
            );
        }
        // Distinct streams must diverge (the anti-herd property).
        let mut sa = 1u64;
        let mut sb = 2u64;
        let spread: Vec<bool> = (1..=8)
            .map(|r| p.backoff_jittered(r, &mut sa) != p.backoff_jittered(r, &mut sb))
            .collect();
        assert!(spread.iter().any(|&d| d), "two clients never diverged");
    }

    #[test]
    fn zero_jitter_is_exact() {
        let p = RetryPolicy {
            max_attempts: 4,
            base_backoff: Duration::from_millis(10),
            jitter: 0.0,
        };
        let mut s = 7u64;
        assert_eq!(p.backoff_jittered(3, &mut s), p.backoff_for(3));
        assert_eq!(s, 7, "zero jitter must not consume the stream");
    }

    #[test]
    fn retry_run_retries_only_transient() {
        let p = RetryPolicy {
            max_attempts: 3,
            base_backoff: Duration::ZERO,
            jitter: 0.0,
        };
        // Heals on the third attempt.
        let mut calls = 0;
        let mut retries = 0;
        let out = p.run(
            || {
                calls += 1;
                if calls < 3 {
                    Err(Error::Transient { op: "t".into() })
                } else {
                    Ok(calls)
                }
            },
            |_, _| retries += 1,
        );
        assert_eq!(out.unwrap(), 3);
        assert_eq!(retries, 2);

        // Exhausts and returns the transient error.
        let exhausted = p.run(
            || -> Result<()> { Err(Error::Transient { op: "t".into() }) },
            |_, _| {},
        );
        assert!(exhausted.unwrap_err().is_transient());

        // Non-transient errors pass straight through.
        let mut calls = 0;
        let hard = p.run(
            || -> Result<()> {
                calls += 1;
                Err(Error::Codec("bad".into()))
            },
            |_, _| {},
        );
        assert!(matches!(hard.unwrap_err(), Error::Codec(_)));
        assert_eq!(calls, 1);
    }
}
