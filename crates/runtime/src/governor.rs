//! Budgeted, tracked memory allocation.
//!
//! A [`MemoryGovernor`] stands in for the memory limit of one *domain*: the
//! in-database UDF executor, the buffer pool, or a decoupled DL runtime.
//! Executors reserve bytes before materializing tensors and get back an RAII
//! [`Reservation`] that releases on drop, so accounting can never leak on an
//! early return. When a reservation would exceed the budget the governor
//! returns [`Error::OutOfMemory`] instead of allocating — the deterministic,
//! scale-independent OOM signal the Table 3 reproduction is built on.

use crate::error::{Error, Result};
use parking_lot::Mutex;
use std::sync::Arc;

#[derive(Debug)]
struct Inner {
    domain: String,
    /// `usize::MAX` means unlimited.
    budget: usize,
    state: Mutex<Counters>,
}

#[derive(Debug, Default, Clone, Copy)]
struct Counters {
    in_use: usize,
    peak: usize,
    reservations: u64,
    oom_events: u64,
}

/// A shareable, thread-safe memory budget for one resource domain.
#[derive(Debug, Clone)]
pub struct MemoryGovernor {
    inner: Arc<Inner>,
}

impl MemoryGovernor {
    /// A governor with a hard budget in bytes.
    pub fn with_budget(domain: impl Into<String>, budget: usize) -> Self {
        MemoryGovernor {
            inner: Arc::new(Inner {
                domain: domain.into(),
                budget,
                state: Mutex::new(Counters::default()),
            }),
        }
    }

    /// A governor that never rejects (still tracks usage and peak).
    pub fn unlimited(domain: impl Into<String>) -> Self {
        Self::with_budget(domain, usize::MAX)
    }

    /// The domain label used in error messages and metrics.
    pub fn domain(&self) -> &str {
        &self.inner.domain
    }

    /// The configured budget (`usize::MAX` when unlimited).
    pub fn budget(&self) -> usize {
        self.inner.budget
    }

    /// Bytes currently reserved.
    pub fn in_use(&self) -> usize {
        self.inner.state.lock().in_use
    }

    /// High-water mark since creation or the last [`reset_peak`](Self::reset_peak).
    pub fn peak(&self) -> usize {
        self.inner.state.lock().peak
    }

    /// Number of OOM rejections so far.
    pub fn oom_events(&self) -> u64 {
        self.inner.state.lock().oom_events
    }

    /// Reset the peak tracker (between benchmark runs).
    pub fn reset_peak(&self) {
        let mut st = self.inner.state.lock();
        st.peak = st.in_use;
    }

    /// Check whether `bytes` *would* fit without reserving — used by the
    /// optimizer's ahead-of-time memory estimation (§7.1).
    pub fn would_fit(&self, bytes: usize) -> bool {
        let st = self.inner.state.lock();
        bytes <= self.inner.budget.saturating_sub(st.in_use)
    }

    /// Reserve `bytes`, failing with [`Error::OutOfMemory`] if over budget.
    pub fn reserve(&self, bytes: usize) -> Result<Reservation> {
        let mut st = self.inner.state.lock();
        if bytes > self.inner.budget.saturating_sub(st.in_use) {
            st.oom_events += 1;
            return Err(Error::OutOfMemory {
                domain: self.inner.domain.clone(),
                requested: bytes,
                in_use: st.in_use,
                budget: self.inner.budget,
            });
        }
        st.in_use += bytes;
        st.peak = st.peak.max(st.in_use);
        st.reservations += 1;
        drop(st);
        Ok(Reservation {
            governor: self.inner.clone(),
            bytes,
        })
    }

    /// Reserve enough bytes for a dense `f32` tensor of `elements` elements.
    pub fn reserve_elements(&self, elements: usize) -> Result<Reservation> {
        self.reserve(elements * relserve_tensor::ELEM_BYTES)
    }
}

/// RAII guard for reserved bytes; releases them on drop.
///
/// Reservations may be merged ([`absorb`](Self::absorb)) when an executor
/// hands a group of tensors to a single owner, or partially released
/// ([`shrink`](Self::shrink)) when an intermediate is truncated.
#[derive(Debug)]
pub struct Reservation {
    governor: Arc<Inner>,
    bytes: usize,
}

impl Reservation {
    /// Bytes held by this reservation.
    pub fn bytes(&self) -> usize {
        self.bytes
    }

    /// Merge another reservation from the *same* governor into this one.
    ///
    /// # Panics
    /// Panics if the reservations come from different governors; that is a
    /// wiring bug, not a data-dependent condition.
    pub fn absorb(&mut self, other: Reservation) {
        assert!(
            Arc::ptr_eq(&self.governor, &other.governor),
            "cannot merge reservations from different governors"
        );
        self.bytes += other.bytes;
        // Skip `other`'s Drop: its bytes now belong to `self`.
        std::mem::forget(other);
    }

    /// Release part of the reservation early.
    pub fn shrink(&mut self, by: usize) {
        let by = by.min(self.bytes);
        self.bytes -= by;
        let mut st = self.governor.state.lock();
        st.in_use = st.in_use.saturating_sub(by);
    }

    /// Grow the reservation by `by` bytes against the same governor,
    /// failing with [`Error::OutOfMemory`] (and leaving the reservation
    /// unchanged) when the growth would exceed the budget. This is how a
    /// long-lived owner — e.g. a result cache charging each admitted entry —
    /// extends its claim incrementally instead of reserving a worst case up
    /// front.
    pub fn grow(&mut self, by: usize) -> Result<()> {
        let mut st = self.governor.state.lock();
        if by > self.governor.budget.saturating_sub(st.in_use) {
            st.oom_events += 1;
            return Err(Error::OutOfMemory {
                domain: self.governor.domain.clone(),
                requested: by,
                in_use: st.in_use,
                budget: self.governor.budget,
            });
        }
        st.in_use += by;
        st.peak = st.peak.max(st.in_use);
        drop(st);
        self.bytes += by;
        Ok(())
    }
}

impl Drop for Reservation {
    fn drop(&mut self) {
        let mut st = self.governor.state.lock();
        st.in_use = st.in_use.saturating_sub(self.bytes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reserve_within_budget() {
        let g = MemoryGovernor::with_budget("test", 100);
        let r = g.reserve(60).unwrap();
        assert_eq!(g.in_use(), 60);
        drop(r);
        assert_eq!(g.in_use(), 0);
        assert_eq!(g.peak(), 60);
    }

    #[test]
    fn oom_when_over_budget() {
        let g = MemoryGovernor::with_budget("udf-centric", 100);
        let _r = g.reserve(80).unwrap();
        let err = g.reserve(30).unwrap_err();
        match err {
            Error::OutOfMemory {
                domain,
                requested,
                in_use,
                budget,
            } => {
                assert_eq!(domain, "udf-centric");
                assert_eq!(requested, 30);
                assert_eq!(in_use, 80);
                assert_eq!(budget, 100);
            }
            other => panic!("expected OOM, got {other:?}"),
        }
        assert_eq!(g.oom_events(), 1);
        // The failed reservation must not have leaked accounting.
        assert_eq!(g.in_use(), 80);
    }

    #[test]
    fn unlimited_never_fails() {
        let g = MemoryGovernor::unlimited("free");
        let _r = g.reserve(usize::MAX / 2).unwrap();
        assert!(g.would_fit(usize::MAX / 3));
    }

    #[test]
    fn would_fit_is_non_mutating() {
        let g = MemoryGovernor::with_budget("test", 100);
        assert!(g.would_fit(100));
        assert!(!g.would_fit(101));
        assert_eq!(g.in_use(), 0);
    }

    #[test]
    fn peak_tracks_high_water_mark() {
        let g = MemoryGovernor::with_budget("test", 100);
        {
            let _a = g.reserve(40).unwrap();
            let _b = g.reserve(50).unwrap();
        }
        assert_eq!(g.peak(), 90);
        assert_eq!(g.in_use(), 0);
        g.reset_peak();
        assert_eq!(g.peak(), 0);
    }

    #[test]
    fn absorb_merges_lifetimes() {
        let g = MemoryGovernor::with_budget("test", 100);
        let mut a = g.reserve(10).unwrap();
        let b = g.reserve(20).unwrap();
        a.absorb(b);
        assert_eq!(a.bytes(), 30);
        assert_eq!(g.in_use(), 30);
        drop(a);
        assert_eq!(g.in_use(), 0);
    }

    #[test]
    fn shrink_releases_partially() {
        let g = MemoryGovernor::with_budget("test", 100);
        let mut r = g.reserve(50).unwrap();
        r.shrink(20);
        assert_eq!(g.in_use(), 30);
        r.shrink(1000); // clamped
        assert_eq!(g.in_use(), 0);
        drop(r);
        assert_eq!(g.in_use(), 0);
    }

    #[test]
    fn grow_extends_and_respects_budget() {
        let g = MemoryGovernor::with_budget("test", 100);
        let mut r = g.reserve(40).unwrap();
        r.grow(30).unwrap();
        assert_eq!(r.bytes(), 70);
        assert_eq!(g.in_use(), 70);
        // Over-budget growth fails atomically: nothing changes.
        assert!(r.grow(31).is_err());
        assert_eq!(r.bytes(), 70);
        assert_eq!(g.in_use(), 70);
        assert_eq!(g.oom_events(), 1);
        drop(r);
        assert_eq!(g.in_use(), 0);
    }

    #[test]
    fn grow_after_shrink_round_trips() {
        let g = MemoryGovernor::with_budget("test", 100);
        let mut r = g.reserve(50).unwrap();
        r.shrink(50);
        r.grow(80).unwrap();
        assert_eq!(g.in_use(), 80);
        assert_eq!(g.peak(), 80);
        drop(r);
        assert_eq!(g.in_use(), 0);
    }

    #[test]
    fn reserve_elements_uses_f32_width() {
        let g = MemoryGovernor::with_budget("test", 40);
        assert!(g.reserve_elements(10).is_ok());
        assert!(g.reserve_elements(11).is_err());
    }

    #[test]
    fn concurrent_reservations_are_consistent() {
        let g = MemoryGovernor::with_budget("test", 1_000_000);
        std::thread::scope(|s| {
            for _ in 0..8 {
                let g = g.clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        let r = g.reserve(100).unwrap();
                        drop(r);
                    }
                });
            }
        });
        assert_eq!(g.in_use(), 0);
    }
}
