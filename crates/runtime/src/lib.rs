//! Unified resource management for `relserve` (§3 of the paper).
//!
//! The paper argues that an RDBMS serving DL inference must coordinate
//! resources across three runtimes that traditionally manage themselves:
//! the database engine, in-UDF kernel libraries, and external DL frameworks.
//! This crate provides that coordination layer:
//!
//! * [`MemoryGovernor`] — tracked, budgeted allocation. Every tensor an
//!   executor materializes is charged against a governor; exceeding the
//!   budget yields a *recoverable* [`Error::OutOfMemory`], which is how the
//!   repo reproduces the deterministic OOM column of the paper's Table 3.
//! * [`ThreadCoordinator`] — splits physical cores between DB worker threads
//!   and kernel (linear-algebra) threads so in-UDF kernels do not
//!   oversubscribe the machine behind the scheduler's back (§3.1).
//! * [`KernelPool`] — the persistent worker pool those kernel threads live
//!   on: long-lived threads claim stripe tasks from a shared injector, so
//!   per-invocation thread spawn/join cost disappears from the kernel path.
//! * [`DeviceModel`] — the producer-transfer-consumer latency estimator used
//!   for CPU/GPU placement decisions (§3.2).
//! * [`Connector`] — the simulated cross-system boundary (ConnectorX in the
//!   paper): rows are genuinely serialized, shipped over a bandwidth/latency
//!   model, and deserialized on the other side.
//! * [`ExternalRuntime`] — a decoupled DL runtime profile (TensorFlow- or
//!   PyTorch-like) with its own governor and memory-overhead factor; the
//!   DL-centric executor in `relserve-core` runs models "inside" it.

#![warn(missing_docs)]

pub mod connector;
pub mod context;
pub mod device;
pub mod error;
pub mod external;
pub mod faults;
pub mod governor;
pub mod pool;
pub mod threads;
pub mod tuning;

pub use connector::{Connector, ConnectorStats, TransferProfile};
pub use context::{ContextStats, ExecContext};
pub use device::{Device, DeviceKind, DeviceModel, PlacementDecision};
pub use error::{Error, Result};
pub use external::{ExternalRuntime, RuntimeProfile};
pub use faults::{
    splitmix64_f64, splitmix64_next, FaultConfig, FaultInjector, RetryPolicy, FAULT_SEED_ENV,
    SOCK_FAULTS_ENV,
};
pub use governor::{MemoryGovernor, Reservation};
pub use pool::{KernelPool, PoolCounters, PoolHandle};
pub use threads::{
    AdmissionPolicy, AdmissionStats, BudgetGrant, ClassAdmissionStats, Priority, ThreadCoordinator,
    ThreadPlan,
};
pub use tuning::{tune, TunedPlan, TuningReport};
