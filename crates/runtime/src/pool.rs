//! Persistent kernel thread pool (§3.1).
//!
//! The seed implementation spawned a fresh scope of OS threads
//! for every parallel kernel invocation — tens of microseconds of
//! create/join overhead per matmul, paid again for every block of every
//! layer. [`KernelPool`] replaces that with long-lived workers created once
//! per [`crate::ThreadCoordinator`] budget:
//!
//! * A *batch* of `n_tasks` independent stripe tasks is published to a
//!   shared injector queue; workers claim task indices with an atomic
//!   counter (work-stealing-lite: contention-free chunk claiming rather
//!   than per-worker deques, which is enough when tasks are pre-sized
//!   stripes).
//! * The **submitting thread participates**: after publishing it claims and
//!   runs tasks like any worker. This makes `run_stripes` deadlock-free
//!   under nesting (a pool task may itself submit a batch) and lets a
//!   zero-worker pool degrade to serial execution.
//! * Kernels reach the pool through the [`StripeRunner`] trait from
//!   `relserve-tensor`, via a query-scoped [`PoolHandle`] that carries an
//!   admitted thread *budget*: a batch submitted through a handle may
//!   occupy at most `budget` threads (the submitter plus `budget - 1`
//!   helper workers), so concurrent queries sharing one pool stay inside
//!   their own admission-controlled slice. There is no process-global
//!   runner; the tensor crate itself owns no threads.
//!
//! Counters ([`KernelPool::counters`]) expose tasks run, tasks *stolen*
//! (executed by a pool worker rather than the submitter), and worker park
//! events, so tests and the tuning ablation can observe scheduling behavior
//! instead of guessing.

use crate::error::{Error, Result};
use relserve_tensor::parallel::{Parallelism, StripeRunner};
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// Best-effort string form of a panic payload (panics carry `&str` or
/// `String` in practice; anything else gets a placeholder).
fn payload_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Type-erased pointer to a borrowed `&(dyn Fn(usize) + Sync)` task closure.
///
/// The `'static` lifetime is a lie told to the type system: soundness comes
/// from [`KernelPool::run_stripes`] blocking until every claimed task index
/// has finished, so the referent provably outlives every dereference. The
/// pointer itself is only dereferenced for successfully claimed indices.
#[derive(Clone, Copy)]
struct TaskPtr(&'static (dyn Fn(usize) + Sync));

// SAFETY: the referent is `Sync` (shared calls from any thread are fine) and
// outlives the batch per the blocking-submit contract above.
unsafe impl Send for TaskPtr {}
unsafe impl Sync for TaskPtr {}

/// One published batch of stripe tasks.
struct Batch {
    task: TaskPtr,
    n_tasks: usize,
    /// Next unclaimed task index; claims are `fetch_add` so they never race.
    next: AtomicUsize,
    /// Completed task count; the batch is done when this reaches `n_tasks`.
    finished: AtomicUsize,
    /// Helper-worker slots remaining: a worker must claim one before it may
    /// drain this batch, which is how a budgeted submission keeps a batch
    /// from occupying more than its handle's share of the pool. The
    /// submitter is not counted — it always participates.
    helper_slots: AtomicUsize,
    panicked: AtomicBool,
    /// First captured panic payload, surfaced to the submitter as
    /// [`Error::KernelPanicked`] once the whole batch has completed.
    panic_message: Mutex<Option<String>>,
    /// Completion signal for the submitting thread.
    done_lock: Mutex<bool>,
    done_cv: Condvar,
}

impl Batch {
    fn is_exhausted(&self) -> bool {
        self.next.load(Ordering::Relaxed) >= self.n_tasks
    }

    /// Claim one helper slot; a worker that fails must leave the batch to
    /// the threads already inside its budget.
    fn try_claim_helper(&self) -> bool {
        self.helper_slots
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |s| s.checked_sub(1))
            .is_ok()
    }
}

/// Monotonic scheduling counters, readable at any time.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolCounters {
    /// Stripe tasks executed, by anyone.
    pub tasks_run: usize,
    /// Tasks executed by a pool worker rather than the submitting thread.
    pub steals: usize,
    /// Times a worker went to sleep waiting for work.
    pub parks: usize,
}

#[derive(Default)]
struct Counters {
    tasks_run: AtomicUsize,
    steals: AtomicUsize,
    parks: AtomicUsize,
}

struct Injector {
    batches: VecDeque<Arc<Batch>>,
    shutdown: bool,
}

struct Shared {
    injector: Mutex<Injector>,
    work_cv: Condvar,
    counters: Counters,
}

impl Shared {
    /// Run claimable tasks from `batch` until none remain. `stealing` marks
    /// execution by a pool worker (vs the submitter) for the counters.
    fn drain_batch(&self, batch: &Batch, stealing: bool) {
        loop {
            let t = batch.next.fetch_add(1, Ordering::Relaxed);
            if t >= batch.n_tasks {
                return;
            }
            if let Err(payload) = catch_unwind(AssertUnwindSafe(|| (batch.task.0)(t))) {
                let mut msg = batch.panic_message.lock().expect("panic message lock");
                msg.get_or_insert_with(|| payload_message(payload.as_ref()));
                drop(msg);
                batch.panicked.store(true, Ordering::Relaxed);
            }
            self.counters.tasks_run.fetch_add(1, Ordering::Relaxed);
            if stealing {
                self.counters.steals.fetch_add(1, Ordering::Relaxed);
            }
            if batch.finished.fetch_add(1, Ordering::Relaxed) + 1 == batch.n_tasks {
                *batch.done_lock.lock().expect("batch done lock") = true;
                batch.done_cv.notify_all();
            }
        }
    }

    fn worker_loop(&self) {
        loop {
            let batch = {
                let mut inj = self.injector.lock().expect("injector lock");
                loop {
                    if inj.shutdown {
                        return;
                    }
                    // Drop batches everyone has finished claiming from.
                    while inj.batches.front().is_some_and(|b| b.is_exhausted()) {
                        inj.batches.pop_front();
                    }
                    if let Some(b) = inj
                        .batches
                        .iter()
                        .find(|b| !b.is_exhausted() && b.try_claim_helper())
                    {
                        break Arc::clone(b);
                    }
                    self.counters.parks.fetch_add(1, Ordering::Relaxed);
                    inj = self.work_cv.wait(inj).expect("injector wait");
                }
            };
            self.drain_batch(&batch, true);
        }
    }
}

/// A persistent pool of kernel worker threads; see the module docs.
pub struct KernelPool {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl KernelPool {
    /// A pool with `workers` long-lived background threads. The submitting
    /// thread always participates in its own batches, so a pool sized for a
    /// `kernel_threads` budget wants `kernel_threads - 1` workers; a
    /// zero-worker pool is valid and runs everything on the caller.
    pub fn new(workers: usize) -> Self {
        let shared = Arc::new(Shared {
            injector: Mutex::new(Injector {
                batches: VecDeque::new(),
                shutdown: false,
            }),
            work_cv: Condvar::new(),
            counters: Counters::default(),
        });
        let handles = (0..workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("relserve-kernel-{i}"))
                    .spawn(move || shared.worker_loop())
                    .expect("spawn kernel worker")
            })
            .collect();
        KernelPool {
            shared,
            workers: handles,
        }
    }

    /// A pool sized for a machine with `cores` cores: one thread is the
    /// submitter, the rest are workers.
    pub fn for_cores(cores: usize) -> Self {
        Self::new(cores.max(1) - 1)
    }

    /// Number of background worker threads (excludes the submitter).
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// Snapshot of the scheduling counters.
    pub fn counters(&self) -> PoolCounters {
        let c = &self.shared.counters;
        PoolCounters {
            tasks_run: c.tasks_run.load(Ordering::Relaxed),
            steals: c.steals.load(Ordering::Relaxed),
            parks: c.parks.load(Ordering::Relaxed),
        }
    }

    /// A [`Parallelism`] grant over this pool capped at `threads`: the seam
    /// value tensor kernels take in place of a bare thread count. Intended
    /// for benches and tests that drive the pool without an admission
    /// coordinator; query execution goes through `ExecContext` instead.
    pub fn parallelism(self: &Arc<Self>, threads: usize) -> Parallelism {
        let handle = PoolHandle::new(Arc::clone(self), threads);
        Parallelism::new(Arc::new(handle), threads)
    }

    /// Run a batch that may occupy at most `budget` threads of this pool:
    /// the submitting thread plus up to `budget - 1` helper workers. This is
    /// the primitive behind [`PoolHandle`]; `budget` is clamped to at least
    /// 1 (the submitter always runs).
    ///
    /// A panicking task does **not** panic the submitting thread: the whole
    /// batch still runs to completion (the pool stays reusable) and the
    /// first captured panic payload comes back as
    /// [`Error::KernelPanicked`], so one poisoned query surfaces a typed
    /// error instead of aborting a serving thread.
    pub fn run_batch(
        &self,
        n_tasks: usize,
        task: &(dyn Fn(usize) + Sync),
        budget: usize,
    ) -> Result<()> {
        if n_tasks == 0 {
            return Ok(());
        }
        // SAFETY: see `TaskPtr` — we block on batch completion below, so the
        // borrow outlives every dereference.
        let erased: &'static (dyn Fn(usize) + Sync) =
            unsafe { std::mem::transmute::<&(dyn Fn(usize) + Sync), _>(task) };
        let helpers = budget.max(1) - 1;
        let batch = Arc::new(Batch {
            task: TaskPtr(erased),
            n_tasks,
            next: AtomicUsize::new(0),
            finished: AtomicUsize::new(0),
            helper_slots: AtomicUsize::new(helpers.min(self.workers.len())),
            panicked: AtomicBool::new(false),
            panic_message: Mutex::new(None),
            done_lock: Mutex::new(false),
            done_cv: Condvar::new(),
        });
        if n_tasks > 1 && helpers > 0 && !self.workers.is_empty() {
            let mut inj = self.shared.injector.lock().expect("injector lock");
            inj.batches.push_back(Arc::clone(&batch));
            drop(inj);
            self.shared.work_cv.notify_all();
        }
        // The submitter helps; this also covers the zero-worker pool,
        // budget-1 grants, and nested submissions from inside a worker.
        self.shared.drain_batch(&batch, false);
        let mut done = batch.done_lock.lock().expect("batch done lock");
        while !*done {
            done = batch.done_cv.wait(done).expect("batch done wait");
        }
        drop(done);
        if batch.panicked.load(Ordering::Relaxed) {
            let message = batch
                .panic_message
                .lock()
                .expect("panic message lock")
                .take()
                .unwrap_or_else(|| "unknown panic".to_string());
            return Err(Error::KernelPanicked { message });
        }
        Ok(())
    }

    /// Legacy infallible form of [`KernelPool::run_batch`] behind the
    /// [`StripeRunner`] seam (whose signature cannot carry errors):
    /// re-raises a captured task panic on the submitting thread. Callers
    /// that can propagate typed errors should use `run_batch`.
    pub fn run_stripes_budgeted(
        &self,
        n_tasks: usize,
        task: &(dyn Fn(usize) + Sync),
        budget: usize,
    ) {
        if let Err(e) = self.run_batch(n_tasks, task, budget) {
            panic!("{e}");
        }
    }
}

/// A query-scoped handle onto a shared [`KernelPool`], capped at an admitted
/// thread budget. Cloning shares the pool and budget; every submission
/// through the handle uses budgeted publication, so two queries holding
/// handles with budgets `a` and `b` can never occupy more than `a + b`
/// threads of the pool between them.
#[derive(Clone)]
pub struct PoolHandle {
    pool: Arc<KernelPool>,
    budget: usize,
}

impl PoolHandle {
    /// A handle over `pool` limited to `budget` threads (min 1).
    pub fn new(pool: Arc<KernelPool>, budget: usize) -> Self {
        PoolHandle {
            pool,
            budget: budget.max(1),
        }
    }

    /// The admitted thread budget of this handle.
    pub fn budget(&self) -> usize {
        self.budget
    }

    /// The shared pool behind this handle.
    pub fn pool(&self) -> &Arc<KernelPool> {
        &self.pool
    }
}

impl StripeRunner for PoolHandle {
    fn run_stripes(&self, n_tasks: usize, task: &(dyn Fn(usize) + Sync)) {
        self.pool.run_stripes_budgeted(n_tasks, task, self.budget);
    }

    fn max_concurrency(&self) -> usize {
        self.budget.min(self.pool.workers() + 1)
    }
}

impl std::fmt::Debug for PoolHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PoolHandle")
            .field("budget", &self.budget)
            .field("pool_workers", &self.pool.workers())
            .finish()
    }
}

impl StripeRunner for KernelPool {
    /// Run `task(0..n_tasks)` to completion, sharing the work with every
    /// pool worker (an unbudgeted submission). Blocks until every task has
    /// finished; panics (after the whole batch completes) if any task
    /// panicked.
    fn run_stripes(&self, n_tasks: usize, task: &(dyn Fn(usize) + Sync)) {
        self.run_stripes_budgeted(n_tasks, task, self.workers.len() + 1);
    }

    fn max_concurrency(&self) -> usize {
        self.workers.len() + 1
    }
}

impl Drop for KernelPool {
    fn drop(&mut self) {
        {
            let mut inj = self.shared.injector.lock().expect("injector lock");
            inj.shutdown = true;
        }
        self.shared.work_cv.notify_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl std::fmt::Debug for KernelPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("KernelPool")
            .field("workers", &self.workers.len())
            .field("counters", &self.counters())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_sum(pool: &KernelPool, n_tasks: usize) -> usize {
        let sum = AtomicUsize::new(0);
        pool.run_stripes(n_tasks, &|t| {
            sum.fetch_add(t + 1, Ordering::Relaxed);
        });
        sum.load(Ordering::Relaxed)
    }

    #[test]
    fn runs_every_task_exactly_once() {
        let pool = KernelPool::new(3);
        for n in [0, 1, 2, 7, 64] {
            assert_eq!(run_sum(&pool, n), n * (n + 1) / 2, "n_tasks={n}");
        }
    }

    #[test]
    fn zero_worker_pool_runs_on_caller() {
        let pool = KernelPool::new(0);
        assert_eq!(run_sum(&pool, 13), 13 * 14 / 2);
        let c = pool.counters();
        assert_eq!(c.tasks_run, 13);
        assert_eq!(c.steals, 0, "no workers, nothing can be stolen");
    }

    #[test]
    fn counters_track_tasks_and_accounting_is_consistent() {
        let pool = KernelPool::new(2);
        for _ in 0..16 {
            run_sum(&pool, 8);
        }
        let c = pool.counters();
        assert_eq!(c.tasks_run, 16 * 8);
        assert!(c.steals <= c.tasks_run);
    }

    #[test]
    fn reused_across_batches_without_respawn() {
        let pool = KernelPool::new(2);
        assert_eq!(pool.workers(), 2);
        let before = pool.counters().tasks_run;
        for n in 1..20 {
            run_sum(&pool, n);
        }
        assert_eq!(pool.counters().tasks_run - before, (1..20).sum::<usize>());
    }

    #[test]
    fn nested_submission_does_not_deadlock() {
        let pool = Arc::new(KernelPool::new(1));
        let inner_total = AtomicUsize::new(0);
        let p2 = Arc::clone(&pool);
        pool.run_stripes(4, &|_| {
            p2.run_stripes(3, &|t| {
                inner_total.fetch_add(t + 1, Ordering::Relaxed);
            });
        });
        assert_eq!(inner_total.load(Ordering::Relaxed), 4 * 6);
    }

    #[test]
    fn panicking_task_propagates_after_batch_completes() {
        let pool = KernelPool::new(2);
        let ran = AtomicUsize::new(0);
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.run_stripes(6, &|t| {
                ran.fetch_add(1, Ordering::Relaxed);
                if t == 2 {
                    panic!("boom");
                }
            });
        }));
        assert!(result.is_err());
        assert_eq!(ran.load(Ordering::Relaxed), 6, "all tasks still ran");
        // Pool is still usable after a panicked batch.
        assert_eq!(run_sum(&pool, 5), 15);

        // The typed primitive surfaces the same failure as an error value —
        // no panic on the submitting thread, payload captured verbatim.
        let ran = AtomicUsize::new(0);
        let err = pool
            .run_batch(
                6,
                &|t| {
                    ran.fetch_add(1, Ordering::Relaxed);
                    if t == 3 {
                        panic!("poisoned stripe {t}");
                    }
                },
                3,
            )
            .unwrap_err();
        match err {
            Error::KernelPanicked { ref message } => {
                assert_eq!(message, "poisoned stripe 3");
            }
            other => panic!("expected KernelPanicked, got {other:?}"),
        }
        assert_eq!(ran.load(Ordering::Relaxed), 6, "batch ran to completion");
        // And the pool is still usable after the typed failure too.
        assert_eq!(run_sum(&pool, 5), 15);
        assert!(pool.run_batch(4, &|_| {}, 2).is_ok());
    }

    #[test]
    fn concurrent_submitters_share_the_pool() {
        let pool = Arc::new(KernelPool::new(3));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let pool = Arc::clone(&pool);
                s.spawn(move || {
                    for _ in 0..25 {
                        assert_eq!(run_sum(&pool, 9), 45);
                    }
                });
            }
        });
        assert_eq!(pool.counters().tasks_run, 4 * 25 * 9);
    }

    #[test]
    fn for_cores_reserves_the_submitter() {
        assert_eq!(KernelPool::for_cores(4).workers(), 3);
        assert_eq!(KernelPool::for_cores(1).workers(), 0);
        assert_eq!(KernelPool::for_cores(0).workers(), 0);
    }

    #[test]
    fn budget_one_never_publishes_to_workers() {
        // A budget-1 batch stays on the submitter even with idle workers:
        // nothing can be stolen, so the steal counter must not move.
        let pool = KernelPool::new(2);
        let before = pool.counters().steals;
        let sum = AtomicUsize::new(0);
        for _ in 0..8 {
            pool.run_stripes_budgeted(
                16,
                &|t| {
                    sum.fetch_add(t + 1, Ordering::Relaxed);
                },
                1,
            );
        }
        assert_eq!(sum.load(Ordering::Relaxed), 8 * 16 * 17 / 2);
        assert_eq!(pool.counters().steals, before);
    }

    #[test]
    fn budgeted_batches_complete_for_every_budget() {
        let pool = KernelPool::new(3);
        for budget in [0, 1, 2, 3, 4, 99] {
            let sum = AtomicUsize::new(0);
            pool.run_stripes_budgeted(
                11,
                &|t| {
                    sum.fetch_add(t + 1, Ordering::Relaxed);
                },
                budget,
            );
            assert_eq!(sum.load(Ordering::Relaxed), 11 * 12 / 2, "budget={budget}");
        }
    }

    #[test]
    fn pool_handle_caps_concurrency_report() {
        let pool = Arc::new(KernelPool::new(3));
        let h = PoolHandle::new(Arc::clone(&pool), 2);
        assert_eq!(h.budget(), 2);
        assert_eq!(h.max_concurrency(), 2);
        let wide = PoolHandle::new(Arc::clone(&pool), 64);
        assert_eq!(wide.max_concurrency(), 4, "capped by pool size");
        let zero = PoolHandle::new(pool, 0);
        assert_eq!(zero.budget(), 1, "budget clamps to the submitter");
    }

    #[test]
    fn parallelism_grant_runs_on_the_pool() {
        let pool = Arc::new(KernelPool::new(2));
        let par = pool.parallelism(3);
        assert_eq!(par.threads(), 3);
        let sum = AtomicUsize::new(0);
        par.run_stripes(9, &|t| {
            sum.fetch_add(t + 1, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 45);
    }
}
