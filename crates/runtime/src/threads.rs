//! Coordinated thread budgeting between DB workers and kernel threads (§3.1).
//!
//! The paper observes that when RDBMS worker threads execute pipeline stages
//! containing linear-algebra operators, and each operator independently spins
//! up its own OpenMP-style thread pool, the machine is oversubscribed and
//! context-switch overhead dominates. The fix is a single coordinator that
//! hands each side an explicit share of the cores.
//!
//! Beyond per-query planning, [`ThreadCoordinator`] is the **admission
//! point** for concurrent queries: each query requests its plan's worst-case
//! thread count and is granted `min(requested, remaining)` kernel threads
//! (blocking only when nothing at all remains), recorded in a
//! [`BudgetGrant`] that releases its share when dropped. Cloned coordinators
//! share the same admission ledger and the same lazily-created
//! [`KernelPool`], so sessions that should compete for one machine's cores
//! are built from clones of one coordinator.

use crate::error::{Error, Result};
use crate::pool::KernelPool;
use std::collections::BTreeSet;
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::{Duration, Instant};

/// An agreed split of physical cores between the two runtimes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ThreadPlan {
    /// Threads driving relational pipeline stages (scans, joins, aggregates).
    pub db_workers: usize,
    /// Threads each linear-algebra kernel invocation may use.
    pub kernel_threads: usize,
}

impl ThreadPlan {
    /// Total threads the plan would run concurrently in the worst case
    /// (every DB worker inside a kernel at once). A dedicated plan
    /// (`db_workers == 0`) still runs its kernels on one submitting thread,
    /// so the worst case is never reported as zero.
    pub fn worst_case_threads(&self) -> usize {
        self.db_workers.max(1) * self.kernel_threads.max(1)
    }
}

/// Admission class of a query: which band of the ticket queue it waits in.
///
/// The queue orders tickets by `(class, arrival)`, so every waiting
/// `Interactive` query is admitted before any waiting `Standard` one, and
/// `Batch` analytics only run when nothing more urgent is queued. Within one
/// class the order stays strict FIFO — a single-class workload behaves
/// exactly like the pre-band queue.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Priority {
    /// Latency-critical point lookups: first band, shortest patience —
    /// if even the front of the queue cannot get a core quickly, the
    /// caller would rather fail fast and retry elsewhere.
    Interactive,
    /// Ordinary queries (the default; matches the pre-band behavior).
    #[default]
    Standard,
    /// Throughput-oriented analytics: last band. Patient in the queue, but
    /// the first class to shed when the machine stays saturated.
    Batch,
}

impl Priority {
    /// All classes, most urgent first (also their queue-band order).
    pub const ALL: [Priority; 3] = [Priority::Interactive, Priority::Standard, Priority::Batch];

    /// Band index: 0 = most urgent. Used as the major sort key of the
    /// ticket queue and as the index into per-class stats arrays.
    pub fn rank(self) -> usize {
        match self {
            Priority::Interactive => 0,
            Priority::Standard => 1,
            Priority::Batch => 2,
        }
    }

    /// Inverse of [`Priority::rank`], for wire protocols.
    pub fn from_rank(rank: u8) -> Option<Priority> {
        match rank {
            0 => Some(Priority::Interactive),
            1 => Some(Priority::Standard),
            2 => Some(Priority::Batch),
            _ => None,
        }
    }

    /// The per-class default queue patience used by
    /// [`AdmissionPolicy::for_class`]: interactive queries fail fast,
    /// batch queries wait out long saturation before shedding.
    pub fn default_queue_timeout(self) -> Duration {
        match self {
            Priority::Interactive => Duration::from_secs(2),
            Priority::Standard => Duration::from_secs(30),
            Priority::Batch => Duration::from_secs(60),
        }
    }
}

impl std::fmt::Display for Priority {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Priority::Interactive => write!(f, "interactive"),
            Priority::Standard => write!(f, "standard"),
            Priority::Batch => write!(f, "batch"),
        }
    }
}

/// How a query is willing to wait for admission. The default policy never
/// blocks indefinitely: a saturated machine sheds the query with
/// [`Error::Overloaded`] after `queue_timeout` instead of queueing it
/// forever — the ROADMAP's "shed or delay load instead of degrading every
/// query to its serial floor".
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdmissionPolicy {
    /// Longest the query will sit in the admission queue before being shed
    /// with [`Error::Overloaded`]. `None` waits indefinitely (explicit
    /// opt-in; no default path blocks forever).
    pub queue_timeout: Option<Duration>,
    /// Smallest grant worth admitting with. A query that would be admitted
    /// with fewer threads keeps waiting — useful for plans whose parallel
    /// layout degenerates below a floor.
    pub min_threads: usize,
    /// Absolute deadline for the whole query. Expiring in the queue yields
    /// [`Error::DeadlineExceeded`]; executors also check it cooperatively at
    /// block/stage boundaries mid-flight.
    pub deadline: Option<Instant>,
    /// The queue band this query waits in. Defaults to
    /// [`Priority::Standard`]; a single-class workload is strict FIFO.
    pub priority: Priority,
    /// Depth-based load shedding at the door: if more than this many
    /// tickets are queued *ahead of* the query when it arrives, it is shed
    /// immediately with [`Error::Overloaded`] instead of joining the queue.
    /// `None` (the default) never depth-sheds. Giving `Batch` policies a
    /// small depth makes batch analytics the first load shed under
    /// saturation while interactive queries keep queueing.
    pub shed_queue_depth: Option<usize>,
}

impl Default for AdmissionPolicy {
    fn default() -> Self {
        AdmissionPolicy {
            queue_timeout: Some(Duration::from_secs(30)),
            min_threads: 1,
            deadline: None,
            priority: Priority::Standard,
            shed_queue_depth: None,
        }
    }
}

impl AdmissionPolicy {
    /// A policy that sheds after `timeout` (FIFO position permitting).
    pub fn with_queue_timeout(timeout: Duration) -> Self {
        AdmissionPolicy {
            queue_timeout: Some(timeout),
            ..Self::default()
        }
    }

    /// A policy whose query must finish by `deadline`.
    pub fn with_deadline(deadline: Instant) -> Self {
        AdmissionPolicy {
            deadline: Some(deadline),
            ..Self::default()
        }
    }

    /// The default policy of an admission `class`: the class's queue band
    /// plus its [`Priority::default_queue_timeout`] patience.
    pub fn for_class(class: Priority) -> Self {
        AdmissionPolicy {
            queue_timeout: Some(class.default_queue_timeout()),
            priority: class,
            ..Self::default()
        }
    }

    /// This policy moved into `class`'s queue band (keeps every other knob).
    pub fn in_class(mut self, class: Priority) -> Self {
        self.priority = class;
        self
    }

    /// This policy with depth-based door shedding (see
    /// [`AdmissionPolicy::shed_queue_depth`]).
    pub fn with_shed_depth(mut self, depth: usize) -> Self {
        self.shed_queue_depth = Some(depth);
        self
    }
}

/// Per-class slice of [`AdmissionStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClassAdmissionStats {
    /// Queries of this class admitted (granted a thread share).
    pub admitted: u64,
    /// Queries of this class shed with [`Error::Overloaded`] (queue timeout
    /// or depth-based door shedding).
    pub shed: u64,
    /// Queries of this class whose deadline expired while still queued.
    pub deadline_expired: u64,
}

/// Counters describing what the admission queue has done so far; see
/// [`ThreadCoordinator::admission_stats`]. The aggregate fields sum the
/// [`AdmissionStats::per_class`] breakdown.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AdmissionStats {
    /// Queries admitted (granted a thread share).
    pub admitted: u64,
    /// Queries shed with [`Error::Overloaded`] after their queue timeout or
    /// by depth-based door shedding.
    pub shed: u64,
    /// Queries whose deadline expired while still queued.
    pub deadline_expired: u64,
    /// The same counters broken down by admission class, indexed by
    /// [`Priority::rank`].
    pub per_class: [ClassAdmissionStats; 3],
}

impl AdmissionStats {
    /// The breakdown for one admission class.
    pub fn class(&self, class: Priority) -> ClassAdmissionStats {
        self.per_class[class.rank()]
    }
}

/// A waiting query's position: priority band first, then arrival order.
/// `BTreeSet` keeps the minimum — the next ticket to admit — at the front.
type TicketKey = (usize, u64);

/// Ledger guarded by the admission mutex: outstanding granted threads plus
/// the banded ticket queue of waiting queries.
struct AdmissionState {
    /// Sum of granted threads across live [`BudgetGrant`]s.
    outstanding: usize,
    /// Tickets of queries waiting for admission, minimum = next to admit.
    /// Ordered by `(priority band, ticket)`: within a band strict FIFO, so
    /// a stream of small queries cannot starve an earlier arrival of the
    /// same class, while a more urgent class overtakes the whole band.
    queue: BTreeSet<TicketKey>,
    /// Next ticket number to hand out.
    next_ticket: u64,
    stats: AdmissionStats,
}

/// Shared admission ledger across every clone of one coordinator.
struct Admission {
    cores: usize,
    state: Mutex<AdmissionState>,
    released: Condvar,
}

impl Admission {
    /// Remove `key` from the wait queue (used when a waiter gives up).
    /// The queue's front may have changed, so wake the other waiters.
    fn abandon(&self, state: &mut AdmissionState, key: TicketKey) {
        state.queue.remove(&key);
        self.released.notify_all();
    }
}

/// One query's admitted share of the kernel-thread budget. Dropping the
/// grant returns the share to the coordinator and wakes queries waiting for
/// admission.
pub struct BudgetGrant {
    admission: Arc<Admission>,
    granted: usize,
}

impl BudgetGrant {
    /// Number of kernel threads this query was granted.
    pub fn granted(&self) -> usize {
        self.granted
    }
}

impl Drop for BudgetGrant {
    fn drop(&mut self) {
        let mut state = self.admission.state.lock().expect("admission ledger lock");
        state.outstanding = state.outstanding.saturating_sub(self.granted);
        drop(state);
        self.admission.released.notify_all();
    }
}

impl std::fmt::Debug for BudgetGrant {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BudgetGrant")
            .field("granted", &self.granted)
            .finish()
    }
}

/// Allocates cores between DB workers and kernel threads, and admits
/// concurrent queries into bounded slices of the machine.
#[derive(Clone)]
pub struct ThreadCoordinator {
    cores: usize,
    admission: Arc<Admission>,
    /// The machine's one persistent kernel pool, created on first use and
    /// shared by every clone of this coordinator.
    pool: Arc<OnceLock<Arc<KernelPool>>>,
}

impl ThreadCoordinator {
    /// A coordinator for a machine with `cores` physical cores.
    pub fn new(cores: usize) -> Self {
        let cores = cores.max(1);
        ThreadCoordinator {
            cores,
            admission: Arc::new(Admission {
                cores,
                state: Mutex::new(AdmissionState {
                    outstanding: 0,
                    queue: BTreeSet::new(),
                    next_ticket: 0,
                    stats: AdmissionStats::default(),
                }),
                released: Condvar::new(),
            }),
            pool: Arc::new(OnceLock::new()),
        }
    }

    /// A coordinator sized from the current machine.
    pub fn from_host() -> Self {
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4);
        Self::new(cores)
    }

    /// Number of cores being managed.
    pub fn cores(&self) -> usize {
        self.cores
    }

    /// Plan for a query whose relational side runs `db_parallelism`
    /// concurrent pipeline workers: each kernel gets the leftover share so
    /// the worst case never exceeds the core count.
    pub fn plan_for(&self, db_parallelism: usize) -> ThreadPlan {
        let db_workers = db_parallelism.clamp(1, self.cores);
        let kernel_threads = (self.cores / db_workers).max(1);
        // Belt and braces: however db_workers and kernel_threads were
        // derived, the advertised worst case must fit the machine.
        let plan = ThreadPlan {
            db_workers,
            kernel_threads,
        };
        debug_assert!(plan.worst_case_threads() <= self.cores);
        plan
    }

    /// Plan for a dedicated (external) DL runtime: no DB workers compete, so
    /// kernels get every core. This is the thread-level advantage a decoupled
    /// TensorFlow/PyTorch process enjoys in the DL-centric architecture.
    pub fn plan_dedicated(&self) -> ThreadPlan {
        ThreadPlan {
            db_workers: 0,
            kernel_threads: self.cores,
        }
    }

    /// The machine's persistent kernel pool: one submitter slot plus
    /// `cores - 1` workers, created on first use and shared by every clone
    /// of this coordinator, so a kernel batch can use every core without
    /// oversubscribing (§3.1).
    pub fn kernel_pool(&self) -> Arc<KernelPool> {
        Arc::clone(
            self.pool
                .get_or_init(|| Arc::new(KernelPool::for_cores(self.cores))),
        )
    }

    /// Admit a query requesting `requested` kernel threads under the
    /// default [`AdmissionPolicy`]: grants `min(requested, remaining)` once
    /// the query reaches the front of the FIFO admission queue and at least
    /// one thread is free, shedding with [`Error::Overloaded`] if the
    /// machine stays saturated for the default queue timeout. The sum of
    /// outstanding grants never exceeds the cores and every admitted query
    /// holds at least one thread. The contract is one live grant per query
    /// thread: a thread must drop its current grant before requesting
    /// another, or it may wait on other queries to release theirs.
    pub fn admit(&self, requested: usize) -> Result<BudgetGrant> {
        self.admit_with(requested, &AdmissionPolicy::default())
    }

    /// Admit a query requesting `requested` kernel threads under `policy`.
    ///
    /// Queries wait in `(priority, arrival)` order: only the query at the
    /// front of the banded queue may take threads — within one class strict
    /// FIFO (a stream of one-thread queries cannot starve an earlier
    /// arrival of the same class), across classes every waiting
    /// [`Priority::Interactive`] query overtakes `Standard` and `Batch`
    /// ones. The front query is admitted as soon as at least
    /// `policy.min_threads` are free, receiving `min(requested, free)` of
    /// them. Instead of blocking indefinitely the wait is bounded three
    /// ways:
    ///
    /// * `policy.shed_queue_depth` exceeded on arrival → the query is shed
    ///   at the door with [`Error::Overloaded`] without queueing at all
    ///   (per-class load shedding: batch sheds first under saturation).
    /// * `policy.queue_timeout` elapses → the query is **shed** with
    ///   [`Error::Overloaded`] carrying the measured wait.
    /// * `policy.deadline` passes → [`Error::DeadlineExceeded`] (phase
    ///   `"admission-queue"`); a query that cannot finish in time should
    ///   not take threads at all.
    ///
    /// Either way the ticket is removed from the queue and other waiters
    /// are woken, so an abandoned waiter never blocks the queue.
    pub fn admit_with(&self, requested: usize, policy: &AdmissionPolicy) -> Result<BudgetGrant> {
        let requested = requested.max(1);
        let min_threads = policy.min_threads.clamp(1, self.admission.cores);
        let rank = policy.priority.rank();
        let start = Instant::now();
        let mut state = self.admission.state.lock().expect("admission ledger lock");
        let ticket = state.next_ticket;
        state.next_ticket += 1;
        let key: TicketKey = (rank, ticket);
        state.queue.insert(key);
        // Door check: per-class depth shedding. Counting only tickets
        // *ahead* of this one makes the threshold class-relative — a wall
        // of queued batch work never sheds an interactive arrival.
        if let Some(depth) = policy.shed_queue_depth {
            let ahead = state.queue.range(..key).count();
            if ahead > depth {
                state.stats.shed += 1;
                state.stats.per_class[rank].shed += 1;
                self.admission.abandon(&mut state, key);
                return Err(Error::Overloaded {
                    waited: start.elapsed(),
                    queue_timeout: policy.queue_timeout.unwrap_or(Duration::ZERO),
                });
            }
        }
        loop {
            if policy.deadline.is_some_and(|d| Instant::now() >= d) {
                state.stats.deadline_expired += 1;
                state.stats.per_class[rank].deadline_expired += 1;
                self.admission.abandon(&mut state, key);
                return Err(Error::DeadlineExceeded {
                    phase: "admission-queue".into(),
                });
            }
            let free = self.admission.cores - state.outstanding;
            if state.queue.iter().next() == Some(&key) && free >= min_threads {
                state.queue.remove(&key);
                let granted = requested.min(free);
                state.outstanding += granted;
                state.stats.admitted += 1;
                state.stats.per_class[rank].admitted += 1;
                drop(state);
                // The next ticket may now be at the front with threads to
                // spare; let it re-evaluate.
                self.admission.released.notify_all();
                return Ok(BudgetGrant {
                    admission: Arc::clone(&self.admission),
                    granted,
                });
            }
            // Bound the wait by whichever expires first: queue timeout or
            // deadline. With neither set, the caller explicitly opted into
            // an unbounded wait.
            let waited = start.elapsed();
            let until_timeout = match policy.queue_timeout {
                Some(timeout) => match timeout.checked_sub(waited) {
                    Some(left) => Some(left),
                    None => {
                        state.stats.shed += 1;
                        state.stats.per_class[rank].shed += 1;
                        self.admission.abandon(&mut state, key);
                        return Err(Error::Overloaded {
                            waited,
                            queue_timeout: timeout,
                        });
                    }
                },
                None => None,
            };
            let until_deadline = policy
                .deadline
                .map(|d| d.saturating_duration_since(Instant::now()));
            let bound = match (until_timeout, until_deadline) {
                (Some(a), Some(b)) => Some(a.min(b)),
                (Some(a), None) => Some(a),
                (None, Some(b)) => Some(b),
                (None, None) => None,
            };
            state = match bound {
                Some(dur) => {
                    self.admission
                        .released
                        .wait_timeout(state, dur)
                        .expect("admission wait")
                        .0
                }
                None => self.admission.released.wait(state).expect("admission wait"),
            };
        }
    }

    /// Sum of kernel threads currently granted across outstanding queries;
    /// never exceeds [`ThreadCoordinator::cores`].
    pub fn granted_threads(&self) -> usize {
        self.admission
            .state
            .lock()
            .expect("admission ledger lock")
            .outstanding
    }

    /// Number of queries currently waiting in the admission queue.
    pub fn queued(&self) -> usize {
        self.admission
            .state
            .lock()
            .expect("admission ledger lock")
            .queue
            .len()
    }

    /// Queries currently waiting in the admission queue, broken down by
    /// class (indexed by [`Priority::rank`]). SLA-driven serving layers
    /// watch these depths to step queries down to cheaper model versions.
    pub fn queue_depths(&self) -> [usize; 3] {
        let state = self.admission.state.lock().expect("admission ledger lock");
        let mut depths = [0usize; 3];
        for (rank, _) in state.queue.iter() {
            depths[*rank] += 1;
        }
        depths
    }

    /// Admission counters (admitted / shed / deadline-expired) across every
    /// clone of this coordinator.
    pub fn admission_stats(&self) -> AdmissionStats {
        self.admission
            .state
            .lock()
            .expect("admission ledger lock")
            .stats
    }

    /// Relative context-switch penalty of running `plan` on this machine:
    /// 1.0 when the plan fits the cores, growing linearly with
    /// oversubscription. Used by the hyper-parameter tuning ablation.
    pub fn oversubscription_penalty(&self, plan: ThreadPlan) -> f64 {
        let worst = plan.worst_case_threads().max(1) as f64;
        (worst / self.cores as f64).max(1.0)
    }
}

impl Default for ThreadCoordinator {
    fn default() -> Self {
        Self::from_host()
    }
}

impl std::fmt::Debug for ThreadCoordinator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadCoordinator")
            .field("cores", &self.cores)
            .field("granted", &self.granted_threads())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_divides_cores() {
        let c = ThreadCoordinator::new(8);
        let p = c.plan_for(4);
        assert_eq!(p.db_workers, 4);
        assert_eq!(p.kernel_threads, 2);
        assert_eq!(p.worst_case_threads(), 8);
    }

    #[test]
    fn plan_never_starves_kernels() {
        let c = ThreadCoordinator::new(4);
        let p = c.plan_for(16);
        assert_eq!(p.db_workers, 4);
        assert_eq!(p.kernel_threads, 1);
    }

    #[test]
    fn dedicated_uses_all_cores() {
        let c = ThreadCoordinator::new(8);
        let p = c.plan_dedicated();
        assert_eq!(p.kernel_threads, 8);
        assert_eq!(p.db_workers, 0);
        assert_eq!(p.worst_case_threads(), 8, "submitter counts");
    }

    #[test]
    fn zero_core_machines_are_clamped() {
        let c = ThreadCoordinator::new(0);
        assert_eq!(c.cores(), 1);
        assert_eq!(c.plan_for(0).db_workers, 1);
    }

    #[test]
    fn penalty_grows_with_oversubscription() {
        let c = ThreadCoordinator::new(4);
        let fits = ThreadPlan {
            db_workers: 2,
            kernel_threads: 2,
        };
        let over = ThreadPlan {
            db_workers: 4,
            kernel_threads: 4,
        };
        assert_eq!(c.oversubscription_penalty(fits), 1.0);
        assert_eq!(c.oversubscription_penalty(over), 4.0);
    }

    /// Regression (ISSUE 2): sweeping db_parallelism far past the core
    /// count, no plan may advertise a worst case above the machine, and the
    /// oversubscription penalty of every planned query is exactly 1.0.
    #[test]
    fn planned_queries_never_oversubscribe() {
        for cores in [1, 2, 3, 4, 7, 8, 64] {
            let c = ThreadCoordinator::new(cores);
            for db in 0..=4 * cores + 1 {
                let p = c.plan_for(db);
                assert!(
                    p.worst_case_threads() <= cores,
                    "cores={cores} db={db}: {p:?}"
                );
                assert_eq!(
                    c.oversubscription_penalty(p),
                    1.0,
                    "cores={cores} db={db}: {p:?}"
                );
            }
            assert!(c.plan_dedicated().worst_case_threads() <= cores);
        }
    }

    #[test]
    fn admission_grants_min_of_requested_and_remaining() {
        let c = ThreadCoordinator::new(4);
        let a = c.admit(3).unwrap();
        assert_eq!(a.granted(), 3);
        assert_eq!(c.granted_threads(), 3);
        let b = c.admit(3).unwrap();
        assert_eq!(b.granted(), 1, "only one core remained");
        assert_eq!(c.granted_threads(), 4);
        drop(a);
        assert_eq!(c.granted_threads(), 1);
        let again = c.admit(99).unwrap();
        assert_eq!(again.granted(), 3);
        drop(again);
        drop(b);
        assert_eq!(c.granted_threads(), 0);
        assert_eq!(c.admission_stats().admitted, 3);
    }

    #[test]
    fn admission_blocks_until_release() {
        let c = ThreadCoordinator::new(2);
        let held = c.admit(2).unwrap();
        assert_eq!(c.granted_threads(), 2);
        let c2 = c.clone();
        let waiter = std::thread::spawn(move || c2.admit(1).unwrap().granted());
        // Give the waiter time to block, then release.
        std::thread::sleep(Duration::from_millis(50));
        drop(held);
        assert_eq!(waiter.join().unwrap(), 1);
    }

    #[test]
    fn clones_share_ledger_and_pool() {
        let c = ThreadCoordinator::new(4);
        let d = c.clone();
        let g = c.admit(2).unwrap();
        assert_eq!(d.granted_threads(), 2);
        assert!(Arc::ptr_eq(&c.kernel_pool(), &d.kernel_pool()));
        drop(g);
    }

    #[test]
    fn saturated_coordinator_sheds_within_queue_timeout() {
        let c = ThreadCoordinator::new(1);
        let _held = c.admit(1).unwrap();
        let timeout = Duration::from_millis(40);
        let start = Instant::now();
        let err = c
            .admit_with(1, &AdmissionPolicy::with_queue_timeout(timeout))
            .unwrap_err();
        let elapsed = start.elapsed();
        match err {
            Error::Overloaded {
                waited,
                queue_timeout,
            } => {
                assert!(waited >= timeout, "shed before the timeout: {waited:?}");
                assert_eq!(queue_timeout, timeout);
            }
            other => panic!("expected Overloaded, got {other:?}"),
        }
        // Bounded: the old indefinite block is gone. Generous upper bound
        // for loaded CI machines.
        assert!(elapsed < Duration::from_secs(5), "{elapsed:?}");
        assert_eq!(c.admission_stats().shed, 1);
        assert_eq!(c.queued(), 0, "shed ticket left the queue");
    }

    #[test]
    fn deadline_expires_in_admission_queue() {
        let c = ThreadCoordinator::new(1);
        let _held = c.admit(1).unwrap();
        let policy = AdmissionPolicy::with_deadline(Instant::now() + Duration::from_millis(30));
        let err = c.admit_with(1, &policy).unwrap_err();
        assert!(matches!(err, Error::DeadlineExceeded { ref phase } if phase == "admission-queue"));
        assert_eq!(c.admission_stats().deadline_expired, 1);
        assert_eq!(c.queued(), 0);
    }

    #[test]
    fn min_threads_keeps_query_queued_until_enough_are_free() {
        let c = ThreadCoordinator::new(4);
        let held = c.admit(3).unwrap();
        // One core free: a min_threads=2 query sheds rather than accept 1.
        let picky = AdmissionPolicy {
            queue_timeout: Some(Duration::from_millis(30)),
            min_threads: 2,
            ..AdmissionPolicy::default()
        };
        assert!(matches!(
            c.admit_with(2, &picky).unwrap_err(),
            Error::Overloaded { .. }
        ));
        // The same request with the floor released is admitted in full.
        drop(held);
        let g = c.admit_with(2, &picky).unwrap();
        assert_eq!(g.granted(), 2);
    }

    #[test]
    fn fifo_order_is_observed_under_contention() {
        let c = ThreadCoordinator::new(1);
        let held = c.admit(1).unwrap();
        let order = Arc::new(Mutex::new(Vec::new()));
        let mut waiters = Vec::new();
        for id in 0..3 {
            let c2 = c.clone();
            let order2 = Arc::clone(&order);
            waiters.push(std::thread::spawn(move || {
                let g = c2.admit(1).unwrap();
                order2.lock().unwrap().push(id);
                // Hold briefly so the next waiter demonstrably comes after.
                std::thread::sleep(Duration::from_millis(5));
                drop(g);
            }));
            // Wait until this waiter is queued before spawning the next, so
            // arrival order is deterministic.
            while c.queued() < id + 1 {
                std::thread::yield_now();
            }
        }
        drop(held);
        for w in waiters {
            w.join().unwrap();
        }
        assert_eq!(*order.lock().unwrap(), vec![0, 1, 2], "strict FIFO");
    }

    /// A later-arriving interactive query overtakes queued standard/batch
    /// queries; within a class, arrival order is preserved.
    #[test]
    fn priority_bands_overtake_lower_classes() {
        let c = ThreadCoordinator::new(1);
        let held = c.admit(1).unwrap();
        let order = Arc::new(Mutex::new(Vec::new()));
        let mut waiters = Vec::new();
        // Arrival order: batch, standard, interactive, batch. Admission
        // order must be: interactive, standard, batch (arrival order).
        let classes = [
            ("batch-0", Priority::Batch),
            ("standard", Priority::Standard),
            ("interactive", Priority::Interactive),
            ("batch-1", Priority::Batch),
        ];
        for (i, (name, class)) in classes.into_iter().enumerate() {
            let c2 = c.clone();
            let order2 = Arc::clone(&order);
            waiters.push(std::thread::spawn(move || {
                let policy = AdmissionPolicy::for_class(class);
                let g = c2.admit_with(1, &policy).unwrap();
                order2.lock().unwrap().push(name);
                std::thread::sleep(Duration::from_millis(5));
                drop(g);
            }));
            while c.queued() < i + 1 {
                std::thread::yield_now();
            }
        }
        assert_eq!(c.queue_depths(), [1, 1, 2]);
        drop(held);
        for w in waiters {
            w.join().unwrap();
        }
        assert_eq!(
            *order.lock().unwrap(),
            vec!["interactive", "standard", "batch-0", "batch-1"]
        );
    }

    /// Depth-based door shedding: a batch query arriving behind a deep
    /// queue is shed immediately, while an interactive arrival behind the
    /// same queue is not (the depth counts only tickets ahead of its band).
    #[test]
    fn shed_queue_depth_sheds_batch_at_the_door() {
        let c = ThreadCoordinator::new(1);
        let held = c.admit(1).unwrap();
        // Two standard waiters pile up.
        let mut waiters = Vec::new();
        for i in 0..2 {
            let c2 = c.clone();
            waiters.push(std::thread::spawn(move || {
                drop(c2.admit(1).unwrap());
            }));
            while c.queued() < i + 1 {
                std::thread::yield_now();
            }
        }
        // A batch query with depth 1 sheds instantly (2 tickets ahead)…
        let start = Instant::now();
        let batch = AdmissionPolicy::for_class(Priority::Batch).with_shed_depth(1);
        let err = c.admit_with(1, &batch).unwrap_err();
        assert!(matches!(err, Error::Overloaded { .. }), "{err:?}");
        assert!(
            start.elapsed() < Duration::from_millis(500),
            "door shed must not wait out the queue timeout"
        );
        // …while an interactive query with the same depth knob is ahead of
        // both standard waiters, so it queues (and is admitted first).
        let inter = AdmissionPolicy::for_class(Priority::Interactive).with_shed_depth(1);
        drop(held);
        let g = c.admit_with(1, &inter).unwrap();
        drop(g);
        for w in waiters {
            w.join().unwrap();
        }
        let stats = c.admission_stats();
        assert_eq!(stats.class(Priority::Batch).shed, 1);
        assert_eq!(stats.class(Priority::Interactive).admitted, 1);
        assert_eq!(stats.class(Priority::Interactive).shed, 0);
        // The initial hold plus the two waiters, all default-class.
        assert_eq!(stats.class(Priority::Standard).admitted, 3);
        assert_eq!(stats.shed, 1, "aggregate mirrors the per-class breakdown");
    }

    /// The per-class stats sum to the aggregate counters.
    #[test]
    fn per_class_stats_sum_to_aggregate() {
        let c = ThreadCoordinator::new(1);
        let held = c.admit(1).unwrap();
        for class in Priority::ALL {
            let mut policy = AdmissionPolicy::for_class(class);
            policy.queue_timeout = Some(Duration::from_millis(5));
            let _ = c.admit_with(1, &policy);
        }
        drop(held);
        drop(
            c.admit_with(1, &AdmissionPolicy::for_class(Priority::Interactive))
                .unwrap(),
        );
        let stats = c.admission_stats();
        let sum_admitted: u64 = stats.per_class.iter().map(|s| s.admitted).sum();
        let sum_shed: u64 = stats.per_class.iter().map(|s| s.shed).sum();
        assert_eq!(stats.admitted, sum_admitted);
        assert_eq!(stats.shed, sum_shed);
        assert_eq!(stats.shed, 3, "one timed-out waiter per class");
        assert_eq!(stats.class(Priority::Interactive).admitted, 1);
    }

    #[test]
    fn priority_rank_round_trips() {
        for class in Priority::ALL {
            assert_eq!(Priority::from_rank(class.rank() as u8), Some(class));
        }
        assert_eq!(Priority::from_rank(3), None);
        assert_eq!(Priority::default(), Priority::Standard);
    }
}
