//! Coordinated thread budgeting between DB workers and kernel threads (§3.1).
//!
//! The paper observes that when RDBMS worker threads execute pipeline stages
//! containing linear-algebra operators, and each operator independently spins
//! up its own OpenMP-style thread pool, the machine is oversubscribed and
//! context-switch overhead dominates. The fix is a single coordinator that
//! hands each side an explicit share of the cores.
//!
//! Beyond per-query planning, [`ThreadCoordinator`] is the **admission
//! point** for concurrent queries: each query requests its plan's worst-case
//! thread count and is granted `min(requested, remaining)` kernel threads
//! (blocking only when nothing at all remains), recorded in a
//! [`BudgetGrant`] that releases its share when dropped. Cloned coordinators
//! share the same admission ledger and the same lazily-created
//! [`KernelPool`], so sessions that should compete for one machine's cores
//! are built from clones of one coordinator.

use crate::pool::KernelPool;
use std::sync::{Arc, Condvar, Mutex, OnceLock};

/// An agreed split of physical cores between the two runtimes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ThreadPlan {
    /// Threads driving relational pipeline stages (scans, joins, aggregates).
    pub db_workers: usize,
    /// Threads each linear-algebra kernel invocation may use.
    pub kernel_threads: usize,
}

impl ThreadPlan {
    /// Total threads the plan would run concurrently in the worst case
    /// (every DB worker inside a kernel at once). A dedicated plan
    /// (`db_workers == 0`) still runs its kernels on one submitting thread,
    /// so the worst case is never reported as zero.
    pub fn worst_case_threads(&self) -> usize {
        self.db_workers.max(1) * self.kernel_threads.max(1)
    }
}

/// Shared admission ledger: outstanding granted threads across every clone
/// of one coordinator.
struct Admission {
    cores: usize,
    outstanding: Mutex<usize>,
    released: Condvar,
}

/// One query's admitted share of the kernel-thread budget. Dropping the
/// grant returns the share to the coordinator and wakes queries waiting for
/// admission.
pub struct BudgetGrant {
    admission: Arc<Admission>,
    granted: usize,
}

impl BudgetGrant {
    /// Number of kernel threads this query was granted.
    pub fn granted(&self) -> usize {
        self.granted
    }
}

impl Drop for BudgetGrant {
    fn drop(&mut self) {
        let mut outstanding = self
            .admission
            .outstanding
            .lock()
            .expect("admission ledger lock");
        *outstanding = outstanding.saturating_sub(self.granted);
        drop(outstanding);
        self.admission.released.notify_all();
    }
}

impl std::fmt::Debug for BudgetGrant {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BudgetGrant")
            .field("granted", &self.granted)
            .finish()
    }
}

/// Allocates cores between DB workers and kernel threads, and admits
/// concurrent queries into bounded slices of the machine.
#[derive(Clone)]
pub struct ThreadCoordinator {
    cores: usize,
    admission: Arc<Admission>,
    /// The machine's one persistent kernel pool, created on first use and
    /// shared by every clone of this coordinator.
    pool: Arc<OnceLock<Arc<KernelPool>>>,
}

impl ThreadCoordinator {
    /// A coordinator for a machine with `cores` physical cores.
    pub fn new(cores: usize) -> Self {
        let cores = cores.max(1);
        ThreadCoordinator {
            cores,
            admission: Arc::new(Admission {
                cores,
                outstanding: Mutex::new(0),
                released: Condvar::new(),
            }),
            pool: Arc::new(OnceLock::new()),
        }
    }

    /// A coordinator sized from the current machine.
    pub fn from_host() -> Self {
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4);
        Self::new(cores)
    }

    /// Number of cores being managed.
    pub fn cores(&self) -> usize {
        self.cores
    }

    /// Plan for a query whose relational side runs `db_parallelism`
    /// concurrent pipeline workers: each kernel gets the leftover share so
    /// the worst case never exceeds the core count.
    pub fn plan_for(&self, db_parallelism: usize) -> ThreadPlan {
        let db_workers = db_parallelism.clamp(1, self.cores);
        let kernel_threads = (self.cores / db_workers).max(1);
        // Belt and braces: however db_workers and kernel_threads were
        // derived, the advertised worst case must fit the machine.
        let plan = ThreadPlan {
            db_workers,
            kernel_threads,
        };
        debug_assert!(plan.worst_case_threads() <= self.cores);
        plan
    }

    /// Plan for a dedicated (external) DL runtime: no DB workers compete, so
    /// kernels get every core. This is the thread-level advantage a decoupled
    /// TensorFlow/PyTorch process enjoys in the DL-centric architecture.
    pub fn plan_dedicated(&self) -> ThreadPlan {
        ThreadPlan {
            db_workers: 0,
            kernel_threads: self.cores,
        }
    }

    /// The machine's persistent kernel pool: one submitter slot plus
    /// `cores - 1` workers, created on first use and shared by every clone
    /// of this coordinator, so a kernel batch can use every core without
    /// oversubscribing (§3.1).
    pub fn kernel_pool(&self) -> Arc<KernelPool> {
        Arc::clone(
            self.pool
                .get_or_init(|| Arc::new(KernelPool::for_cores(self.cores))),
        )
    }

    /// Admit a query requesting `requested` kernel threads: grants
    /// `min(requested, remaining)` of this coordinator's cores, blocking
    /// while no thread at all is available, so the sum of outstanding
    /// grants never exceeds the cores and every admitted query holds at
    /// least one thread. The contract is one live grant per query thread:
    /// a thread must drop its current grant before requesting another, or
    /// it may wait on other queries to release theirs.
    pub fn admit(&self, requested: usize) -> BudgetGrant {
        let requested = requested.max(1);
        let mut outstanding = self
            .admission
            .outstanding
            .lock()
            .expect("admission ledger lock");
        while *outstanding >= self.admission.cores {
            outstanding = self
                .admission
                .released
                .wait(outstanding)
                .expect("admission wait");
        }
        let granted = requested.min(self.admission.cores - *outstanding);
        *outstanding += granted;
        drop(outstanding);
        BudgetGrant {
            admission: Arc::clone(&self.admission),
            granted,
        }
    }

    /// Sum of kernel threads currently granted across outstanding queries;
    /// never exceeds [`ThreadCoordinator::cores`].
    pub fn granted_threads(&self) -> usize {
        *self
            .admission
            .outstanding
            .lock()
            .expect("admission ledger lock")
    }

    /// Relative context-switch penalty of running `plan` on this machine:
    /// 1.0 when the plan fits the cores, growing linearly with
    /// oversubscription. Used by the hyper-parameter tuning ablation.
    pub fn oversubscription_penalty(&self, plan: ThreadPlan) -> f64 {
        let worst = plan.worst_case_threads().max(1) as f64;
        (worst / self.cores as f64).max(1.0)
    }
}

impl Default for ThreadCoordinator {
    fn default() -> Self {
        Self::from_host()
    }
}

impl std::fmt::Debug for ThreadCoordinator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadCoordinator")
            .field("cores", &self.cores)
            .field("granted", &self.granted_threads())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_divides_cores() {
        let c = ThreadCoordinator::new(8);
        let p = c.plan_for(4);
        assert_eq!(p.db_workers, 4);
        assert_eq!(p.kernel_threads, 2);
        assert_eq!(p.worst_case_threads(), 8);
    }

    #[test]
    fn plan_never_starves_kernels() {
        let c = ThreadCoordinator::new(4);
        let p = c.plan_for(16);
        assert_eq!(p.db_workers, 4);
        assert_eq!(p.kernel_threads, 1);
    }

    #[test]
    fn dedicated_uses_all_cores() {
        let c = ThreadCoordinator::new(8);
        let p = c.plan_dedicated();
        assert_eq!(p.kernel_threads, 8);
        assert_eq!(p.db_workers, 0);
        assert_eq!(p.worst_case_threads(), 8, "submitter counts");
    }

    #[test]
    fn zero_core_machines_are_clamped() {
        let c = ThreadCoordinator::new(0);
        assert_eq!(c.cores(), 1);
        assert_eq!(c.plan_for(0).db_workers, 1);
    }

    #[test]
    fn penalty_grows_with_oversubscription() {
        let c = ThreadCoordinator::new(4);
        let fits = ThreadPlan {
            db_workers: 2,
            kernel_threads: 2,
        };
        let over = ThreadPlan {
            db_workers: 4,
            kernel_threads: 4,
        };
        assert_eq!(c.oversubscription_penalty(fits), 1.0);
        assert_eq!(c.oversubscription_penalty(over), 4.0);
    }

    /// Regression (ISSUE 2): sweeping db_parallelism far past the core
    /// count, no plan may advertise a worst case above the machine, and the
    /// oversubscription penalty of every planned query is exactly 1.0.
    #[test]
    fn planned_queries_never_oversubscribe() {
        for cores in [1, 2, 3, 4, 7, 8, 64] {
            let c = ThreadCoordinator::new(cores);
            for db in 0..=4 * cores + 1 {
                let p = c.plan_for(db);
                assert!(
                    p.worst_case_threads() <= cores,
                    "cores={cores} db={db}: {p:?}"
                );
                assert_eq!(
                    c.oversubscription_penalty(p),
                    1.0,
                    "cores={cores} db={db}: {p:?}"
                );
            }
            assert!(c.plan_dedicated().worst_case_threads() <= cores);
        }
    }

    #[test]
    fn admission_grants_min_of_requested_and_remaining() {
        let c = ThreadCoordinator::new(4);
        let a = c.admit(3);
        assert_eq!(a.granted(), 3);
        assert_eq!(c.granted_threads(), 3);
        let b = c.admit(3);
        assert_eq!(b.granted(), 1, "only one core remained");
        assert_eq!(c.granted_threads(), 4);
        drop(a);
        assert_eq!(c.granted_threads(), 1);
        let again = c.admit(99);
        assert_eq!(again.granted(), 3);
        drop(again);
        drop(b);
        assert_eq!(c.granted_threads(), 0);
    }

    #[test]
    fn admission_blocks_until_release() {
        let c = ThreadCoordinator::new(2);
        let held = c.admit(2);
        assert_eq!(c.granted_threads(), 2);
        let c2 = c.clone();
        let waiter = std::thread::spawn(move || c2.admit(1).granted());
        // Give the waiter time to block, then release.
        std::thread::sleep(std::time::Duration::from_millis(50));
        drop(held);
        assert_eq!(waiter.join().unwrap(), 1);
    }

    #[test]
    fn clones_share_ledger_and_pool() {
        let c = ThreadCoordinator::new(4);
        let d = c.clone();
        let g = c.admit(2);
        assert_eq!(d.granted_threads(), 2);
        assert!(Arc::ptr_eq(&c.kernel_pool(), &d.kernel_pool()));
        drop(g);
    }
}
