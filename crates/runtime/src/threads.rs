//! Coordinated thread budgeting between DB workers and kernel threads (§3.1).
//!
//! The paper observes that when RDBMS worker threads execute pipeline stages
//! containing linear-algebra operators, and each operator independently spins
//! up its own OpenMP-style thread pool, the machine is oversubscribed and
//! context-switch overhead dominates. The fix is a single coordinator that
//! hands each side an explicit share of the cores.

/// An agreed split of physical cores between the two runtimes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ThreadPlan {
    /// Threads driving relational pipeline stages (scans, joins, aggregates).
    pub db_workers: usize,
    /// Threads each linear-algebra kernel invocation may use.
    pub kernel_threads: usize,
}

impl ThreadPlan {
    /// Total threads the plan would run concurrently in the worst case
    /// (every DB worker inside a kernel at once).
    pub fn worst_case_threads(&self) -> usize {
        self.db_workers * self.kernel_threads
    }
}

/// Allocates cores between DB workers and kernel threads.
#[derive(Debug, Clone)]
pub struct ThreadCoordinator {
    cores: usize,
}

impl ThreadCoordinator {
    /// A coordinator for a machine with `cores` physical cores.
    pub fn new(cores: usize) -> Self {
        ThreadCoordinator {
            cores: cores.max(1),
        }
    }

    /// A coordinator sized from the current machine.
    pub fn from_host() -> Self {
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4);
        Self::new(cores)
    }

    /// Number of cores being managed.
    pub fn cores(&self) -> usize {
        self.cores
    }

    /// Plan for a query whose relational side runs `db_parallelism`
    /// concurrent pipeline workers: each kernel gets the leftover share so
    /// the worst case never exceeds the core count.
    pub fn plan_for(&self, db_parallelism: usize) -> ThreadPlan {
        let db_workers = db_parallelism.clamp(1, self.cores);
        ThreadPlan {
            db_workers,
            kernel_threads: (self.cores / db_workers).max(1),
        }
    }

    /// Plan for a dedicated (external) DL runtime: no DB workers compete, so
    /// kernels get every core. This is the thread-level advantage a decoupled
    /// TensorFlow/PyTorch process enjoys in the DL-centric architecture.
    pub fn plan_dedicated(&self) -> ThreadPlan {
        ThreadPlan {
            db_workers: 0,
            kernel_threads: self.cores,
        }
    }

    /// Build the persistent kernel pool for this machine's budget: one
    /// submitter slot plus `cores - 1` workers, so a kernel batch can use
    /// every core without oversubscribing (§3.1).
    pub fn kernel_pool(&self) -> std::sync::Arc<crate::pool::KernelPool> {
        std::sync::Arc::new(crate::pool::KernelPool::for_cores(self.cores))
    }

    /// Relative context-switch penalty of running `plan` on this machine:
    /// 1.0 when the plan fits the cores, growing linearly with
    /// oversubscription. Used by the hyper-parameter tuning ablation.
    pub fn oversubscription_penalty(&self, plan: ThreadPlan) -> f64 {
        let worst = plan.worst_case_threads().max(1) as f64;
        (worst / self.cores as f64).max(1.0)
    }
}

impl Default for ThreadCoordinator {
    fn default() -> Self {
        Self::from_host()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_divides_cores() {
        let c = ThreadCoordinator::new(8);
        let p = c.plan_for(4);
        assert_eq!(p.db_workers, 4);
        assert_eq!(p.kernel_threads, 2);
        assert_eq!(p.worst_case_threads(), 8);
    }

    #[test]
    fn plan_never_starves_kernels() {
        let c = ThreadCoordinator::new(4);
        let p = c.plan_for(16);
        assert_eq!(p.db_workers, 4);
        assert_eq!(p.kernel_threads, 1);
    }

    #[test]
    fn dedicated_uses_all_cores() {
        let c = ThreadCoordinator::new(8);
        let p = c.plan_dedicated();
        assert_eq!(p.kernel_threads, 8);
        assert_eq!(p.db_workers, 0);
    }

    #[test]
    fn zero_core_machines_are_clamped() {
        let c = ThreadCoordinator::new(0);
        assert_eq!(c.cores(), 1);
        assert_eq!(c.plan_for(0).db_workers, 1);
    }

    #[test]
    fn penalty_grows_with_oversubscription() {
        let c = ThreadCoordinator::new(4);
        let fits = ThreadPlan {
            db_workers: 2,
            kernel_threads: 2,
        };
        let over = ThreadPlan {
            db_workers: 4,
            kernel_threads: 4,
        };
        assert_eq!(c.oversubscription_penalty(fits), 1.0);
        assert_eq!(c.oversubscription_penalty(over), 4.0);
    }
}
