//! Hyper-parameter tuning for the DB-worker / kernel-thread split (§3.1).
//!
//! The paper observes that the threading configurations of RDBMS workers and
//! in-UDF kernel libraries must be co-tuned: "we must carefully configure
//! the number of threads for the SQL query processing and OpenMP. Otherwise,
//! significant context switch overheads may occur." This module provides the
//! measurement-driven tuner: enumerate the non-oversubscribing thread plans
//! for a machine, measure a caller-supplied representative workload under
//! each, and return the fastest — with the measurements kept so the caller
//! can cache them (the "historical knowledge" the paper suggests reusing).

use crate::threads::{ThreadCoordinator, ThreadPlan};
use std::time::Duration;

/// One measured configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TunedPlan {
    /// The thread split that was measured.
    pub plan: ThreadPlan,
    /// Measured wall-clock for the probe workload.
    pub elapsed: Duration,
}

/// Result of a tuning sweep: the winner plus every measurement.
#[derive(Debug, Clone)]
pub struct TuningReport {
    /// The fastest measured plan.
    pub best: TunedPlan,
    /// All measurements, in sweep order.
    pub measurements: Vec<TunedPlan>,
}

/// Enumerate the candidate plans for `coordinator`'s machine: every
/// DB-worker count from 1 to the core count, each paired with its
/// non-oversubscribing kernel-thread share.
pub fn candidate_plans(coordinator: &ThreadCoordinator) -> Vec<ThreadPlan> {
    (1..=coordinator.cores())
        .map(|db| coordinator.plan_for(db))
        .collect()
}

/// Measure `workload` under every candidate plan and return the fastest.
///
/// `workload` receives the plan (so it can size its own parallelism) and
/// must run the representative query once. Measurements run `repeats` times
/// per plan, keeping the minimum (robust to scheduler noise).
pub fn tune(
    coordinator: &ThreadCoordinator,
    repeats: usize,
    mut workload: impl FnMut(ThreadPlan),
) -> TuningReport {
    let repeats = repeats.max(1);
    let mut measurements = Vec::new();
    for plan in candidate_plans(coordinator) {
        let mut best = Duration::MAX;
        for _ in 0..repeats {
            let start = std::time::Instant::now();
            workload(plan);
            best = best.min(start.elapsed());
        }
        measurements.push(TunedPlan {
            plan,
            elapsed: best,
        });
    }
    let best = *measurements
        .iter()
        .min_by_key(|m| m.elapsed)
        .expect("at least one candidate");
    TuningReport { best, measurements }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn candidates_cover_every_db_worker_count() {
        let c = ThreadCoordinator::new(4);
        let plans = candidate_plans(&c);
        assert_eq!(plans.len(), 4);
        for (i, p) in plans.iter().enumerate() {
            assert_eq!(p.db_workers, i + 1);
            assert!(p.worst_case_threads() <= 4);
        }
    }

    #[test]
    fn tuner_picks_the_fastest_plan() {
        let c = ThreadCoordinator::new(4);
        // Synthetic workload: pretend 2 DB workers is optimal by sleeping
        // longer for every other configuration.
        let report = tune(&c, 1, |plan| {
            let penalty_us = if plan.db_workers == 2 { 1 } else { 500 };
            std::thread::sleep(Duration::from_micros(penalty_us));
        });
        assert_eq!(report.best.plan.db_workers, 2);
        assert_eq!(report.measurements.len(), 4);
    }

    #[test]
    fn repeats_take_the_minimum() {
        let c = ThreadCoordinator::new(2);
        let mut calls = 0;
        let report = tune(&c, 3, |_| {
            calls += 1;
        });
        assert_eq!(calls, 2 * 3);
        assert!(report.best.elapsed < Duration::from_secs(1));
    }
}
