//! Dynamic micro-batcher: coalesces compatible in-flight requests into
//! fused batches.
//!
//! Connection threads [`Batcher::submit`] decoded requests; executor
//! threads pull a **fused batch** — whole requests of the same
//! `(model, class, width)` group — once the group reaches
//! `max_batch_rows` or its oldest member has waited `max_batch_delay`.
//! The fused batch pays for admission, planning and kernel launch once via
//! [`InferenceSession::infer_fused`], and each member's predictions are
//! demultiplexed back to its own connection.
//!
//! Three SLA levers act at flush time:
//!
//! 1. members whose deadline expired while buffered are rejected with
//!    `DeadlineExceeded` *before* the batch is admitted, so a stale
//!    request never poisons the fused batch;
//! 2. the fused batch runs under the class's [`AdmissionPolicy`], carrying
//!    the *loosest* member deadline (none if any member is unbounded) so
//!    one tight deadline cannot fail its co-batched peers;
//! 3. if a [`PressureLadder`] is registered for the model and the class's
//!    remaining backlog is deep, the batch steps down to a cheaper model
//!    version.

use crate::cache::{Lookup, SemanticCache};
use crate::shard::ShardCoordinator;
use crate::stats::ServeCounters;
use crate::wire::{self, ErrorCode, Response};
use relserve_core::versions::PressureLadder;
use relserve_core::{Architecture, Error as CoreError, InferenceSession};
use relserve_runtime::{AdmissionPolicy, Priority};
use relserve_tensor::Tensor;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::Ordering;
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Where a submission's response goes. Connections hand the batcher their
/// reactor-side write queue; unit tests hand it a channel.
#[derive(Clone)]
pub(crate) enum ResponseSink {
    /// A reactor connection's bounded write queue.
    Conn(Arc<crate::conn::Conn>),
    /// An in-process collector (tests).
    #[cfg_attr(not(test), allow(dead_code))]
    Channel(mpsc::Sender<Response>),
}

/// Sends responses for one submission and keeps the response/wire-error
/// ledgers. Cloned into every co-batched submission of a connection.
#[derive(Clone)]
pub(crate) struct Responder {
    pub sink: ResponseSink,
    pub counters: Arc<ServeCounters>,
}

impl Responder {
    /// Encode and send one response; wire failures are counted, not
    /// propagated (the peer is gone — nothing else to do). The send never
    /// blocks on the peer: an unwritable frame parks in the connection's
    /// bounded write queue with write interest armed, and a queue that
    /// would overflow its cap severs the connection instead.
    pub fn send(&self, resp: &Response) {
        self.counters.responses.fetch_add(1, Ordering::Relaxed);
        match &self.sink {
            ResponseSink::Conn(conn) => {
                let sent = match wire::encode_response(resp) {
                    Ok(payload) => conn.send_frame(&payload),
                    Err(_) => false,
                };
                if !sent {
                    self.counters.wire_errors.fetch_add(1, Ordering::Relaxed);
                }
            }
            ResponseSink::Channel(tx) => {
                let _ = tx.send(resp.clone());
            }
        }
    }
}

/// One buffered inference request awaiting a fused batch.
pub(crate) struct Submission {
    pub id: u64,
    pub class: Priority,
    /// Absolute deadline derived from the wire's relative microseconds.
    pub deadline: Option<Instant>,
    pub model: String,
    pub rows: usize,
    pub width: usize,
    pub data: Vec<f32>,
    /// When the server finished decoding the request.
    pub received: Instant,
    pub responder: Responder,
    /// A bound-rejected cache guess riding along for free validation at
    /// demux time.
    pub guess: Option<u32>,
    /// A shadow submission: its response was already served from the
    /// cache, so it executes only to validate — no second response, no
    /// completion accounting.
    pub shadow: bool,
}

/// Batcher tuning; the server builds this from its `ServeConfig`.
pub(crate) struct BatcherConfig {
    pub max_batch_rows: usize,
    pub max_batch_delay: Duration,
    pub architecture: Architecture,
    /// Admission policy per class, indexed by [`Priority::rank`].
    pub admission: [AdmissionPolicy; 3],
    /// Per-class buffered-row cap; submissions past it are shed at arrival.
    pub backlog_shed_rows: [Option<usize>; 3],
    /// SLA step-down ladder per model name.
    pub ladders: HashMap<String, PressureLadder>,
}

/// Requests of the same model, class and feature width can fuse.
type GroupKey = (String, usize, usize);

struct Group {
    queue: VecDeque<Submission>,
    rows: usize,
}

struct State {
    groups: HashMap<GroupKey, Group>,
    /// Buffered rows per class, indexed by rank.
    class_rows: [usize; 3],
    shutdown: bool,
    /// Shutdown was entered through the graceful-drain path: arrivals are
    /// refused with the typed `Draining` code instead of `Overloaded`.
    draining: bool,
}

/// The shared micro-batching core: connection threads submit, executor
/// threads drain.
pub(crate) struct Batcher {
    state: Mutex<State>,
    ready: Condvar,
    config: BatcherConfig,
    counters: Arc<ServeCounters>,
    session: Arc<InferenceSession>,
    /// The semantic result cache fronting this batcher, when enabled.
    cache: Option<Arc<SemanticCache>>,
    /// Distributed execution: fused batches scatter across a worker fleet
    /// instead of running in-process, when the server is sharded.
    shard: Option<Arc<ShardCoordinator>>,
}

impl Batcher {
    pub fn new(
        config: BatcherConfig,
        counters: Arc<ServeCounters>,
        session: Arc<InferenceSession>,
        cache: Option<Arc<SemanticCache>>,
        shard: Option<Arc<ShardCoordinator>>,
    ) -> Arc<Self> {
        Arc::new(Batcher {
            state: Mutex::new(State {
                groups: HashMap::new(),
                class_rows: [0; 3],
                shutdown: false,
                draining: false,
            }),
            ready: Condvar::new(),
            config,
            counters,
            session,
            cache,
            shard,
        })
    }

    /// Buffer one request for coalescing, or shed it immediately when the
    /// class backlog is over its cap. The semantic cache is probed *first*:
    /// a hit answers here on the connection thread — no buffering, no
    /// admission ticket, no kernel — and only a sampled subset of near-hits
    /// continue into the batcher as shadow work to keep the error bound
    /// live.
    pub fn submit(&self, mut sub: Submission) {
        let rank = sub.class.rank();
        if let Some(cache) = self.cache.as_deref() {
            if !sub.shadow {
                match cache.lookup(&sub.model, sub.class, sub.rows, sub.width, &sub.data) {
                    Lookup::Hit {
                        predictions,
                        near: _,
                        validate,
                    } => {
                        self.counters.per_class[rank]
                            .completed
                            .fetch_add(1, Ordering::Relaxed);
                        sub.responder.send(&Response::Infer {
                            id: sub.id,
                            queue_wait_micros: 0,
                            cached: true,
                            model_used: sub.model.clone(),
                            degraded_to: None,
                            predictions: predictions.clone(),
                        });
                        if !validate {
                            return;
                        }
                        // Shadow-execute this hit to validate the cached
                        // answer; the client already has its response.
                        sub.shadow = true;
                        sub.deadline = None;
                        sub.guess = predictions.first().copied();
                    }
                    Lookup::Miss { guess } => sub.guess = guess,
                    Lookup::Bypass => {}
                }
            }
        }
        {
            let mut state = self.state.lock().expect("batcher lock poisoned");
            if state.shutdown {
                let draining = state.draining;
                drop(state);
                if sub.shadow {
                    return; // the client was already answered
                }
                if draining {
                    self.counters
                        .drain
                        .shed_requests
                        .fetch_add(1, Ordering::Relaxed);
                    sub.responder.send(&Response::Error {
                        id: sub.id,
                        code: ErrorCode::Draining,
                        message: "server is draining".into(),
                    });
                    return;
                }
                self.counters.shed.fetch_add(1, Ordering::Relaxed);
                self.counters.per_class[rank]
                    .shed
                    .fetch_add(1, Ordering::Relaxed);
                sub.responder.send(&Response::Error {
                    id: sub.id,
                    code: ErrorCode::Overloaded,
                    message: "server is shutting down".into(),
                });
                return;
            }
            if let Some(cap) = self.config.backlog_shed_rows[rank] {
                if state.class_rows[rank] + sub.rows > cap {
                    drop(state);
                    if sub.shadow {
                        return; // validation is best-effort under pressure
                    }
                    self.counters.shed.fetch_add(1, Ordering::Relaxed);
                    self.counters.per_class[rank]
                        .shed
                        .fetch_add(1, Ordering::Relaxed);
                    sub.responder.send(&Response::Error {
                        id: sub.id,
                        code: ErrorCode::Overloaded,
                        message: format!("{} backlog over {cap} buffered rows", sub.class),
                    });
                    return;
                }
            }
            let key = (sub.model.clone(), rank, sub.width);
            state.class_rows[rank] += sub.rows;
            let group = state.groups.entry(key).or_insert_with(|| Group {
                queue: VecDeque::new(),
                rows: 0,
            });
            group.rows += sub.rows;
            group.queue.push_back(sub);
        }
        self.ready.notify_all();
    }

    /// Wake every executor so it can observe the shutdown flag and drain.
    pub fn shutdown(&self) {
        self.state.lock().expect("batcher lock poisoned").shutdown = true;
        self.ready.notify_all();
    }

    /// Enter graceful drain: shed every *buffered-but-unadmitted*
    /// submission with a typed `Draining` error, refuse new arrivals the
    /// same way, and let executors finish the batches they already popped.
    /// Returns the number of requests shed (shadows drop silently — their
    /// clients were answered from the cache long ago).
    pub fn drain_shed(&self) -> u64 {
        let buffered: Vec<Submission> = {
            let mut state = self.state.lock().expect("batcher lock poisoned");
            state.shutdown = true;
            state.draining = true;
            state.class_rows = [0; 3];
            state.groups.drain().flat_map(|(_, g)| g.queue).collect()
        };
        self.ready.notify_all();
        let mut shed = 0u64;
        for sub in buffered {
            if sub.shadow {
                continue;
            }
            shed += 1;
            sub.responder.send(&Response::Error {
                id: sub.id,
                code: ErrorCode::Draining,
                message: "server is draining; request was not admitted".into(),
            });
        }
        self.counters
            .drain
            .shed_requests
            .fetch_add(shed, Ordering::Relaxed);
        shed
    }

    /// Executor thread body: pull fused batches until shutdown drains the
    /// last group.
    pub fn run_executor(&self) {
        while let Some(batch) = self.next_batch() {
            self.execute(batch);
        }
    }

    /// Block until a group is ready (full, aged out, or shutdown), then pop
    /// whole requests up to `max_batch_rows`. `None` ends the executor.
    fn next_batch(&self) -> Option<FusedWork> {
        let mut state = self.state.lock().expect("batcher lock poisoned");
        loop {
            let now = Instant::now();
            if let Some(key) = self.pick_ready(&state, now) {
                return Some(self.pop_batch(&mut state, &key));
            }
            if state.shutdown {
                // Drain: any non-empty group is ready once we're stopping.
                if let Some(key) = self.pick_oldest(&state) {
                    return Some(self.pop_batch(&mut state, &key));
                }
                return None;
            }
            let wait = self
                .next_flush_in(&state, now)
                .unwrap_or(Duration::from_millis(50));
            let (next, _) = self
                .ready
                .wait_timeout(state, wait.max(Duration::from_micros(100)))
                .expect("batcher lock poisoned");
            state = next;
        }
    }

    /// The highest-priority group whose row count or age crossed a flush
    /// threshold; ties broken by oldest member.
    fn pick_ready(&self, state: &State, now: Instant) -> Option<GroupKey> {
        state
            .groups
            .iter()
            .filter(|(_, g)| {
                let oldest = g.queue.front().map(|s| s.received);
                g.rows >= self.config.max_batch_rows
                    || oldest.is_some_and(|t| now.duration_since(t) >= self.config.max_batch_delay)
            })
            .min_by_key(|((_, rank, _), g)| (*rank, g.queue.front().map(|s| s.received)))
            .map(|(key, _)| key.clone())
    }

    /// Any non-empty group, highest priority / oldest first (drain path).
    fn pick_oldest(&self, state: &State) -> Option<GroupKey> {
        state
            .groups
            .iter()
            .filter(|(_, g)| !g.queue.is_empty())
            .min_by_key(|((_, rank, _), g)| (*rank, g.queue.front().map(|s| s.received)))
            .map(|(key, _)| key.clone())
    }

    /// How long until the oldest buffered request ages out.
    fn next_flush_in(&self, state: &State, now: Instant) -> Option<Duration> {
        state
            .groups
            .values()
            .filter_map(|g| g.queue.front().map(|s| s.received))
            .min()
            .map(|oldest| (oldest + self.config.max_batch_delay).saturating_duration_since(now))
    }

    /// Pop whole submissions (at least one) until the fused batch would
    /// exceed `max_batch_rows`, updating the backlog ledgers.
    fn pop_batch(&self, state: &mut State, key: &GroupKey) -> FusedWork {
        let mut members = Vec::new();
        let mut rows = 0usize;
        {
            let group = state.groups.get_mut(key).expect("picked group exists");
            while let Some(front) = group.queue.front() {
                if !members.is_empty() && rows + front.rows > self.config.max_batch_rows {
                    break;
                }
                let sub = group.queue.pop_front().expect("front exists");
                rows += sub.rows;
                group.rows -= sub.rows;
                members.push(sub);
            }
            if group.queue.is_empty() {
                state.groups.remove(key);
            }
        }
        state.class_rows[key.1] -= rows;
        FusedWork {
            model: key.0.clone(),
            rank: key.1,
            members,
            // Depth the SLA ladder sees: rows of this class still buffered
            // *after* this batch leaves the queue.
            backlog_rows: state.class_rows[key.1],
        }
    }

    /// Execute one fused batch outside the batcher lock and demux the
    /// responses.
    fn execute(&self, work: FusedWork) {
        let flush_start = Instant::now();
        let rank = work.rank;

        // Satellite guarantee: a deadline that expired while the request
        // sat buffered is rejected *before* admission — it never joins the
        // fused tensor, so it cannot poison its peers.
        let mut live = Vec::with_capacity(work.members.len());
        for sub in work.members {
            if !sub.shadow && sub.deadline.is_some_and(|d| d <= flush_start) {
                self.counters
                    .deadline_rejected
                    .fetch_add(1, Ordering::Relaxed);
                self.counters.per_class[rank]
                    .deadline_rejected
                    .fetch_add(1, Ordering::Relaxed);
                sub.responder.send(&Response::Error {
                    id: sub.id,
                    code: ErrorCode::DeadlineExceeded,
                    message: "deadline expired while buffered for batching".into(),
                });
            } else {
                live.push(sub);
            }
        }
        if live.is_empty() {
            return;
        }

        // SLA step-down: deep remaining backlog for this class sends the
        // whole batch to a cheaper rung of the model's version ladder.
        let (model_used, stepped_down) = match self.config.ladders.get(&work.model) {
            Some(ladder) => {
                let (rung, idx) = ladder.rung_for_depth(work.backlog_rows);
                self.counters.record_ladder_rung(&work.model, idx);
                (rung.to_string(), idx > 0)
            }
            None => (work.model.clone(), false),
        };

        // The fused policy carries the *loosest* member deadline; one
        // member with an unbounded deadline unbinds the batch.
        let mut policy = self.config.admission[rank];
        policy.deadline = live
            .iter()
            .map(|s| s.deadline)
            .collect::<Option<Vec<_>>>()
            .and_then(|ds| ds.into_iter().max());

        let parts: Vec<Tensor> = match live
            .iter()
            .map(|s| Tensor::from_vec([s.rows, s.width], s.data.clone()))
            .collect()
        {
            Ok(parts) => parts,
            Err(e) => {
                self.respond_error(&live, ErrorCode::Invalid, &format!("bad feature data: {e}"));
                return;
            }
        };
        let total_rows: usize = live.iter().map(|s| s.rows).sum();
        self.counters.record_batch(total_rows as u64);

        // Sharded servers scatter the fused batch across the worker
        // fleet; the coordinator falls back to the session's own fused
        // path itself when the model is unshardable or the fleet is gone.
        let fused = match self.shard.as_deref() {
            Some(coordinator) => coordinator.infer_fused(
                &self.session,
                &model_used,
                &parts,
                self.config.architecture.clone(),
                &policy,
            ),
            None => self.session.infer_fused(
                &model_used,
                &parts,
                self.config.architecture.clone(),
                &policy,
            ),
        };
        match fused {
            Ok(outcome) => {
                for (sub, preds) in live.iter().zip(outcome.per_request.iter()) {
                    let predictions: Vec<u32> = preds.iter().map(|p| *p as u32).collect();
                    if !sub.shadow {
                        self.counters.per_class[rank]
                            .completed
                            .fetch_add(1, Ordering::Relaxed);
                        sub.responder.send(&Response::Infer {
                            id: sub.id,
                            queue_wait_micros: flush_start.duration_since(sub.received).as_micros()
                                as u64,
                            cached: false,
                            model_used: model_used.clone(),
                            degraded_to: outcome.degraded_to.map(String::from),
                            predictions,
                        });
                    }
                }
                // Cache maintenance after every client got its response:
                // only trustworthy outputs — the requested model, no
                // degraded fallback — validate guesses or populate.
                if let Some(cache) = self.cache.as_deref() {
                    if !stepped_down && outcome.degraded_to.is_none() {
                        for (sub, preds) in live.iter().zip(outcome.per_request.iter()) {
                            let exact: Vec<u32> = preds.iter().map(|p| *p as u32).collect();
                            if let (Some(guess), Some(&first)) = (sub.guess, exact.first()) {
                                cache.record_validation(guess, first);
                            }
                            cache.admit(&work.model, sub.width, sub.rows, &sub.data, &exact);
                        }
                    }
                }
            }
            Err(err) => {
                let code = classify(&err);
                // Shadow members already answered from the cache: they are
                // invisible to the error ledgers and get no second response.
                let visible = live.iter().filter(|s| !s.shadow).count() as u64;
                if code == ErrorCode::Overloaded {
                    self.counters.shed.fetch_add(visible, Ordering::Relaxed);
                    self.counters.per_class[rank]
                        .shed
                        .fetch_add(visible, Ordering::Relaxed);
                } else if code == ErrorCode::DeadlineExceeded {
                    self.counters
                        .deadline_rejected
                        .fetch_add(visible, Ordering::Relaxed);
                    self.counters.per_class[rank]
                        .deadline_rejected
                        .fetch_add(visible, Ordering::Relaxed);
                }
                self.respond_error(&live, code, &err.to_string());
            }
        }
    }

    fn respond_error(&self, members: &[Submission], code: ErrorCode, message: &str) {
        for sub in members.iter().filter(|s| !s.shadow) {
            sub.responder.send(&Response::Error {
                id: sub.id,
                code,
                message: message.to_string(),
            });
        }
    }
}

struct FusedWork {
    model: String,
    rank: usize,
    members: Vec<Submission>,
    backlog_rows: usize,
}

/// Map a session error onto the wire's typed codes.
pub(crate) fn classify(err: &CoreError) -> ErrorCode {
    if err.is_overloaded() {
        ErrorCode::Overloaded
    } else if err.is_deadline_exceeded() {
        ErrorCode::DeadlineExceeded
    } else {
        match err {
            CoreError::NotFound(_) => ErrorCode::NotFound,
            CoreError::Invalid(_) => ErrorCode::Invalid,
            _ => ErrorCode::Internal,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relserve_core::SessionConfig;
    use relserve_nn::init::seeded_rng;
    use relserve_nn::zoo;
    use relserve_runtime::TransferProfile;

    fn test_session() -> Arc<InferenceSession> {
        let config = SessionConfig::builder()
            .db_memory_bytes(64 << 20)
            .buffer_pool_bytes(16 << 20)
            .memory_threshold_bytes(16 << 20)
            .block_size(64)
            .cores(2)
            .external_memory_bytes(64 << 20)
            .transfer(TransferProfile::instant())
            .build()
            .unwrap();
        let session = InferenceSession::open(config).unwrap();
        let mut rng = seeded_rng(77);
        session
            .load_model(zoo::fraud_fc_256(&mut rng).unwrap())
            .unwrap();
        Arc::new(session)
    }

    fn test_config(max_rows: usize, delay: Duration) -> BatcherConfig {
        BatcherConfig {
            max_batch_rows: max_rows,
            max_batch_delay: delay,
            architecture: Architecture::UdfCentric,
            admission: [
                AdmissionPolicy::for_class(Priority::Interactive),
                AdmissionPolicy::for_class(Priority::Standard),
                AdmissionPolicy::for_class(Priority::Batch),
            ],
            backlog_shed_rows: [None; 3],
            ladders: HashMap::new(),
        }
    }

    fn submission(
        id: u64,
        rows: usize,
        deadline: Option<Instant>,
        tx: &mpsc::Sender<Response>,
        counters: &Arc<ServeCounters>,
    ) -> Submission {
        Submission {
            id,
            class: Priority::Standard,
            deadline,
            model: "Fraud-FC-256".into(),
            rows,
            width: 28,
            data: (0..rows * 28)
                .map(|i| ((i % 13) as f32 - 6.0) * 0.11)
                .collect(),
            received: Instant::now(),
            responder: Responder {
                sink: ResponseSink::Channel(tx.clone()),
                counters: Arc::clone(counters),
            },
            guess: None,
            shadow: false,
        }
    }

    #[test]
    fn coalesces_and_demuxes_per_request() {
        let session = test_session();
        let counters = Arc::new(ServeCounters::default());
        let batcher = Batcher::new(
            test_config(64, Duration::from_millis(5)),
            Arc::clone(&counters),
            Arc::clone(&session),
            None,
            None,
        );
        let (tx, rx) = mpsc::channel();
        for (id, rows) in [(1u64, 3usize), (2, 5), (3, 1)] {
            batcher.submit(submission(id, rows, None, &tx, &counters));
        }
        let runner = {
            let batcher = Arc::clone(&batcher);
            std::thread::spawn(move || batcher.run_executor())
        };
        let mut got = HashMap::new();
        for _ in 0..3 {
            let resp = rx.recv_timeout(Duration::from_secs(10)).unwrap();
            match resp {
                Response::Infer {
                    id, predictions, ..
                } => {
                    got.insert(id, predictions.len());
                }
                other => panic!("unexpected response {other:?}"),
            }
        }
        assert_eq!(got, HashMap::from([(1, 3), (2, 5), (3, 1)]));
        let snap = counters.snapshot();
        assert_eq!(snap.batches, 1, "three requests fused into one batch");
        assert_eq!(snap.fused_rows, 9);
        batcher.shutdown();
        runner.join().unwrap();
    }

    #[test]
    fn expired_deadline_is_rejected_before_admission() {
        let session = test_session();
        let counters = Arc::new(ServeCounters::default());
        let batcher = Batcher::new(
            test_config(64, Duration::from_millis(1)),
            Arc::clone(&counters),
            Arc::clone(&session),
            None,
            None,
        );
        let (tx, rx) = mpsc::channel();
        let expired = Instant::now() - Duration::from_millis(5);
        batcher.submit(submission(1, 2, Some(expired), &tx, &counters));
        batcher.submit(submission(2, 2, None, &tx, &counters));
        let runner = {
            let batcher = Arc::clone(&batcher);
            std::thread::spawn(move || batcher.run_executor())
        };
        let mut expired_seen = false;
        let mut ok_seen = false;
        for _ in 0..2 {
            match rx.recv_timeout(Duration::from_secs(10)).unwrap() {
                Response::Error { id, code, .. } => {
                    assert_eq!((id, code), (1, ErrorCode::DeadlineExceeded));
                    expired_seen = true;
                }
                Response::Infer {
                    id, predictions, ..
                } => {
                    assert_eq!((id, predictions.len()), (2, 2));
                    ok_seen = true;
                }
                other => panic!("unexpected response {other:?}"),
            }
        }
        assert!(expired_seen && ok_seen);
        assert_eq!(counters.snapshot().deadline_rejected, 1);
        batcher.shutdown();
        runner.join().unwrap();
    }

    #[test]
    fn drain_sheds_buffered_with_typed_error() {
        let session = test_session();
        let counters = Arc::new(ServeCounters::default());
        // A 10s flush delay pins submissions in the buffer until drain.
        let batcher = Batcher::new(
            test_config(64, Duration::from_secs(10)),
            Arc::clone(&counters),
            session,
            None,
            None,
        );
        let (tx, rx) = mpsc::channel();
        batcher.submit(submission(1, 2, None, &tx, &counters));
        batcher.submit(submission(2, 2, None, &tx, &counters));
        assert_eq!(batcher.drain_shed(), 2);
        for _ in 0..2 {
            match rx.recv_timeout(Duration::from_secs(5)).unwrap() {
                Response::Error { code, .. } => assert_eq!(code, ErrorCode::Draining),
                other => panic!("expected Draining, got {other:?}"),
            }
        }
        // Arrivals after the drain began get the same typed refusal.
        batcher.submit(submission(3, 1, None, &tx, &counters));
        match rx.recv_timeout(Duration::from_secs(5)).unwrap() {
            Response::Error { id, code, .. } => {
                assert_eq!((id, code), (3, ErrorCode::Draining));
            }
            other => panic!("expected Draining, got {other:?}"),
        }
        assert_eq!(counters.snapshot().drain.shed_requests, 3);
        // Executors observe shutdown with an empty buffer and exit.
        batcher.run_executor();
    }

    #[test]
    fn backlog_cap_sheds_at_submit() {
        let session = test_session();
        let counters = Arc::new(ServeCounters::default());
        let mut config = test_config(64, Duration::from_secs(10));
        config.backlog_shed_rows[Priority::Standard.rank()] = Some(4);
        let batcher = Batcher::new(config, Arc::clone(&counters), session, None, None);
        let (tx, rx) = mpsc::channel();
        batcher.submit(submission(1, 4, None, &tx, &counters));
        batcher.submit(submission(2, 1, None, &tx, &counters));
        match rx.recv_timeout(Duration::from_secs(5)).unwrap() {
            Response::Error { id, code, .. } => {
                assert_eq!((id, code), (2, ErrorCode::Overloaded));
            }
            other => panic!("expected shed, got {other:?}"),
        }
        assert_eq!(counters.snapshot().class(Priority::Standard).shed, 1);
    }
}
