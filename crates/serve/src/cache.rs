//! Semantic inference-result cache on the serving hot path (§5.1 applied
//! to §6's online serving).
//!
//! Before a request enters the micro-batcher, [`SemanticCache::lookup`]
//! probes a per-model [`InferenceResultCache`]: an exact hit — or a
//! bounded-error near hit the request class tolerates — is answered
//! immediately, paying **no admission ticket and no kernel launch**.
//! Misses flow through the existing batcher unchanged and populate the
//! cache at demux time via [`SemanticCache::admit`].
//!
//! Three properties make the cache safe to put in front of an SLA-bearing
//! server:
//!
//! 1. **Per-class tolerance** ([`CacheTolerance`]): Interactive traffic may
//!    demand exact (distance-0) hits only, while Batch accepts near-hits as
//!    long as the *live* Monte-Carlo error upper bound stays under its
//!    configured ceiling. A near-hit whose bound is out of tolerance is
//!    refused and accounted as a miss plus a `bound_rejections` tick.
//! 2. **Governor-charged memory**: every admitted entry grows a
//!    [`Reservation`] against the session's database [`MemoryGovernor`];
//!    budget pressure evicts cold entries ([`InferenceResultCache::evict_cold`])
//!    instead of OOMing the server.
//! 3. **Live error bound**: the bound is not a one-shot estimate — every
//!    bound-rejected near-hit validates for free (the exact answer is
//!    computed anyway), and every [`CacheConfig::validate_every`]-th served
//!    near-hit is shadow-executed through the batcher. The resulting
//!    disagreement rate (p + 1.96·√(p(1−p)/n), in ppm) gates future
//!    near-hit admission.
//!
//! `RELSERVE_CACHE=off` (also `0`, `false`, `disabled`) kills the cache at
//! server spawn so the cached and uncached paths stay independently
//! testable — mirroring `RELSERVE_ISA=scalar`.

use crate::stats::ServeCounters;
use relserve_runtime::{MemoryGovernor, Priority, Reservation};
use relserve_vectoridx::{CacheLookup, HnswParams, InferenceResultCache};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Environment variable killing the semantic cache regardless of config.
pub const CACHE_ENV: &str = "RELSERVE_CACHE";

/// True when [`CACHE_ENV`] requests the cache off.
pub fn cache_disabled_by_env() -> bool {
    std::env::var(CACHE_ENV)
        .map(|v| cache_env_disables(&v))
        .unwrap_or(false)
}

/// Whether a [`CACHE_ENV`] value means "off" (factored out so the parsing
/// is testable without mutating the process environment).
pub fn cache_env_disables(value: &str) -> bool {
    matches!(
        value.trim().to_ascii_lowercase().as_str(),
        "off" | "0" | "false" | "disabled"
    )
}

/// How much approximation one request class tolerates from the cache.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CacheTolerance {
    /// Never consult the cache for this class.
    Bypass,
    /// Serve only exact (distance-0) hits; near neighbors fall through.
    Exact,
    /// Serve near hits while the live Monte-Carlo error upper bound stays
    /// at or below this ceiling (a fraction in `[0, 1]`).
    Near {
        /// Maximum tolerated error upper bound.
        max_error_bound: f64,
    },
}

/// Semantic-cache tuning; part of the server's `ServeConfig`.
#[derive(Debug, Clone)]
pub struct CacheConfig {
    /// Master switch; `RELSERVE_CACHE=off` overrides it to off.
    pub enabled: bool,
    /// Admission distance for near-hits (L2 over the feature vector).
    pub max_distance: f32,
    /// Tolerance per class, indexed by [`Priority::rank`]. The default is
    /// the paper's SLA split: Interactive exact, Standard and Batch
    /// approximate with tightening ceilings.
    pub per_class: [CacheTolerance; 3],
    /// Cap on live entries per model (`None` = bytes-bound only).
    pub max_entries: Option<usize>,
    /// Cap on governor-charged bytes per model.
    pub max_bytes: usize,
    /// Shadow-execute every Nth served near-hit to keep the error bound
    /// live (0 disables sampling; bound-rejected near-hits still validate
    /// for free).
    pub validate_every: u64,
    /// Validations required before the bound leaves its pessimistic
    /// 1.0 starting point and near-hits can be served at all.
    pub min_validations: u64,
    /// HNSW parameters for the per-model indexes.
    pub hnsw: HnswParams,
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig {
            enabled: false,
            max_distance: 0.05,
            per_class: [
                CacheTolerance::Exact,
                CacheTolerance::Near {
                    max_error_bound: 0.05,
                },
                CacheTolerance::Near {
                    max_error_bound: 0.20,
                },
            ],
            max_entries: None,
            max_bytes: 8 << 20,
            validate_every: 16,
            min_validations: 32,
            hnsw: HnswParams::default(),
        }
    }
}

/// Outcome of one hot-path probe.
#[derive(Debug)]
pub enum Lookup {
    /// Cache disabled for this request (class bypass, multi-row request,
    /// or cache off) — submit without probing side effects.
    Bypass,
    /// Answer immediately with these per-row predictions; no ticket, no
    /// kernel. `validate` asks the caller to *also* shadow-execute the
    /// request through the batcher (without responding again) so the error
    /// bound stays live.
    Hit {
        /// Per-row class predictions to respond with.
        predictions: Vec<u32>,
        /// True when served by a near (non-identical) neighbor.
        near: bool,
        /// True when this hit was sampled for shadow validation.
        validate: bool,
    },
    /// Fall through to the batcher. `guess` carries a rejected near-hit's
    /// prediction so the demux path can validate it for free.
    Miss {
        /// The bound-rejected prediction, if any, for free validation.
        guess: Option<u32>,
    },
}

struct ModelCache {
    cache: InferenceResultCache,
    reservation: Reservation,
}

/// The serving layer's semantic result cache: per-model
/// [`InferenceResultCache`]s, governor-charged memory, per-class tolerance
/// and a live shadow-validated error bound.
pub struct SemanticCache {
    config: CacheConfig,
    governor: MemoryGovernor,
    counters: Arc<ServeCounters>,
    models: Mutex<HashMap<String, ModelCache>>,
    /// Near-hits served since the last shadow validation was scheduled.
    near_served: AtomicU64,
}

impl SemanticCache {
    /// Build a cache charging entries against `governor` and reporting
    /// into `counters`.
    pub(crate) fn new(
        config: CacheConfig,
        governor: MemoryGovernor,
        counters: Arc<ServeCounters>,
    ) -> Self {
        SemanticCache {
            config,
            governor,
            counters,
            models: Mutex::new(HashMap::new()),
            near_served: AtomicU64::new(0),
        }
    }

    /// The live Monte-Carlo error upper bound, in parts per million.
    pub fn error_bound_ppm(&self) -> u64 {
        self.counters.cache.error_bound_ppm.load(Ordering::Relaxed)
    }

    /// Whether near-hits are currently admissible under `ceiling`.
    fn near_admissible(&self, ceiling: f64) -> bool {
        self.error_bound_ppm() as f64 <= ceiling * 1_000_000.0
    }

    /// Hot-path probe: called by the batcher on submission, before any
    /// buffering or admission. Single-row requests only — a multi-row
    /// request would need per-row partial-hit assembly, which costs more
    /// than the fused batch it displaces.
    pub(crate) fn lookup(
        &self,
        model: &str,
        class: Priority,
        rows: usize,
        width: usize,
        data: &[f32],
    ) -> Lookup {
        if rows != 1 {
            return Lookup::Bypass;
        }
        let tolerance = self.config.per_class[class.rank()];
        let accept_near = match tolerance {
            CacheTolerance::Bypass => return Lookup::Bypass,
            CacheTolerance::Exact => false,
            CacheTolerance::Near { max_error_bound } => self.near_admissible(max_error_bound),
        };
        let mut models = self.models.lock().expect("semantic cache poisoned");
        let entry = match models.get_mut(model) {
            Some(entry) if entry.cache.dim() == width => entry,
            // Unknown model or mismatched width: the miss will populate it.
            _ => {
                self.counters.cache.misses.fetch_add(1, Ordering::Relaxed);
                return Lookup::Miss { guess: None };
            }
        };
        let outcome = match entry.cache.lookup_policied(data, accept_near) {
            Ok(outcome) => outcome,
            Err(_) => return Lookup::Bypass,
        };
        match outcome {
            CacheLookup::ExactHit { prediction } => {
                self.counters.cache.hits.fetch_add(1, Ordering::Relaxed);
                Lookup::Hit {
                    predictions: vec![prediction.first().copied().unwrap_or(0.0) as u32],
                    near: false,
                    validate: false,
                }
            }
            CacheLookup::NearHit { prediction, .. } => {
                self.counters.cache.hits.fetch_add(1, Ordering::Relaxed);
                self.counters
                    .cache
                    .near_hits
                    .fetch_add(1, Ordering::Relaxed);
                let validate = self.config.validate_every > 0
                    && self
                        .near_served
                        .fetch_add(1, Ordering::Relaxed)
                        .is_multiple_of(self.config.validate_every);
                Lookup::Hit {
                    predictions: vec![prediction.first().copied().unwrap_or(0.0) as u32],
                    near: true,
                    validate,
                }
            }
            CacheLookup::BoundRejected { prediction, .. } => {
                self.counters.cache.misses.fetch_add(1, Ordering::Relaxed);
                self.counters
                    .cache
                    .bound_rejections
                    .fetch_add(1, Ordering::Relaxed);
                Lookup::Miss {
                    guess: Some(prediction.first().copied().unwrap_or(0.0) as u32),
                }
            }
            CacheLookup::Miss => {
                self.counters.cache.misses.fetch_add(1, Ordering::Relaxed);
                Lookup::Miss { guess: None }
            }
        }
    }

    /// Demux-path population: admit one request's `(row → prediction)`
    /// pairs, charging the governor and evicting cold entries under budget
    /// pressure instead of failing.
    pub(crate) fn admit(
        &self,
        model: &str,
        width: usize,
        rows: usize,
        data: &[f32],
        preds: &[u32],
    ) {
        if rows == 0 || preds.len() != rows || data.len() != rows * width {
            return;
        }
        let mut models = self.models.lock().expect("semantic cache poisoned");
        let entry = match models.get_mut(model) {
            Some(entry) => {
                if entry.cache.dim() != width {
                    return;
                }
                entry
            }
            None => {
                let cache = match InferenceResultCache::new(
                    width,
                    self.config.max_distance,
                    self.config.hnsw,
                ) {
                    Ok(cache) => {
                        cache.with_capacity(self.config.max_entries, Some(self.config.max_bytes))
                    }
                    Err(_) => return,
                };
                let reservation = match self.governor.reserve(0) {
                    Ok(r) => r,
                    Err(_) => return,
                };
                models
                    .entry(model.to_string())
                    .or_insert(ModelCache { cache, reservation })
            }
        };
        for (row, &pred) in data.chunks_exact(width).zip(preds.iter()) {
            let _ = entry.cache.insert(row, vec![pred as f32]);
        }
        Self::sync_reservation(entry);
        self.refresh_totals(&models);
    }

    /// Grow/shrink the governor reservation to the cache's accounted bytes;
    /// on OOM, evict cold entries and retry until it fits (terminates: an
    /// empty cache needs zero bytes).
    fn sync_reservation(entry: &mut ModelCache) {
        loop {
            let want = entry.cache.bytes();
            let held = entry.reservation.bytes();
            if want <= held {
                entry.reservation.shrink(held - want);
                return;
            }
            if entry.reservation.grow(want - held).is_ok() {
                return;
            }
            // Budget pressure: reclaim the cold eighth (at least one entry)
            // and try again — the cache shrinks, never the server.
            let n = (entry.cache.len() / 8).max(1);
            if entry.cache.evict_cold(n) == 0 {
                // Nothing left to evict; give up holding what we have.
                return;
            }
        }
    }

    /// Record one shadow-validation outcome (cached/rejected `guess`
    /// against the `exact` prediction the batcher just computed) and
    /// refresh the live error bound.
    pub(crate) fn record_validation(&self, guess: u32, exact: u32) {
        let n = self
            .counters
            .cache
            .validations
            .fetch_add(1, Ordering::Relaxed)
            + 1;
        let d = if guess != exact {
            self.counters
                .cache
                .disagreements
                .fetch_add(1, Ordering::Relaxed)
                + 1
        } else {
            self.counters.cache.disagreements.load(Ordering::Relaxed)
        };
        let ppm = if n < self.config.min_validations {
            1_000_000
        } else {
            let p = d as f64 / n as f64;
            let half = 1.96 * (p * (1.0 - p) / n as f64).sqrt();
            ((p + half).min(1.0) * 1_000_000.0) as u64
        };
        self.counters
            .cache
            .error_bound_ppm
            .store(ppm, Ordering::Relaxed);
    }

    /// Mirror the per-model caches' cumulative insertion/eviction ledgers
    /// and byte gauges into the serve counters (store, not add: the
    /// vectoridx stats are already cumulative). Callers hold the `models`
    /// lock; the map is a handful of models at most.
    fn refresh_totals(&self, models: &HashMap<String, ModelCache>) {
        let (mut ins, mut ev, mut bytes) = (0u64, 0u64, 0u64);
        for m in models.values() {
            let s = m.cache.stats();
            ins += s.insertions;
            ev += s.evictions;
            bytes += m.cache.bytes() as u64;
        }
        self.counters.cache.insertions.store(ins, Ordering::Relaxed);
        self.counters.cache.evictions.store(ev, Ordering::Relaxed);
        self.counters.cache.bytes.store(bytes, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_cache(config: CacheConfig, budget: usize) -> SemanticCache {
        SemanticCache::new(
            config,
            MemoryGovernor::with_budget("cache-test", budget),
            Arc::new(ServeCounters::default()),
        )
    }

    fn row(v: f32, width: usize) -> Vec<f32> {
        let mut out = vec![0.0; width];
        out[0] = v;
        out
    }

    #[test]
    fn env_value_parsing() {
        for v in ["off", "OFF", " 0 ", "false", "Disabled"] {
            assert!(cache_env_disables(v), "{v:?} must disable");
        }
        for v in ["on", "1", "", "yes"] {
            assert!(!cache_env_disables(v), "{v:?} must not disable");
        }
    }

    #[test]
    fn exact_hit_after_admit() {
        let cache = test_cache(CacheConfig::default(), 64 << 20);
        let data = row(1.0, 4);
        assert!(matches!(
            cache.lookup("m", Priority::Interactive, 1, 4, &data),
            Lookup::Miss { guess: None }
        ));
        cache.admit("m", 4, 1, &data, &[3]);
        match cache.lookup("m", Priority::Interactive, 1, 4, &data) {
            Lookup::Hit {
                predictions,
                near,
                validate,
            } => {
                assert_eq!(predictions, vec![3]);
                assert!(!near && !validate);
            }
            other => panic!("expected exact hit, got {other:?}"),
        }
        let snap = cache.counters.snapshot();
        assert_eq!((snap.cache.hits, snap.cache.misses), (1, 1));
    }

    #[test]
    fn multi_row_requests_bypass() {
        let cache = test_cache(CacheConfig::default(), 64 << 20);
        let data = [row(1.0, 2), row(2.0, 2)].concat();
        assert!(matches!(
            cache.lookup("m", Priority::Batch, 2, 2, &data),
            Lookup::Bypass
        ));
        // A bypass is invisible in the ledgers.
        assert_eq!(cache.counters.snapshot().cache.misses, 0);
    }

    #[test]
    fn near_hit_gated_by_live_bound() {
        let mut config = CacheConfig {
            min_validations: 4,
            ..CacheConfig::default()
        };
        config.max_distance = 1.0;
        config.per_class[Priority::Batch.rank()] = CacheTolerance::Near {
            max_error_bound: 0.5,
        };
        let cache = test_cache(config, 64 << 20);
        cache.admit("m", 2, 1, &row(0.0, 2), &[1]);
        let near = row(0.3, 2);
        // No validations yet → bound is 1.0 → near-hit refused, but the
        // rejected guess comes back for free validation.
        match cache.lookup("m", Priority::Batch, 1, 2, &near) {
            Lookup::Miss { guess: Some(1) } => {}
            other => panic!("expected bound-rejected miss, got {other:?}"),
        }
        let snap = cache.counters.snapshot();
        assert_eq!(snap.cache.bound_rejections, 1);
        assert_eq!(snap.cache.misses, 1);
        assert_eq!(snap.cache.hits, 0, "a rejected near-hit is not a hit");
        // Agreeing validations drive the bound to 0 → near-hits admissible.
        for _ in 0..4 {
            cache.record_validation(1, 1);
        }
        assert_eq!(cache.error_bound_ppm(), 0);
        match cache.lookup("m", Priority::Batch, 1, 2, &near) {
            Lookup::Hit { near: true, .. } => {}
            other => panic!("expected near hit, got {other:?}"),
        }
        // Disagreements push the bound back over the ceiling.
        for _ in 0..8 {
            cache.record_validation(0, 1);
        }
        assert!(cache.error_bound_ppm() > 500_000);
        match cache.lookup("m", Priority::Batch, 1, 2, &near) {
            Lookup::Miss { guess: Some(_) } => {}
            other => panic!("expected re-rejection, got {other:?}"),
        }
    }

    #[test]
    fn interactive_exact_never_serves_near() {
        let config = CacheConfig {
            max_distance: 1.0,
            ..CacheConfig::default()
        };
        let cache = test_cache(config, 64 << 20);
        cache.admit("m", 2, 1, &row(0.0, 2), &[1]);
        for _ in 0..64 {
            cache.record_validation(1, 1); // perfect bound
        }
        match cache.lookup("m", Priority::Interactive, 1, 2, &row(0.2, 2)) {
            Lookup::Miss { guess: Some(1) } => {}
            other => panic!("expected exact-only rejection, got {other:?}"),
        }
        assert!(matches!(
            cache.lookup("m", Priority::Interactive, 1, 2, &row(0.0, 2)),
            Lookup::Hit { near: false, .. }
        ));
    }

    #[test]
    fn governor_pressure_evicts_instead_of_growing() {
        let config = CacheConfig {
            max_bytes: 64 << 20, // cache's own cap is loose; governor is tight
            ..CacheConfig::default()
        };
        let probe = InferenceResultCache::with_defaults(8, 0.05);
        let cost = probe.entry_cost(1);
        // Budget fits ~6 entries.
        let cache = test_cache(config, 6 * cost + cost / 2);
        for i in 0..40 {
            cache.admit("m", 8, 1, &row(i as f32, 8), &[i as u32]);
        }
        let models = cache.models.lock().unwrap();
        let m = &models["m"];
        assert!(m.cache.len() <= 6, "governor must bound the cache");
        assert!(m.reservation.bytes() == m.cache.bytes());
        assert!(m.cache.stats().evictions > 0);
        drop(models);
        // The governor never OOM'd the server — admission just evicted.
        assert!(cache.governor.in_use() <= cache.governor.budget());
    }

    #[test]
    fn totals_mirror_across_models() {
        let cache = test_cache(CacheConfig::default(), 64 << 20);
        cache.admit("a", 2, 1, &row(1.0, 2), &[0]);
        cache.admit("b", 3, 1, &row(2.0, 3), &[1]);
        let models = cache.models.lock().unwrap();
        cache.refresh_totals(&models);
        drop(models);
        let snap = cache.counters.snapshot();
        assert_eq!(snap.cache.insertions, 2);
        assert!(snap.cache.bytes > 0);
    }

    #[test]
    fn width_mismatch_is_a_plain_miss() {
        let cache = test_cache(CacheConfig::default(), 64 << 20);
        cache.admit("m", 4, 1, &row(1.0, 4), &[2]);
        // Same model probed at a different width cannot consult the index.
        assert!(matches!(
            cache.lookup("m", Priority::Interactive, 1, 8, &row(1.0, 8)),
            Lookup::Miss { guess: None }
        ));
        // And admit at the mismatched width is dropped, not corrupting.
        cache.admit("m", 8, 1, &row(1.0, 8), &[2]);
        let models = cache.models.lock().unwrap();
        assert_eq!(models["m"].cache.dim(), 4);
    }
}
