//! A blocking, pipelining-capable, self-healing client for the serving
//! frontend's wire protocol.
//!
//! [`Client`] is deliberately a *second implementation* of the wire
//! contract (the server's reactor being the first): it speaks the same
//! `serve::wire` codec from the peer side, which pins the protocol in
//! tests. It supports deep pipelining — issue many requests with
//! [`send_infer`](Client::send_infer), then collect responses in any
//! order by id with [`wait`](Client::wait) or in server send order with
//! [`recv`](Client::recv).
//!
//! ## Ordering guarantees
//!
//! Within one connection, the server may complete pipelined requests out
//! of order (different priority classes, batch boundaries, cache hits), so
//! responses are matched by echoed request id, never by position.
//! [`wait`] stashes any response that arrives for a different id and hands
//! it out when that id is waited on. Across *different* connections there
//! is no ordering relationship at all.
//!
//! ## Self-healing
//!
//! A client built with [`connect_resilient`](Client::connect_resilient)
//! carries a [`RetryPolicy`]. When the connection dies mid-conversation —
//! peer reset, torn frame, server restart — the client transparently
//! reconnects with jittered exponential backoff and **re-submits every
//! request that was sent but not yet answered**, preserving the original
//! request ids. Inference over a relational snapshot is idempotent (the
//! same rows through the same frozen model weights produce the same
//! predictions), so replaying an unanswered request is always safe; the
//! caller's `wait(id)` eventually resolves against the replayed response
//! without ever observing the reconnect. Healing is bounded: after
//! `max_attempts` *consecutive* failed cycles with no successfully read
//! response in between, the underlying error surfaces to the caller.

use crate::error::{Error, Result};
use crate::wire::{
    self, HealthState, InferRequest, Request, Response, ShardAssignRequest, ShardExecRequest,
};
use relserve_runtime::{Priority, RetryPolicy, FAULT_SEED_ENV};
use std::collections::{BTreeMap, HashMap};
use std::io::BufReader;
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// Max attempts used by [`retry_policy_from_env`] when
/// [`CLIENT_RETRIES_ENV`] is unset.
const DEFAULT_CLIENT_RETRIES: u32 = 6;
/// Base backoff (milliseconds) used by [`retry_policy_from_env`] when
/// [`CLIENT_BACKOFF_MS_ENV`] is unset.
const DEFAULT_CLIENT_BACKOFF_MS: u64 = 10;

/// Env var overriding the resilient client's max reconnect attempts.
pub const CLIENT_RETRIES_ENV: &str = "RELSERVE_CLIENT_RETRIES";
/// Env var overriding the resilient client's base backoff in milliseconds.
pub const CLIENT_BACKOFF_MS_ENV: &str = "RELSERVE_CLIENT_BACKOFF_MS";
/// Env var overriding the resilient client's jitter fraction (`[0, 1]`).
pub const CLIENT_JITTER_ENV: &str = "RELSERVE_CLIENT_JITTER";

/// The [`RetryPolicy`] a resilient client uses by default: 6 attempts,
/// 10 ms base backoff, 25% jitter — overridable per-knob through
/// [`CLIENT_RETRIES_ENV`], [`CLIENT_BACKOFF_MS_ENV`] and
/// [`CLIENT_JITTER_ENV`].
pub fn retry_policy_from_env() -> RetryPolicy {
    let parse_u = |var: &str, default: u64| {
        std::env::var(var)
            .ok()
            .and_then(|v| v.trim().parse::<u64>().ok())
            .unwrap_or(default)
    };
    let jitter = std::env::var(CLIENT_JITTER_ENV)
        .ok()
        .and_then(|v| v.trim().parse::<f64>().ok())
        .unwrap_or(0.25);
    RetryPolicy {
        max_attempts: parse_u(CLIENT_RETRIES_ENV, u64::from(DEFAULT_CLIENT_RETRIES)).max(1) as u32,
        base_backoff: Duration::from_millis(parse_u(
            CLIENT_BACKOFF_MS_ENV,
            DEFAULT_CLIENT_BACKOFF_MS,
        )),
        jitter: jitter.clamp(0.0, 1.0),
    }
}

/// What a Health probe reported, as one named snapshot. The wire payload
/// grew worker-fleet gauges when the shard tier landed; servers predating
/// it simply report zeros for the new fields (the decoder fills them in),
/// so a new client can probe an old server.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HealthReport {
    /// Readiness of the server.
    pub state: HealthState,
    /// Live connections at probe time.
    pub live_connections: u64,
    /// Reactor pollers currently past the watchdog staleness threshold.
    pub stalled_pollers: u64,
    /// Shard workers currently believed live (0 on an unsharded server).
    pub workers_live: u64,
    /// Shard executions absorbed locally after worker losses (0 on an
    /// unsharded server).
    pub shards_degraded_local: u64,
}

/// The buffered read/write halves of one live connection.
struct Io {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Io {
    fn open(addr: SocketAddr) -> Result<Io> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        let writer = stream.try_clone()?;
        Ok(Io {
            reader: BufReader::new(stream),
            writer,
        })
    }
}

/// A blocking connection to a [`crate::Server`] with id-matched
/// pipelining and (optionally) policy-driven self-healing.
pub struct Client {
    addr: SocketAddr,
    io: Option<Io>,
    /// `Some` makes the client self-healing; `None` keeps the historical
    /// fail-fast behavior of [`Client::connect`].
    policy: Option<RetryPolicy>,
    /// SplitMix64 state feeding `backoff_jittered`.
    jitter_stream: u64,
    next_id: u64,
    /// Responses read off the wire while waiting for a different id.
    stash: HashMap<u64, Response>,
    /// Encoded payloads of requests sent but not yet answered, keyed by
    /// request id — the replay set after a reconnect. Ordered so replays
    /// hit the server in original submission order.
    inflight: BTreeMap<u64, Vec<u8>>,
    /// Failed heal cycles since the last successfully read response.
    consecutive_heals: u32,
    reconnects: u64,
}

/// Former name of [`Client`], kept so existing imports keep compiling.
pub type ServeClient = Client;

impl Client {
    /// Connect to a serving frontend. The returned client fails fast: any
    /// socket error surfaces immediately, with no reconnection.
    pub fn connect(addr: SocketAddr) -> Result<Self> {
        Ok(Self::build(addr, Io::open(addr)?, None))
    }

    /// Connect with self-healing: the initial connect and any later
    /// mid-conversation failure retry up to `policy.max_attempts` times
    /// with jittered exponential backoff, replaying unanswered requests
    /// after each reconnect.
    pub fn connect_resilient(addr: SocketAddr, policy: RetryPolicy) -> Result<Self> {
        let mut stream = Self::seed_stream(addr);
        let mut last: Option<Error> = None;
        for attempt in 0..policy.max_attempts.max(1) {
            if attempt > 0 {
                std::thread::sleep(policy.backoff_jittered(attempt, &mut stream));
            }
            match Io::open(addr) {
                Ok(io) => {
                    let mut client = Self::build(addr, io, Some(policy));
                    client.jitter_stream = stream;
                    client.reconnects = u64::from(attempt);
                    return Ok(client);
                }
                Err(e) => last = Some(e),
            }
        }
        Err(last.unwrap_or_else(|| Error::Protocol("connect: zero attempts".into())))
    }

    fn build(addr: SocketAddr, io: Io, policy: Option<RetryPolicy>) -> Self {
        Client {
            addr,
            io: Some(io),
            policy,
            jitter_stream: Self::seed_stream(addr),
            next_id: 1,
            stash: HashMap::new(),
            inflight: BTreeMap::new(),
            consecutive_heals: 0,
            reconnects: 0,
        }
    }

    /// Deterministic per-destination jitter seed: the fault seed when the
    /// run pins one (reproducible chaos tests), else the destination port
    /// folded into SplitMix64's golden-gamma constant.
    fn seed_stream(addr: SocketAddr) -> u64 {
        std::env::var(FAULT_SEED_ENV)
            .ok()
            .and_then(|v| v.trim().parse::<u64>().ok())
            .unwrap_or(0x9E37_79B9_7F4A_7C15)
            ^ u64::from(addr.port()).rotate_left(17)
    }

    /// How many times this client has torn down and re-established its
    /// connection (including extra attempts during `connect_resilient`).
    pub fn reconnects(&self) -> u64 {
        self.reconnects
    }

    /// Tear down the current connection, reconnect with backoff, and
    /// replay every unanswered request under its original id. Returns the
    /// original `cause` once the policy's attempt budget (or the
    /// consecutive-heal bound) is exhausted.
    fn heal(&mut self, cause: Error) -> Result<()> {
        let Some(policy) = self.policy else {
            self.io = None;
            return Err(cause);
        };
        let budget = policy.max_attempts.max(1);
        if self.consecutive_heals >= budget {
            self.io = None;
            return Err(cause);
        }
        self.consecutive_heals += 1;
        self.io = None;
        for attempt in 1..=budget {
            std::thread::sleep(policy.backoff_jittered(attempt, &mut self.jitter_stream));
            let Ok(mut io) = Io::open(self.addr) else {
                continue;
            };
            // Replay unanswered requests in submission order. A failure
            // here means the fresh connection died under us — try again.
            let replayed = self
                .inflight
                .values()
                .try_for_each(|payload| wire::write_frame(&mut io.writer, payload).map(|_| ()));
            if replayed.is_ok() {
                self.reconnects += 1;
                self.io = Some(io);
                return Ok(());
            }
        }
        Err(cause)
    }

    /// Record `payload` as in flight under `id` and send it, healing the
    /// connection on failure. The replay inside `heal` covers this request
    /// too, so a successful heal means the frame is on the wire.
    fn track_and_send(&mut self, id: u64, payload: Vec<u8>) -> Result<()> {
        let err = match self.io.as_mut() {
            Some(io) => match wire::write_frame(&mut io.writer, &payload) {
                Ok(()) => {
                    self.inflight.insert(id, payload);
                    return Ok(());
                }
                Err(e) => e.into(),
            },
            None => Error::Protocol("connection is down".into()),
        };
        self.inflight.insert(id, payload);
        self.heal(err)
    }

    /// Send one inference request without waiting for its response;
    /// returns the request id for demultiplexing. Any number of requests
    /// may be in flight before the first [`wait`](Self::wait).
    pub fn send_infer(
        &mut self,
        model: &str,
        class: Priority,
        deadline: Option<Duration>,
        rows: usize,
        cols: usize,
        data: Vec<f32>,
    ) -> Result<u64> {
        let id = self.next_id;
        self.next_id += 1;
        let payload = wire::encode_request(&Request::Infer(InferRequest {
            id,
            class,
            deadline_micros: deadline.map_or(0, |d| d.as_micros().max(1) as u64),
            model: model.to_string(),
            rows: rows as u32,
            cols: cols as u32,
            data,
        }))?;
        self.track_and_send(id, payload)?;
        Ok(id)
    }

    /// Send a `Stats` request without waiting; returns its id.
    pub fn send_stats(&mut self) -> Result<u64> {
        let id = self.next_id;
        self.next_id += 1;
        let payload = wire::encode_request(&Request::Stats { id })?;
        self.track_and_send(id, payload)?;
        Ok(id)
    }

    /// Send a `Health` probe without waiting; returns its id.
    pub fn send_health(&mut self) -> Result<u64> {
        let id = self.next_id;
        self.next_id += 1;
        let payload = wire::encode_request(&Request::Health { id })?;
        self.track_and_send(id, payload)?;
        Ok(id)
    }

    /// Read one response frame off the wire (ignoring the stash), healing
    /// the connection — and retrying the read — when it dies mid-stream.
    fn read_wire(&mut self) -> Result<Response> {
        loop {
            let err = match self.io.as_mut() {
                Some(io) => match wire::read_frame(&mut io.reader) {
                    Ok(Some(payload)) => {
                        let resp = wire::decode_response(&payload)?;
                        self.inflight.remove(&resp.id());
                        self.consecutive_heals = 0;
                        return Ok(resp);
                    }
                    Ok(None) => Error::Protocol("server closed the connection".into()),
                    Err(e) => e.into(),
                },
                None => Error::Protocol("connection is down".into()),
            };
            self.heal(err)?;
        }
    }

    /// Receive the next response: stashed responses first (oldest id
    /// first, for determinism), then the wire in server send order.
    pub fn recv(&mut self) -> Result<Response> {
        if let Some(&id) = self.stash.keys().min() {
            return Ok(self.stash.remove(&id).expect("stash key just seen"));
        }
        self.read_wire()
    }

    /// Block until the response for `id` arrives, stashing responses for
    /// other in-flight ids along the way.
    ///
    /// A response with the reserved connection-level id 0 (the server
    /// failing the whole connection, e.g. on an undecodable frame) is
    /// surfaced as a [`Error::Protocol`] immediately — it can never match
    /// a legitimate request id and waiting on would deadlock.
    pub fn wait(&mut self, id: u64) -> Result<Response> {
        if let Some(resp) = self.stash.remove(&id) {
            return Ok(resp);
        }
        loop {
            let resp = self.read_wire()?;
            if resp.id() == id {
                return Ok(resp);
            }
            if resp.id() == 0 {
                return Err(Error::Protocol(format!(
                    "connection-level error while awaiting id {id}: {resp:?}"
                )));
            }
            self.stash.insert(resp.id(), resp);
        }
    }

    /// Send one inference request and block for *its* response. Safe to
    /// interleave with pipelined requests: foreign responses are stashed,
    /// not errors.
    pub fn infer(
        &mut self,
        model: &str,
        class: Priority,
        deadline: Option<Duration>,
        rows: usize,
        cols: usize,
        data: Vec<f32>,
    ) -> Result<Response> {
        let id = self.send_infer(model, class, deadline, rows, cols, data)?;
        self.wait(id)
    }

    /// Fetch the server's counter snapshot.
    pub fn stats(&mut self) -> Result<Vec<(String, u64)>> {
        let id = self.send_stats()?;
        match self.wait(id)? {
            Response::Stats { counters, .. } => Ok(counters),
            other => Err(Error::Protocol(format!(
                "expected stats response for id {id}, got {other:?}"
            ))),
        }
    }

    /// Probe the server's health: the [`HealthState`] plus every gauge
    /// the server reported, including the worker-fleet distribution state
    /// on a sharded server.
    pub fn health(&mut self) -> Result<HealthReport> {
        let id = self.send_health()?;
        match self.wait(id)? {
            Response::Health {
                state,
                live_connections,
                stalled_pollers,
                workers_live,
                shards_degraded_local,
                ..
            } => Ok(HealthReport {
                state,
                live_connections,
                stalled_pollers,
                workers_live,
                shards_degraded_local,
            }),
            other => Err(Error::Protocol(format!(
                "expected health response for id {id}, got {other:?}"
            ))),
        }
    }

    // ---- shard-tier requests (coordinator → worker) ----------------------

    /// Install one decomposed weight slice on a shard worker and wait for
    /// its acknowledgement.
    #[allow(clippy::too_many_arguments)]
    pub fn shard_assign(
        &mut self,
        model: &str,
        shard_id: u32,
        shard_count: u32,
        col_start: u32,
        col_end: u32,
        out_rows: u32,
        weight: Vec<f32>,
    ) -> Result<()> {
        let id = self.next_id;
        self.next_id += 1;
        let payload = wire::encode_request(&Request::ShardAssign(ShardAssignRequest {
            id,
            model: model.to_string(),
            shard_id,
            shard_count,
            col_start,
            col_end,
            out_rows,
            weight,
        }))?;
        self.track_and_send(id, payload)?;
        match self.wait(id)? {
            Response::ShardAssigned {
                shard_id: acked, ..
            } if acked == shard_id => Ok(()),
            other => Err(Error::Protocol(format!(
                "expected assignment ack for shard {shard_id}, got {other:?}"
            ))),
        }
    }

    /// Send one shard execution without waiting; returns its id so a
    /// coordinator can scatter to the whole fleet before gathering.
    pub fn send_shard_exec(
        &mut self,
        model: &str,
        shard_id: u32,
        rows: u32,
        cols: u32,
        data: Vec<f32>,
    ) -> Result<u64> {
        let id = self.next_id;
        self.next_id += 1;
        let payload = wire::encode_request(&Request::ShardExec(ShardExecRequest {
            id,
            model: model.to_string(),
            shard_id,
            rows,
            cols,
            data,
        }))?;
        self.track_and_send(id, payload)?;
        Ok(id)
    }

    /// Probe a shard worker: its [`HealthState`] plus the installed-slice
    /// and served-execution gauges.
    pub fn worker_health(&mut self) -> Result<(HealthState, u64, u64)> {
        let id = self.next_id;
        self.next_id += 1;
        let payload = wire::encode_request(&Request::WorkerHealth { id })?;
        self.track_and_send(id, payload)?;
        match self.wait(id)? {
            Response::WorkerHealth {
                state,
                shards_assigned,
                shard_execs,
                ..
            } => Ok((state, shards_assigned, shard_execs)),
            other => Err(Error::Protocol(format!(
                "expected worker-health response for id {id}, got {other:?}"
            ))),
        }
    }
}
