//! A minimal blocking client for the serving frontend's wire protocol.
//!
//! Used by the loopback example, benches and integration tests; it speaks
//! the same `serve::wire` codec as the server and supports pipelining —
//! send several requests, then demux responses by echoed id.

use crate::error::{Error, Result};
use crate::wire::{self, InferRequest, Request, Response};
use relserve_runtime::Priority;
use std::io::BufReader;
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// A blocking connection to a [`crate::Server`].
pub struct ServeClient {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    next_id: u64,
}

impl ServeClient {
    /// Connect to a serving frontend.
    pub fn connect(addr: SocketAddr) -> Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        let writer = stream.try_clone()?;
        Ok(ServeClient {
            reader: BufReader::new(stream),
            writer,
            next_id: 1,
        })
    }

    fn send(&mut self, req: &Request) -> Result<()> {
        let payload = wire::encode_request(req)?;
        wire::write_frame(&mut self.writer, &payload)?;
        Ok(())
    }

    /// Send one inference request without waiting for its response;
    /// returns the request id for demultiplexing.
    pub fn send_infer(
        &mut self,
        model: &str,
        class: Priority,
        deadline: Option<Duration>,
        rows: usize,
        cols: usize,
        data: Vec<f32>,
    ) -> Result<u64> {
        let id = self.next_id;
        self.next_id += 1;
        self.send(&Request::Infer(InferRequest {
            id,
            class,
            deadline_micros: deadline.map_or(0, |d| d.as_micros().max(1) as u64),
            model: model.to_string(),
            rows: rows as u32,
            cols: cols as u32,
            data,
        }))?;
        Ok(id)
    }

    /// Receive the next response on the connection, in server send order.
    pub fn recv(&mut self) -> Result<Response> {
        let payload = wire::read_frame(&mut self.reader)?
            .ok_or_else(|| Error::Protocol("server closed the connection".into()))?;
        wire::decode_response(&payload)
    }

    /// Send one inference request and block for *its* response (pipelined
    /// responses for other ids are an error on this simple path).
    pub fn infer(
        &mut self,
        model: &str,
        class: Priority,
        deadline: Option<Duration>,
        rows: usize,
        cols: usize,
        data: Vec<f32>,
    ) -> Result<Response> {
        let id = self.send_infer(model, class, deadline, rows, cols, data)?;
        let resp = self.recv()?;
        if resp.id() != id {
            return Err(Error::Protocol(format!(
                "response for id {} while awaiting {id}",
                resp.id()
            )));
        }
        Ok(resp)
    }

    /// Fetch the server's counter snapshot.
    pub fn stats(&mut self) -> Result<Vec<(String, u64)>> {
        let id = self.next_id;
        self.next_id += 1;
        self.send(&Request::Stats { id })?;
        match self.recv()? {
            Response::Stats { id: got, counters } if got == id => Ok(counters),
            other => Err(Error::Protocol(format!(
                "expected stats response for id {id}, got {other:?}"
            ))),
        }
    }
}
