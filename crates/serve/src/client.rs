//! A blocking, pipelining-capable client for the serving frontend's wire
//! protocol.
//!
//! [`Client`] is deliberately a *second implementation* of the wire
//! contract (the server's reactor being the first): it speaks the same
//! `serve::wire` codec from the peer side, which pins the protocol in
//! tests. It supports deep pipelining — issue many requests with
//! [`send_infer`](Client::send_infer), then collect responses in any
//! order by id with [`wait`](Client::wait) or in server send order with
//! [`recv`](Client::recv).
//!
//! ## Ordering guarantees
//!
//! Within one connection, the server may complete pipelined requests out
//! of order (different priority classes, batch boundaries, cache hits), so
//! responses are matched by echoed request id, never by position.
//! [`wait`] stashes any response that arrives for a different id and hands
//! it out when that id is waited on. Across *different* connections there
//! is no ordering relationship at all.

use crate::error::{Error, Result};
use crate::wire::{self, InferRequest, Request, Response};
use relserve_runtime::Priority;
use std::collections::HashMap;
use std::io::BufReader;
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// A blocking connection to a [`crate::Server`] with id-matched
/// pipelining.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    next_id: u64,
    /// Responses read off the wire while waiting for a different id.
    stash: HashMap<u64, Response>,
}

/// Former name of [`Client`], kept so existing imports keep compiling.
pub type ServeClient = Client;

impl Client {
    /// Connect to a serving frontend.
    pub fn connect(addr: SocketAddr) -> Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        let writer = stream.try_clone()?;
        Ok(Client {
            reader: BufReader::new(stream),
            writer,
            next_id: 1,
            stash: HashMap::new(),
        })
    }

    fn send(&mut self, req: &Request) -> Result<()> {
        let payload = wire::encode_request(req)?;
        wire::write_frame(&mut self.writer, &payload)?;
        Ok(())
    }

    /// Send one inference request without waiting for its response;
    /// returns the request id for demultiplexing. Any number of requests
    /// may be in flight before the first [`wait`](Self::wait).
    pub fn send_infer(
        &mut self,
        model: &str,
        class: Priority,
        deadline: Option<Duration>,
        rows: usize,
        cols: usize,
        data: Vec<f32>,
    ) -> Result<u64> {
        let id = self.next_id;
        self.next_id += 1;
        self.send(&Request::Infer(InferRequest {
            id,
            class,
            deadline_micros: deadline.map_or(0, |d| d.as_micros().max(1) as u64),
            model: model.to_string(),
            rows: rows as u32,
            cols: cols as u32,
            data,
        }))?;
        Ok(id)
    }

    /// Send a `Stats` request without waiting; returns its id.
    pub fn send_stats(&mut self) -> Result<u64> {
        let id = self.next_id;
        self.next_id += 1;
        self.send(&Request::Stats { id })?;
        Ok(id)
    }

    /// Read one response frame off the wire (ignoring the stash).
    fn read_wire(&mut self) -> Result<Response> {
        let payload = wire::read_frame(&mut self.reader)?
            .ok_or_else(|| Error::Protocol("server closed the connection".into()))?;
        wire::decode_response(&payload)
    }

    /// Receive the next response: stashed responses first (oldest id
    /// first, for determinism), then the wire in server send order.
    pub fn recv(&mut self) -> Result<Response> {
        if let Some(&id) = self.stash.keys().min() {
            return Ok(self.stash.remove(&id).expect("stash key just seen"));
        }
        self.read_wire()
    }

    /// Block until the response for `id` arrives, stashing responses for
    /// other in-flight ids along the way.
    ///
    /// A response with the reserved connection-level id 0 (the server
    /// failing the whole connection, e.g. on an undecodable frame) is
    /// surfaced as a [`Error::Protocol`] immediately — it can never match
    /// a legitimate request id and waiting on would deadlock.
    pub fn wait(&mut self, id: u64) -> Result<Response> {
        if let Some(resp) = self.stash.remove(&id) {
            return Ok(resp);
        }
        loop {
            let resp = self.read_wire()?;
            if resp.id() == id {
                return Ok(resp);
            }
            if resp.id() == 0 {
                return Err(Error::Protocol(format!(
                    "connection-level error while awaiting id {id}: {resp:?}"
                )));
            }
            self.stash.insert(resp.id(), resp);
        }
    }

    /// Send one inference request and block for *its* response. Safe to
    /// interleave with pipelined requests: foreign responses are stashed,
    /// not errors.
    pub fn infer(
        &mut self,
        model: &str,
        class: Priority,
        deadline: Option<Duration>,
        rows: usize,
        cols: usize,
        data: Vec<f32>,
    ) -> Result<Response> {
        let id = self.send_infer(model, class, deadline, rows, cols, data)?;
        self.wait(id)
    }

    /// Fetch the server's counter snapshot.
    pub fn stats(&mut self) -> Result<Vec<(String, u64)>> {
        let id = self.send_stats()?;
        match self.wait(id)? {
            Response::Stats { counters, .. } => Ok(counters),
            other => Err(Error::Protocol(format!(
                "expected stats response for id {id}, got {other:?}"
            ))),
        }
    }
}
