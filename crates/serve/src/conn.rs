//! Per-connection write-side state machine for the reactor.
//!
//! A [`Conn`] is the shared half of one accepted connection: the
//! nonblocking socket plus a bounded outgoing frame queue. The poller
//! thread that owns the connection reads from the socket and flushes the
//! queue on write readiness; executor threads (batch demux, cache hits)
//! enqueue response frames from anywhere via [`Conn::send_frame`] — an
//! opportunistic nonblocking write when the queue is empty, otherwise a
//! park under the connection's `write_buffer_bytes` cap with write
//! interest armed. No thread ever blocks on a peer's socket.
//!
//! Backpressure contract:
//!
//! * a response that cannot be written immediately parks in the queue and
//!   is drained by the owning poller when the socket turns writable;
//! * when parked bytes cross the **high-water mark** (half the cap) the
//!   poller stops *reading* the connection — pipelined requests back up
//!   into kernel buffers and ultimately block the client's sends;
//! * reading resumes once the queue drains to the **low-water mark**
//!   (a quarter of the cap);
//! * if parked bytes would exceed the cap anyway (responses to requests
//!   decoded before the pause), the connection is severed — a client that
//!   never reads loses its connection instead of a server buffer growing
//!   without bound.

use crate::stats::ServeCounters;
use crate::sys::{Epoll, EPOLLIN, EPOLLOUT, EPOLLRDHUP};
use relserve_runtime::FaultInjector;
use std::collections::VecDeque;
use std::io::Write;
use std::net::{Shutdown, TcpStream};
use std::sync::atomic::Ordering;
use std::sync::{Arc, Mutex};

/// Outcome of a poller-side flush.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Flush {
    /// Queue drained as far as the socket allowed; connection healthy.
    Ok,
    /// The peer is gone (or the connection was severed); close it.
    Closed,
}

struct WriteQueue {
    bufs: VecDeque<Vec<u8>>,
    /// Bytes of the front buffer already written.
    head_off: usize,
    /// Total unwritten bytes across `bufs`.
    parked: usize,
    /// Interest mask currently armed in epoll.
    interest: u32,
    /// False once the fd left the epoll set (close path).
    registered: bool,
    severed: bool,
    read_paused: bool,
}

/// One live connection, shared between its owning poller (reads, flushes,
/// close) and any thread completing responses for it (writes).
pub(crate) struct Conn {
    id: u64,
    sock: TcpStream,
    epoll: Arc<Epoll>,
    /// Hard cap on parked response bytes; crossing it severs.
    write_limit: usize,
    counters: Arc<ServeCounters>,
    /// Seeded chaos stream; `Some` only under socket fault injection.
    faults: Option<FaultInjector>,
    wq: Mutex<WriteQueue>,
}

impl Conn {
    pub fn new(
        id: u64,
        sock: TcpStream,
        epoll: Arc<Epoll>,
        write_limit: usize,
        counters: Arc<ServeCounters>,
        faults: Option<FaultInjector>,
    ) -> Conn {
        Conn {
            id,
            sock,
            epoll,
            write_limit,
            counters,
            faults,
            wq: Mutex::new(WriteQueue {
                bufs: VecDeque::new(),
                head_off: 0,
                parked: 0,
                interest: 0,
                registered: false,
                severed: false,
                read_paused: false,
            }),
        }
    }

    pub fn id(&self) -> u64 {
        self.id
    }

    /// The poller-owned read half of the socket.
    pub fn sock(&self) -> &TcpStream {
        &self.sock
    }

    /// Parked bytes above this arm read-side backpressure.
    pub fn high_water(&self) -> usize {
        self.write_limit / 2
    }

    /// Reads resume once parked bytes fall back to this.
    pub fn low_water(&self) -> usize {
        self.write_limit / 4
    }

    pub fn parked(&self) -> usize {
        self.wq.lock().expect("conn lock poisoned").parked
    }

    pub fn reads_paused(&self) -> bool {
        self.wq.lock().expect("conn lock poisoned").read_paused
    }

    /// Register the socket with the owning poller's epoll set. Called once
    /// by the adopting poller before any event can fire.
    pub fn register(&self) -> std::io::Result<()> {
        let mut q = self.wq.lock().expect("conn lock poisoned");
        let mask = EPOLLIN | EPOLLRDHUP;
        self.epoll
            .add(std::os::fd::AsRawFd::as_raw_fd(&self.sock), mask, self.id)?;
        q.registered = true;
        q.interest = mask;
        Ok(())
    }

    /// The interest mask this queue state wants armed.
    fn desired_mask(q: &WriteQueue) -> u32 {
        let mut mask = EPOLLRDHUP;
        if !q.read_paused {
            mask |= EPOLLIN;
        }
        if q.parked > 0 {
            mask |= EPOLLOUT;
        }
        mask
    }

    fn update_interest(&self, q: &mut WriteQueue) {
        if !q.registered || q.severed {
            return;
        }
        let want = Self::desired_mask(q);
        if want != q.interest
            && self
                .epoll
                .modify(std::os::fd::AsRawFd::as_raw_fd(&self.sock), want, self.id)
                .is_ok()
        {
            q.interest = want;
        }
    }

    /// Mark the connection dead: drop parked bytes, shut the socket down
    /// so the owning poller observes HUP and reaps the table entry.
    fn sever_locked(&self, q: &mut WriteQueue) {
        if q.severed {
            return;
        }
        q.severed = true;
        self.counters
            .reactor
            .parked_bytes
            .fetch_sub(q.parked as u64, Ordering::Relaxed);
        q.parked = 0;
        q.head_off = 0;
        q.bufs.clear();
        let _ = self.sock.shutdown(Shutdown::Both);
    }

    /// Chaos draw: sever the connection as if the peer reset it while the
    /// server was mid-write. Returns true when the reset fired; callers
    /// must then report the write as failed.
    fn inject_write_reset(&self, q: &mut WriteQueue) -> bool {
        let Some(f) = &self.faults else {
            return false;
        };
        if !f.should_reset_write() {
            return false;
        }
        self.counters
            .faults
            .write_resets
            .fetch_add(1, Ordering::Relaxed);
        self.sever_locked(q);
        true
    }

    /// Poller-side teardown: deregister, sever, and release buffers. Safe
    /// to call at most once per table entry; late responders see the
    /// severed flag and drop their frames.
    pub fn close(&self) {
        let mut q = self.wq.lock().expect("conn lock poisoned");
        if q.registered {
            let _ = self
                .epoll
                .delete(std::os::fd::AsRawFd::as_raw_fd(&self.sock));
            q.registered = false;
        }
        self.sever_locked(&mut q);
    }

    /// Stop reading this connection (backpressure). Idempotent.
    pub fn pause_reads(&self) {
        let mut q = self.wq.lock().expect("conn lock poisoned");
        if q.severed || q.read_paused {
            return;
        }
        q.read_paused = true;
        self.counters
            .reactor
            .read_pauses
            .fetch_add(1, Ordering::Relaxed);
        self.update_interest(&mut q);
    }

    /// Resume reading after the queue drained. Idempotent.
    pub fn resume_reads(&self) {
        let mut q = self.wq.lock().expect("conn lock poisoned");
        if q.severed || !q.read_paused {
            return;
        }
        q.read_paused = false;
        self.update_interest(&mut q);
    }

    /// Queue one wire frame (length prefix + payload) for this connection.
    ///
    /// Fast path: with an empty queue the frame is written nonblockingly
    /// right here — the common case for a client that keeps reading. A
    /// remainder (or any frame behind one) parks under the write cap with
    /// write interest armed; overflowing the cap severs the connection.
    /// Returns false when the frame could not be delivered or parked.
    pub fn send_frame(&self, payload: &[u8]) -> bool {
        let mut frame = Vec::with_capacity(4 + payload.len());
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(payload);

        let mut q = self.wq.lock().expect("conn lock poisoned");
        if q.severed {
            self.counters
                .reactor
                .dropped_responses
                .fetch_add(1, Ordering::Relaxed);
            return false;
        }
        if self.inject_write_reset(&mut q) {
            return false;
        }
        let mut off = 0;
        if q.bufs.is_empty() {
            loop {
                match (&self.sock).write(&frame[off..]) {
                    Ok(0) => {
                        self.sever_locked(&mut q);
                        return false;
                    }
                    Ok(n) => {
                        off += n;
                        if off == frame.len() {
                            return true;
                        }
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                    Err(_) => {
                        self.sever_locked(&mut q);
                        return false;
                    }
                }
            }
        }
        let remaining = frame.len() - off;
        if q.parked + remaining > self.write_limit {
            self.counters
                .reactor
                .overflow_severed
                .fetch_add(1, Ordering::Relaxed);
            self.sever_locked(&mut q);
            return false;
        }
        if off > 0 {
            frame.drain(..off);
        }
        q.parked += remaining;
        q.bufs.push_back(frame);
        self.counters
            .reactor
            .parked_bytes
            .fetch_add(remaining as u64, Ordering::Relaxed);
        self.counters
            .reactor
            .response_parks
            .fetch_add(1, Ordering::Relaxed);
        self.update_interest(&mut q);
        true
    }

    /// Drain the parked queue as far as the socket allows. Called by the
    /// owning poller on write readiness.
    pub fn flush(&self) -> Flush {
        let mut q = self.wq.lock().expect("conn lock poisoned");
        if q.severed {
            return Flush::Closed;
        }
        // A reset here lands mid-frame whenever `head_off > 0` — the peer
        // vanishes with a partially written response on the wire.
        if self.inject_write_reset(&mut q) {
            return Flush::Closed;
        }
        while let Some(head) = q.bufs.front() {
            let from = q.head_off;
            match (&self.sock).write(&head[from..]) {
                Ok(0) => {
                    self.sever_locked(&mut q);
                    return Flush::Closed;
                }
                Ok(n) => {
                    q.head_off += n;
                    q.parked -= n;
                    self.counters
                        .reactor
                        .parked_bytes
                        .fetch_sub(n as u64, Ordering::Relaxed);
                    if q.head_off == q.bufs.front().map_or(0, |b| b.len()) {
                        q.bufs.pop_front();
                        q.head_off = 0;
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.sever_locked(&mut q);
                    return Flush::Closed;
                }
            }
        }
        self.update_interest(&mut q);
        Flush::Ok
    }
}
