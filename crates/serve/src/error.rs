//! Errors of the serving frontend.

use std::fmt;
use std::io;

/// Result alias for the serve crate.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors raised by the server, the wire codec and the loopback client.
#[derive(Debug)]
pub enum Error {
    /// Socket-level failure.
    Io(io::Error),
    /// Malformed frame or payload on the wire.
    Wire(String),
    /// The peer violated the protocol (e.g. closed mid-conversation).
    Protocol(String),
    /// Invalid server configuration rejected by the builder.
    Config(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Io(e) => write!(f, "io error: {e}"),
            Error::Wire(m) => write!(f, "wire error: {m}"),
            Error::Protocol(m) => write!(f, "protocol error: {m}"),
            Error::Config(m) => write!(f, "config error: {m}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for Error {
    fn from(e: io::Error) -> Self {
        Error::Io(e)
    }
}
