//! Network serving frontend for relserve (EDBT '24 §6, "serving deep
//! learning models from relational databases" as an online service).
//!
//! A std-only TCP server speaking a length-prefixed binary protocol
//! ([`wire`]), feeding decoded requests into a dynamic micro-batcher that
//! coalesces compatible requests (same model, class and feature width)
//! into fused batches. A fused batch pays for admission, planning and
//! kernel launch once via [`relserve_core::InferenceSession::infer_fused`],
//! and per-request predictions are demultiplexed back to their
//! connections. Requests carry a priority class ([`Priority`]) and an
//! optional deadline; the batcher sheds per class, rejects
//! buffered-expired deadlines before admission, and steps fused batches
//! down the model-version ladder under backlog pressure.

#![warn(missing_docs)]

mod batcher;
pub mod cache;
pub mod client;
mod conn;
pub mod error;
mod reactor;
pub mod registry;
pub mod server;
pub mod shard;
pub mod stats;
pub mod sys;
pub mod wire;

pub use cache::{cache_disabled_by_env, CacheConfig, CacheTolerance, CACHE_ENV};
pub use client::{
    retry_policy_from_env, Client, HealthReport, ServeClient, CLIENT_BACKOFF_MS_ENV,
    CLIENT_JITTER_ENV, CLIENT_RETRIES_ENV,
};
pub use error::{Error, Result};
pub use server::{DrainReport, ServeConfig, ServeConfigBuilder, Server, ServerHandle};
pub use shard::{workers_from_env, ShardCoordinator, WorkerHandle, WORKERS_ENV};
pub use stats::{
    export_counters, CacheServeStats, ClassServeStats, DrainServeStats, FaultServeStats,
    LadderModelStats, ReactorServeStats, ServeStats, ShardServeStats,
};
pub use wire::HealthState;
