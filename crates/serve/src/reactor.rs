//! The readiness-driven event loop replacing thread-per-connection.
//!
//! One (or a few) **poller** threads multiplex every accepted connection
//! through a level-triggered epoll set. Poller 0 additionally owns the
//! listener: accepted sockets are made nonblocking, checked against the
//! connection-slot budget (exhaustion sheds with a typed `Overloaded`
//! frame at accept time), and handed to their owning poller — chosen by
//! connection id — through a mutex inbox plus eventfd wake. All read-side
//! state (frame reassembly buffer) lives in the owning poller's table, so
//! it needs no locking; the write side is the shared [`Conn`] state
//! machine.
//!
//! Decoded requests feed the existing [`Batcher::submit`] path on the
//! poller thread; responses come back from executor threads through
//! [`Conn::send_frame`], which never blocks a poller or an executor on a
//! slow peer.

use crate::batcher::{Batcher, Responder, ResponseSink, Submission};
use crate::conn::{Conn, Flush};
use crate::stats::{export_counters, ServeCounters};
use crate::sys::{
    self, Epoll, EpollEvent, WakeFd, EPOLLERR, EPOLLHUP, EPOLLIN, EPOLLOUT, EPOLLRDHUP,
};
use crate::wire::{self, ErrorCode, HealthState, Request, Response, MAX_FRAME_BYTES};
use relserve_core::InferenceSession;
use relserve_runtime::FaultInjector;
use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Token of a poller's wake eventfd.
const TOKEN_WAKER: u64 = u64::MAX;
/// Token of the listener (poller 0 only).
const TOKEN_LISTENER: u64 = u64::MAX - 1;
/// Cap on bytes pulled off one socket per readiness event, so one firehose
/// connection cannot starve its poller's siblings.
const READ_BUDGET: usize = 256 * 1024;
/// A heartbeat older than this marks its poller stalled. Generous: the
/// epoll timeout is 250 ms, so a healthy poller beats at least 8× faster
/// even on a loaded single-core host.
const WATCHDOG_STALL_MS: u64 = 2_000;

/// Reactor-wide shared context.
pub(crate) struct ReactorCtx {
    pub counters: Arc<ServeCounters>,
    pub batcher: Arc<Batcher>,
    pub session: Arc<InferenceSession>,
    pub shutdown: Arc<AtomicBool>,
    /// Live connection gauge; accept increments, close decrements.
    pub live: Arc<AtomicUsize>,
    pub max_connections: usize,
    pub write_buffer_bytes: usize,
    /// Seeded socket chaos; `None` outside fault-injection runs.
    pub faults: Option<FaultInjector>,
    /// 0 = running, 1 = draining. Set once by [`ReactorCtx::enter_drain`].
    drain: AtomicU8,
    /// When true, poller 0 polls the SIGTERM flag and enters drain on it.
    watch_sigterm: AtomicBool,
    /// Per-poller heartbeat: milliseconds since `epoch` of the poller's
    /// last loop iteration, stored relaxed from the poller itself.
    heartbeats: Vec<AtomicU64>,
    epoch: Instant,
    next_conn_id: AtomicU64,
}

impl ReactorCtx {
    #[allow(clippy::too_many_arguments)] // one-time wiring call from Server::spawn
    pub fn new(
        counters: Arc<ServeCounters>,
        batcher: Arc<Batcher>,
        session: Arc<InferenceSession>,
        shutdown: Arc<AtomicBool>,
        live: Arc<AtomicUsize>,
        max_connections: usize,
        write_buffer_bytes: usize,
        pollers: usize,
        faults: Option<FaultInjector>,
    ) -> ReactorCtx {
        ReactorCtx {
            counters,
            batcher,
            session,
            shutdown,
            live,
            max_connections,
            write_buffer_bytes,
            faults,
            drain: AtomicU8::new(0),
            watch_sigterm: AtomicBool::new(false),
            heartbeats: (0..pollers).map(|_| AtomicU64::new(0)).collect(),
            epoch: Instant::now(),
            next_conn_id: AtomicU64::new(1),
        }
    }

    /// Flip the reactor into draining exactly once: new work is refused
    /// with typed `Draining` errors and every buffered-but-unadmitted
    /// request is shed. Idempotent; returns true on the first call.
    pub fn enter_drain(&self) -> bool {
        if self
            .drain
            .compare_exchange(0, 1, Ordering::SeqCst, Ordering::SeqCst)
            .is_err()
        {
            return false;
        }
        self.counters.drain.state.store(1, Ordering::Relaxed);
        self.batcher.drain_shed();
        true
    }

    pub fn is_draining(&self) -> bool {
        self.drain.load(Ordering::SeqCst) == 1
    }

    /// Ask poller 0 to watch the process SIGTERM flag.
    pub fn watch_sigterm(&self) {
        self.watch_sigterm.store(true, Ordering::SeqCst);
    }

    fn now_ms(&self) -> u64 {
        self.epoch.elapsed().as_millis() as u64
    }

    /// Record that poller `idx` completed a loop iteration just now.
    fn heartbeat(&self, idx: usize) {
        if let Some(hb) = self.heartbeats.get(idx) {
            hb.store(self.now_ms(), Ordering::Relaxed);
        }
    }

    /// Recount stalled pollers from the heartbeat array, updating the
    /// `serve.reactor.stalled_pollers` gauge and bumping
    /// `serve.reactor.watchdog_stalls` for every fresh-to-stale flip.
    /// Driven by poller 0 each loop and by `ServerHandle::stats()` as a
    /// backstop (so a wedged poller 0 is still reported).
    pub fn refresh_watchdog(&self) {
        let stalled = count_stalled(&self.heartbeats, self.now_ms(), WATCHDOG_STALL_MS);
        let prev = self
            .counters
            .reactor
            .stalled_pollers
            .swap(stalled, Ordering::Relaxed);
        if stalled > prev {
            self.counters
                .reactor
                .watchdog_stalls
                .fetch_add(stalled - prev, Ordering::Relaxed);
        }
    }

    /// The readiness this server would report on a Health probe.
    pub fn health_state(&self) -> HealthState {
        if self.is_draining() {
            HealthState::Draining
        } else if self.live.load(Ordering::SeqCst) >= self.max_connections {
            HealthState::Overloaded
        } else {
            HealthState::Ok
        }
    }
}

/// Heartbeats older than `threshold_ms` (against `now_ms`) are stalled.
fn count_stalled(heartbeats: &[AtomicU64], now_ms: u64, threshold_ms: u64) -> u64 {
    heartbeats
        .iter()
        .filter(|hb| now_ms.saturating_sub(hb.load(Ordering::Relaxed)) > threshold_ms)
        .count() as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    // A poller cannot be genuinely wedged from a unit test, so the
    // positive watchdog case runs against synthetic heartbeats.
    #[test]
    fn watchdog_counts_stale_heartbeats() {
        let beats: Vec<AtomicU64> = (0..3).map(|_| AtomicU64::new(0)).collect();
        // t=0: all fresh (age 0 is not > threshold).
        assert_eq!(count_stalled(&beats, 0, 2_000), 0);
        beats[0].store(5_000, Ordering::Relaxed);
        beats[1].store(4_500, Ordering::Relaxed);
        // Poller 2 never beat again: age 5_100 > 2_000.
        assert_eq!(count_stalled(&beats, 5_100, 2_000), 1);
        // Everyone stale once the clock runs far enough ahead.
        assert_eq!(count_stalled(&beats, 10_000, 2_000), 3);
        // A fresh beat recovers the poller.
        beats[2].store(10_000, Ordering::Relaxed);
        assert_eq!(count_stalled(&beats, 10_000, 2_000), 2);
    }
}

/// The cross-thread face of one poller: its epoll set, its wake eventfd,
/// and the inbox through which the accepting poller hands it fresh
/// connections.
pub(crate) struct PollerShared {
    pub epoll: Arc<Epoll>,
    pub waker: WakeFd,
    inbox: Mutex<Vec<Arc<Conn>>>,
}

impl PollerShared {
    /// Close connections handed to this poller but never adopted (the
    /// poller exited between the handoff and its final inbox sweep).
    /// Called after the poller joins; without it the live gauge leaks and
    /// the straggler sockets outlive the server.
    pub fn reap_stragglers(&self, live: &AtomicUsize) {
        let pending: Vec<Arc<Conn>> = {
            let mut inbox = self.inbox.lock().expect("poller inbox poisoned");
            std::mem::take(&mut *inbox)
        };
        for conn in pending {
            conn.close();
            live.fetch_sub(1, Ordering::SeqCst);
        }
    }
}

/// What [`spawn_reactor`] hands back: the cross-thread poller faces and
/// the poller thread handles, for wake-on-shutdown and join.
pub(crate) type ReactorParts = (Vec<Arc<PollerShared>>, Vec<JoinHandle<()>>);

/// Spawn `pollers` event-loop threads; poller 0 owns `listener`.
pub(crate) fn spawn_reactor(
    listener: TcpListener,
    pollers: usize,
    ctx: Arc<ReactorCtx>,
) -> std::io::Result<ReactorParts> {
    listener.set_nonblocking(true)?;
    let shared: Vec<Arc<PollerShared>> = (0..pollers)
        .map(|_| {
            Ok(Arc::new(PollerShared {
                epoll: Arc::new(Epoll::new()?),
                waker: WakeFd::new()?,
                inbox: Mutex::new(Vec::new()),
            }))
        })
        .collect::<std::io::Result<_>>()?;
    ctx.counters
        .reactor
        .pollers
        .store(pollers as u64, Ordering::Relaxed);

    let mut handles = Vec::with_capacity(pollers);
    let mut listener = Some(listener);
    for idx in 0..pollers {
        let me = Arc::clone(&shared[idx]);
        let all = shared.clone();
        let ctx = Arc::clone(&ctx);
        let listener = if idx == 0 { listener.take() } else { None };
        handles.push(
            std::thread::Builder::new()
                .name(format!("serve-poll-{idx}"))
                .spawn(move || run_poller(idx, me, all, listener, ctx))
                .expect("spawn poller thread"),
        );
    }
    Ok((shared, handles))
}

/// Read-side state the owning poller keeps per connection.
struct Entry {
    conn: Arc<Conn>,
    /// Partial-frame reassembly buffer.
    rbuf: Vec<u8>,
}

/// What to do with a connection after handling its event.
#[derive(PartialEq, Eq)]
enum ConnFlow {
    Continue,
    Close,
}

fn run_poller(
    idx: usize,
    me: Arc<PollerShared>,
    all: Vec<Arc<PollerShared>>,
    listener: Option<TcpListener>,
    ctx: Arc<ReactorCtx>,
) {
    let mut entries: HashMap<u64, Entry> = HashMap::new();
    let mut events = vec![EpollEvent::zeroed(); 512];
    me.epoll
        .add(me.waker.raw(), EPOLLIN, TOKEN_WAKER)
        .expect("register poller waker");
    if let Some(l) = &listener {
        me.epoll
            .add(std::os::fd::AsRawFd::as_raw_fd(l), EPOLLIN, TOKEN_LISTENER)
            .expect("register listener");
    }

    ctx.heartbeat(idx);
    while !ctx.shutdown.load(Ordering::SeqCst) {
        // The timeout is only a safety net: shutdown and handoffs arrive
        // via the eventfd, response readiness via EPOLLOUT.
        let n = match me.epoll.wait(&mut events, 250) {
            Ok(n) => n,
            Err(_) => continue,
        };
        ctx.heartbeat(idx);
        if idx == 0 {
            ctx.refresh_watchdog();
            if ctx.watch_sigterm.load(Ordering::SeqCst)
                && sys::take_signal(sys::SIGTERM)
                && ctx.enter_drain()
            {
                // Keep polling: in-flight responses still need flushing,
                // and probes/arrivals get typed Draining answers. The
                // application observes `drain_pending` and finishes the
                // drain from its own thread.
            }
        }
        for ev in events.iter().take(n) {
            let (mask, token) = (ev.events(), ev.token());
            match token {
                TOKEN_WAKER => {
                    me.waker.drain();
                    adopt_inbox(idx, &me, &mut entries, &ctx);
                }
                TOKEN_LISTENER => {
                    if let Some(l) = &listener {
                        accept_burst(idx, l, &all, &mut entries, &ctx);
                    }
                }
                id => {
                    let flow = handle_conn_event(mask, id, &mut entries, &ctx);
                    if flow == ConnFlow::Close {
                        close_conn(id, &mut entries, &ctx);
                    }
                }
            }
        }
        if ctx.shutdown.load(Ordering::SeqCst) {
            break;
        }
    }

    // Teardown: sever everything this poller owns, including connections
    // handed over but never adopted.
    adopt_inbox(idx, &me, &mut entries, &ctx);
    let ids: Vec<u64> = entries.keys().copied().collect();
    for id in ids {
        close_conn(id, &mut entries, &ctx);
    }
}

/// Move freshly accepted connections from the inbox into this poller's
/// table and epoll set.
fn adopt_inbox(
    _idx: usize,
    me: &Arc<PollerShared>,
    entries: &mut HashMap<u64, Entry>,
    ctx: &Arc<ReactorCtx>,
) {
    let pending: Vec<Arc<Conn>> = {
        let mut inbox = me.inbox.lock().expect("poller inbox poisoned");
        std::mem::take(&mut *inbox)
    };
    for conn in pending {
        adopt(conn, entries, ctx);
    }
}

fn adopt(conn: Arc<Conn>, entries: &mut HashMap<u64, Entry>, ctx: &Arc<ReactorCtx>) {
    if conn.register().is_err() {
        conn.close();
        ctx.live.fetch_sub(1, Ordering::SeqCst);
        return;
    }
    entries.insert(
        conn.id(),
        Entry {
            conn,
            rbuf: Vec::new(),
        },
    );
}

fn close_conn(id: u64, entries: &mut HashMap<u64, Entry>, ctx: &Arc<ReactorCtx>) {
    if let Some(entry) = entries.remove(&id) {
        entry.conn.close();
        ctx.live.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Accept until the listener runs dry. Slot exhaustion sheds with a typed
/// wire error *at accept time* instead of accepting and stalling.
fn accept_burst(
    my_idx: usize,
    listener: &TcpListener,
    all: &[Arc<PollerShared>],
    entries: &mut HashMap<u64, Entry>,
    ctx: &Arc<ReactorCtx>,
) {
    // Chaos draw: defer the whole burst one reactor round. The listener
    // stays readable, so level-triggered epoll re-reports it — accepts are
    // delayed, never lost.
    if let Some(f) = &ctx.faults {
        if f.should_delay_accept() {
            ctx.counters
                .faults
                .delayed_accepts
                .fetch_add(1, Ordering::Relaxed);
            return;
        }
    }
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                if ctx.is_draining() {
                    ctx.counters
                        .drain
                        .shed_accepts
                        .fetch_add(1, Ordering::Relaxed);
                    shed_connection(
                        stream,
                        ErrorCode::Draining,
                        "server is draining; not accepting connections".into(),
                    );
                    continue;
                }
                if ctx.live.load(Ordering::SeqCst) >= ctx.max_connections {
                    ctx.counters
                        .reactor
                        .accept_shed
                        .fetch_add(1, Ordering::Relaxed);
                    shed_connection(
                        stream,
                        ErrorCode::Overloaded,
                        format!("connection slots exhausted ({} live)", ctx.max_connections),
                    );
                    continue;
                }
                let _ = stream.set_nodelay(true);
                if stream.set_nonblocking(true).is_err() {
                    continue;
                }
                let id = ctx.next_conn_id.fetch_add(1, Ordering::Relaxed);
                let owner = (id as usize) % all.len();
                let conn = Arc::new(Conn::new(
                    id,
                    stream,
                    Arc::clone(&all[owner].epoll),
                    ctx.write_buffer_bytes,
                    Arc::clone(&ctx.counters),
                    ctx.faults.clone(),
                ));
                ctx.live.fetch_add(1, Ordering::SeqCst);
                ctx.counters.connections.fetch_add(1, Ordering::Relaxed);
                if owner == my_idx {
                    adopt(conn, entries, ctx);
                } else {
                    all[owner]
                        .inbox
                        .lock()
                        .expect("poller inbox poisoned")
                        .push(conn);
                    all[owner].waker.wake();
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            // Transient accept failure (EMFILE under fd pressure, aborted
            // handshake): back off briefly instead of spinning on the
            // level-triggered listener event.
            Err(_) => {
                std::thread::sleep(Duration::from_millis(5));
                break;
            }
        }
    }
}

/// Best-effort typed rejection for a connection we will not serve —
/// slot exhaustion (`Overloaded`) or drain (`Draining`).
fn shed_connection(stream: TcpStream, code: ErrorCode, message: String) {
    let _ = stream.set_nonblocking(true);
    let resp = Response::Error {
        id: 0,
        code,
        message,
    };
    if let Ok(payload) = wire::encode_response(&resp) {
        let mut frame = Vec::with_capacity(4 + payload.len());
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&payload);
        let mut off = 0;
        while off < frame.len() {
            match (&stream).write(&frame[off..]) {
                Ok(0) => break,
                Ok(n) => off += n,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => break,
            }
        }
    }
    // Dropping the stream closes it; the frame (if it fit the socket
    // buffer, which a ~40-byte error always does) is still delivered.
}

fn handle_conn_event(
    mask: u32,
    id: u64,
    entries: &mut HashMap<u64, Entry>,
    ctx: &Arc<ReactorCtx>,
) -> ConnFlow {
    let Some(entry) = entries.get_mut(&id) else {
        return ConnFlow::Continue;
    };
    if mask & (EPOLLERR | EPOLLHUP) != 0 {
        return ConnFlow::Close;
    }
    if mask & EPOLLOUT != 0 {
        match entry.conn.flush() {
            Flush::Closed => return ConnFlow::Close,
            Flush::Ok => {
                // The queue drained: re-run any frames that were parked in
                // the reassembly buffer behind backpressure, then resume
                // reading if the pressure is off.
                if entry.conn.reads_paused() && entry.conn.parked() <= entry.conn.low_water() {
                    if dispatch_frames(entry, ctx) == ConnFlow::Close {
                        return ConnFlow::Close;
                    }
                    apply_backpressure(&entry.conn);
                }
            }
        }
    }
    if mask & (EPOLLIN | EPOLLRDHUP) != 0 && !entry.conn.reads_paused() {
        return read_and_dispatch(entry, ctx);
    }
    ConnFlow::Continue
}

/// Pause reads over the high-water mark, resume below the low-water mark.
fn apply_backpressure(conn: &Arc<Conn>) {
    let parked = conn.parked();
    if parked > conn.high_water() {
        conn.pause_reads();
    } else if conn.reads_paused() && parked <= conn.low_water() {
        conn.resume_reads();
    }
}

/// Pull bytes off the socket (bounded per event for fairness) and run the
/// frame state machine.
fn read_and_dispatch(entry: &mut Entry, ctx: &Arc<ReactorCtx>) -> ConnFlow {
    let mut chunk = [0u8; 16 * 1024];
    let mut budget = READ_BUDGET;
    if let Some(f) = &ctx.faults {
        // Stalled peer: skip the whole readiness event. Level-triggered
        // epoll re-reports it next round, so data is delayed, not lost.
        if f.should_stall_read() {
            ctx.counters
                .faults
                .stalled_reads
                .fetch_add(1, Ordering::Relaxed);
            return ConnFlow::Continue;
        }
        // Torn read: pull only a few bytes so frames land in fragments and
        // the reassembly buffer sees every partial-prefix shape. The rest
        // of the data stays in the kernel buffer for the next event.
        if f.should_tear_read() {
            ctx.counters
                .faults
                .torn_reads
                .fetch_add(1, Ordering::Relaxed);
            let mut tiny = [0u8; 3];
            loop {
                match (&mut entry.conn.sock()).read(&mut tiny) {
                    Ok(0) => return ConnFlow::Close, // clean EOF
                    Ok(n) => {
                        entry.rbuf.extend_from_slice(&tiny[..n]);
                        break;
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                    Err(_) => return ConnFlow::Close,
                }
            }
            let flow = dispatch_frames(entry, ctx);
            if flow == ConnFlow::Continue {
                apply_backpressure(&entry.conn);
            }
            return flow;
        }
    }
    loop {
        match (&mut entry.conn.sock()).read(&mut chunk) {
            Ok(0) => return ConnFlow::Close, // clean EOF
            Ok(n) => {
                entry.rbuf.extend_from_slice(&chunk[..n]);
                budget = budget.saturating_sub(n);
                if budget == 0 {
                    break; // level-triggered epoll re-reports the rest
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => return ConnFlow::Close,
        }
    }
    let flow = dispatch_frames(entry, ctx);
    if flow == ConnFlow::Continue {
        apply_backpressure(&entry.conn);
    }
    flow
}

/// Decode and dispatch every complete frame in the reassembly buffer,
/// stopping early when the connection's write queue crosses its
/// high-water mark (the remaining frames stay buffered until the queue
/// drains).
fn dispatch_frames(entry: &mut Entry, ctx: &Arc<ReactorCtx>) -> ConnFlow {
    let mut consumed = 0;
    let mut flow = ConnFlow::Continue;
    loop {
        let avail = entry.rbuf.len() - consumed;
        if avail < 4 {
            break;
        }
        let len = u32::from_le_bytes(
            entry.rbuf[consumed..consumed + 4]
                .try_into()
                .expect("4 bytes checked"),
        ) as usize;
        if len > MAX_FRAME_BYTES {
            ctx.counters.wire_errors.fetch_add(1, Ordering::Relaxed);
            flow = ConnFlow::Close;
            break;
        }
        if avail < 4 + len {
            break;
        }
        let payload = &entry.rbuf[consumed + 4..consumed + 4 + len];
        let request_flow = handle_request(payload, &entry.conn, ctx);
        consumed += 4 + len;
        if request_flow == ConnFlow::Close {
            flow = ConnFlow::Close;
            break;
        }
        if entry.conn.parked() > entry.conn.high_water() {
            break; // backpressure: leave the rest buffered
        }
    }
    if consumed > 0 {
        entry.rbuf.drain(..consumed);
    }
    flow
}

/// One decoded frame: submit inference, answer stats inline, or fail the
/// connection on an undecodable payload.
fn handle_request(payload: &[u8], conn: &Arc<Conn>, ctx: &Arc<ReactorCtx>) -> ConnFlow {
    let counters = &ctx.counters;
    let responder = Responder {
        sink: ResponseSink::Conn(Arc::clone(conn)),
        counters: Arc::clone(counters),
    };
    let received = Instant::now();
    match wire::decode_request(payload) {
        Ok(Request::Infer(req)) => {
            counters.requests.fetch_add(1, Ordering::Relaxed);
            counters.per_class[req.class.rank()]
                .requests
                .fetch_add(1, Ordering::Relaxed);
            let deadline = (req.deadline_micros > 0)
                .then(|| received + Duration::from_micros(req.deadline_micros));
            ctx.batcher.submit(Submission {
                id: req.id,
                class: req.class,
                deadline,
                model: req.model,
                rows: req.rows as usize,
                width: req.cols as usize,
                data: req.data,
                received,
                responder,
                guess: None,
                shadow: false,
            });
            ConnFlow::Continue
        }
        Ok(Request::Stats { id }) => {
            // Take every snapshot before touching the connection; the send
            // below never blocks the poller (nonblocking write or park).
            let serve = counters.snapshot();
            let session_stats = ctx.session.stats();
            let admission = ctx.session.coordinator().admission_stats();
            let mut export = export_counters(&serve, &session_stats, &admission);
            export.extend(counters.ladder_counters());
            responder.send(&Response::Stats {
                id,
                counters: export,
            });
            ConnFlow::Continue
        }
        Ok(Request::Health { id }) => {
            // Answered inline even while draining, so a load balancer can
            // watch this server leave rotation.
            responder.send(&Response::Health {
                id,
                state: ctx.health_state(),
                live_connections: ctx.live.load(Ordering::SeqCst) as u64,
                stalled_pollers: counters.reactor.stalled_pollers.load(Ordering::Relaxed),
                workers_live: counters.shard.workers_live.load(Ordering::Relaxed),
                shards_degraded_local: counters.shard.shards_degraded_local.load(Ordering::Relaxed),
            });
            ConnFlow::Continue
        }
        Ok(
            Request::ShardAssign(wire::ShardAssignRequest { id, .. })
            | Request::ShardExec(wire::ShardExecRequest { id, .. })
            | Request::WorkerHealth { id },
        ) => {
            // Shard opcodes are worker-side only; a frontend receiving
            // one is being probed by a confused coordinator.
            responder.send(&Response::Error {
                id,
                code: ErrorCode::Invalid,
                message: "shard opcodes are served by shard workers, not the frontend".into(),
            });
            ConnFlow::Continue
        }
        Err(e) => {
            // Framing can no longer be trusted after an undecodable
            // payload: answer with the reserved connection-level id 0 and
            // close instead of mis-attributing future errors.
            counters.wire_errors.fetch_add(1, Ordering::Relaxed);
            responder.send(&Response::Error {
                id: 0,
                code: ErrorCode::Invalid,
                message: e.to_string(),
            });
            ConnFlow::Close
        }
    }
}
