//! Single registry of every wire-protocol opcode and status byte.
//!
//! The serving protocol multiplexes two one-byte spaces:
//!
//! * **request opcodes** — the first payload byte of a client → server
//!   frame, selecting the request kind;
//! * **response statuses** — the byte after the echoed request id of a
//!   server → client frame. Ok statuses and error codes share this space,
//!   so every value is registered here to keep them collision-free.
//!
//! Historically these lived as scattered private literals inside
//! `wire.rs`; new shard opcodes made a registered, documented space worth
//! having. `wire.rs` (and everything else) imports from here — adding a
//! constant anywhere else is a bug, and the exhaustiveness test at the
//! bottom fails if the tables below drift from the constants.
//!
//! ## Request opcodes
//!
//! | value | name | direction | meaning |
//! |---|---|---|---|
//! | 0 | [`OP_INFER`] | client → server | run inference over carried feature rows |
//! | 1 | [`OP_STATS`] | client → server | snapshot server counters |
//! | 2 | [`OP_HEALTH`] | client → server | liveness + readiness probe |
//! | 3 | [`OP_SHARD_ASSIGN`] | coordinator → worker | install a decomposed weight slice |
//! | 4 | [`OP_SHARD_EXEC`] | coordinator → worker | multiply a feature-column block against an installed slice |
//! | 5 | [`OP_WORKER_HEALTH`] | coordinator → worker | probe a worker's shard state |
//!
//! ## Response statuses
//!
//! | value | name | meaning |
//! |---|---|---|
//! | 0 | [`STATUS_OK_INFER`] | successful inference |
//! | 1 | [`ERR_OVERLOADED`] | shed by admission/backlog control |
//! | 2 | [`ERR_DEADLINE_EXCEEDED`] | deadline expired |
//! | 3 | [`ERR_NOT_FOUND`] | model not loaded |
//! | 4 | [`ERR_INVALID`] | malformed request |
//! | 5 | [`ERR_INTERNAL`] | other server-side failure |
//! | 6 | [`STATUS_OK_STATS`] | counter snapshot |
//! | 7 | [`ERR_DRAINING`] | server draining, no new work |
//! | 8 | [`STATUS_OK_HEALTH`] | health probe answer |
//! | 9 | [`STATUS_OK_SHARD_ASSIGN`] | weight slice installed |
//! | 10 | [`STATUS_OK_PARTIAL`] | partial product for one shard |
//! | 11 | [`STATUS_OK_WORKER_HEALTH`] | worker health answer |

/// Opcode: run inference over the carried feature rows.
pub const OP_INFER: u8 = 0;
/// Opcode: snapshot the server's counters.
pub const OP_STATS: u8 = 1;
/// Opcode: liveness + readiness probe (answered inline, even draining).
pub const OP_HEALTH: u8 = 2;
/// Opcode: install one decomposed weight slice on a shard worker.
pub const OP_SHARD_ASSIGN: u8 = 3;
/// Opcode: execute one feature-column block against an installed slice.
pub const OP_SHARD_EXEC: u8 = 4;
/// Opcode: probe a shard worker's health and assignment gauges.
pub const OP_WORKER_HEALTH: u8 = 5;

/// Status: successful inference response.
pub const STATUS_OK_INFER: u8 = 0;
/// Status: counter snapshot response.
pub const STATUS_OK_STATS: u8 = 6;
/// Status: health probe response.
pub const STATUS_OK_HEALTH: u8 = 8;
/// Status: a shard worker acknowledged a weight-slice assignment.
pub const STATUS_OK_SHARD_ASSIGN: u8 = 9;
/// Status: a shard worker returned one partial product.
pub const STATUS_OK_PARTIAL: u8 = 10;
/// Status: a shard worker answered a worker-health probe.
pub const STATUS_OK_WORKER_HEALTH: u8 = 11;

/// Status: shed by admission-queue timeout, depth or backlog shedding.
pub const ERR_OVERLOADED: u8 = 1;
/// Status: the request's deadline expired.
pub const ERR_DEADLINE_EXCEEDED: u8 = 2;
/// Status: the named model is not loaded.
pub const ERR_NOT_FOUND: u8 = 3;
/// Status: malformed request.
pub const ERR_INVALID: u8 = 4;
/// Status: any other server-side failure.
pub const ERR_INTERNAL: u8 = 5;
/// Status: the server is draining and accepts no new work.
pub const ERR_DRAINING: u8 = 7;

/// Every registered request opcode, for exhaustiveness checks.
pub const REQUEST_OPCODES: [u8; 6] = [
    OP_INFER,
    OP_STATS,
    OP_HEALTH,
    OP_SHARD_ASSIGN,
    OP_SHARD_EXEC,
    OP_WORKER_HEALTH,
];

/// Every registered ok status, for exhaustiveness checks.
pub const OK_STATUSES: [u8; 6] = [
    STATUS_OK_INFER,
    STATUS_OK_STATS,
    STATUS_OK_HEALTH,
    STATUS_OK_SHARD_ASSIGN,
    STATUS_OK_PARTIAL,
    STATUS_OK_WORKER_HEALTH,
];

/// Every registered error status, for exhaustiveness checks.
pub const ERROR_STATUSES: [u8; 6] = [
    ERR_OVERLOADED,
    ERR_DEADLINE_EXCEEDED,
    ERR_NOT_FOUND,
    ERR_INVALID,
    ERR_INTERNAL,
    ERR_DRAINING,
];

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::ErrorCode;

    /// The registry is the single source of truth: opcodes are unique,
    /// the shared status-byte space has no ok/error collisions, and the
    /// typed `ErrorCode` enum covers exactly the registered error bytes.
    #[test]
    fn registry_is_exhaustive_and_collision_free() {
        let unique = |values: &[u8]| {
            let mut seen = std::collections::BTreeSet::new();
            values.iter().all(|v| seen.insert(*v))
        };
        assert!(unique(&REQUEST_OPCODES), "duplicate request opcode");

        let mut statuses: Vec<u8> = OK_STATUSES.to_vec();
        statuses.extend_from_slice(&ERROR_STATUSES);
        assert!(unique(&statuses), "ok/error status-byte collision");

        // Opcodes are dense from 0 — an unknown opcode is exactly
        // "greater than the last registered one".
        let mut ops = REQUEST_OPCODES.to_vec();
        ops.sort_unstable();
        assert_eq!(ops, (0..REQUEST_OPCODES.len() as u8).collect::<Vec<_>>());

        // Every registered error byte round-trips through the typed enum,
        // and every non-registered byte in the combined space does not.
        for b in ERROR_STATUSES {
            let code = ErrorCode::from_u8(b).expect("registered error byte has a typed code");
            assert_eq!(code.as_u8(), b);
        }
        for b in 0..=u8::MAX {
            let registered = ERROR_STATUSES.contains(&b);
            assert_eq!(
                ErrorCode::from_u8(b).is_some(),
                registered,
                "ErrorCode::from_u8({b}) disagrees with the registry"
            );
        }
    }
}
