//! The TCP serving frontend.
//!
//! [`Server::spawn`] binds a listener and starts the readiness reactor —
//! one or a few poller threads multiplexing every accepted connection
//! through epoll ([`crate::reactor`]) — plus a pool of batch executor
//! threads. Pollers decode frames and hand inference requests to the
//! micro-batcher; `Stats` requests are answered inline from lock-free
//! snapshots; responses flow back through each connection's bounded write
//! queue without any thread ever blocking on a slow peer.
//! [`ServerHandle::shutdown`] (also run on drop) stops the reactor, severs
//! every live connection, and drains the batcher before joining all
//! threads.
//!
//! Configuration is built through [`ServeConfig::builder`]; the config's
//! fields are validated once at [`ServeConfigBuilder::build`] time, so a
//! spawned server never runs with a nonsensical knob.

use crate::batcher::{Batcher, BatcherConfig};
use crate::cache::{cache_disabled_by_env, CacheConfig, SemanticCache};
use crate::client::retry_policy_from_env;
use crate::error::{Error, Result};
use crate::reactor::{spawn_reactor, PollerShared, ReactorCtx};
use crate::shard::{workers_from_env, ShardCoordinator};
use crate::stats::{ServeCounters, ServeStats};
use crate::sys::{self, set_listen_backlog};
use crate::wire::HealthState;
use relserve_core::versions::PressureLadder;
use relserve_core::{Architecture, InferenceSession};
use relserve_runtime::{AdmissionPolicy, FaultConfig, FaultInjector, Priority};
use std::collections::HashMap;
use std::net::{SocketAddr, TcpListener};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Tuning for a [`Server`]. Construct via [`ServeConfig::builder`]; every
/// knob is validated when the builder finishes, and the set of fields is
/// private so invalid combinations cannot be assembled by hand.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Address to bind; port 0 picks an ephemeral port.
    pub(crate) bind: SocketAddr,
    /// Row budget of one fused batch; a group flushes when it reaches it.
    pub(crate) max_batch_rows: usize,
    /// Longest a buffered request waits before its group flushes anyway.
    pub(crate) max_batch_delay: Duration,
    /// Batch executor threads draining the micro-batcher.
    pub(crate) executors: usize,
    /// Reactor poller threads multiplexing connections.
    pub(crate) pollers: usize,
    /// Per-connection cap on parked (unwritten) response bytes; crossing
    /// half of it pauses reads, overflowing it severs the connection.
    pub(crate) write_buffer_bytes: usize,
    /// Connection slots; accepts past this are shed with a typed
    /// `Overloaded` wire error instead of being admitted and stalled.
    pub(crate) max_connections: usize,
    /// Kernel accept backlog requested for the listener.
    pub(crate) accept_backlog: u32,
    /// Execution architecture for fused batches.
    pub(crate) architecture: Architecture,
    /// Admission policy per class, indexed by [`Priority::rank`].
    pub(crate) admission: [AdmissionPolicy; 3],
    /// Per-class cap on buffered rows; arrivals past it are shed with
    /// `Overloaded` before they ever buffer. `None` = unbounded.
    pub(crate) backlog_shed_rows: [Option<usize>; 3],
    /// SLA step-down ladders, keyed by requested model name.
    pub(crate) ladders: HashMap<String, PressureLadder>,
    /// Semantic result cache fronting the micro-batcher.
    pub(crate) cache: CacheConfig,
    /// Default deadline for [`ServerHandle::drain_graceful`].
    pub(crate) drain_deadline: Duration,
    /// Deterministic socket chaos for the reactor; `None` (the default)
    /// falls back to the `RELSERVE_FAULT_SEED` + `RELSERVE_SOCK_FAULTS`
    /// environment pair, and quiet configs are ignored entirely.
    pub(crate) wire_faults: Option<FaultConfig>,
    /// Shard-worker fleet for distributed execution; `None` (the default)
    /// falls back to the [`crate::shard::WORKERS_ENV`] list, and an
    /// absent list serves single-process.
    pub(crate) workers: Option<Vec<SocketAddr>>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            bind: "127.0.0.1:0".parse().expect("static addr parses"),
            max_batch_rows: 64,
            max_batch_delay: Duration::from_millis(2),
            executors: 2,
            pollers: 1,
            write_buffer_bytes: 1 << 20,
            max_connections: 10_000,
            accept_backlog: 1024,
            architecture: Architecture::UdfCentric,
            admission: [
                AdmissionPolicy::for_class(Priority::Interactive),
                AdmissionPolicy::for_class(Priority::Standard),
                AdmissionPolicy::for_class(Priority::Batch),
            ],
            backlog_shed_rows: [None; 3],
            ladders: HashMap::new(),
            cache: CacheConfig::default(),
            drain_deadline: Duration::from_secs(5),
            wire_faults: None,
            workers: None,
        }
    }
}

impl ServeConfig {
    /// Start building a validated configuration from the defaults.
    pub fn builder() -> ServeConfigBuilder {
        ServeConfigBuilder {
            config: ServeConfig::default(),
        }
    }
}

/// Builder for [`ServeConfig`], mirroring
/// [`relserve_core::SessionConfig::builder`]: setters are chainable and
/// [`build`](Self::build) rejects invalid combinations with
/// [`Error::Config`] instead of letting a bad knob reach the reactor.
#[derive(Debug, Clone)]
pub struct ServeConfigBuilder {
    config: ServeConfig,
}

impl ServeConfigBuilder {
    /// Address to bind; port 0 picks an ephemeral port (see
    /// [`ServerHandle::addr`]).
    pub fn bind(mut self, addr: SocketAddr) -> Self {
        self.config.bind = addr;
        self
    }

    /// Row budget of one fused batch.
    pub fn max_batch_rows(mut self, rows: usize) -> Self {
        self.config.max_batch_rows = rows;
        self
    }

    /// Longest a buffered request waits before its group flushes anyway.
    pub fn max_batch_delay(mut self, delay: Duration) -> Self {
        self.config.max_batch_delay = delay;
        self
    }

    /// Batch executor threads draining the micro-batcher.
    pub fn executors(mut self, executors: usize) -> Self {
        self.config.executors = executors;
        self
    }

    /// Reactor poller threads. Connections are sharded across pollers by
    /// id; one poller is plenty below a few thousand mostly-idle
    /// connections.
    pub fn pollers(mut self, pollers: usize) -> Self {
        self.config.pollers = pollers;
        self
    }

    /// Per-connection cap on parked response bytes (the backpressure
    /// budget): reads pause at half of it, overflow severs.
    pub fn write_buffer_bytes(mut self, bytes: usize) -> Self {
        self.config.write_buffer_bytes = bytes;
        self
    }

    /// Connection slots; accepts past this are shed with a typed
    /// `Overloaded` wire error at accept time.
    pub fn max_connections(mut self, conns: usize) -> Self {
        self.config.max_connections = conns;
        self
    }

    /// Kernel accept backlog requested for the listener.
    pub fn accept_backlog(mut self, backlog: u32) -> Self {
        self.config.accept_backlog = backlog;
        self
    }

    /// Execution architecture for fused batches.
    pub fn architecture(mut self, architecture: Architecture) -> Self {
        self.config.architecture = architecture;
        self
    }

    /// Admission policy for one class (defaults to
    /// [`AdmissionPolicy::for_class`]).
    pub fn admission(mut self, class: Priority, policy: AdmissionPolicy) -> Self {
        self.config.admission[class.rank()] = policy;
        self
    }

    /// Cap buffered rows for one class; arrivals past the cap are shed
    /// with `Overloaded` before they buffer.
    pub fn backlog_shed_rows(mut self, class: Priority, rows: usize) -> Self {
        self.config.backlog_shed_rows[class.rank()] = Some(rows);
        self
    }

    /// Register an SLA step-down ladder for a model name.
    pub fn ladder(mut self, model: impl Into<String>, ladder: PressureLadder) -> Self {
        self.config.ladders.insert(model.into(), ladder);
        self
    }

    /// Semantic result cache fronting the micro-batcher. Disabled by
    /// default; `RELSERVE_CACHE=off` force-disables it even when enabled
    /// here.
    pub fn cache(mut self, cache: CacheConfig) -> Self {
        self.config.cache = cache;
        self
    }

    /// Default deadline for [`ServerHandle::drain_graceful`]: how long a
    /// drain waits for in-flight batches to execute and parked response
    /// bytes to flush before severing what remains.
    pub fn drain_deadline(mut self, deadline: Duration) -> Self {
        self.config.drain_deadline = deadline;
        self
    }

    /// Inject deterministic socket chaos (torn reads, stalled reads,
    /// mid-write resets, delayed accepts) into the reactor. Chaos-soak
    /// tests set this explicitly; otherwise the
    /// `RELSERVE_FAULT_SEED` + `RELSERVE_SOCK_FAULTS` environment pair
    /// enables an ambient profile.
    pub fn wire_faults(mut self, faults: FaultConfig) -> Self {
        self.config.wire_faults = Some(faults);
        self
    }

    /// Shard-worker fleet: fused batches scatter their first-layer
    /// partial products across these addresses and gather the results
    /// ([`crate::shard::ShardCoordinator`]). Overrides the
    /// [`crate::shard::WORKERS_ENV`] environment list.
    pub fn workers(mut self, workers: Vec<SocketAddr>) -> Self {
        self.config.workers = Some(workers);
        self
    }

    /// Validate and produce the configuration.
    pub fn build(self) -> Result<ServeConfig> {
        let c = &self.config;
        if c.max_batch_rows == 0 {
            return Err(Error::Config("max_batch_rows must be at least 1".into()));
        }
        if c.executors == 0 {
            return Err(Error::Config("executors must be at least 1".into()));
        }
        if c.pollers == 0 || c.pollers > 64 {
            return Err(Error::Config(format!(
                "pollers must be in 1..=64, got {}",
                c.pollers
            )));
        }
        if c.write_buffer_bytes < 4096 {
            return Err(Error::Config(format!(
                "write_buffer_bytes must be at least 4096 (one small response \
                 must fit under the backpressure watermarks), got {}",
                c.write_buffer_bytes
            )));
        }
        if c.max_connections == 0 {
            return Err(Error::Config("max_connections must be at least 1".into()));
        }
        if c.accept_backlog == 0 {
            return Err(Error::Config("accept_backlog must be at least 1".into()));
        }
        if c.drain_deadline.is_zero() {
            return Err(Error::Config(
                "drain_deadline must be nonzero (a zero deadline is a hard \
                 stop; call shutdown() for that)"
                    .into(),
            ));
        }
        if let Some(workers) = &c.workers {
            if workers.is_empty() {
                return Err(Error::Config(
                    "workers list must name at least one address (omit the \
                     knob to serve single-process)"
                        .into(),
                ));
            }
        }
        if let Some(f) = &c.wire_faults {
            for (name, rate) in [
                ("sock_tear_rate", f.sock_tear_rate),
                ("sock_stall_rate", f.sock_stall_rate),
                ("sock_reset_rate", f.sock_reset_rate),
                ("accept_delay_rate", f.accept_delay_rate),
            ] {
                if !(0.0..=1.0).contains(&rate) {
                    return Err(Error::Config(format!(
                        "wire_faults.{name} must be in [0, 1], got {rate}"
                    )));
                }
            }
        }
        Ok(self.config)
    }
}

/// The serving frontend. Construct with [`Server::spawn`]; the returned
/// [`ServerHandle`] owns every thread.
pub struct Server;

impl Server {
    /// Bind, start the reactor pollers and executor pool, and return a
    /// handle.
    pub fn spawn(session: Arc<InferenceSession>, config: ServeConfig) -> Result<ServerHandle> {
        let listener = TcpListener::bind(config.bind)?;
        let addr = listener.local_addr()?;
        // std's bind hardcodes a backlog of 128; re-listen to the
        // configured depth so an accept burst at 10k connections does not
        // overflow the SYN queue.
        set_listen_backlog(&listener, config.accept_backlog)?;

        let counters = Arc::new(ServeCounters::default());
        // The semantic cache charges its entries to the session's database
        // memory governor, so budget pressure evicts cold cached results
        // instead of OOMing inference.
        let cache = (config.cache.enabled && !cache_disabled_by_env()).then(|| {
            Arc::new(SemanticCache::new(
                config.cache.clone(),
                session.governor().clone(),
                Arc::clone(&counters),
            ))
        });
        // Distributed mode: an explicit builder fleet wins; otherwise the
        // RELSERVE_WORKERS environment list. No list = single-process.
        let shard = config
            .workers
            .clone()
            .or_else(workers_from_env)
            .map(|fleet| {
                ShardCoordinator::with_counters(
                    fleet,
                    retry_policy_from_env(),
                    Arc::clone(&counters.shard),
                )
                .map(Arc::new)
            })
            .transpose()?;
        let batcher = Batcher::new(
            BatcherConfig {
                max_batch_rows: config.max_batch_rows.max(1),
                max_batch_delay: config.max_batch_delay,
                architecture: config.architecture,
                admission: config.admission,
                backlog_shed_rows: config.backlog_shed_rows,
                ladders: config.ladders.clone(),
            },
            Arc::clone(&counters),
            Arc::clone(&session),
            cache,
            shard,
        );

        let executors: Vec<JoinHandle<()>> = (0..config.executors.max(1))
            .map(|i| {
                let batcher = Arc::clone(&batcher);
                std::thread::Builder::new()
                    .name(format!("serve-exec-{i}"))
                    .spawn(move || batcher.run_executor())
                    .expect("spawn executor thread")
            })
            .collect();

        let shutdown = Arc::new(AtomicBool::new(false));
        let live = Arc::new(AtomicUsize::new(0));
        // Socket chaos: an explicit builder config wins; otherwise the
        // RELSERVE_FAULT_SEED + RELSERVE_SOCK_FAULTS environment pair
        // supplies an ambient stream. All-zero rates cost nothing.
        let faults = config
            .wire_faults
            .filter(FaultConfig::has_socket_faults)
            .map(FaultInjector::new)
            .or_else(FaultInjector::socket_from_env);
        let poller_count = config.pollers.max(1);
        let ctx = Arc::new(ReactorCtx::new(
            Arc::clone(&counters),
            Arc::clone(&batcher),
            Arc::clone(&session),
            Arc::clone(&shutdown),
            Arc::clone(&live),
            config.max_connections,
            config.write_buffer_bytes,
            poller_count,
            faults,
        ));
        let (poller_shared, pollers) = spawn_reactor(listener, poller_count, Arc::clone(&ctx))?;

        Ok(ServerHandle {
            addr,
            session,
            counters,
            batcher,
            shutdown,
            live,
            ctx,
            drain_deadline: config.drain_deadline,
            poller_shared,
            pollers,
            executors,
        })
    }
}

/// What a completed [`ServerHandle::drain`] observed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DrainReport {
    /// True when every in-flight batch executed and every parked response
    /// byte flushed before the deadline. False means the deadline expired
    /// and the remainder was severed, exactly like a hard shutdown.
    pub completed_within_deadline: bool,
    /// Buffered-but-unadmitted requests shed with a typed `Draining`
    /// error (includes arrivals refused after the drain began).
    pub shed_requests: u64,
    /// Wall time from drain entry to the final thread join.
    pub duration: Duration,
}

/// Owns the server's threads; dropping it shuts the server down.
pub struct ServerHandle {
    addr: SocketAddr,
    session: Arc<InferenceSession>,
    counters: Arc<ServeCounters>,
    batcher: Arc<Batcher>,
    shutdown: Arc<AtomicBool>,
    live: Arc<AtomicUsize>,
    ctx: Arc<ReactorCtx>,
    drain_deadline: Duration,
    poller_shared: Vec<Arc<PollerShared>>,
    pollers: Vec<JoinHandle<()>>,
    executors: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Snapshot of the serving counters. Refreshes the poller watchdog
    /// first — the backstop that reports a stall even when the poller that
    /// normally drives the watchdog is itself the one wedged.
    pub fn stats(&self) -> ServeStats {
        self.ctx.refresh_watchdog();
        self.counters.snapshot()
    }

    /// Per-model SLA-ladder activity (step-downs, restores, current rung),
    /// sorted by model name. Empty until a ladder-registered model executes
    /// its first fused batch.
    pub fn ladder_stats(&self) -> Vec<(String, crate::stats::LadderModelStats)> {
        self.counters.ladder_stats()
    }

    /// The readiness a Health probe would report right now.
    pub fn health_state(&self) -> HealthState {
        self.ctx.health_state()
    }

    /// Number of currently live connections (closed connections are reaped
    /// by their poller, so this tracks live peers, not the total ever
    /// accepted).
    pub fn live_connections(&self) -> usize {
        self.live.load(Ordering::SeqCst)
    }

    /// The session this server executes against.
    pub fn session(&self) -> &Arc<InferenceSession> {
        &self.session
    }

    /// Stop accepting, sever live connections, drain buffered batches, and
    /// join every thread.
    pub fn shutdown(mut self) {
        self.stop();
    }

    /// Route the process `SIGTERM` to the graceful-drain path: the next
    /// SIGTERM makes poller 0 enter drain (refuse new work with typed
    /// `Draining` errors, shed the unadmitted buffer) instead of the
    /// default disposition killing the process mid-batch. The application
    /// observes [`ServerHandle::drain_pending`] and finishes with
    /// [`ServerHandle::drain_graceful`]. Process-global.
    pub fn install_sigterm_drain(&self) -> Result<()> {
        sys::install_signal_flag(sys::SIGTERM)?;
        self.ctx.watch_sigterm();
        Ok(())
    }

    /// True once a drain has been entered (by [`ServerHandle::drain`], a
    /// routed SIGTERM, or a concurrent caller) and the handle should be
    /// taken through [`ServerHandle::drain_graceful`].
    pub fn drain_pending(&self) -> bool {
        self.ctx.is_draining()
    }

    /// [`ServerHandle::drain`] with the configured `drain_deadline`.
    pub fn drain_graceful(self) -> DrainReport {
        let deadline = self.drain_deadline;
        self.drain(deadline)
    }

    /// Gracefully drain, then stop:
    ///
    /// 1. enter drain — accepts are refused with typed `Draining` frames,
    ///    buffered-but-unadmitted requests are shed with `Draining`
    ///    errors, arrivals after this instant get the same;
    /// 2. in-flight fused batches (and their cache shadows) finish
    ///    executing — executors exit once the drained batcher is empty;
    /// 3. parked response bytes flush to their peers as sockets drain
    ///    (pollers keep running through this phase);
    /// 4. everything joins. Work still pending when `deadline` expires is
    ///    severed exactly like a hard shutdown, and the report says so.
    pub fn drain(mut self, deadline: Duration) -> DrainReport {
        let start = Instant::now();
        let deadline_at = start + deadline;
        self.ctx.enter_drain();
        let poll = Duration::from_millis(1);
        // Phase 2: executors finish the batches they already popped.
        let mut executed = false;
        while Instant::now() < deadline_at {
            if self.executors.iter().all(JoinHandle::is_finished) {
                executed = true;
                break;
            }
            std::thread::sleep(poll);
        }
        // Phase 3: parked write buffers flush (pollers are still serving
        // EPOLLOUT). A peer that stopped reading keeps its bytes parked —
        // the deadline bounds how long we indulge it.
        let mut flushed = false;
        while Instant::now() < deadline_at {
            if self.counters.reactor.parked_bytes.load(Ordering::Relaxed) == 0 {
                flushed = true;
                break;
            }
            std::thread::sleep(poll);
        }
        let completed = executed && flushed;
        self.counters
            .drain
            .deadline_exceeded
            .store(u64::from(!completed), Ordering::Relaxed);
        // Phase 4: hard stop — joins pollers and executors.
        self.stop();
        let duration = start.elapsed();
        self.counters
            .drain
            .duration_micros
            .store(duration.as_micros() as u64, Ordering::Relaxed);
        DrainReport {
            completed_within_deadline: completed,
            shed_requests: self.counters.drain.shed_requests.load(Ordering::Relaxed),
            duration,
        }
    }

    fn stop(&mut self) {
        if self.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        // Wake every poller out of epoll_wait; each closes the connections
        // it owns (severing their sockets) on the way out, so no response
        // write can stall shutdown.
        for shared in &self.poller_shared {
            shared.waker.wake();
        }
        for poller in self.pollers.drain(..) {
            let _ = poller.join();
        }
        // Reap connections handed to a poller's inbox after its final
        // sweep (accepted during the shutdown race): without this the live
        // gauge leaks and their sockets outlive the server.
        for shared in &self.poller_shared {
            shared.reap_stragglers(&self.live);
        }
        self.batcher.shutdown();
        for exec in self.executors.drain(..) {
            let _ = exec.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop();
    }
}
