//! The TCP serving frontend.
//!
//! [`Server::spawn`] binds a listener and starts the readiness reactor —
//! one or a few poller threads multiplexing every accepted connection
//! through epoll ([`crate::reactor`]) — plus a pool of batch executor
//! threads. Pollers decode frames and hand inference requests to the
//! micro-batcher; `Stats` requests are answered inline from lock-free
//! snapshots; responses flow back through each connection's bounded write
//! queue without any thread ever blocking on a slow peer.
//! [`ServerHandle::shutdown`] (also run on drop) stops the reactor, severs
//! every live connection, and drains the batcher before joining all
//! threads.
//!
//! Configuration is built through [`ServeConfig::builder`]; the config's
//! fields are validated once at [`ServeConfigBuilder::build`] time, so a
//! spawned server never runs with a nonsensical knob.

use crate::batcher::{Batcher, BatcherConfig};
use crate::cache::{cache_disabled_by_env, CacheConfig, SemanticCache};
use crate::error::{Error, Result};
use crate::reactor::{spawn_reactor, PollerShared, ReactorCtx};
use crate::stats::{ServeCounters, ServeStats};
use crate::sys::set_listen_backlog;
use relserve_core::versions::PressureLadder;
use relserve_core::{Architecture, InferenceSession};
use relserve_runtime::{AdmissionPolicy, Priority};
use std::collections::HashMap;
use std::net::{SocketAddr, TcpListener};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Tuning for a [`Server`]. Construct via [`ServeConfig::builder`]; every
/// knob is validated when the builder finishes, and the set of fields is
/// private so invalid combinations cannot be assembled by hand.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Address to bind; port 0 picks an ephemeral port.
    pub(crate) bind: SocketAddr,
    /// Row budget of one fused batch; a group flushes when it reaches it.
    pub(crate) max_batch_rows: usize,
    /// Longest a buffered request waits before its group flushes anyway.
    pub(crate) max_batch_delay: Duration,
    /// Batch executor threads draining the micro-batcher.
    pub(crate) executors: usize,
    /// Reactor poller threads multiplexing connections.
    pub(crate) pollers: usize,
    /// Per-connection cap on parked (unwritten) response bytes; crossing
    /// half of it pauses reads, overflowing it severs the connection.
    pub(crate) write_buffer_bytes: usize,
    /// Connection slots; accepts past this are shed with a typed
    /// `Overloaded` wire error instead of being admitted and stalled.
    pub(crate) max_connections: usize,
    /// Kernel accept backlog requested for the listener.
    pub(crate) accept_backlog: u32,
    /// Execution architecture for fused batches.
    pub(crate) architecture: Architecture,
    /// Admission policy per class, indexed by [`Priority::rank`].
    pub(crate) admission: [AdmissionPolicy; 3],
    /// Per-class cap on buffered rows; arrivals past it are shed with
    /// `Overloaded` before they ever buffer. `None` = unbounded.
    pub(crate) backlog_shed_rows: [Option<usize>; 3],
    /// SLA step-down ladders, keyed by requested model name.
    pub(crate) ladders: HashMap<String, PressureLadder>,
    /// Semantic result cache fronting the micro-batcher.
    pub(crate) cache: CacheConfig,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            bind: "127.0.0.1:0".parse().expect("static addr parses"),
            max_batch_rows: 64,
            max_batch_delay: Duration::from_millis(2),
            executors: 2,
            pollers: 1,
            write_buffer_bytes: 1 << 20,
            max_connections: 10_000,
            accept_backlog: 1024,
            architecture: Architecture::UdfCentric,
            admission: [
                AdmissionPolicy::for_class(Priority::Interactive),
                AdmissionPolicy::for_class(Priority::Standard),
                AdmissionPolicy::for_class(Priority::Batch),
            ],
            backlog_shed_rows: [None; 3],
            ladders: HashMap::new(),
            cache: CacheConfig::default(),
        }
    }
}

impl ServeConfig {
    /// Start building a validated configuration from the defaults.
    pub fn builder() -> ServeConfigBuilder {
        ServeConfigBuilder {
            config: ServeConfig::default(),
        }
    }
}

/// Builder for [`ServeConfig`], mirroring
/// [`relserve_core::SessionConfig::builder`]: setters are chainable and
/// [`build`](Self::build) rejects invalid combinations with
/// [`Error::Config`] instead of letting a bad knob reach the reactor.
#[derive(Debug, Clone)]
pub struct ServeConfigBuilder {
    config: ServeConfig,
}

impl ServeConfigBuilder {
    /// Address to bind; port 0 picks an ephemeral port (see
    /// [`ServerHandle::addr`]).
    pub fn bind(mut self, addr: SocketAddr) -> Self {
        self.config.bind = addr;
        self
    }

    /// Row budget of one fused batch.
    pub fn max_batch_rows(mut self, rows: usize) -> Self {
        self.config.max_batch_rows = rows;
        self
    }

    /// Longest a buffered request waits before its group flushes anyway.
    pub fn max_batch_delay(mut self, delay: Duration) -> Self {
        self.config.max_batch_delay = delay;
        self
    }

    /// Batch executor threads draining the micro-batcher.
    pub fn executors(mut self, executors: usize) -> Self {
        self.config.executors = executors;
        self
    }

    /// Reactor poller threads. Connections are sharded across pollers by
    /// id; one poller is plenty below a few thousand mostly-idle
    /// connections.
    pub fn pollers(mut self, pollers: usize) -> Self {
        self.config.pollers = pollers;
        self
    }

    /// Per-connection cap on parked response bytes (the backpressure
    /// budget): reads pause at half of it, overflow severs.
    pub fn write_buffer_bytes(mut self, bytes: usize) -> Self {
        self.config.write_buffer_bytes = bytes;
        self
    }

    /// Connection slots; accepts past this are shed with a typed
    /// `Overloaded` wire error at accept time.
    pub fn max_connections(mut self, conns: usize) -> Self {
        self.config.max_connections = conns;
        self
    }

    /// Kernel accept backlog requested for the listener.
    pub fn accept_backlog(mut self, backlog: u32) -> Self {
        self.config.accept_backlog = backlog;
        self
    }

    /// Execution architecture for fused batches.
    pub fn architecture(mut self, architecture: Architecture) -> Self {
        self.config.architecture = architecture;
        self
    }

    /// Admission policy for one class (defaults to
    /// [`AdmissionPolicy::for_class`]).
    pub fn admission(mut self, class: Priority, policy: AdmissionPolicy) -> Self {
        self.config.admission[class.rank()] = policy;
        self
    }

    /// Cap buffered rows for one class; arrivals past the cap are shed
    /// with `Overloaded` before they buffer.
    pub fn backlog_shed_rows(mut self, class: Priority, rows: usize) -> Self {
        self.config.backlog_shed_rows[class.rank()] = Some(rows);
        self
    }

    /// Register an SLA step-down ladder for a model name.
    pub fn ladder(mut self, model: impl Into<String>, ladder: PressureLadder) -> Self {
        self.config.ladders.insert(model.into(), ladder);
        self
    }

    /// Semantic result cache fronting the micro-batcher. Disabled by
    /// default; `RELSERVE_CACHE=off` force-disables it even when enabled
    /// here.
    pub fn cache(mut self, cache: CacheConfig) -> Self {
        self.config.cache = cache;
        self
    }

    /// Validate and produce the configuration.
    pub fn build(self) -> Result<ServeConfig> {
        let c = &self.config;
        if c.max_batch_rows == 0 {
            return Err(Error::Config("max_batch_rows must be at least 1".into()));
        }
        if c.executors == 0 {
            return Err(Error::Config("executors must be at least 1".into()));
        }
        if c.pollers == 0 || c.pollers > 64 {
            return Err(Error::Config(format!(
                "pollers must be in 1..=64, got {}",
                c.pollers
            )));
        }
        if c.write_buffer_bytes < 4096 {
            return Err(Error::Config(format!(
                "write_buffer_bytes must be at least 4096 (one small response \
                 must fit under the backpressure watermarks), got {}",
                c.write_buffer_bytes
            )));
        }
        if c.max_connections == 0 {
            return Err(Error::Config("max_connections must be at least 1".into()));
        }
        if c.accept_backlog == 0 {
            return Err(Error::Config("accept_backlog must be at least 1".into()));
        }
        Ok(self.config)
    }
}

/// The serving frontend. Construct with [`Server::spawn`]; the returned
/// [`ServerHandle`] owns every thread.
pub struct Server;

impl Server {
    /// Bind, start the reactor pollers and executor pool, and return a
    /// handle.
    pub fn spawn(session: Arc<InferenceSession>, config: ServeConfig) -> Result<ServerHandle> {
        let listener = TcpListener::bind(config.bind)?;
        let addr = listener.local_addr()?;
        // std's bind hardcodes a backlog of 128; re-listen to the
        // configured depth so an accept burst at 10k connections does not
        // overflow the SYN queue.
        set_listen_backlog(&listener, config.accept_backlog)?;

        let counters = Arc::new(ServeCounters::default());
        // The semantic cache charges its entries to the session's database
        // memory governor, so budget pressure evicts cold cached results
        // instead of OOMing inference.
        let cache = (config.cache.enabled && !cache_disabled_by_env()).then(|| {
            Arc::new(SemanticCache::new(
                config.cache.clone(),
                session.governor().clone(),
                Arc::clone(&counters),
            ))
        });
        let batcher = Batcher::new(
            BatcherConfig {
                max_batch_rows: config.max_batch_rows.max(1),
                max_batch_delay: config.max_batch_delay,
                architecture: config.architecture,
                admission: config.admission,
                backlog_shed_rows: config.backlog_shed_rows,
                ladders: config.ladders.clone(),
            },
            Arc::clone(&counters),
            Arc::clone(&session),
            cache,
        );

        let executors: Vec<JoinHandle<()>> = (0..config.executors.max(1))
            .map(|i| {
                let batcher = Arc::clone(&batcher);
                std::thread::Builder::new()
                    .name(format!("serve-exec-{i}"))
                    .spawn(move || batcher.run_executor())
                    .expect("spawn executor thread")
            })
            .collect();

        let shutdown = Arc::new(AtomicBool::new(false));
        let live = Arc::new(AtomicUsize::new(0));
        let ctx = Arc::new(ReactorCtx::new(
            Arc::clone(&counters),
            Arc::clone(&batcher),
            Arc::clone(&session),
            Arc::clone(&shutdown),
            Arc::clone(&live),
            config.max_connections,
            config.write_buffer_bytes,
        ));
        let (poller_shared, pollers) = spawn_reactor(listener, config.pollers.max(1), ctx)?;

        Ok(ServerHandle {
            addr,
            session,
            counters,
            batcher,
            shutdown,
            live,
            poller_shared,
            pollers,
            executors,
        })
    }
}

/// Owns the server's threads; dropping it shuts the server down.
pub struct ServerHandle {
    addr: SocketAddr,
    session: Arc<InferenceSession>,
    counters: Arc<ServeCounters>,
    batcher: Arc<Batcher>,
    shutdown: Arc<AtomicBool>,
    live: Arc<AtomicUsize>,
    poller_shared: Vec<Arc<PollerShared>>,
    pollers: Vec<JoinHandle<()>>,
    executors: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Snapshot of the serving counters.
    pub fn stats(&self) -> ServeStats {
        self.counters.snapshot()
    }

    /// Number of currently live connections (closed connections are reaped
    /// by their poller, so this tracks live peers, not the total ever
    /// accepted).
    pub fn live_connections(&self) -> usize {
        self.live.load(Ordering::SeqCst)
    }

    /// The session this server executes against.
    pub fn session(&self) -> &Arc<InferenceSession> {
        &self.session
    }

    /// Stop accepting, sever live connections, drain buffered batches, and
    /// join every thread.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        if self.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        // Wake every poller out of epoll_wait; each closes the connections
        // it owns (severing their sockets) on the way out, so no response
        // write can stall shutdown.
        for shared in &self.poller_shared {
            shared.waker.wake();
        }
        for poller in self.pollers.drain(..) {
            let _ = poller.join();
        }
        self.batcher.shutdown();
        for exec in self.executors.drain(..) {
            let _ = exec.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop();
    }
}
