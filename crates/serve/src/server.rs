//! The TCP serving frontend.
//!
//! [`Server::spawn`] binds a listener and starts the accept loop, one
//! reader thread per connection, and a pool of batch executor threads.
//! Connection readers decode frames and hand inference requests to the
//! micro-batcher; `Stats` requests are answered inline from lock-free
//! snapshots. [`ServerHandle::shutdown`] (also run on drop) stops the
//! accept loop, severs every live connection socket, and drains the
//! batcher before joining all threads.

use crate::batcher::{Batcher, BatcherConfig, Responder, ResponseSink, Submission};
use crate::cache::{cache_disabled_by_env, CacheConfig, SemanticCache};
use crate::error::Result;
use crate::stats::{export_counters, ServeCounters, ServeStats};
use crate::wire::{self, ErrorCode, Request, Response};
use relserve_core::versions::PressureLadder;
use relserve_core::{Architecture, InferenceSession};
use relserve_runtime::{AdmissionPolicy, Priority};
use std::collections::HashMap;
use std::io::BufReader;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Tuning for a [`Server`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Address to bind; port 0 picks an ephemeral port (see
    /// [`ServerHandle::addr`]).
    pub bind: SocketAddr,
    /// Row budget of one fused batch; a group flushes when it reaches it.
    pub max_batch_rows: usize,
    /// Longest a buffered request waits before its group flushes anyway.
    pub max_batch_delay: Duration,
    /// Batch executor threads draining the micro-batcher.
    pub executors: usize,
    /// Execution architecture for fused batches.
    pub architecture: Architecture,
    /// Admission policy per class, indexed by [`Priority::rank`]. Defaults
    /// to [`AdmissionPolicy::for_class`] for each class.
    pub admission: [AdmissionPolicy; 3],
    /// Per-class cap on buffered rows; arrivals past it are shed with
    /// `Overloaded` before they ever buffer. `None` = unbounded.
    pub backlog_shed_rows: [Option<usize>; 3],
    /// Write timeout on accepted sockets, so a client that stops reading
    /// cannot stall an executor thread indefinitely; the connection is
    /// severed when a response write times out.
    pub write_timeout: Duration,
    /// SLA step-down ladders, keyed by requested model name.
    pub ladders: HashMap<String, PressureLadder>,
    /// Semantic result cache fronting the micro-batcher. Disabled by
    /// default; `RELSERVE_CACHE=off` force-disables it even when
    /// `cache.enabled` is set.
    pub cache: CacheConfig,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            bind: "127.0.0.1:0".parse().expect("static addr parses"),
            max_batch_rows: 64,
            max_batch_delay: Duration::from_millis(2),
            executors: 2,
            architecture: Architecture::UdfCentric,
            admission: [
                AdmissionPolicy::for_class(Priority::Interactive),
                AdmissionPolicy::for_class(Priority::Standard),
                AdmissionPolicy::for_class(Priority::Batch),
            ],
            backlog_shed_rows: [None; 3],
            write_timeout: Duration::from_secs(5),
            ladders: HashMap::new(),
            cache: CacheConfig::default(),
        }
    }
}

/// The serving frontend. Construct with [`Server::spawn`]; the returned
/// [`ServerHandle`] owns every thread.
pub struct Server;

impl Server {
    /// Bind, start the accept loop and executor pool, and return a handle.
    pub fn spawn(session: Arc<InferenceSession>, config: ServeConfig) -> Result<ServerHandle> {
        let listener = TcpListener::bind(config.bind)?;
        let addr = listener.local_addr()?;
        // Nonblocking accept so shutdown doesn't need a poke connection.
        listener.set_nonblocking(true)?;

        let counters = Arc::new(ServeCounters::default());
        // The semantic cache charges its entries to the session's database
        // memory governor, so budget pressure evicts cold cached results
        // instead of OOMing inference.
        let cache = (config.cache.enabled && !cache_disabled_by_env()).then(|| {
            Arc::new(SemanticCache::new(
                config.cache.clone(),
                session.governor().clone(),
                Arc::clone(&counters),
            ))
        });
        let batcher = Batcher::new(
            BatcherConfig {
                max_batch_rows: config.max_batch_rows.max(1),
                max_batch_delay: config.max_batch_delay,
                architecture: config.architecture,
                admission: config.admission,
                backlog_shed_rows: config.backlog_shed_rows,
                ladders: config.ladders.clone(),
            },
            Arc::clone(&counters),
            Arc::clone(&session),
            cache,
        );

        let executors: Vec<JoinHandle<()>> = (0..config.executors.max(1))
            .map(|i| {
                let batcher = Arc::clone(&batcher);
                std::thread::Builder::new()
                    .name(format!("serve-exec-{i}"))
                    .spawn(move || batcher.run_executor())
                    .expect("spawn executor thread")
            })
            .collect();

        let shutdown = Arc::new(AtomicBool::new(false));
        let live = Arc::new(Mutex::new(ConnectionTable::default()));
        let accept = {
            let shutdown = Arc::clone(&shutdown);
            let live = Arc::clone(&live);
            let counters = Arc::clone(&counters);
            let batcher = Arc::clone(&batcher);
            let session = Arc::clone(&session);
            let write_timeout = config.write_timeout;
            std::thread::Builder::new()
                .name("serve-accept".into())
                .spawn(move || {
                    accept_loop(
                        listener,
                        shutdown,
                        live,
                        counters,
                        batcher,
                        session,
                        write_timeout,
                    )
                })
                .expect("spawn accept thread")
        };

        Ok(ServerHandle {
            addr,
            session,
            counters,
            batcher,
            shutdown,
            live,
            accept: Some(accept),
            executors,
        })
    }
}

/// Live connections, keyed by a per-server serial. Each entry holds a
/// plain clone of the socket used *only* to sever it (never written, so
/// shutdown needs no writer lock) plus the reader's join handle.
/// Connection threads deregister themselves on exit, so a long-running
/// server does not accumulate dead entries.
#[derive(Default)]
struct ConnectionTable {
    next_id: u64,
    conns: HashMap<u64, Connection>,
}

struct Connection {
    sever: TcpStream,
    /// `None` briefly between registration and the spawn completing, or
    /// when the reader finished and deregistered before the accept loop
    /// could store the handle.
    reader: Option<JoinHandle<()>>,
}

/// Owns the server's threads; dropping it shuts the server down.
pub struct ServerHandle {
    addr: SocketAddr,
    session: Arc<InferenceSession>,
    counters: Arc<ServeCounters>,
    batcher: Arc<Batcher>,
    shutdown: Arc<AtomicBool>,
    live: Arc<Mutex<ConnectionTable>>,
    accept: Option<JoinHandle<()>>,
    executors: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Snapshot of the serving counters.
    pub fn stats(&self) -> ServeStats {
        self.counters.snapshot()
    }

    /// Number of currently registered connections (closed connections
    /// deregister themselves, so this tracks live peers, not the total
    /// ever accepted).
    pub fn live_connections(&self) -> usize {
        self.live
            .lock()
            .expect("connection table poisoned")
            .conns
            .len()
    }

    /// The session this server executes against.
    pub fn session(&self) -> &Arc<InferenceSession> {
        &self.session
    }

    /// Stop accepting, sever live connections, drain buffered batches, and
    /// join every thread.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        if self.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        // Sever sockets so readers blocked in read_exact (and executors
        // stuck in a response write) return, then join the readers before
        // draining the batcher (no new submissions after this). The sever
        // clones are deliberately outside the writer mutex: a stalled
        // writer must not be able to deadlock shutdown.
        let table = {
            let mut live = self.live.lock().expect("connection table poisoned");
            std::mem::take(&mut *live)
        };
        let conns: Vec<Connection> = table.conns.into_values().collect();
        for conn in &conns {
            let _ = conn.sever.shutdown(Shutdown::Both);
        }
        for conn in conns {
            if let Some(reader) = conn.reader {
                let _ = reader.join();
            }
        }
        self.batcher.shutdown();
        for exec in self.executors.drain(..) {
            let _ = exec.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop();
    }
}

fn accept_loop(
    listener: TcpListener,
    shutdown: Arc<AtomicBool>,
    live: Arc<Mutex<ConnectionTable>>,
    counters: Arc<ServeCounters>,
    batcher: Arc<Batcher>,
    session: Arc<InferenceSession>,
    write_timeout: Duration,
) {
    while !shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                counters.connections.fetch_add(1, Ordering::Relaxed);
                let _ = stream.set_nodelay(true);
                // Bound response writes so a client that stops reading
                // cannot pin an executor thread forever.
                let _ = stream.set_write_timeout(Some(write_timeout));
                let (writer, sever) = match (stream.try_clone(), stream.try_clone()) {
                    (Ok(w), Ok(s)) => (Arc::new(Mutex::new(w)), s),
                    _ => continue,
                };
                // Register before spawning so the reader can always find
                // (and remove) its own entry when it exits.
                let conn_id = {
                    let mut table = live.lock().expect("connection table poisoned");
                    table.next_id += 1;
                    let id = table.next_id;
                    table.conns.insert(
                        id,
                        Connection {
                            sever,
                            reader: None,
                        },
                    );
                    id
                };
                let reader = {
                    let writer = Arc::clone(&writer);
                    let counters = Arc::clone(&counters);
                    let batcher = Arc::clone(&batcher);
                    let session = Arc::clone(&session);
                    let live = Arc::clone(&live);
                    std::thread::Builder::new()
                        .name("serve-conn".into())
                        .spawn(move || {
                            serve_connection(stream, writer, counters, batcher, session);
                            // Deregister on exit; shutdown may already have
                            // taken the table, in which case it owns the join.
                            if let Ok(mut table) = live.lock() {
                                table.conns.remove(&conn_id);
                            }
                        })
                        .expect("spawn connection thread")
                };
                let mut table = live.lock().expect("connection table poisoned");
                if let Some(conn) = table.conns.get_mut(&conn_id) {
                    conn.reader = Some(reader);
                }
                // Entry already gone: the connection finished and
                // deregistered itself; dropping the handle detaches the
                // (already-exiting) thread.
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(2)),
        }
    }
}

/// Read frames until the peer hangs up (or shutdown severs the socket).
fn serve_connection(
    stream: TcpStream,
    writer: Arc<Mutex<TcpStream>>,
    counters: Arc<ServeCounters>,
    batcher: Arc<Batcher>,
    session: Arc<InferenceSession>,
) {
    let responder = Responder {
        sink: ResponseSink::Stream(writer),
        counters: Arc::clone(&counters),
    };
    let mut reader = BufReader::new(stream);
    loop {
        let payload = match wire::read_frame(&mut reader) {
            Ok(Some(payload)) => payload,
            Ok(None) => return, // clean EOF
            Err(_) => {
                counters.wire_errors.fetch_add(1, Ordering::Relaxed);
                return;
            }
        };
        let received = Instant::now();
        match wire::decode_request(&payload) {
            Ok(Request::Infer(req)) => {
                counters.requests.fetch_add(1, Ordering::Relaxed);
                counters.per_class[req.class.rank()]
                    .requests
                    .fetch_add(1, Ordering::Relaxed);
                let deadline = (req.deadline_micros > 0)
                    .then(|| received + Duration::from_micros(req.deadline_micros));
                batcher.submit(Submission {
                    id: req.id,
                    class: req.class,
                    deadline,
                    model: req.model,
                    rows: req.rows as usize,
                    width: req.cols as usize,
                    data: req.data,
                    received,
                    responder: responder.clone(),
                    guess: None,
                    shadow: false,
                });
            }
            Ok(Request::Stats { id }) => {
                // Take every snapshot *before* touching the socket; no lock
                // is held across the write.
                let serve = counters.snapshot();
                let session_stats = session.stats();
                let admission = session.coordinator().admission_stats();
                responder.send(&Response::Stats {
                    id,
                    counters: export_counters(&serve, &session_stats, &admission),
                });
            }
            Err(e) => {
                // Framing can no longer be trusted after an undecodable
                // payload: answer with the reserved connection-level id 0
                // (no legitimate request can use it) and close the
                // connection instead of mis-attributing future errors.
                counters.wire_errors.fetch_add(1, Ordering::Relaxed);
                responder.send(&Response::Error {
                    id: 0,
                    code: ErrorCode::Invalid,
                    message: e.to_string(),
                });
                return;
            }
        }
    }
}
